package gpupower

import "gpupower/internal/governor"

// Governor is the real-time DVFS governor of the paper's future-work
// scenario (Section VII): it profiles each kernel on its first call at the
// reference configuration, predicts power across the whole V-F space with
// the fitted model, and pins the policy-optimal configuration for all
// subsequent calls.
type Governor = governor.Governor

// GovernorPolicy selects what the governor optimizes.
type GovernorPolicy = governor.Policy

// Governor policies.
const (
	// GovMinEnergy minimizes predicted energy.
	GovMinEnergy = governor.MinEnergy
	// GovMinEDP minimizes the predicted energy-delay product.
	GovMinEDP = governor.MinEDP
	// GovMaxPerfUnderCap maximizes performance under a power cap.
	GovMaxPerfUnderCap = governor.MaxPerfUnderCap
)

// GovernorReport summarizes a governed run against the always-reference
// baseline.
type GovernorReport = governor.Report

// NewGovernor creates a DVFS governor on this GPU for a model fitted on the
// same device.
func (g *GPU) NewGovernor(m *Model, policy GovernorPolicy) (*Governor, error) {
	return governor.New(g.prof, m, policy)
}
