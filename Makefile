# gpupower build / verify targets.
#
# Tiers:
#   make verify  — tier-1 gate (build + full test suite), what every PR must keep green
#   make race    — concurrency gate: go vet + the full suite under the race
#                  detector. The estimation engine fans out across a worker
#                  pool (internal/parallel); this tier is what keeps the
#                  disjoint-write invariants honest and must gate every PR
#                  that touches a parallel loop.
#   make cover   — full suite with coverage; prints the total and writes
#                  cover.out (the baseline figure lives in EXPERIMENTS.md)
#   make lint    — invariant gate: runs the in-tree gpowerlint analyzers
#                  (internal/lint; see DESIGN.md §9) over ./... and fails on
#                  any diagnostic. Mechanically enforces determinism
#                  (maporder, floateq), cancellation (ctxflow), error
#                  taxonomy (senterr), pooled-spawn (gonosync),
#                  disjoint-write (disjointwrite, with method-mutation
#                  summaries), unit-provenance (unitflow, with cross-package
#                  facts), snapshot-coherence (atomicsnap), serving-boundary
#                  (httpbound), wire-unit (dtounits) and live-suppression
#                  (unusedignore) invariants; must stay green on every PR.
#                  Incremental and parallel: per-package results are cached
#                  under $$(os.UserCacheDir())/gpowerlint (DESIGN.md §9.9),
#                  directory groups run on the internal/parallel pool with
#                  byte-identical output (DESIGN.md §9.13), and the target
#                  prints its wall time so cache regressions are visible in
#                  CI logs.
#   make alloccheck — zero-allocation gate: interprocedurally proves every
#                  //gpower:noalloc-annotated hot-path root allocation-free
#                  (internal/alloccheck; see DESIGN.md §13), failing on any
#                  unproven root, reasonless //gpower:allocs hatch, or dead
#                  hatch. Runs the prover twice (cold, then warm over the OS
#                  page cache), requires byte-identical reports, and prints
#                  both wall times like `make lint`; must stay green on
#                  every PR.
#   make lint-bench — cold-serial vs cold-parallel vs warm timing into fresh
#                  facts dirs; the numbers recorded in EXPERIMENTS.md come
#                  from here. GPUPOWER_SEQUENTIAL=1 pins the serial leg.
#   make bench   — regenerate the paper's tables/figures (EXPERIMENTS.md numbers)
#   make speedup — serial vs parallel Estimate comparison per device catalog
#   make bench-json — run the perf-relevant Go benchmarks plus the speedup
#                  and fleet-fit experiments and consolidate everything into
#                  BENCH_results.json (ns/op, B/op, allocs/op, reference-vs-
#                  restructured estimate-fit factors, fleet models/min;
#                  seed 42). Also drives the gpowerd HTTP load harness for
#                  SERVE_DURATION over SERVE_CONNS keep-alive connections
#                  (the serve_predict row) and the fleet discrete-event DVFS
#                  simulation over CLUSTER_GPUS GPUs for CLUSTER_HORIZON
#                  simulated seconds (the cluster_sim row: per-policy energy
#                  and deadline outcomes plus single-core events/sec). Fails
#                  if a large-device estimate-fit speedup drops below
#                  MIN_ESTIMATE_SPEEDUP (default 2.0), the served
#                  predictions/sec drop below MIN_SERVE_THROUGHPUT (default
#                  1,000,000) or the cluster engine drops below
#                  MIN_CLUSTER_EVENTS simulated events/sec (default
#                  1,000,000; CI passes lower bars to tolerate shared
#                  runners). BENCHTIME=1x makes it a smoke run (CI default
#                  here); raise it locally for stable numbers.

GO ?= go
BENCHTIME ?= 1x

# The benchmark subset bench-json records: the estimation and DVFS hot
# paths this repo optimizes, not the full paper-figure regeneration suite.
BENCH_JSON_PATTERN = 'Benchmark(Predict|NNLS(Cold)?|Isotonic|DVFSSearch|EvaluateOperatingPoints|FindBestConfigWarm|Estimate(Serial|Parallel|Reference)|FleetFit|ClusterEvents)$$'

# bench-json regression gate: the estimate-fit speedup rows for the large
# devices (Titan Xp, GTX Titan X) must stay at or above this factor, else
# benchjson exits non-zero and the CI bench-smoke job fails.
MIN_ESTIMATE_SPEEDUP ?= 2.0

# gpowerd load-harness knobs for the serve_predict row: wall time of the
# timed phase, client connections, and the sustained predictions/sec floor
# (0 disables the gate; SERVE_DURATION=0 skips the harness entirely).
SERVE_DURATION ?= 2s
SERVE_CONNS ?= 4
MIN_SERVE_THROUGHPUT ?= 1000000

# Cluster-simulation knobs for the cluster_sim row: fleet size, simulated
# arrival horizon (seconds), and the single-core simulated-events/sec floor
# (0 disables the gate; CLUSTER_GPUS=0 skips the simulation entirely). The
# local target is >=1M events/sec for a 1,000-GPU fleet; CI passes a lower
# floor and a shorter horizon to tolerate shared runners.
CLUSTER_GPUS ?= 1000
CLUSTER_HORIZON ?= 20
MIN_CLUSTER_EVENTS ?= 1000000

.PHONY: all build test verify vet race lint alloccheck lint-bench cover bench speedup bench-json clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: build test

vet:
	$(GO) vet ./...

race: vet
	$(GO) test -race ./...

lint:
	@start=$$(date +%s%N); \
	$(GO) run ./cmd/gpowerlint -cache-stats ./...; status=$$?; \
	end=$$(date +%s%N); \
	echo "lint: $$(( (end - start) / 1000000 )) ms wall"; \
	exit $$status

# alloccheck proves the annotated hot paths twice with a prebuilt binary:
# a cold run and a warm run over the same tree. The reports must be
# byte-identical (the determinism contract of DESIGN.md §13); both wall
# times are printed so a prover slowdown is visible in CI logs.
alloccheck:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/alloccheck" ./cmd/alloccheck || exit $$?; \
	start=$$(date +%s%N); \
	"$$tmp/alloccheck" ./... > "$$tmp/cold.txt"; status=$$?; \
	end=$$(date +%s%N); cold=$$(( (end - start) / 1000000 )); \
	cat "$$tmp/cold.txt"; \
	[ $$status -eq 0 ] || exit $$status; \
	start=$$(date +%s%N); \
	"$$tmp/alloccheck" ./... > "$$tmp/warm.txt"; status=$$?; \
	end=$$(date +%s%N); warm=$$(( (end - start) / 1000000 )); \
	[ $$status -eq 0 ] || exit $$status; \
	cmp -s "$$tmp/cold.txt" "$$tmp/warm.txt" || { echo "alloccheck: cold and warm reports differ"; exit 1; }; \
	echo "alloccheck: cold $$cold ms, warm $$warm ms"

# lint-bench times cold runs (fresh facts dir: full parse + type check of
# the module) serial (GPUPOWER_SEQUENTIAL=1) and parallel, then a warm run
# over the identical tree, using a prebuilt binary so `go run` compilation
# noise stays out of the measurements. Output is byte-identical across all
# three; only the wall clock moves.
lint-bench:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/gpowerlint" ./cmd/gpowerlint; \
	start=$$(date +%s%N); \
	GPUPOWER_SEQUENTIAL=1 "$$tmp/gpowerlint" -cache-stats -facts-dir "$$tmp/facts-serial" ./... || exit $$?; \
	end=$$(date +%s%N); coldserial=$$(( (end - start) / 1000000 )); \
	start=$$(date +%s%N); \
	"$$tmp/gpowerlint" -cache-stats -facts-dir "$$tmp/facts" ./... || exit $$?; \
	end=$$(date +%s%N); cold=$$(( (end - start) / 1000000 )); \
	start=$$(date +%s%N); \
	"$$tmp/gpowerlint" -cache-stats -facts-dir "$$tmp/facts" ./... || exit $$?; \
	end=$$(date +%s%N); warm=$$(( (end - start) / 1000000 )); \
	echo "lint-bench: cold-serial $$coldserial ms, cold-parallel $$cold ms, warm $$warm ms"

cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench . -benchmem ./

speedup:
	$(GO) test -run NONE -bench 'BenchmarkEstimate(Serial|Parallel)' -benchtime 3x ./

bench-json:
	$(GO) test -run NONE -bench $(BENCH_JSON_PATTERN) -benchmem -benchtime $(BENCHTIME) ./ | tee bench_raw.txt
	$(GO) run ./cmd/benchjson -bench bench_raw.txt -o BENCH_results.json \
		-min-estimate-speedup $(MIN_ESTIMATE_SPEEDUP) \
		-serve-duration $(SERVE_DURATION) -serve-conns $(SERVE_CONNS) \
		-min-serve-throughput $(MIN_SERVE_THROUGHPUT) \
		-cluster-gpus $(CLUSTER_GPUS) -cluster-horizon $(CLUSTER_HORIZON) \
		-min-cluster-events $(MIN_CLUSTER_EVENTS)
	@rm -f bench_raw.txt

clean:
	$(GO) clean ./... && rm -f cover.out bench_raw.txt
