// Command gpowerprofile characterizes an application at a model's reference
// configuration and writes the profile to JSON — the artifact the paper's
// sensor-less and virtualization use cases exchange (a guest VM receives
// profiles and a model; it never needs the power sensor).
//
//	gpowerprofile -model titanx.json -app BLCKSC -o blcksc-profile.json
//
// The -seed must match the gpowerm run (profiles are die-specific, like the
// counters they come from).
package main

import (
	"flag"
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpowerprofile: ")
	modelPath := flag.String("model", "model.json", "fitted model JSON (from gpowerm)")
	appName := flag.String("app", "BLCKSC", "validation application short name (Table III)")
	seed := flag.Uint64("seed", 42, "simulation seed; must match the gpowerm run")
	out := flag.String("o", "profile.json", "output profile path")
	flag.Parse()

	model, err := gpupower.LoadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := gpupower.Open(model.DeviceName, *seed)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		log.Fatal(err)
	}
	if err := prof.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s profiled at %v on %s\n", wl.Short, prof.Ref, gpu.Name())
	fmt.Printf("  reference power: %.1f W\n", prof.RefPower)
	fmt.Printf("  utilization: %s\n", prof.FormatUtilization())
	fmt.Printf("Profile written to %s\n", *out)
}
