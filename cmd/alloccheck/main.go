// Command alloccheck statically proves the module's zero-allocation hot
// paths (DESIGN.md §13). For every function annotated //gpower:noalloc it
// walks the whole static call graph and proves no reachable statement can
// allocate, with a conservative may-allocate default for anything it
// cannot resolve. Individually justified sites (cold miss paths, warm-up
// growth) are suppressed with `//gpower:allocs <reason>`; reasonless or
// dead suppressions are errors.
//
// Usage:
//
//	alloccheck [flags] [./... | import/path ...]
//
//	-json     machine-readable output
//	-report   dump the raw allocation-site inventory of the named packages
//	          (default: the whole module) instead of proving roots
//	-tests    also analyze _test.go files (default false: the proof covers
//	          production code; tests measure, they do not serve)
//
// Exit status: 0 every root proven and no directive errors, 1 findings or
// bad directives, 2 usage or load failure. Output is position-ordered and
// byte-identical across runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpupower/internal/alloccheck"
	"gpupower/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit results as JSON")
	report := flag.Bool("report", false, "dump the allocation-site inventory instead of proving roots")
	tests := flag.Bool("tests", false, "also analyze _test.go files")
	flag.Parse()

	root, modPath, err := alloccheck.FindModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloccheck: %v\n", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modPath)
	loader.Tests = *tests
	cwd, _ := os.Getwd()

	if *report {
		pkgs, err := loadArgs(loader, root, modPath, flag.Args())
		if err != nil {
			fmt.Fprintf(os.Stderr, "alloccheck: %v\n", err)
			os.Exit(2)
		}
		inv := alloccheck.Inventory(pkgs, modPath)
		if *jsonOut {
			err = alloccheck.WriteInventoryJSON(os.Stdout, cwd, inv)
		} else {
			err = alloccheck.WriteInventoryText(os.Stdout, cwd, inv)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "alloccheck: %v\n", err)
			os.Exit(2)
		}
		return
	}

	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "alloccheck: prove mode covers the whole module; only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}
	checker, err := alloccheck.NewChecker(loader, modPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloccheck: %v\n", err)
		os.Exit(2)
	}
	res := checker.Check()
	if *jsonOut {
		err = res.WriteJSON(os.Stdout, cwd)
	} else {
		err = res.WriteText(os.Stdout, cwd)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "alloccheck: %v\n", err)
		os.Exit(2)
	}
	if !res.Clean() {
		os.Exit(1)
	}
}

// loadArgs loads the packages named on the command line for -report mode:
// import paths, directory paths (./x, resolved against the module root), or
// ./... for everything.
func loadArgs(loader *lint.Loader, root, modPath string, args []string) ([]*lint.Package, error) {
	if len(args) == 0 {
		return loader.LoadAll()
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return loader.LoadAll()
		}
		path := arg
		if rel, ok := moduleRel(root, arg); ok {
			if rel == "." {
				path = modPath
			} else {
				path = modPath + "/" + rel
			}
		}
		loaded, err := loader.LoadPackages(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}

// moduleRel interprets arg as a directory path and rewrites it relative to
// the module root; ok=false when arg is already an import path.
func moduleRel(root, arg string) (string, bool) {
	if len(arg) == 0 || (arg[0] != '.' && arg[0] != '/') {
		return "", false
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", false
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return "", false
	}
	return filepath.ToSlash(rel), true
}
