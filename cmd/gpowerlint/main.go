// Command gpowerlint is the repository's domain-invariant static-analysis
// gate (DESIGN.md §9). It type-checks the module from source — standard
// library only, no toolchain or x/tools dependency — and runs every
// registered analyzer:
//
//	maporder      range-over-map bodies with order-sensitive effects
//	floateq       exact floating-point == / !=
//	ctxflow       dropped-context loops, mid-stack context.Background()/TODO()
//	senterr       sentinel-error == / !=, fmt.Errorf wrapping without %w
//	gonosync      naked go statements outside internal/parallel
//	disjointwrite non-index-derived writes to captured state in parallel
//	              closures, including mutation one method call deep
//	unitflow      MHz/volts/watts provenance conflicts in assignments and
//	              math, with cross-package inference facts
//	atomicsnap    torn atomic.Pointer snapshots: second Load in a scope,
//	              inline Load().Field inside loops
//	httpbound     handlers decoding r.Body without http.MaxBytesReader, or
//	              minting context.Background() instead of r.Context()
//	dtounits      DTO field names whose unit disagrees with their json tag
//	unusedignore  //lint:ignore directives that suppressed zero diagnostics
//
// Directory groups are analyzed concurrently on the internal/parallel worker
// pool; output is byte-identical to the serial order (diagnostics are merged
// and sorted into a total order). Set GPUPOWER_SEQUENTIAL=1 to force the
// serial path when isolating an engine issue or benchmarking the speedup.
//
// Usage:
//
//	gpowerlint [flags] [./...]
//
//	-json             machine-readable output
//	-analyzers list   run only the named analyzers (comma-separated)
//	-tests=false      skip _test.go files
//	-changed ref      report only diagnostics in files touched since the
//	                  git ref (diff + untracked, rename-aware); the whole
//	                  module is still analyzed, only the report is filtered
//	-list             print the analyzers and their invariants, then exit
//	-facts-dir dir    where per-package results are cached (default:
//	                  os.UserCacheDir()/gpowerlint); unchanged packages are
//	                  replayed from disk without re-type-checking
//	-no-cache         ignore and do not write the facts cache
//	-cache-stats      print hit/miss and GC counts to stderr after the run
//	-cache-gc-age     evict entries not written for this long (default 168h)
//	-cache-gc-max-mb  then evict oldest-first down to this size (default 64)
//
// Exit status: 0 clean, 1 diagnostics (or bad //lint:ignore directives)
// found, 2 usage, load or type-check failure. Findings are suppressed
// site-by-site with `//lint:ignore <analyzer> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"gpupower/internal/lint"
	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/cache"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	tests := flag.Bool("tests", true, "also analyze _test.go files")
	changed := flag.String("changed", "", "report only diagnostics in files changed since this git ref")
	list := flag.Bool("list", false, "list analyzers and exit")
	factsDir := flag.String("facts-dir", "", "per-package result cache directory (default: os.UserCacheDir()/gpowerlint)")
	noCache := flag.Bool("no-cache", false, "ignore and do not write the facts cache")
	cacheStats := flag.Bool("cache-stats", false, "print cache hit/miss counts to stderr")
	gcAge := flag.Duration("cache-gc-age", 168*time.Hour, "evict cache entries not written for this long (0 disables the age bound)")
	gcMaxMB := flag.Int64("cache-gc-max-mb", 64, "evict oldest cache entries until the cache fits this many MiB (0 disables the size bound)")
	flag.Parse()

	as := analyzers.All()
	if *only != "" {
		sel, ok := analyzers.ByName(*only)
		if !ok || len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "gpowerlint: unknown analyzer in -analyzers=%q\n", *only)
			os.Exit(2)
		}
		as = sel
	}
	if *list {
		for _, a := range as {
			fmt.Printf("%s\n    %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n    "))
		}
		return
	}

	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "gpowerlint: only the ./... pattern is supported (got %q)\n", arg)
			os.Exit(2)
		}
	}

	root, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modPath)
	loader.Tests = *tests
	// The full registry stays the directive vocabulary even when -analyzers
	// selects a subset: an ignore for an analyzer that merely did not run
	// this time is dormant, not unknown.
	runner := &lint.Runner{Analyzers: as, Known: analyzers.KnownNames()}

	var res *lint.Result
	if *noCache {
		pkgs, err := loader.LoadAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
			os.Exit(2)
		}
		res, err = runner.Run(pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		dir := *factsDir
		if dir == "" {
			base, err := os.UserCacheDir()
			if err != nil {
				fmt.Fprintf(os.Stderr, "gpowerlint: no user cache dir (set -facts-dir or -no-cache): %v\n", err)
				os.Exit(2)
			}
			dir = filepath.Join(base, "gpowerlint")
		}
		var stats *cache.Stats
		var err error
		res, stats, err = cache.Run(loader, runner, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
			os.Exit(2)
		}
		if *cacheStats {
			fmt.Fprintf(os.Stderr, "gpowerlint: cache %s\n", stats)
		}
		// Bounded cache: every source edit orphans an entry under its old
		// content key, so long-lived machines need eviction. GC failures
		// are non-fatal — the cache can be slow to shrink, never break a run.
		gcStats, gcErr := cache.GC(dir, cache.GCOptions{MaxAge: *gcAge, MaxBytes: *gcMaxMB << 20})
		if gcErr != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", gcErr)
		} else if *cacheStats {
			fmt.Fprintf(os.Stderr, "gpowerlint: %s\n", gcStats)
		}
	}
	if *changed != "" {
		set, err := lint.ChangedSince(root, *changed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
			os.Exit(2)
		}
		res.Diagnostics = lint.FilterChanged(res.Diagnostics, set, root)
	}

	cwd, _ := os.Getwd()
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, cwd, res.Diagnostics); err != nil {
			fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
			os.Exit(2)
		}
	} else if err := lint.WriteText(os.Stdout, cwd, res.Diagnostics); err != nil {
		fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", err)
		os.Exit(2)
	}
	for _, derr := range res.DirectiveErrors {
		fmt.Fprintf(os.Stderr, "gpowerlint: %v\n", derr)
	}
	if len(res.Diagnostics) > 0 || len(res.DirectiveErrors) > 0 {
		os.Exit(1)
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("no module directive in %s", filepath.Join(abs, "go.mod"))
			}
			return abs, string(m[1]), nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s (run from inside the module)", dir)
		}
		abs = parent
	}
}
