// Command gpowerpredict predicts an application's power across V-F
// configurations from a saved model: the application is profiled once at
// the model's reference configuration (performance events only), then the
// model evaluates any configuration without further execution.
//
//	gpowerpredict -model titanx-model.json -app BLCKSC
//	gpowerpredict -model titanx-model.json -app CUTCP -fcore 595 -fmem 810 -breakdown
//	gpowerpredict -model titanx-model.json -app LBM -validate
//	gpowerpredict -model titanx-model.json -profile blcksc-profile.json
//
// The -seed must match the gpowerm run: a model is tied to the die it was
// fitted on (per-die counter biases), exactly as on real hardware.
package main

import (
	"flag"
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpowerpredict: ")
	modelPath := flag.String("model", "model.json", "fitted model JSON (from gpowerm)")
	appName := flag.String("app", "BLCKSC", "validation application short name (see Table III), e.g. BLCKSC, CUTCP, LBM, CUBLAS")
	profilePath := flag.String("profile", "", "predict from a saved profile JSON (from gpowerprofile) instead of re-profiling; disables -validate")
	seed := flag.Uint64("seed", 42, "simulation seed; must match the gpowerm run")
	fcore := flag.Float64("fcore", 0, "core frequency MHz (0 = all configurations)")
	fmem := flag.Float64("fmem", 0, "memory frequency MHz (0 = all configurations)")
	breakdown := flag.Bool("breakdown", false, "print the per-component power decomposition")
	validate := flag.Bool("validate", false, "also measure real power at each printed configuration")
	flag.Parse()

	model, err := gpupower.LoadModel(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	gpu, err := gpupower.Open(model.DeviceName, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var prof *gpupower.Profile
	var wl gpupower.Workload
	canValidate := true
	if *profilePath != "" {
		prof, err = gpupower.LoadProfile(*profilePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := prof.CompatibleWith(model); err != nil {
			log.Fatal(err)
		}
		canValidate = false
		fmt.Printf("%s loaded from %s (profiled at %v)\n", prof.App.Name, *profilePath, prof.Ref)
	} else {
		wl, err = gpupower.WorkloadByName(*appName)
		if err != nil {
			log.Fatal(err)
		}
		prof, err = gpu.ProfileForModel(wl.App, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s, %s) profiled at %v\n", wl.Short, wl.Full, wl.Suite, prof.Ref)
	}
	fmt.Printf("Utilization: %s\n", prof.FormatUtilization())

	var configs []gpupower.Config
	if *fcore > 0 && *fmem > 0 {
		configs = []gpupower.Config{{CoreMHz: *fcore, MemMHz: *fmem}}
	} else {
		configs = gpu.Configs()
	}
	for _, cfg := range configs {
		pred, err := model.Predict(prof.Utilization, cfg)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%v  predicted %6.1f W", cfg, pred)
		if *validate && canValidate {
			meas, err := gpu.MeasurePower(wl.App, cfg)
			if err != nil {
				log.Fatal(err)
			}
			line += fmt.Sprintf("  measured %6.1f W  err %+5.1f%%", meas, 100*(pred-meas)/meas)
		}
		fmt.Println(line)
		if *breakdown {
			bd, err := model.Decompose(prof.Utilization, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    constant %.1f W", bd.Constant)
			for _, c := range []gpupower.Component{gpupower.Int, gpupower.SP, gpupower.DP, gpupower.SF, gpupower.Shared, gpupower.L2, gpupower.DRAM} {
				if bd.Component[c] >= 0.5 {
					fmt.Printf("  %s %.1f W", c, bd.Component[c])
				}
			}
			fmt.Println()
		}
	}
}
