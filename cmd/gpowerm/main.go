// Command gpowerm constructs a DVFS-aware GPU power model (the paper's
// publicly released tool, reimplemented for the simulated devices): it runs
// the 83-microbenchmark suite, fits the Section III-D model and writes it
// to JSON.
//
//	gpowerm -device "GTX Titan X" -o titanx-model.json
//	gpowerm -device "Titan Xp" -seed 7 -o xp.json
package main

import (
	"flag"
	"fmt"
	"log"

	"gpupower"
	"gpupower/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gpowerm: ")
	device := flag.String("device", gpupower.GTXTitanX, `device name ("Titan Xp", "GTX Titan X", "Tesla K40c")`)
	seed := flag.Uint64("seed", 42, "simulation seed (identifies the die instance)")
	out := flag.String("o", "model.json", "output model path")
	flag.Parse()

	gpu, err := gpupower.Open(*device, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fitting DVFS-aware power model on %s (%d V-F configurations, 83 microbenchmarks)...\n",
		gpu.Name(), len(gpu.Configs()))
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Estimator finished: %d iterations, converged=%v\n", model.Iterations, model.Converged)
	fmt.Printf("Coefficients (normalized to V_ref):\n")
	fmt.Printf("  β0 (core static)       = %8.3f W\n", model.Beta[0])
	fmt.Printf("  β1 (core idle-dynamic) = %8.5f W/MHz\n", model.Beta[1])
	fmt.Printf("  β2 (mem static)        = %8.3f W\n", model.Beta[2])
	fmt.Printf("  β3 (mem idle-dynamic)  = %8.5f W/MHz\n", model.Beta[3])
	for _, c := range []gpupower.Component{hw.Int, hw.SP, hw.DP, hw.SF, hw.Shared, hw.L2} {
		fmt.Printf("  ω_%-6s               = %8.5f W/MHz\n", c, model.OmegaCore[c])
	}
	fmt.Printf("  ω_mem                  = %8.5f W/MHz\n", model.OmegaMem)
	fmt.Printf("  L2 peak (calibrated)   = %8.1f B/cycle\n", model.L2BytesPerCycle)

	freqs, vbar, err := model.PredictedCoreVoltage(gpu.DefaultConfig().MemMHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Estimated core voltage ladder (V̄ at fmem=%.0f MHz):\n", gpu.DefaultConfig().MemMHz)
	for i := range freqs {
		fmt.Printf("  %5.0f MHz: %.3f\n", freqs[i], vbar[i])
	}

	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Model written to %s\n", *out)
}
