// Command gpowerbench regenerates the paper's tables and figures from the
// simulated devices:
//
//	gpowerbench -exp fig7             # one experiment
//	gpowerbench -exp fig6 -plot       # with an ASCII chart
//	gpowerbench -exp all              # everything, in paper order
//	gpowerbench -exp fig8 -seed 7     # different die instance
//	gpowerbench -csv out/             # export every data series as CSV
//
// Experiments: table1 table2 table3 fig2 fig5 fig6 fig7 fig8 fig9 fig10
// convergence baselines ablation breakdown governor cluster robustness
// sources all.
//
// Ctrl-C (SIGINT/SIGTERM) cancels the in-flight experiment at its next
// measurement or fitting checkpoint and exits with an error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gpupower/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run; comma-separated list or \"all\"")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "simulation seed")
	csvDir := flag.String("csv", "", "when set, export every experiment's data series as CSV into this directory and exit")
	plot := flag.Bool("plot", false, "render ASCII charts for the figure experiments that support it (fig2, fig6, fig7, fig9)")
	report := flag.String("report", "", "when set, write a self-contained markdown evaluation report to this file and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpowerbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteReport(ctx, f, *seed); err != nil {
			fail("report", err)
		}
		fmt.Println("report written to", *report)
		return
	}

	if *csvDir != "" {
		paths, err := experiments.ExportAllCSVs(ctx, *csvDir, *seed)
		if err != nil {
			fail("csv export", err)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
		return
	}

	names := strings.Split(*exp, ",")
	if *exp == "all" {
		names = experiments.AllNames()
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if err := experiments.RunByName(ctx, name, os.Stdout, *seed, *plot); err != nil {
			fail(name, err)
		}
		fmt.Println()
	}
}

// fail reports an error, distinguishing user-requested cancellation.
func fail(what string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "gpowerbench: %s: interrupted\n", what)
	} else {
		fmt.Fprintf(os.Stderr, "gpowerbench: %s: %v\n", what, err)
	}
	os.Exit(1)
}
