// Command benchjson consolidates performance numbers into a single
// machine-readable artifact:
//
//	go test -run NONE -bench . -benchmem ./ > bench_raw.txt
//	benchjson -bench bench_raw.txt -o BENCH_results.json
//
// It parses the standard `go test -bench -benchmem` output (ns/op, B/op,
// allocs/op per benchmark) and runs the speedup experiment (cold vs warm
// prediction surfaces, sequential vs pooled fitting) in-process, then writes
// both as one JSON document. `make bench-json` is the supported entry point;
// CI uploads the resulting BENCH_results.json as a build artifact.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"syscall"

	"gpupower/internal/experiments"
)

// BenchEntry is one parsed `go test -bench` result line.
type BenchEntry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// SpeedupEntry is one measured baseline-vs-optimized comparison.
type SpeedupEntry struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	BaseNsOp  float64 `json:"base_ns_per_op"`
	OptNsOp   float64 `json:"opt_ns_per_op"`
	Factor    float64 `json:"speedup_factor"`
}

// Document is the BENCH_results.json schema.
type Document struct {
	Seed       uint64         `json:"seed"`
	Benchmarks []BenchEntry   `json:"benchmarks"`
	Speedups   []SpeedupEntry `json:"speedups"`
}

// benchLine matches e.g.
//
//	BenchmarkPredict-8   1626286   729.7 ns/op   224 B/op   3 allocs/op
//
// The -N GOMAXPROCS suffix is stripped; B/op and allocs/op are optional
// (plain -bench output without -benchmem omits them).
var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench extracts benchmark entries from go test -bench output.
func parseBench(path string) ([]BenchEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []BenchEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := BenchEntry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func main() {
	bench := flag.String("bench", "", "path to `go test -bench -benchmem` output to parse (optional)")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "simulation seed for the speedup measurements")
	out := flag.String("o", "BENCH_results.json", "output path")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc := Document{Seed: *seed}
	if *bench != "" {
		entries, err := parseBench(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *bench, err)
			os.Exit(1)
		}
		doc.Benchmarks = entries
	}

	sp, err := experiments.RunSpeedup(ctx, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: speedup experiment: %v\n", err)
		os.Exit(1)
	}
	for _, row := range sp.Rows {
		doc.Speedups = append(doc.Speedups, SpeedupEntry{
			Name:      row.Name,
			Baseline:  row.BaseLabel,
			Optimized: row.OptLabel,
			BaseNsOp:  row.BaseNsOp,
			OptNsOp:   row.OptNsOp,
			Factor:    row.Factor,
		})
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d speedup rows, seed %d)\n",
		*out, len(doc.Benchmarks), len(doc.Speedups), *seed)
}
