// Command benchjson consolidates performance numbers into a single
// machine-readable artifact:
//
//	go test -run NONE -bench . -benchmem ./ > bench_raw.txt
//	benchjson -bench bench_raw.txt -o BENCH_results.json
//
// It parses the standard `go test -bench -benchmem` output (ns/op, B/op,
// allocs/op per benchmark) and runs the speedup, fleet-fit,
// serving-throughput and cluster-simulation experiments (cold vs warm
// prediction surfaces, reference vs restructured estimation engine, fleet
// fitting throughput, gpowerd /v1/predict over loopback HTTP, and the
// fleet discrete-event DVFS simulator) in-process, then writes everything
// as one JSON document. `make bench-json` is the supported entry point; CI
// uploads the resulting BENCH_results.json as a build artifact and gates on
// -min-estimate-speedup (the estimate-fit rows for the large devices must
// not regress below the given factor), -min-serve-throughput and
// -min-cluster-events (the single-core event throughput of the cluster
// engine, recorded as the cluster_sim row).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"syscall"
	"time"

	"gpupower/internal/alloccheck"
	"gpupower/internal/experiments"
)

// BenchEntry is one parsed `go test -bench` result line.
type BenchEntry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// SpeedupEntry is one measured baseline-vs-optimized comparison.
type SpeedupEntry struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	BaseNsOp  float64 `json:"base_ns_per_op"`
	OptNsOp   float64 `json:"opt_ns_per_op"`
	Factor    float64 `json:"speedup_factor"`
}

// FleetFitEntry records the fleet-scale fitting throughput measurement.
type FleetFitEntry struct {
	Members         []string `json:"members"`
	Workers         int      `json:"workers"`
	WallNs          float64  `json:"wall_ns"`
	ModelsPerMinute float64  `json:"models_per_minute"`
	Converged       int      `json:"converged"`
}

// ServePredictEntry records the gpowerd end-to-end serving throughput
// measurement (real loopback HTTP server, batch /v1/predict, bitwise
// pre-flight verification).
type ServePredictEntry struct {
	Device            string  `json:"device"`
	Conns             int     `json:"conns"`
	ItemsPerRequest   int     `json:"items_per_request"`
	ConfigsPerItem    int     `json:"configs_per_item"`
	DurationNs        float64 `json:"duration_ns"`
	Requests          int64   `json:"requests"`
	Predictions       int64   `json:"predictions"`
	PredictionsPerSec float64 `json:"predictions_per_sec"`
	RequestsPerSec    float64 `json:"requests_per_sec"`
	Verified          bool    `json:"verified_bitwise"`
}

// ClusterPolicyEntry is one DVFS policy's fleet outcome on the common
// seeded traffic trace.
type ClusterPolicyEntry struct {
	Policy         string  `json:"policy"`
	Jobs           int64   `json:"jobs"`
	MissPct        float64 `json:"deadline_miss_pct"`
	EnergyJ        float64 `json:"energy_j"`
	AvgPowerW      float64 `json:"avg_power_w"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	EnergySavedPct float64 `json:"energy_saved_pct"`
}

// ClusterSimEntry records the fleet discrete-event simulation: per-policy
// outcomes plus the engine's raw single-core event throughput (the number
// -min-cluster-events gates).
type ClusterSimEntry struct {
	GPUs           int                  `json:"gpus"`
	HorizonSeconds float64              `json:"horizon_seconds"`
	Devices        []string             `json:"devices"`
	Classes        []string             `json:"classes"`
	Policies       []ClusterPolicyEntry `json:"policies"`
	EventsPerRun   int64                `json:"events_per_run"`
	EventsPerSec   float64              `json:"events_per_sec"`
}

// AlloccheckEntry records the static zero-allocation coverage: how many
// //gpower:noalloc roots the interprocedural proof covers at HEAD, how many
// prove clean, and how many //gpower:allocs escape hatches the proofs lean
// on (DESIGN.md §13).
type AlloccheckEntry struct {
	Roots           int     `json:"annotated_roots"`
	Proven          int     `json:"proven"`
	EscapeHatches   int     `json:"escape_hatches"`
	FunctionsWalked int     `json:"functions_walked"`
	WallNs          float64 `json:"wall_ns"`
}

// Document is the BENCH_results.json schema.
type Document struct {
	Seed         uint64             `json:"seed"`
	Benchmarks   []BenchEntry       `json:"benchmarks"`
	Speedups     []SpeedupEntry     `json:"speedups"`
	FleetFit     *FleetFitEntry     `json:"fleet_fit,omitempty"`
	ServePredict *ServePredictEntry `json:"serve_predict,omitempty"`
	ClusterSim   *ClusterSimEntry   `json:"cluster_sim,omitempty"`
	Alloccheck   *AlloccheckEntry   `json:"alloccheck,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkPredict-8   1626286   729.7 ns/op   224 B/op   3 allocs/op
//
// The -N GOMAXPROCS suffix is stripped; B/op and allocs/op are optional
// (plain -bench output without -benchmem omits them).
var benchLine = regexp.MustCompile(
	`^(Benchmark[^\s]+?)(?:-\d+)?\s+(\d+)\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench extracts benchmark entries from go test -bench output.
func parseBench(path string) ([]BenchEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []BenchEntry
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := BenchEntry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

func main() {
	bench := flag.String("bench", "", "path to `go test -bench -benchmem` output to parse (optional)")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "simulation seed for the speedup measurements")
	out := flag.String("o", "BENCH_results.json", "output path")
	minEstimate := flag.Float64("min-estimate-speedup", 0,
		"fail (exit 1) if any large-device estimate-fit speedup factor falls below this (0 disables the gate)")
	serveDuration := flag.Duration("serve-duration", 2*time.Second, "load-phase duration for the serving-throughput measurement (0 skips it)")
	serveConns := flag.Int("serve-conns", 4, "concurrent client connections for the serving-throughput measurement")
	minServe := flag.Float64("min-serve-throughput", 0,
		"fail (exit 1) if the serving throughput falls below this many predictions/sec (0 disables the gate)")
	clusterGPUs := flag.Int("cluster-gpus", 1000, "fleet size for the cluster simulation (0 skips it)")
	clusterHorizon := flag.Float64("cluster-horizon", 20, "simulated arrival horizon for the cluster simulation, seconds")
	minCluster := flag.Float64("min-cluster-events", 0,
		"fail (exit 1) if the single-core cluster engine falls below this many simulated events/sec (0 disables the gate)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	doc := Document{Seed: *seed}
	if *bench != "" {
		entries, err := parseBench(*bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *bench, err)
			os.Exit(1)
		}
		doc.Benchmarks = entries
	}

	sp, err := experiments.RunSpeedup(ctx, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: speedup experiment: %v\n", err)
		os.Exit(1)
	}
	for _, row := range sp.Rows {
		doc.Speedups = append(doc.Speedups, SpeedupEntry{
			Name:      row.Name,
			Baseline:  row.BaseLabel,
			Optimized: row.OptLabel,
			BaseNsOp:  row.BaseNsOp,
			OptNsOp:   row.OptNsOp,
			Factor:    row.Factor,
		})
	}

	ff, err := experiments.RunFleetFit(ctx, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: fleet-fit experiment: %v\n", err)
		os.Exit(1)
	}
	doc.FleetFit = &FleetFitEntry{
		Members:         ff.Members,
		Workers:         ff.Workers,
		WallNs:          ff.WallNs,
		ModelsPerMinute: ff.ModelsPerMinute,
		Converged:       ff.Converged,
	}

	if *serveDuration > 0 {
		sl, err := experiments.RunServeLoad(ctx, *seed, *serveDuration, *serveConns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: serve-load experiment: %v\n", err)
			os.Exit(1)
		}
		doc.ServePredict = &ServePredictEntry{
			Device:            sl.Device,
			Conns:             sl.Conns,
			ItemsPerRequest:   sl.ItemsPerRequest,
			ConfigsPerItem:    sl.ConfigsPerItem,
			DurationNs:        sl.DurationNs,
			Requests:          sl.Requests,
			Predictions:       sl.Predictions,
			PredictionsPerSec: sl.PredictionsPerSec,
			RequestsPerSec:    sl.RequestsPerSec,
			Verified:          sl.Verified,
		}
	}

	if *clusterGPUs > 0 {
		cl, err := experiments.RunCluster(ctx, *seed, *clusterGPUs, *clusterHorizon)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: cluster experiment: %v\n", err)
			os.Exit(1)
		}
		entry := &ClusterSimEntry{
			GPUs:           cl.GPUs,
			HorizonSeconds: cl.HorizonSeconds,
			Devices:        cl.Devices,
			Classes:        cl.Classes,
			EventsPerRun:   cl.Events,
			EventsPerSec:   cl.EventsPerSec,
		}
		for _, row := range cl.Rows {
			entry.Policies = append(entry.Policies, ClusterPolicyEntry{
				Policy:         row.Policy,
				Jobs:           row.Jobs,
				MissPct:        row.MissPct,
				EnergyJ:        row.EnergyJ,
				AvgPowerW:      row.AvgPowerW,
				P50Ms:          row.P50Ms,
				P99Ms:          row.P99Ms,
				EnergySavedPct: row.EnergySavedPct,
			})
		}
		doc.ClusterSim = entry
	}

	acStart := time.Now()
	acRes, _, err := alloccheck.CheckModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: alloccheck: %v\n", err)
		os.Exit(1)
	}
	doc.Alloccheck = &AlloccheckEntry{
		Roots:           acRes.RootCount,
		Proven:          acRes.ProvenCount,
		EscapeHatches:   acRes.HatchesUsed,
		FunctionsWalked: acRes.FunctionsWalked,
		WallNs:          float64(time.Since(acStart).Nanoseconds()),
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks, %d speedup rows, %.1f models/min fleet fit, seed %d)\n",
		*out, len(doc.Benchmarks), len(doc.Speedups), ff.ModelsPerMinute, *seed)
	if doc.ServePredict != nil {
		fmt.Printf("serve_predict: %.2fM predictions/s over %d connections\n",
			doc.ServePredict.PredictionsPerSec/1e6, doc.ServePredict.Conns)
	}
	if doc.ClusterSim != nil {
		fmt.Printf("cluster_sim: %.2fM events/s single-core, %d-GPU fleet\n",
			doc.ClusterSim.EventsPerSec/1e6, doc.ClusterSim.GPUs)
	}
	fmt.Printf("alloccheck: %d/%d hot-path roots proven, %d escape hatches, %d functions walked\n",
		doc.Alloccheck.Proven, doc.Alloccheck.Roots, doc.Alloccheck.EscapeHatches, doc.Alloccheck.FunctionsWalked)

	// The regression gates run after the artifact is written so a failing
	// run still leaves the numbers on disk for diagnosis. The alloccheck
	// gate has no knob: an unproven hot-path root is always a regression.
	if !acRes.Clean() {
		fmt.Fprintf(os.Stderr, "benchjson: alloccheck: %d of %d roots unproven, %d directive errors (run `go run ./cmd/alloccheck ./...` for the findings)\n",
			acRes.RootCount-acRes.ProvenCount, acRes.RootCount, len(acRes.DirectiveErrors))
		os.Exit(1)
	}
	if *minEstimate > 0 {
		gated := []string{"estimate-fit (Titan Xp)", "estimate-fit (GTX Titan X)"}
		checked := 0
		failed := false
		for _, want := range gated {
			for _, e := range doc.Speedups {
				if e.Name != want {
					continue
				}
				checked++
				if e.Factor < *minEstimate {
					fmt.Fprintf(os.Stderr, "benchjson: %s speedup %.2fx below gate %.2fx\n",
						e.Name, e.Factor, *minEstimate)
					failed = true
				}
			}
		}
		if checked != len(gated) {
			fmt.Fprintf(os.Stderr, "benchjson: gate found %d of %d estimate-fit rows %v\n",
				checked, len(gated), gated)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
	}
	if *minServe > 0 {
		if doc.ServePredict == nil {
			fmt.Fprintf(os.Stderr, "benchjson: -min-serve-throughput set but the serve measurement was skipped\n")
			os.Exit(1)
		}
		if doc.ServePredict.PredictionsPerSec < *minServe {
			fmt.Fprintf(os.Stderr, "benchjson: serving throughput %.0f predictions/s below gate %.0f\n",
				doc.ServePredict.PredictionsPerSec, *minServe)
			os.Exit(1)
		}
	}
	if *minCluster > 0 {
		if doc.ClusterSim == nil {
			fmt.Fprintf(os.Stderr, "benchjson: -min-cluster-events set but the cluster simulation was skipped\n")
			os.Exit(1)
		}
		if doc.ClusterSim.EventsPerSec < *minCluster {
			fmt.Fprintf(os.Stderr, "benchjson: cluster engine %.0f events/s below gate %.0f\n",
				doc.ClusterSim.EventsPerSec, *minCluster)
			os.Exit(1)
		}
	}
}
