// Command gpowerd is the long-running power-model serving daemon: it fits
// one DVFS-aware model per device at startup and serves batch predictions,
// governor decisions, power breakdowns and Prometheus metrics over HTTP.
//
//	gpowerd                                    # all three catalog devices, simulator-backed
//	gpowerd -devices "GTX Titan X" -seed 7     # one device, different die
//	gpowerd -fleet 12                          # 12-member fleet, round-robin catalog
//	gpowerd -trace testdata/k40c-fit.trace.gz  # demo mode: fit from a recorded trace, zero hardware
//	curl -s localhost:8080/healthz
//
// Endpoints: GET /healthz, GET /v1/devices, POST /v1/predict,
// POST /v1/govern, POST /v1/breakdown, GET /metrics.
//
// SIGINT/SIGTERM drains gracefully: in-flight requests get up to the
// -drain timeout to finish before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpupower"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve HTTP on")
	devices := flag.String("devices", strings.Join(gpupower.DeviceNames(), ","), "comma-separated catalog devices to fit and serve (simulator-backed)")
	fleetN := flag.Int("fleet", 0, "when > 0, serve an n-member fleet drawn round-robin from the catalog instead of -devices")
	seed := flag.Uint64("seed", 42, "simulation seed (fleet members get seed, seed+1, ...)")
	trace := flag.String("trace", "", "demo mode: fit from this recorded measurement trace instead of the simulator (zero hardware)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	maxBody := flag.Int64("max-request-bytes", 0, "request body size limit (0 = default 8 MiB)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg, err := buildRegistry(ctx, *trace, *devices, *fleetN, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpowerd: %v\n", err)
		os.Exit(1)
	}
	for _, name := range reg.Names() {
		e, _ := reg.Lookup(name)
		_, meta := e.Snapshot()
		fmt.Printf("gpowerd: %s fitted (source=%s, converged=%v, %d iterations)\n",
			name, meta.Source, meta.Converged, meta.Iterations)
	}

	srv := &http.Server{Addr: *listen, Handler: gpowerRegistryHandler(reg, *maxBody)}

	done := make(chan struct{})
	//lint:ignore gonosync shutdown watcher: one goroutine bridging the signal context to http.Server.Shutdown, joined via done before exit
	go func() {
		defer close(done)
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "gpowerd: drain: %v\n", err)
		}
	}()

	fmt.Printf("gpowerd: serving %d device(s) on http://%s\n", reg.Len(), *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "gpowerd: %v\n", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("gpowerd: drained, bye")
}

// buildRegistry assembles the model registry per the flags: trace demo
// mode, an explicit device list, or a synthetic fleet.
func buildRegistry(ctx context.Context, trace, devices string, fleetN int, seed uint64) (*gpupower.ModelRegistry, error) {
	if trace != "" {
		gpu, err := gpupower.OpenTrace(trace)
		if err != nil {
			return nil, err
		}
		entry, err := gpu.FitRegistryEntry(ctx, "", "trace", nil)
		if err != nil {
			return nil, err
		}
		reg := gpupower.NewModelRegistry()
		if err := reg.Add(entry); err != nil {
			return nil, err
		}
		return reg, nil
	}
	var specs []gpupower.FleetSpec
	if fleetN > 0 {
		specs = gpupower.FleetSpecs(fleetN, seed)
	} else {
		for i, name := range strings.Split(devices, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			specs = append(specs, gpupower.FleetSpec{Device: name, Seed: seed + uint64(i)})
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no devices to serve (check -devices / -fleet)")
	}
	return gpupower.BuildModelRegistry(ctx, specs, nil)
}

// gpowerRegistryHandler builds the HTTP handler with the body-size limit
// applied.
func gpowerRegistryHandler(reg *gpupower.ModelRegistry, maxBody int64) http.Handler {
	var opts *gpupower.ServeOptions
	if maxBody > 0 {
		opts = &gpupower.ServeOptions{MaxRequestBytes: maxBody}
	}
	return gpupower.NewPowerServer(reg, opts)
}
