package gpupower_test

import (
	"math"
	"testing"

	"gpupower"
)

func TestEstimateRelativeTimeProperties(t *testing.T) {
	gpu, _ := fitted(t)
	ref := gpu.DefaultConfig()

	// At the reference configuration the ratio is exactly 1.
	u := gpupower.Utilization{gpupower.SP: 0.8, gpupower.DRAM: 0.3}
	if rt := gpupower.EstimateRelativeTime(u, ref, ref); rt != 1 {
		t.Fatalf("relative time at ref = %g, want 1", rt)
	}

	// Lowering the bound resource's clock slows the app.
	for _, cfg := range gpu.Configs() {
		rt := gpupower.EstimateRelativeTime(u, ref, cfg)
		if rt <= 0 || math.IsNaN(rt) {
			t.Fatalf("relative time %g at %v", rt, cfg)
		}
		if cfg.CoreMHz <= ref.CoreMHz && cfg.MemMHz <= ref.MemMHz && rt < 1-1e-9 {
			t.Fatalf("slower clocks gave a speedup (%g) at %v", rt, cfg)
		}
	}

	// A compute-bound app is insensitive to the memory clock.
	cb := gpupower.Utilization{gpupower.SP: 0.9, gpupower.DRAM: 0.05}
	low := ref
	low.MemMHz = gpu.Device().MemFreqs[0]
	if rt := gpupower.EstimateRelativeTime(cb, ref, low); rt > 1.05 {
		t.Fatalf("compute-bound app slowed %.2fx by the memory clock", rt)
	}

	// An idle profile is frequency-insensitive.
	if rt := gpupower.EstimateRelativeTime(gpupower.Utilization{}, ref, low); rt != 1 {
		t.Fatalf("idle profile relative time = %g", rt)
	}
}

func TestEvaluateOperatingPoints(t *testing.T) {
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("CUTCP")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := gpupower.EvaluateOperatingPoints(model, gpu.Device(), prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(gpu.Configs()) {
		t.Fatalf("point count = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.PowerW <= 0 || pt.RelTime <= 0 || pt.RelEnergy <= 0 || pt.RelEDP <= 0 {
			t.Fatalf("non-positive operating point %+v", pt)
		}
		if math.Abs(pt.RelEDP-pt.RelEnergy*pt.RelTime) > 1e-9 {
			t.Fatalf("EDP inconsistent at %v", pt.Config)
		}
		// The reference configuration's energy ratio is exactly 1.
		if pt.Config == prof.Ref {
			if math.Abs(pt.RelEnergy-1) > 1e-9 {
				t.Fatalf("reference energy ratio = %g", pt.RelEnergy)
			}
		}
	}
}

func TestFindBestConfig(t *testing.T) {
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("LBM") // memory-bound: core scaling saves energy
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}

	best, err := gpupower.FindBestConfig(model, gpu.Device(), prof, gpupower.MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if best.PowerW > gpu.TDP() {
		t.Fatal("best config violates TDP")
	}
	// It must not be worse than running at the reference.
	if best.RelEnergy > 1+1e-9 {
		t.Fatalf("min-energy config has energy ratio %g > 1", best.RelEnergy)
	}
	// For a memory-bound app, the energy-optimal core clock is below the
	// reference (the paper's DVFS-management use case).
	if best.Config.CoreMHz >= prof.Ref.CoreMHz {
		t.Errorf("memory-bound app: expected a lower energy-optimal core clock, got %v", best.Config)
	}

	minPower, err := gpupower.FindBestConfig(model, gpu.Device(), prof, gpupower.MinPowerUnderTDP)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum power is at the lowest clocks.
	dev := gpu.Device()
	if minPower.Config.CoreMHz != dev.CoreFreqs[0] || minPower.Config.MemMHz != dev.MemFreqs[0] {
		t.Errorf("min-power config = %v, want the ladder floor", minPower.Config)
	}

	edp, err := gpupower.FindBestConfig(model, gpu.Device(), prof, gpupower.MinEDP)
	if err != nil {
		t.Fatal(err)
	}
	// EDP penalizes slowdown, so its optimum cannot be slower than the
	// min-energy optimum's relative time... it can, but its EDP must be best.
	if edp.RelEDP > best.RelEDP+1e-9 {
		t.Errorf("min-EDP config (%g) beaten by min-energy config (%g)", edp.RelEDP, best.RelEDP)
	}
}

// TestObjectiveString moved to string_test.go (exhaustive, including the
// unknown(N) default).
