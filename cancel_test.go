package gpupower_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpupower"
)

// Cancellation regression tests for the public API: every long-running
// entry point must return promptly with an error wrapping context.Canceled.
// make race runs these under the race detector, which is what would catch a
// cancellation path racing the worker pool.

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestEvaluateOperatingPointsCanceled(t *testing.T) {
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("HOTS")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = gpupower.EvaluateOperatingPointsContext(canceledCtx(), model, gpu.Device(), prof)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	_, err = gpupower.FindBestConfigContext(canceledCtx(), model, gpu.Device(), prof, gpupower.MinEnergy)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FindBestConfig: err = %v, want wrapped context.Canceled", err)
	}
}

func TestFitPowerModelCanceled(t *testing.T) {
	gpu, err := gpupower.Open(gpupower.TeslaK40c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.FitPowerModelContext(canceledCtx(), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestProfileAndMeasureCanceled(t *testing.T) {
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("GAUSS")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.ProfileForModelContext(canceledCtx(), wl.App, model); !errors.Is(err, context.Canceled) {
		t.Fatalf("profile: err = %v, want wrapped context.Canceled", err)
	}
	if _, err := gpu.MeasurePowerContext(canceledCtx(), wl.App, gpu.DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("measure: err = %v, want wrapped context.Canceled", err)
	}
}
