package gpupower

import (
	"context"
	"fmt"

	"gpupower/internal/backend"
	"gpupower/internal/backend/simbk"
	"gpupower/internal/backend/trace"
	"gpupower/internal/profiler"
)

// Backend is the measurement surface of one GPU: clock control, a power
// sensor, event collection, and kernel execution. Anything implementing it
// can drive the full modelling pipeline — the in-process simulator, a
// recorded measurement trace, or (on real hardware) an NVML/CUPTI exporter.
type Backend = backend.Backend

// RunInfo summarizes one measured kernel run (requested vs effective clocks
// and single-launch time).
type RunInfo = backend.RunInfo

// Measurement-boundary error taxonomy. Backends wrap these sentinels, so
// errors.Is distinguishes a clock-ladder violation from a trace that ran
// dry without parsing messages. Cancellation is reported by wrapping
// ctx.Err(), so errors.Is(err, context.Canceled) holds as well.
var (
	// ErrUnsupportedClock reports a frequency that is not a supported
	// ladder level.
	ErrUnsupportedClock = backend.ErrUnsupportedClock
	// ErrThrottled reports a TDP-capped reference-configuration run.
	ErrThrottled = backend.ErrThrottled
	// ErrTraceMismatch reports a replayed interaction the trace never
	// recorded.
	ErrTraceMismatch = backend.ErrTraceMismatch
	// ErrTraceExhausted reports a replayed interaction whose recorded
	// repetitions were all consumed.
	ErrTraceExhausted = backend.ErrTraceExhausted
	// ErrTraceVersion reports a trace file with an unsupported format
	// version.
	ErrTraceVersion = backend.ErrTraceVersion
)

// TraceRecorder wraps a backend and records every measurement interaction
// into a versioned JSON trace (see Save / Snapshot).
type TraceRecorder = trace.Recorder

// Trace is a recorded measurement session (versioned, serializable).
type Trace = trace.Trace

// NewSimBackend creates the simulator measurement backend for a catalog
// device: the same stack Open uses, exposed as a Backend so it can be
// wrapped (e.g. by Record) or swapped for a trace.
func NewSimBackend(deviceName string, seed uint64) (Backend, error) {
	return simbk.Open(deviceName, seed)
}

// Record wraps any backend so that every measurement interaction is
// captured; save the recording with rec.Save(path) (".gz" for gzip) and
// replay it later with OpenTrace.
func Record(b Backend) *TraceRecorder {
	return trace.NewRecorder(b)
}

// OpenBackend creates a GPU handle over an arbitrary measurement backend —
// the generic form of Open. The handle supports everything the backend can
// answer: fitting, profiling and prediction work identically over the
// simulator, a recorder, or a replayed trace.
func OpenBackend(b Backend) (*GPU, error) {
	if b == nil {
		return nil, fmt.Errorf("gpupower: nil backend")
	}
	p, err := profiler.New(b)
	if err != nil {
		return nil, err
	}
	return &GPU{dev: b.Device(), b: b, prof: p}, nil
}

// OpenTrace creates a GPU handle that replays a recorded measurement trace:
// models can be fitted and profiles predicted with no simulator (or GPU) in
// the process. Interactions the trace did not record fail with
// ErrTraceMismatch or ErrTraceExhausted.
func OpenTrace(path string) (*GPU, error) {
	r, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	return OpenBackend(r)
}

// LoadTrace reads (and validates) a recorded trace file without opening a
// handle, for inspection.
func LoadTrace(path string) (*Trace, error) { return trace.Load(path) }

// CheckContext is the pipeline's cancellation helper: nil while ctx is
// live, otherwise a labeled error wrapping ctx.Err().
func CheckContext(ctx context.Context, op string) error {
	return backend.CheckContext(ctx, op)
}
