package gpupower_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"gpupower"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("HOTS")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hots.json")
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := gpupower.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.App.Name != "HOTS" || back.Ref != prof.Ref || back.RefPower != prof.RefPower {
		t.Fatal("round trip lost identity fields")
	}
	for _, c := range []gpupower.Component{gpupower.Int, gpupower.SP, gpupower.DP,
		gpupower.SF, gpupower.Shared, gpupower.L2, gpupower.DRAM} {
		if math.Abs(back.Utilization[c]-prof.Utilization[c]) > 1e-9 {
			t.Fatalf("U(%s) lost in round trip", c)
		}
	}
	if err := back.CompatibleWith(model); err != nil {
		t.Fatal(err)
	}

	// Predictions from the loaded profile match the live one exactly.
	for _, cfg := range gpu.Configs() {
		a, err := model.Predict(prof.Utilization, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := model.Predict(back.Utilization, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// JSON round-trips floats through decimal text; allow a ULP.
		if math.Abs(a-b) > 1e-9*a {
			t.Fatalf("prediction mismatch at %v: %g vs %g", cfg, a, b)
		}
	}
}

func TestLoadProfileRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage.json": "not json",
		"noname.json":  `{"utilization":{}}`,
		"missing.json": `{"app":"x","utilization":{"SP":0.5}}`,
		"range.json": `{"app":"x","utilization":{"INT":0,"SP":2,"DP":0,"SF":0,
			"Shared":0,"L2":0,"DRAM":0}}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := writeFile(t, path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := gpupower.LoadProfile(path); err == nil {
			t.Errorf("%s: corrupt profile accepted", name)
		}
	}
	if _, err := gpupower.LoadProfile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompatibleWithMismatch(t *testing.T) {
	_, model := fitted(t)
	p := &gpupower.Profile{
		App: &gpupower.App{Name: "x"},
		Ref: gpupower.Config{CoreMHz: 1, MemMHz: 1},
	}
	if err := p.CompatibleWith(model); err == nil {
		t.Fatal("mismatched reference accepted")
	}
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

func FuzzProfileUnmarshal(f *testing.F) {
	f.Add([]byte(`{"app":"x","ref_core_mhz":975,"ref_mem_mhz":3505,"ref_power_w":100,
		"utilization":{"INT":0.1,"SP":0.2,"DP":0,"SF":0,"Shared":0,"L2":0.1,"DRAM":0.3}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p gpupower.Profile
		if err := p.UnmarshalJSON(data); err != nil {
			return
		}
		// Accepted profiles must be internally valid.
		if p.App == nil || p.App.Name == "" {
			t.Fatal("accepted profile without application name")
		}
		if err := p.Utilization.Validate(); err != nil {
			t.Fatalf("accepted profile with invalid utilization: %v", err)
		}
	})
}

func TestConcurrentPrediction(t *testing.T) {
	// A fitted model is read-only; concurrent predictions from many
	// goroutines must be safe (a DVFS governor thread and an application
	// analysis thread may share one model).
	gpu, model := fitted(t)
	wl, err := gpupower.WorkloadByName("GAUSS")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				for _, cfg := range gpu.Configs() {
					if _, err := model.Predict(prof.Utilization, cfg); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
