package gpupower_test

import (
	"testing"

	"gpupower"
)

// The enum String() methods must be exhaustive: every defined value has a
// stable name, and out-of-range values print "unknown(N)" instead of an
// empty string (they end up in logs and experiment tables).

func TestObjectiveString(t *testing.T) {
	cases := map[gpupower.Objective]string{
		gpupower.MinEnergy:        "min-energy",
		gpupower.MinEDP:           "min-EDP",
		gpupower.MinPowerUnderTDP: "min-power",
		gpupower.Objective(97):    "unknown(97)",
		gpupower.Objective(-1):    "unknown(-1)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Objective(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestGovernorPolicyString(t *testing.T) {
	cases := map[gpupower.GovernorPolicy]string{
		gpupower.GovMinEnergy:       "min-energy",
		gpupower.GovMinEDP:          "min-EDP",
		gpupower.GovMaxPerfUnderCap: "max-perf-under-cap",
		gpupower.GovernorPolicy(42): "unknown(42)",
		gpupower.GovernorPolicy(-3): "unknown(-3)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("GovernorPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}
