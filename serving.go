package gpupower

import (
	"context"
	"net/http"
	"time"

	"gpupower/internal/fleet"
	"gpupower/internal/registry"
	"gpupower/internal/serve"
)

// Serving façade: the long-running gpowerd pieces re-exported as the
// supported public surface. A process builds a ModelRegistry (one entry
// per device, fitted concurrently), then serves it over HTTP with
// NewPowerServer; entries keep their measurement stacks, so any device
// can be re-fitted in place (RegistryEntry.Refit) while predictions
// continue on the old model until the atomic swap.
type (
	// ModelRegistry is the concurrency-safe set of fitted per-device models
	// a serving process holds.
	ModelRegistry = registry.Registry
	// RegistryEntry pairs one device's measurement stack with its current
	// fitted model behind an atomic pointer.
	RegistryEntry = registry.Entry
	// FitMeta describes how an entry's current model was produced.
	FitMeta = registry.FitMeta
	// FleetSpec identifies one fleet member: catalog device + instance seed.
	FleetSpec = fleet.Spec
	// ServeOptions tunes the HTTP serving layer.
	ServeOptions = serve.Options
)

// FleetSpecs returns n fleet member specs drawn round-robin from the
// device catalog, seeded baseSeed, baseSeed+1, ….
func FleetSpecs(n int, baseSeed uint64) []FleetSpec {
	return fleet.Registry(n, baseSeed)
}

// BuildModelRegistry measures and fits every spec concurrently (per-member
// datasets, per-worker fit workspaces) and returns a registry with one
// entry per spec, in spec order. Fits are bitwise-identical to individual
// FitPowerModel calls on the same specs.
func BuildModelRegistry(ctx context.Context, specs []FleetSpec, opts *EstimatorOptions) (*ModelRegistry, error) {
	return registry.Build(ctx, specs, opts)
}

// NewModelRegistry returns an empty registry, for processes that assemble
// entries one by one (e.g. gpowerd's trace-replay demo mode).
func NewModelRegistry() *ModelRegistry { return registry.New() }

// FitRegistryEntry fits the handle's device and wraps the result into a
// registry entry that keeps this handle's backend and profiler — the
// entry can be re-fitted later without reopening anything. It works over
// any backend, including trace replay (OpenTrace), which is how gpowerd
// serves real-measurement models with zero hardware. name defaults to the
// device name; source labels where the training data came from
// ("simulator", "trace", ...).
func (g *GPU) FitRegistryEntry(ctx context.Context, name, source string, opts *EstimatorOptions) (*RegistryEntry, error) {
	start := time.Now()
	m, err := g.FitPowerModelContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	meta := registry.FitMeta{
		Iterations: m.Iterations,
		Converged:  m.Converged,
		FitWall:    time.Since(start),
		FittedAt:   time.Now(),
		Source:     source,
	}
	if name == "" {
		name = g.dev.Name
	}
	return registry.NewEntry(name, g.dev, g.b, g.prof, m, meta)
}

// NewPowerServer returns the gpowerd HTTP handler over a registry:
// /healthz, /v1/devices, /v1/predict, /v1/govern, /v1/breakdown and
// /metrics (Prometheus text exposition). opts may be nil for defaults.
func NewPowerServer(reg *ModelRegistry, opts *ServeOptions) http.Handler {
	return serve.New(reg, opts)
}
