package gpupower_test

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"gpupower"
)

// The public-API tests run on the Tesla K40c (4 configurations) so a full
// fit stays fast; the cross-device behaviour is covered by the experiments
// package.

var (
	fitOnce  sync.Once
	fitGPU   *gpupower.GPU
	fitModel *gpupower.Model
	fitErr   error
)

// fitted fits one shared model for the API tests.
func fitted(t *testing.T) (*gpupower.GPU, *gpupower.Model) {
	t.Helper()
	fitOnce.Do(func() {
		fitGPU, fitErr = gpupower.Open(gpupower.TeslaK40c, 42)
		if fitErr != nil {
			return
		}
		fitModel, fitErr = fitGPU.FitPowerModel()
	})
	if fitErr != nil {
		t.Fatal(fitErr)
	}
	return fitGPU, fitModel
}

func TestOpenUnknownDevice(t *testing.T) {
	if _, err := gpupower.Open("GTX 480", 1); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestDeviceNames(t *testing.T) {
	names := gpupower.DeviceNames()
	if len(names) != 3 {
		t.Fatalf("device count = %d", len(names))
	}
	for _, n := range names {
		gpu, err := gpupower.Open(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if gpu.Name() != n {
			t.Fatalf("Name = %q, want %q", gpu.Name(), n)
		}
		if gpu.TDP() <= 0 {
			t.Fatal("non-positive TDP")
		}
		if len(gpu.Configs()) == 0 {
			t.Fatal("no configurations")
		}
	}
}

func TestFitPredictMeasureCycle(t *testing.T) {
	gpu, model := fitted(t)
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	if model.DeviceName != gpupower.TeslaK40c {
		t.Fatalf("model device %q", model.DeviceName)
	}

	wl, err := gpupower.WorkloadByName("BLCKSC")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		t.Fatal(err)
	}
	if prof.RefPower <= 0 {
		t.Fatal("non-positive reference power")
	}
	if err := prof.Utilization.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range gpu.Configs() {
		pred, err := model.Predict(prof.Utilization, cfg)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := gpu.MeasurePower(wl.App, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred-meas) / meas; rel > 0.35 {
			t.Errorf("%v: predicted %.1f W vs measured %.1f W (%.0f%%)", cfg, pred, meas, 100*rel)
		}
	}
}

func TestModelSaveLoadThroughFacade(t *testing.T) {
	_, model := fitted(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := gpupower.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.DeviceName != model.DeviceName || back.OmegaMem != model.OmegaMem {
		t.Fatal("round trip lost data")
	}
}

func TestMeasureIdlePower(t *testing.T) {
	gpu, _ := fitted(t)
	idle, err := gpu.MeasureIdlePower(gpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if idle <= 0 || idle > 120 {
		t.Fatalf("idle = %g W", idle)
	}
}

func TestNVMLFacade(t *testing.T) {
	gpu, _ := fitted(t)
	nv := gpu.NVML()
	if nv.Name() != gpupower.TeslaK40c {
		t.Fatal("NVML name mismatch")
	}
	if nv.EnforcedPowerLimit() != uint32(gpu.TDP()*1000) {
		t.Fatal("power limit mismatch")
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	wls := gpupower.Workloads()
	if len(wls) != 26 {
		t.Fatalf("workload count = %d, want 26", len(wls))
	}
	if _, err := gpupower.WorkloadByName("NOPE"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, size := range []int{64, 512, 4096} {
		if _, err := gpupower.MatrixMulCUBLAS(size); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gpupower.MatrixMulCUBLAS(1000); err == nil {
		t.Fatal("bad size accepted")
	}
	if got := len(gpupower.Microbenchmarks()); got != 83 {
		t.Fatalf("microbenchmark count = %d, want 83", got)
	}
}

func TestDefaultEstimatorOptions(t *testing.T) {
	opts := gpupower.DefaultEstimatorOptions()
	if opts.MaxIterations != 50 {
		t.Fatalf("MaxIterations = %d, want 50 (paper)", opts.MaxIterations)
	}
}

func TestFitWithAblationOptions(t *testing.T) {
	gpu, _ := fitted(t)
	opts := gpupower.DefaultEstimatorOptions()
	opts.DisableVoltage = true
	m, err := gpu.FitPowerModelWithOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations != 1 {
		t.Fatalf("ablation iterations = %d, want 1", m.Iterations)
	}
}
