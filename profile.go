package gpupower

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gpupower/internal/hw"
)

// profileComponents is the canonical component order used by the JSON form
// and the textual rendering.
var profileComponents = []Component{Int, SP, DP, SF, Shared, L2, DRAM}

// Profiles are the unit of exchange in the paper's sensor-less and
// virtualization use cases: a guest (or a machine without the GPU) receives
// an application's reference-configuration profile and evaluates the model
// anywhere, with no further execution. The JSON form below persists
// everything prediction needs.

// profileJSON is the stable on-disk representation of a Profile.
type profileJSON struct {
	AppName  string  `json:"app"`
	RefCore  float64 `json:"ref_core_mhz"`
	RefMem   float64 `json:"ref_mem_mhz"`
	RefPower float64 `json:"ref_power_w"`
	// Utilization is keyed by component name (INT, SP, DP, SF, Shared, L2,
	// DRAM).
	Utilization map[string]float64 `json:"utilization"`
}

// MarshalJSON implements json.Marshaler.
func (p *Profile) MarshalJSON() ([]byte, error) {
	if p.App == nil {
		return nil, fmt.Errorf("gpupower: profile has no application")
	}
	j := profileJSON{
		AppName:     p.App.Name,
		RefCore:     p.Ref.CoreMHz,
		RefMem:      p.Ref.MemMHz,
		RefPower:    p.RefPower,
		Utilization: map[string]float64{},
	}
	for _, c := range profileComponents {
		j.Utilization[c.String()] = p.Utilization[c]
	}
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler. The application field carries
// only the name — a loaded profile supports prediction, not re-measurement.
func (p *Profile) UnmarshalJSON(data []byte) error {
	var j profileJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.AppName == "" {
		return fmt.Errorf("gpupower: profile JSON has no application name")
	}
	p.App = &App{Name: j.AppName}
	p.Ref = Config{CoreMHz: j.RefCore, MemMHz: j.RefMem}
	p.RefPower = j.RefPower
	p.Utilization = Utilization{}
	for _, c := range profileComponents {
		v, ok := j.Utilization[c.String()]
		if !ok {
			return fmt.Errorf("gpupower: profile JSON missing utilization for %s", c)
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("gpupower: profile JSON has U(%s) = %g outside [0,1]", c, v)
		}
		p.Utilization[c] = v
	}
	return nil
}

// Save writes the profile to a JSON file.
func (p *Profile) Save(path string) error {
	data, err := p.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadProfile reads an application profile from a JSON file. The returned
// profile supports prediction with any model fitted at the same reference
// configuration; it cannot be re-measured (the kernel descriptors are not
// persisted).
func LoadProfile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := p.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("gpupower: loading profile %s: %w", path, err)
	}
	return &p, nil
}

// FormatUtilization renders the profile's non-negligible per-component
// utilizations on one line ("SP=0.72 L2=0.31 DRAM=0.18"). It is the one
// textual rendering shared by gpowerprofile and gpowerpredict, so the two
// tools always describe a profile identically.
func (p *Profile) FormatUtilization() string {
	var parts []string
	for _, c := range profileComponents {
		if p.Utilization[c] >= 0.005 {
			parts = append(parts, fmt.Sprintf("%s=%.2f", c, p.Utilization[c]))
		}
	}
	return strings.Join(parts, " ")
}

// CompatibleWith reports whether the profile's reference configuration
// matches the model's (a prerequisite for valid predictions).
func (p *Profile) CompatibleWith(m *Model) error {
	if p.Ref != (hw.Config{CoreMHz: m.Ref.CoreMHz, MemMHz: m.Ref.MemMHz}) {
		return fmt.Errorf("gpupower: profile taken at %v but model fitted at %v", p.Ref, m.Ref)
	}
	return nil
}
