package gpupower

import (
	"fmt"
	"sort"

	"gpupower/internal/core"
)

// The DVFS-management use case of the paper (Section V-B, "Use cases" #3):
// the fitted power model shrinks the search for an energy-optimal V-F
// configuration from exhaustive execution at every configuration to a pure
// table evaluation. Power comes from the model; relative execution time
// comes from a roofline companion built on the same utilization vector
// (the paper pairs its power model with the authors' earlier performance
// classification work [9]).

// EstimateRelativeTime predicts T(cfg)/T(ref) for an application with the
// given reference-configuration utilizations: the core-domain share of the
// critical path stretches with f_ref/f_core and the memory share with
// f_ref/f_mem, with the bound resource dominating.
func EstimateRelativeTime(u Utilization, ref, cfg Config) float64 {
	return core.EstimateRelativeTime(u, ref, cfg)
}

// OperatingPoint is one evaluated V-F configuration.
type OperatingPoint struct {
	Config Config
	// PowerW is the model-predicted average power.
	PowerW float64
	// RelTime is the estimated execution-time ratio vs the reference.
	RelTime float64
	// RelEnergy is PowerW · RelTime normalized by the reference's
	// power (energy ratio vs running at the reference configuration).
	RelEnergy float64
	// RelEDP is the energy-delay-product ratio vs the reference.
	RelEDP float64
}

// Objective selects what the DVFS search minimizes.
type Objective int

const (
	// MinEnergy minimizes energy (power × time).
	MinEnergy Objective = iota
	// MinEDP minimizes the energy-delay product.
	MinEDP
	// MinPowerUnderTDP minimizes power (always TDP-feasible by preferring
	// lower clocks).
	MinPowerUnderTDP
)

func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-EDP"
	case MinPowerUnderTDP:
		return "min-power"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// EvaluateOperatingPoints evaluates the model at every configuration of the
// device without executing the application anywhere but the reference —
// the design-space pruning the paper highlights.
func EvaluateOperatingPoints(m *Model, dev *Device, p *Profile) ([]OperatingPoint, error) {
	refPower, err := m.Predict(p.Utilization, p.Ref)
	if err != nil {
		return nil, err
	}
	if refPower <= 0 {
		return nil, fmt.Errorf("gpupower: non-positive reference power prediction %g", refPower)
	}
	var out []OperatingPoint
	for _, cfg := range dev.AllConfigs() {
		pw, err := m.Predict(p.Utilization, cfg)
		if err != nil {
			return nil, err
		}
		rt := EstimateRelativeTime(p.Utilization, p.Ref, cfg)
		relEnergy := pw * rt / refPower
		out = append(out, OperatingPoint{
			Config:    cfg,
			PowerW:    pw,
			RelTime:   rt,
			RelEnergy: relEnergy,
			RelEDP:    relEnergy * rt,
		})
	}
	return out, nil
}

// FindBestConfig returns the configuration minimizing the objective,
// considering only TDP-feasible points.
func FindBestConfig(m *Model, dev *Device, p *Profile, obj Objective) (OperatingPoint, error) {
	pts, err := EvaluateOperatingPoints(m, dev, p)
	if err != nil {
		return OperatingPoint{}, err
	}
	feasible := pts[:0]
	for _, pt := range pts {
		if pt.PowerW <= dev.TDP {
			feasible = append(feasible, pt)
		}
	}
	if len(feasible) == 0 {
		return OperatingPoint{}, fmt.Errorf("gpupower: no TDP-feasible configuration for %s", p.App.Name)
	}
	sort.Slice(feasible, func(i, j int) bool {
		a, b := feasible[i], feasible[j]
		switch obj {
		case MinEnergy:
			return a.RelEnergy < b.RelEnergy
		case MinEDP:
			return a.RelEDP < b.RelEDP
		default:
			return a.PowerW < b.PowerW
		}
	})
	return feasible[0], nil
}
