package gpupower

import (
	"context"
	"errors"
	"fmt"

	"gpupower/internal/core"
)

// The DVFS-management use case of the paper (Section V-B, "Use cases" #3):
// the fitted power model shrinks the search for an energy-optimal V-F
// configuration from exhaustive execution at every configuration to a pure
// table evaluation. Power comes from the model; relative execution time
// comes from a roofline companion built on the same utilization vector
// (the paper pairs its power model with the authors' earlier performance
// classification work [9]).

// EstimateRelativeTime predicts T(cfg)/T(ref) for an application with the
// given reference-configuration utilizations: the core-domain share of the
// critical path stretches with f_ref/f_core and the memory share with
// f_ref/f_mem, with the bound resource dominating.
func EstimateRelativeTime(u Utilization, ref, cfg Config) float64 {
	return core.EstimateRelativeTime(u, ref, cfg)
}

// OperatingPoint is one evaluated V-F configuration.
type OperatingPoint struct {
	Config Config
	// PowerW is the model-predicted average power.
	PowerW float64
	// RelTime is the estimated execution-time ratio vs the reference.
	RelTime float64
	// RelEnergy is PowerW · RelTime normalized by the reference's
	// power (energy ratio vs running at the reference configuration).
	RelEnergy float64
	// RelEDP is the energy-delay-product ratio vs the reference.
	RelEDP float64
}

// Objective selects what the DVFS search minimizes.
type Objective int

const (
	// MinEnergy minimizes energy (power × time).
	MinEnergy Objective = iota
	// MinEDP minimizes the energy-delay product.
	MinEDP
	// MinPowerUnderTDP minimizes power (always TDP-feasible by preferring
	// lower clocks).
	MinPowerUnderTDP
)

func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-EDP"
	case MinPowerUnderTDP:
		return "min-power"
	default:
		// Exhaustive default: an out-of-range value still prints something
		// diagnosable rather than an empty string.
		return fmt.Sprintf("unknown(%d)", int(o))
	}
}

// operatingSurface resolves the memoized prediction surface for a profile,
// translating the surface layer's typed reference-power error into this
// package's historical message.
func operatingSurface(ctx context.Context, m *Model, dev *Device, p *Profile) (*core.Surface, error) {
	s, err := core.Surfaces.Get(ctx, m, dev, p.Ref, p.Utilization)
	if err != nil {
		var npe *core.NonPositiveRefPowerError
		if errors.As(err, &npe) {
			return nil, fmt.Errorf("gpupower: non-positive reference power prediction %g", npe.Power)
		}
		return nil, err
	}
	return s, nil
}

// pointAt materializes ladder point i of a surface.
func pointAt(s *core.Surface, i int) OperatingPoint {
	return OperatingPoint{
		Config:    s.Configs[i],
		PowerW:    s.PowerW[i],
		RelTime:   s.RelTime[i],
		RelEnergy: s.RelEnergy[i],
		RelEDP:    s.RelEDP[i],
	}
}

// EvaluateOperatingPoints evaluates the model at every configuration of the
// device without executing the application anywhere but the reference —
// the design-space pruning the paper highlights. The evaluation is served
// from the process-wide prediction-surface cache (core.Surfaces): the first
// call for a (model, device, profile) tuple computes the full ladder, and
// repeated calls — DVFS sweeps, governor decisions for an already-profiled
// kernel — reduce to one cache lookup plus a copy into fresh points. The
// returned slice is always in deterministic ladder order, and its values
// are bitwise-identical to evaluating Model.Predict point by point.
func EvaluateOperatingPoints(m *Model, dev *Device, p *Profile) ([]OperatingPoint, error) {
	return EvaluateOperatingPointsContext(context.Background(), m, dev, p) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// EvaluateOperatingPointsContext is EvaluateOperatingPoints under a
// context: a cold surface computation checks cancellation at configuration
// granularity, a warm hit once on entry; either surfaces as an error
// wrapping ctx.Err().
func EvaluateOperatingPointsContext(ctx context.Context, m *Model, dev *Device, p *Profile) ([]OperatingPoint, error) {
	s, err := operatingSurface(ctx, m, dev, p)
	if err != nil {
		return nil, err
	}
	pts := make([]OperatingPoint, s.Len())
	for i := range pts {
		pts[i] = pointAt(s, i)
	}
	return pts, nil
}

// objectiveValue extracts the scalar the search minimizes.
func (o Objective) value(p OperatingPoint) float64 {
	switch o {
	case MinEnergy:
		return p.RelEnergy
	case MinEDP:
		return p.RelEDP
	default:
		return p.PowerW
	}
}

// betterPoint is the deterministic total order of the DVFS search: first the
// objective value, then core MHz, then memory MHz (ascending — on equal
// objective the slower, lower-voltage configuration wins). The previous
// implementation sorted on the objective alone with the unstable sort.Slice,
// so ties between operating points came back in a different order from run
// to run and FindBestConfig was not reproducible.
func betterPoint(a, b OperatingPoint, obj Objective) bool {
	av, bv := obj.value(a), obj.value(b)
	if av != bv { //lint:ignore floateq total-order tie-break: only bitwise-equal objectives may fall through to the config tie-break, or FindBestConfig loses reproducibility
		return av < bv
	}
	//lint:ignore floateq ladder frequencies are exact catalog constants, not computed values
	if a.Config.CoreMHz != b.Config.CoreMHz {
		return a.Config.CoreMHz < b.Config.CoreMHz
	}
	return a.Config.MemMHz < b.Config.MemMHz
}

// FindBestConfig returns the configuration minimizing the objective,
// considering only TDP-feasible points. Ties on the objective are broken
// deterministically (lower core clock, then lower memory clock).
func FindBestConfig(m *Model, dev *Device, p *Profile, obj Objective) (OperatingPoint, error) {
	return FindBestConfigContext(context.Background(), m, dev, p, obj) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// FindBestConfigContext is FindBestConfig under a context. It scans the
// memoized surface directly — no per-call point slice — so a warm search
// is a cache lookup plus one ordered pass over the ladder.
func FindBestConfigContext(ctx context.Context, m *Model, dev *Device, p *Profile, obj Objective) (OperatingPoint, error) {
	s, err := operatingSurface(ctx, m, dev, p)
	if err != nil {
		return OperatingPoint{}, err
	}
	best, found := OperatingPoint{}, false
	for i := 0; i < s.Len(); i++ {
		if s.PowerW[i] > dev.TDP {
			continue
		}
		pt := pointAt(s, i)
		if !found || betterPoint(pt, best, obj) {
			best, found = pt, true
		}
	}
	if !found {
		return OperatingPoint{}, fmt.Errorf("gpupower: no TDP-feasible configuration for %s", p.App.Name)
	}
	return best, nil
}

// bestFeasible selects the minimum of the betterPoint total order among
// TDP-feasible points. A single ordered scan (no sort) keeps the selection
// O(n) and — because betterPoint is a strict total order on distinct
// configurations — independent of the input order.
func bestFeasible(pts []OperatingPoint, tdp float64, obj Objective) (OperatingPoint, bool) {
	best, found := OperatingPoint{}, false
	for _, pt := range pts {
		if pt.PowerW > tdp {
			continue
		}
		if !found || betterPoint(pt, best, obj) {
			best, found = pt, true
		}
	}
	return best, found
}
