package gpupower

import "gpupower/internal/parallel"

// Parallelism controls for the estimation engine. Model fitting, the DVFS
// operating-point sweep and the experiment drivers fan their independent
// sub-problems out across a bounded worker pool sized from GOMAXPROCS.
// Every parallel loop writes disjoint result slots and folds reductions in
// index order, so results are bitwise-identical to sequential execution —
// these knobs trade latency, never accuracy.

// SetSequential forces every engine loop onto the inline serial path
// (also enabled by GPUPOWER_SEQUENTIAL=1 in the environment). It returns
// the previous setting; reproducibility harnesses use it as the oracle
// that parallel runs are compared against.
func SetSequential(on bool) (previous bool) { return parallel.SetSequential(on) }

// SetMaxWorkers caps the engine's worker pool below GOMAXPROCS (0 removes
// the cap). It returns the previous cap. Use it to keep the fitting
// pipeline from saturating a host that is co-scheduled with the workloads
// being modelled.
func SetMaxWorkers(n int) (previous int) { return parallel.SetMaxWorkers(n) }

// EngineWorkers reports the effective worker-pool size the engine would
// use for a large loop right now.
func EngineWorkers() int { return parallel.Workers() }
