package gpupower_test

// The golden-trace tests prove the record/replay workflow end to end: a
// model can be fitted with no simulator (or GPU) in the process, from a
// recorded measurement trace alone, and the refitted model is
// bitwise-identical to the live fit — the estimator is deterministic given
// the measurements, so the trace carries everything the pipeline needs.
//
// Regenerate the committed fixture after an intentional format or
// methodology change with:
//
//	go test -run TestGoldenTraceFixture -update .

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gpupower"
	"gpupower/internal/backend/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden trace fixtures under testdata/")

const (
	goldenTracePath = "testdata/k40c-fit.trace.gz"
	goldenModelPath = "testdata/k40c-fit-model.json"
	goldenSeed      = 42
)

func modelBytes(t *testing.T, m *gpupower.Model) []byte {
	t.Helper()
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTraceRoundTripRefit records a full microbenchmark fit on the GTX
// Titan X, saves the trace (gzip-compressed), replays it, and refits.
func TestTraceRoundTripRefit(t *testing.T) {
	if testing.Short() {
		t.Skip("records a full Titan X fit; skipped in -short mode")
	}
	sim, err := gpupower.NewSimBackend(gpupower.GTXTitanX, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	rec := gpupower.Record(sim)
	gpu, err := gpupower.OpenBackend(rec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := gpu.FitPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}

	path := filepath.Join(t.TempDir(), "titanx.trace.gz")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	replayGPU, err := gpupower.OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	refit, err := replayGPU.FitPowerModel()
	if err != nil {
		t.Fatalf("refit from trace: %v", err)
	}
	if !bytes.Equal(modelBytes(t, live), modelBytes(t, refit)) {
		t.Fatal("replayed fit is not bitwise-identical to the live fit")
	}

	// The replayed fit consumed exactly the recorded measurements...
	rep, ok := replayGPU.Backend().(*trace.Replayer)
	if !ok {
		t.Fatalf("OpenTrace backend is %T, want *trace.Replayer", replayGPU.Backend())
	}
	if n := rep.Remaining(); n != 0 {
		t.Fatalf("%d recorded measurements never replayed", n)
	}
	// ...so a second fit must fail with the typed exhaustion error.
	if _, err := replayGPU.FitPowerModel(); !errors.Is(err, gpupower.ErrTraceExhausted) {
		t.Fatalf("second fit: err = %v, want wrapped ErrTraceExhausted", err)
	}
}

// TestGoldenTraceFixture refits from the committed trace fixture and checks
// the result against the committed model JSON byte-for-byte. A divergence
// means either the trace format or the fitting pipeline changed behaviour —
// both require a conscious decision (and possibly a format version bump),
// not a silent drift.
func TestGoldenTraceFixture(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
	}
	gpu, err := gpupower.OpenTrace(goldenTracePath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gpu.FitPowerModel()
	if err != nil {
		t.Fatalf("refit from committed fixture: %v", err)
	}
	if m.DeviceName != gpupower.TeslaK40c || !m.Converged {
		t.Fatalf("fixture model: device %q, converged %v", m.DeviceName, m.Converged)
	}
	want, err := os.ReadFile(goldenModelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, m), want) {
		t.Fatal("model refitted from the committed golden trace diverged from the committed model JSON\n" +
			"(intentional change? regenerate with: go test -run TestGoldenTraceFixture -update .)")
	}
}

// regenerateGolden records a fresh K40c fit and rewrites both fixtures.
func regenerateGolden(t *testing.T) {
	t.Helper()
	sim, err := gpupower.NewSimBackend(gpupower.TeslaK40c, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	rec := gpupower.Record(sim)
	rec.SetNote("Tesla K40c microbenchmark fit, seed 42; regenerate: go test -run TestGoldenTraceFixture -update .")
	gpu, err := gpupower.OpenBackend(rec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gpu.FitPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(goldenTracePath); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenModelPath, modelBytes(t, m), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s (%d events) and %s", goldenTracePath, rec.Len(), goldenModelPath)
}
