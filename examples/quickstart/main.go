// Quickstart: fit the DVFS-aware power model on a simulated GTX Titan X,
// profile an application once at the reference configuration, and predict
// its power across the device's whole voltage-frequency space.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)

	// Open a simulated GPU. The seed identifies the die instance: sensor
	// noise and per-die counter biases all derive from it.
	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Device: %s (%d V-F configurations, TDP %.0f W)\n",
		gpu.Name(), len(gpu.Configs()), gpu.TDP())

	// Fit the model: runs the 83-microbenchmark suite (performance events at
	// the reference configuration, power at every configuration) and the
	// paper's iterative estimator.
	fmt.Println("Fitting the DVFS-aware power model (83 microbenchmarks)...")
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Done: %d iterations, converged=%v\n\n", model.Iterations, model.Converged)

	// Profile BlackScholes once, at the reference configuration only.
	wl, err := gpupower.WorkloadByName("BLCKSC")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s profiled at %v — measured %.1f W there.\n", wl.Full, prof.Ref, prof.RefPower)
	fmt.Printf("Utilization: SP=%.2f DRAM=%.2f SF=%.2f L2=%.2f\n\n",
		prof.Utilization[gpupower.SP], prof.Utilization[gpupower.DRAM],
		prof.Utilization[gpupower.SF], prof.Utilization[gpupower.L2])

	// Predict everywhere; validate a few points against real measurements.
	fmt.Println("Power predictions across the memory ladder (core at 975 MHz):")
	for _, fm := range gpu.Device().MemFreqs {
		cfg := gpupower.Config{CoreMHz: 975, MemMHz: fm}
		pred, err := model.Predict(prof.Utilization, cfg)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := gpu.MeasurePower(wl.App, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fmem=%4.0f MHz: predicted %6.1f W, measured %6.1f W (%+.1f%%)\n",
			fm, pred, meas, 100*(pred-meas)/meas)
	}
}
