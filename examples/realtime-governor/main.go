// Real-time governor: the paper's future-work scenario (Section VII) —
// "measuring the performance events during the first call to a GPU kernel
// and then using the power prediction to determine the frequency/voltage
// configuration that best suits that kernel".
//
// Three iterative applications run for 50 iterations each under three
// policies; the report compares energy and runtime against the
// always-at-default baseline.
//
//	go run ./examples/realtime-governor
package main

import (
	"context"
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)

	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fitting the power model on", gpu.Name(), "...")
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}

	policies := []gpupower.GovernorPolicy{
		gpupower.GovMinEnergy, gpupower.GovMinEDP, gpupower.GovMaxPerfUnderCap,
	}
	apps := []string{"LBM", "CUTCP", "BCKP"}

	fmt.Printf("\n%-8s %-20s %14s %14s\n", "app", "policy", "energy saving", "runtime change")
	for _, name := range apps {
		wl, err := gpupower.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, pol := range policies {
			gov, err := gpu.NewGovernor(model, pol)
			if err != nil {
				log.Fatal(err)
			}
			if pol == gpupower.GovMaxPerfUnderCap {
				gov.PowerCap = 150 // W
			}
			rep, err := gov.RunApp(context.Background(), wl.App, 50)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-20s %13.1f%% %+13.1f%%\n",
				wl.Short, pol, rep.EnergySavingsPercent(), rep.SlowdownPercent())
		}
	}

	fmt.Println("\nThe governor profiles each kernel exactly once (iteration 1, at the")
	fmt.Println("reference clocks) and locks the chosen configuration afterwards —")
	fmt.Println("no exhaustive execution across the V-F space is ever needed.")
}
