// Power breakdown: the paper's use case 2 (Section V-B) — "using the
// per-component breakdown to assess the power bottlenecks of developing
// applications". The fitted model decomposes any application's power into
// the constant share plus the dynamic share of each GPU component (paper
// Figs. 5B and 10), information no sensor provides directly.
//
//	go run ./examples/power-breakdown
package main

import (
	"fmt"
	"log"

	"gpupower"
)

func bar(watts float64) string {
	n := int(watts / 2)
	if n > 60 {
		n = 60
	}
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}

func main() {
	log.SetFlags(0)

	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fitting the power model on", gpu.Name(), "...")
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}

	components := []gpupower.Component{
		gpupower.Int, gpupower.SP, gpupower.DP, gpupower.SF,
		gpupower.Shared, gpupower.L2, gpupower.DRAM,
	}

	for _, name := range []string{"BLCKSC", "CUTCP", "SYRK_D"} {
		wl, err := gpupower.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := gpu.ProfileForModel(wl.App, model)
		if err != nil {
			log.Fatal(err)
		}

		for _, cfg := range []gpupower.Config{
			{CoreMHz: 975, MemMHz: 3505},
			{CoreMHz: 975, MemMHz: 810},
		} {
			bd, err := model.Decompose(prof.Utilization, cfg)
			if err != nil {
				log.Fatal(err)
			}
			meas, err := gpu.MeasurePower(wl.App, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s at %v — predicted %.1f W, measured %.1f W\n",
				wl.Full, cfg, bd.Total(), meas)
			fmt.Printf("  %-8s %6.1f W  %s\n", "constant", bd.Constant, bar(bd.Constant))
			for _, c := range components {
				if w := bd.Component[c]; w >= 0.5 {
					fmt.Printf("  %-8s %6.1f W  %s\n", c, w, bar(w))
				}
			}
		}
	}

	fmt.Println("\nThe DRAM bar collapses at the low memory frequency while the")
	fmt.Println("compute bars barely move — the effect the paper reports in Fig. 10.")
}
