// DVFS optimizer: the paper's use case 3 (Section V-B). The fitted power
// model lets a governor evaluate every voltage-frequency configuration
// without executing the application anywhere except the reference
// configuration — "a considerable decrease of the design search space".
//
// This example profiles three applications with very different bottlenecks
// and reports the minimum-energy and minimum-EDP operating points for each,
// then validates the chosen points against real (simulated) measurements.
//
//	go run ./examples/dvfs-optimizer
package main

import (
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)

	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fitting the power model on", gpu.Name(), "...")
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}

	// LBM is DRAM-bound, CUTCP is compute-bound, BCKP sits in between.
	for _, name := range []string{"LBM", "CUTCP", "BCKP"} {
		wl, err := gpupower.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := gpu.ProfileForModel(wl.App, model)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%s (%s): U(SP)=%.2f U(DRAM)=%.2f, %.1f W at %v\n",
			wl.Short, wl.Full, prof.Utilization[gpupower.SP],
			prof.Utilization[gpupower.DRAM], prof.RefPower, prof.Ref)

		for _, obj := range []gpupower.Objective{gpupower.MinEnergy, gpupower.MinEDP} {
			best, err := gpupower.FindBestConfig(model, gpu.Device(), prof, obj)
			if err != nil {
				log.Fatal(err)
			}
			meas, err := gpu.MeasurePower(wl.App, best.Config)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s -> %v  predicted %.1f W (measured %.1f W), "+
				"est. time x%.2f, energy x%.2f vs reference\n",
				obj, best.Config, best.PowerW, meas, best.RelTime, best.RelEnergy)
		}
	}

	fmt.Println("\nNote how the memory-bound application tolerates a low core clock")
	fmt.Println("(large energy saving, little slowdown) while the compute-bound one")
	fmt.Println("prefers to stay near the reference core frequency.")
}
