// Multi-kernel auto-tuning: the paper's use case 3 taken to its conclusion
// (citing the authors' PDP 2015 auto-tuning work) — per-kernel V-F
// configurations minimizing total energy under a runtime budget, planned
// purely from the fitted model.
//
//	go run ./examples/autotune
package main

import (
	"context"
	"fmt"
	"log"

	"gpupower"
)

func main() {
	log.SetFlags(0)

	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fitting the power model on", gpu.Name(), "...")
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := gpu.NewTuner(model)
	if err != nil {
		log.Fatal(err)
	}

	// A pipeline of one compute-bound stage (CUTCP's kernel) and one
	// memory-bound stage (LBM's kernel) — exactly the case where per-kernel
	// clocks beat any single global setting, and where the runtime budget
	// bites: the compute stage only saves energy by slowing down.
	cutcp, err := gpupower.WorkloadByName("CUTCP")
	if err != nil {
		log.Fatal(err)
	}
	lbm, err := gpupower.WorkloadByName("LBM")
	if err != nil {
		log.Fatal(err)
	}
	app := &gpupower.App{
		Name:    "pipeline",
		Kernels: append(append([]*gpupower.KernelSpec{}, cutcp.App.Kernels...), lbm.App.Kernels...),
	}

	fmt.Printf("\nAuto-tuning %s (%d kernels) under runtime budgets:\n", app.Name, len(app.Kernels))
	for _, slack := range []float64{0.0, 0.10, 0.25} {
		plan, err := tuner.Tune(context.Background(), app, slack)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  budget: ≤ %+.0f%% runtime\n", 100*slack)
		for i, choice := range plan.Choice {
			fmt.Printf("    kernel %-10s -> %v (time x%.2f, energy x%.2f)\n",
				app.Kernels[i].Name, choice.Config, choice.RelTime, choice.RelEnergy)
		}
		fmt.Printf("    application: time x%.2f, energy x%.2f vs all-reference\n",
			plan.RelTime, plan.RelEnergy)
	}

	fmt.Println("\nEach kernel lands on its own frequency pair: the model prices every")
	fmt.Println("operating point without executing the application there.")
}
