// Virtual sensor: the paper's use case 1 (Section V-B) — "GPUs without
// sensor: using a previously built model to provide an estimate of the
// total and/or per-component GPU power consumption". The same scenario
// covers the virtualization case, where guest VMs cannot read the power
// sensor but can collect performance events.
//
// The model is fitted on one machine (here: fitted and saved to JSON), then
// loaded elsewhere and driven purely by performance events — the power
// sensor is never consulted on the "sensor-less" side, only to grade the
// estimates at the end.
//
//	go run ./examples/virtual-sensor
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"gpupower"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "gpupower-virtual-sensor")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "k40c-model.json")

	// --- Host side: build the model once, with full sensor access. ---
	host, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Host: fitting the power model on", host.Name(), "...")
	model, err := host.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(modelPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Host: model exported to", modelPath)

	// --- Guest side: same die, but pretend the sensor is unreadable. ---
	guest, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := gpupower.LoadModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGuest: estimating power from performance events only (model %q)\n\n",
		loaded.DeviceName)

	var worst float64
	for _, name := range []string{"GAUSS", "HOTS", "SRAD_2", "CUBLAS"} {
		wl, err := gpupower.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := guest.ProfileForModel(wl.App, loaded)
		if err != nil {
			log.Fatal(err)
		}
		for _, cfg := range guest.Configs() {
			est, err := loaded.Predict(prof.Utilization, cfg)
			if err != nil {
				log.Fatal(err)
			}
			// Grading only: the "real sensor" the guest cannot see.
			truth, err := guest.MeasurePower(wl.App, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if truth == 0 { //lint:ignore floateq division guard mirroring the MAPE convention in internal/stats: exactly-zero measurements are skipped, not divided
				fmt.Printf("  %-7s %v  virtual sensor: %6.1f W   (real:    0.0 W, err  n/a)\n",
					wl.Short, cfg, est)
				continue
			}
			rel := 100 * math.Abs(est-truth) / truth
			if rel > worst {
				worst = rel
			}
			fmt.Printf("  %-7s %v  virtual sensor: %6.1f W   (real: %6.1f W, err %4.1f%%)\n",
				wl.Short, cfg, est, truth, rel)
		}
	}
	fmt.Printf("\nWorst virtual-sensor error across all points: %.1f%%\n", worst)
}
