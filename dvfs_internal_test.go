package gpupower

// In-package regression tests for the deterministic DVFS selection order
// (the exported behaviour is covered by dvfs_test.go; these exercise the
// tie-breaking total order directly with crafted operating points).

import (
	"math/rand"
	"testing"
)

// tiedPoints returns two operating points with identical objective values
// on every objective but different configurations.
func tiedPoints() (OperatingPoint, OperatingPoint) {
	a := OperatingPoint{
		Config:    Config{CoreMHz: 1404, MemMHz: 5705},
		PowerW:    180,
		RelTime:   1.10,
		RelEnergy: 0.90,
		RelEDP:    0.99,
	}
	b := OperatingPoint{
		Config:    Config{CoreMHz: 1202, MemMHz: 5705},
		PowerW:    180,
		RelTime:   1.10,
		RelEnergy: 0.90,
		RelEDP:    0.99,
	}
	return a, b
}

// TestBestFeasibleTieIsDeterministic is the regression test for the
// unstable-sort bug: with two operating points tied on the objective, the
// old sort.Slice selection could return either one depending on the
// (randomized) sort order. The fixed selection must return the lower core
// clock regardless of input permutation.
func TestBestFeasibleTieIsDeterministic(t *testing.T) {
	hi, lo := tiedPoints()
	for _, obj := range []Objective{MinEnergy, MinEDP, MinPowerUnderTDP} {
		for _, pts := range [][]OperatingPoint{{hi, lo}, {lo, hi}} {
			best, ok := bestFeasible(pts, 250, obj)
			if !ok {
				t.Fatalf("%v: no feasible point", obj)
			}
			if best.Config != lo.Config {
				t.Fatalf("%v with order %v: picked %v, want the lower core clock %v",
					obj, []Config{pts[0].Config, pts[1].Config}, best.Config, lo.Config)
			}
		}
	}
}

func TestBestFeasibleMemTieBreak(t *testing.T) {
	a, b := tiedPoints()
	b.Config = Config{CoreMHz: a.Config.CoreMHz, MemMHz: a.Config.MemMHz - 1000}
	best, ok := bestFeasible([]OperatingPoint{a, b}, 250, MinEnergy)
	if !ok || best.Config != b.Config {
		t.Fatalf("picked %v, want lower memory clock %v", best.Config, b.Config)
	}
}

func TestBestFeasibleRespectsTDP(t *testing.T) {
	a, b := tiedPoints()
	a.PowerW, a.RelEnergy = 300, 0.5 // better objective but infeasible
	best, ok := bestFeasible([]OperatingPoint{a, b}, 250, MinEnergy)
	if !ok || best.Config != b.Config {
		t.Fatalf("TDP-infeasible point selected: %+v", best)
	}
	if _, ok := bestFeasible([]OperatingPoint{a}, 250, MinEnergy); ok {
		t.Fatal("infeasible-only input reported a best point")
	}
}

// TestBestFeasiblePermutationInvariance: shuffling the candidate list never
// changes the selection (the property the unstable sort violated).
func TestBestFeasiblePermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]OperatingPoint, 0, 24)
	for c := 0; c < 6; c++ {
		for m := 0; m < 4; m++ {
			pts = append(pts, OperatingPoint{
				Config:    Config{CoreMHz: 600 + 100*float64(c), MemMHz: 810 + 1000*float64(m)},
				PowerW:    100 + float64((c*m)%3), // many exact power ties
				RelTime:   1,
				RelEnergy: 1 + float64((c+m)%2)*0.125, // exact energy ties
				RelEDP:    1,
			})
		}
	}
	for _, obj := range []Objective{MinEnergy, MinEDP, MinPowerUnderTDP} {
		want, ok := bestFeasible(pts, 1e9, obj)
		if !ok {
			t.Fatal("no feasible point")
		}
		for trial := 0; trial < 50; trial++ {
			shuffled := append([]OperatingPoint(nil), pts...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			got, _ := bestFeasible(shuffled, 1e9, obj)
			if got.Config != want.Config {
				t.Fatalf("%v: permutation changed the selection: %v vs %v", obj, got.Config, want.Config)
			}
		}
	}
}

func TestBetterPointIsStrictTotalOrderOnDistinctConfigs(t *testing.T) {
	a, b := tiedPoints()
	if betterPoint(a, a, MinEnergy) {
		t.Fatal("irreflexivity violated")
	}
	if betterPoint(a, b, MinEnergy) == betterPoint(b, a, MinEnergy) {
		t.Fatal("antisymmetry violated for tied distinct configs")
	}
}
