// Package gpupower is a Go reproduction of "GPGPU Power Modeling for
// Multi-Domain Voltage-Frequency Scaling" (Guerreiro, Ilic, Roma, Tomás —
// HPCA 2018): a DVFS-aware GPU power model that, from hardware performance
// events measured at a single reference voltage-frequency configuration,
// predicts total and per-component GPU power at every (f_core, f_mem)
// configuration — including the non-linear, unobservable scaling of the
// core voltage with frequency.
//
// Because the original system requires NVIDIA GPUs, NVML and CUPTI, this
// reproduction ships a behavioural simulator of the paper's three devices
// (Titan Xp, GTX Titan X, Tesla K40c) with a hidden electrical ground truth;
// the model-fitting pipeline observes the simulated dies only through
// NVML/CUPTI-like measurement façades, exactly as the paper observes real
// silicon. The pipeline itself is backend-agnostic (see Backend): it runs
// equally over the simulator or a recorded measurement trace (Record /
// OpenTrace), because the model is fitted from measurements only. See
// DESIGN.md for the substitution argument and the per-experiment index.
//
// Typical use:
//
//	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
//	model, err := gpu.FitPowerModel()           // 83 microbenchmarks + Section III-D estimator
//	prof, err := gpu.Profile(app)               // events at the reference configuration only
//	watts, err := model.Predict(prof.Utilization, gpupower.Config{CoreMHz: 595, MemMHz: 810})
package gpupower

import (
	"context"
	"fmt"

	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/nvml"
	"gpupower/internal/profiler"
	"gpupower/internal/sim"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Config is one (core, memory) frequency configuration in MHz.
	Config = hw.Config
	// Component identifies a modelled GPU component (Int, SP, DP, SF,
	// Shared, L2, DRAM).
	Component = hw.Component
	// Device is the static hardware description of a GPU (paper Table II).
	Device = hw.Device
	// Model is a fitted DVFS-aware power model (paper Eqs. 6–7 plus the
	// estimated per-configuration voltage tables).
	Model = core.Model
	// Breakdown is a per-component power decomposition at one configuration.
	Breakdown = core.Breakdown
	// Utilization maps each component to its average utilization rate
	// (paper Eqs. 8–10).
	Utilization = core.Utilization
	// KernelSpec describes one kernel launch by the work it presents to
	// each GPU component.
	KernelSpec = kernels.KernelSpec
	// App is an application: one or more kernels weighted by execution time.
	App = kernels.App
	// EstimatorOptions tunes the Section III-D fitting algorithm.
	EstimatorOptions = core.EstimatorOptions
)

// The modelled GPU components.
const (
	Int    = hw.Int
	SP     = hw.SP
	DP     = hw.DP
	SF     = hw.SF
	Shared = hw.Shared
	L2     = hw.L2
	DRAM   = hw.DRAM
)

// Catalog device names (paper Table II).
const (
	TitanXp   = "Titan Xp"
	GTXTitanX = "GTX Titan X"
	TeslaK40c = "Tesla K40c"
)

// DeviceNames lists the catalog devices in the paper's order.
func DeviceNames() []string { return []string{TitanXp, GTXTitanX, TeslaK40c} }

// GPU is an open handle to one GPU behind a measurement backend: kernel
// execution, NVML-style management, CUPTI-style event collection and the
// paper's measurement methodology. Open backs it with the simulator;
// OpenBackend/OpenTrace accept any Backend.
type GPU struct {
	dev  *hw.Device
	b    Backend
	prof *profiler.Profiler
	// nv is the NVML façade; populated only for simulator-backed handles.
	nv *nvml.Device
}

// Open creates a simulator-backed GPU handle for a catalog device. All
// stochastic behaviour (sensor noise, per-die event error) derives
// deterministically from seed.
func Open(deviceName string, seed uint64) (*GPU, error) {
	dev, err := hw.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(dev, seed)
	if err != nil {
		return nil, err
	}
	b, err := simbk.New(s)
	if err != nil {
		return nil, err
	}
	p, err := profiler.New(b)
	if err != nil {
		return nil, err
	}
	return &GPU{dev: dev, b: b, prof: p, nv: nvml.Wrap(s)}, nil
}

// Device returns the static hardware description.
func (g *GPU) Device() *Device { return g.dev }

// Name returns the product name.
func (g *GPU) Name() string { return g.dev.Name }

// Backend returns the measurement backend behind this handle.
func (g *GPU) Backend() Backend { return g.b }

// DefaultConfig returns the reference (default) clocks.
func (g *GPU) DefaultConfig() Config { return g.dev.DefaultConfig() }

// Configs enumerates the device's full V-F configuration space.
func (g *GPU) Configs() []Config { return g.dev.AllConfigs() }

// TDP returns the device's power limit in watts.
func (g *GPU) TDP() float64 { return g.dev.TDP }

// FitPowerModel runs the paper's full modelling pipeline: execute the
// 83-microbenchmark suite (events at the reference configuration, power at
// every configuration) and estimate the DVFS-aware model with the
// Section III-D iterative algorithm.
func (g *GPU) FitPowerModel() (*Model, error) {
	return g.FitPowerModelContext(context.Background(), nil) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// FitPowerModelWithOptions is FitPowerModel with custom estimator options.
func (g *GPU) FitPowerModelWithOptions(opts *EstimatorOptions) (*Model, error) {
	return g.FitPowerModelContext(context.Background(), opts) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// FitPowerModelContext is FitPowerModel under a context: cancellation is
// honored at benchmark granularity while measuring and at iteration
// granularity while estimating, and surfaces as an error wrapping ctx.Err().
func (g *GPU) FitPowerModelContext(ctx context.Context, opts *EstimatorOptions) (*Model, error) {
	d, err := core.BuildDataset(ctx, g.prof, microbench.Suite(), g.dev.DefaultConfig(), g.dev.AllConfigs())
	if err != nil {
		return nil, fmt.Errorf("gpupower: building training dataset: %w", err)
	}
	return core.Estimate(ctx, d, opts)
}

// Profile is an application's reference-configuration characterization:
// everything the model needs to predict its power anywhere.
type Profile struct {
	App         *App
	Ref         Config
	Utilization Utilization
	// RefPower is the measured average power at the reference
	// configuration, W (used by scaling-based baselines and sanity checks).
	RefPower float64
}

// Profile measures an application's performance events at the device's
// default (reference) configuration — the only measurement the model needs
// to predict the application's power at every other configuration.
func (g *GPU) Profile(app *App) (*Profile, error) {
	return g.ProfileContext(context.Background(), app) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// ProfileContext is Profile under a context.
func (g *GPU) ProfileContext(ctx context.Context, app *App) (*Profile, error) {
	return g.profileAt(ctx, app, g.dev.DefaultConfig())
}

// ProfileAt is Profile at an explicit reference configuration. The model
// used for prediction must have been fitted with the same reference.
func (g *GPU) ProfileAt(app *App, ref Config) (*Profile, error) {
	return g.profileAt(context.Background(), app, ref) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

func (g *GPU) profileAt(ctx context.Context, app *App, ref Config) (*Profile, error) {
	l2bpc, err := core.CalibrateL2BytesPerCycle(ctx, g.prof, ref)
	if err != nil {
		return nil, err
	}
	return g.profileWith(ctx, app, ref, l2bpc)
}

// ProfileForModel profiles an application using the model's calibrated L2
// peak and reference configuration (the normal prediction path: calibration
// happened once, at fit time).
func (g *GPU) ProfileForModel(app *App, m *Model) (*Profile, error) {
	return g.ProfileForModelContext(context.Background(), app, m) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// ProfileForModelContext is ProfileForModel under a context.
func (g *GPU) ProfileForModelContext(ctx context.Context, app *App, m *Model) (*Profile, error) {
	return g.profileWith(ctx, app, m.Ref, m.L2BytesPerCycle)
}

func (g *GPU) profileWith(ctx context.Context, app *App, ref Config, l2bpc float64) (*Profile, error) {
	prof, err := g.prof.ProfileApp(ctx, app, ref)
	if err != nil {
		return nil, err
	}
	util, err := core.AppUtilization(g.dev, prof, l2bpc)
	if err != nil {
		return nil, err
	}
	refPower, err := g.prof.MeasureAppPower(ctx, app, ref)
	if err != nil {
		return nil, err
	}
	return &Profile{App: app, Ref: ref, Utilization: util, RefPower: refPower}, nil
}

// MeasurePower measures an application's average power at a configuration
// with the paper's methodology (≥1 s runs, median of 10, kernel-time
// weighting). Use it to validate predictions; the model itself never needs
// more than the single reference-configuration profile.
func (g *GPU) MeasurePower(app *App, cfg Config) (float64, error) {
	return g.prof.MeasureAppPower(context.Background(), app, cfg) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// MeasurePowerContext is MeasurePower under a context.
func (g *GPU) MeasurePowerContext(ctx context.Context, app *App, cfg Config) (float64, error) {
	return g.prof.MeasureAppPower(ctx, app, cfg)
}

// MeasureIdlePower measures the awake-but-idle power at a configuration.
func (g *GPU) MeasureIdlePower(cfg Config) (float64, error) {
	return g.prof.MeasureIdlePower(context.Background(), cfg) //lint:ignore ctxflow non-cancellable convenience wrapper; the *Context sibling is the cancellable API
}

// NVML exposes the management-library façade (clock control, supported
// clocks, power limit). It is only available on simulator-backed handles
// (Open); for other backends it returns nil — use Backend for the portable
// clock/power surface.
func (g *GPU) NVML() *nvml.Device { return g.nv }

// LoadModel reads a fitted model from a JSON file.
func LoadModel(path string) (*Model, error) { return core.LoadModel(path) }

// DefaultEstimatorOptions returns the paper's estimator settings.
func DefaultEstimatorOptions() *EstimatorOptions { return core.DefaultEstimatorOptions() }
