package gpupower_test

// Godoc examples for the public API. They are compiled with the test suite;
// outputs are intentionally not asserted (power values depend on the seeded
// die instance), so each example ends without an Output comment and serves
// as living documentation.

import (
	"context"
	"fmt"
	"log"

	"gpupower"
)

// Example demonstrates the core workflow: fit once, profile once, predict
// everywhere.
func Example() {
	gpu, err := gpupower.Open(gpupower.GTXTitanX, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("BLCKSC")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		log.Fatal(err)
	}
	watts, err := model.Predict(prof.Utilization, gpupower.Config{CoreMHz: 595, MemMHz: 810})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlackScholes at (595, 810): %.1f W\n", watts)
}

// ExampleModel_Decompose shows the per-component power breakdown (paper
// Fig. 10), the application-analysis use case.
func ExampleModel_Decompose() {
	gpu, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("CUTCP")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		log.Fatal(err)
	}
	bd, err := model.Decompose(prof.Utilization, gpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constant %.0f W, SP %.0f W, DRAM %.0f W\n",
		bd.Constant, bd.Component[gpupower.SP], bd.Component[gpupower.DRAM])
}

// ExampleFindBestConfig shows the DVFS-management use case: the
// energy-optimal configuration without exhaustive execution.
func ExampleFindBestConfig() {
	gpu, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("LBM")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := gpu.ProfileForModel(wl.App, model)
	if err != nil {
		log.Fatal(err)
	}
	best, err := gpupower.FindBestConfig(model, gpu.Device(), prof, gpupower.MinEnergy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-energy config: %v (x%.2f energy vs reference)\n", best.Config, best.RelEnergy)
}

// ExampleGPU_NewGovernor shows the real-time governor: profile a kernel's
// first call, lock the policy-optimal clocks for the rest of the run.
func ExampleGPU_NewGovernor() {
	gpu, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	gov, err := gpu.NewGovernor(model, gpupower.GovMinEnergy)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := gpupower.WorkloadByName("SRAD_2")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := gov.RunApp(context.Background(), wl.App, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy saving vs always-default: %.1f%%\n", rep.EnergySavingsPercent())
}

// ExampleModel_Save shows model persistence for the sensor-less use case.
func ExampleModel_Save() {
	gpu, err := gpupower.Open(gpupower.TeslaK40c, 42)
	if err != nil {
		log.Fatal(err)
	}
	model, err := gpu.FitPowerModel()
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save("/tmp/k40c-model.json"); err != nil {
		log.Fatal(err)
	}
	loaded, err := gpupower.LoadModel("/tmp/k40c-model.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model for", loaded.DeviceName)
}
