package silicon

import (
	"fmt"

	"gpupower/internal/hw"
)

// Truth holds the hidden electrical ground truth of one die. The functional
// form follows the physics of Eqs. 1–2 of the paper (dynamic power ∝ a·C·V²·f,
// static power ∝ V), but deliberately includes terms *outside* the family the
// estimator fits — a superlinear leakage correction and an unmodelled-activity
// component (texture units, instruction caches, schedulers) — so that the
// fitted model's accuracy figures are earned, not tautological.
type Truth struct {
	Device *hw.Device

	// Static (leakage) power of each domain at the reference voltage, W.
	StaticCore float64
	StaticMem  float64

	// Idle dynamic coefficients: power per MHz at reference voltage that
	// does not depend on utilization (clock trees, idle pipeline toggling).
	IdlePerCoreMHz float64
	IdlePerMemMHz  float64

	// Gamma is the per-component dynamic coefficient: W per MHz of the
	// component's domain at full utilization and reference voltage.
	Gamma map[hw.Component]float64

	// CoreV and MemV are the true rail curves. Real drivers set these
	// automatically and do not report them (Section II-A).
	CoreV *VoltageCurve
	MemV  *VoltageCurve

	// LeakageKappa bends static power superlinearly in voltage:
	// P_static ∝ V·(1 + κ·(V̄−1)). κ > 0 models the exponential leakage
	// dependence on supply voltage that the paper's linear-in-V static term
	// approximates.
	LeakageKappa float64

	// UnmodelledPerMHz is the coefficient of the activity-proportional power
	// of components the model has no counters for (paper Section V-B:
	// "power consumptions of other non-modelled GPU components").
	UnmodelledPerMHz float64
}

// Validate checks the ground truth for physical consistency.
func (t *Truth) Validate() error {
	if t.Device == nil {
		return fmt.Errorf("silicon: truth has no device")
	}
	if t.StaticCore < 0 || t.StaticMem < 0 || t.IdlePerCoreMHz < 0 || t.IdlePerMemMHz < 0 {
		return fmt.Errorf("silicon: %s: negative static/idle coefficients", t.Device.Name)
	}
	for _, c := range hw.Components {
		if t.Gamma[c] < 0 {
			return fmt.Errorf("silicon: %s: negative gamma for %s", t.Device.Name, c)
		}
	}
	if t.CoreV == nil || t.MemV == nil {
		return fmt.Errorf("silicon: %s: missing voltage curves", t.Device.Name)
	}
	return nil
}

// CoreVNorm returns the true normalized core voltage V̄core(f) relative to
// the device's default core clock.
func (t *Truth) CoreVNorm(fcMHz float64) float64 {
	return t.CoreV.NormalizedAt(fcMHz, t.Device.DefaultCore)
}

// MemVNorm returns the true normalized memory voltage V̄mem(f) relative to
// the device's default memory clock.
func (t *Truth) MemVNorm(fmMHz float64) float64 {
	return t.MemV.NormalizedAt(fmMHz, t.Device.DefaultMem)
}

// PowerBreakdown is the true per-part power consumption, W.
type PowerBreakdown struct {
	Constant   float64                  // static + idle V-F power of both domains
	Component  map[hw.Component]float64 // dynamic power of each modelled component
	Unmodelled float64                  // activity power with no counters
}

// Total returns the total power of the breakdown. The component map is
// folded in canonical order so the ground-truth total is bitwise-identical
// run-to-run (the same determinism discipline the estimator side follows).
func (b *PowerBreakdown) Total() float64 {
	return b.Constant + b.Unmodelled + hw.SumComponents(b.Component)
}

// Power evaluates the true average power for an execution (kernel at a
// configuration with its true utilizations).
func (t *Truth) Power(e *Execution) float64 {
	return t.PowerFromUtilization(e.Config, e.Utilization)
}

// Breakdown evaluates the true per-component power decomposition for an
// execution.
func (t *Truth) Breakdown(e *Execution) *PowerBreakdown {
	return t.BreakdownFromUtilization(e.Config, e.Utilization)
}

// PowerFromUtilization evaluates the true power at configuration cfg given
// per-component utilizations.
func (t *Truth) PowerFromUtilization(cfg hw.Config, util map[hw.Component]float64) float64 {
	return t.BreakdownFromUtilization(cfg, util).Total()
}

// BreakdownFromUtilization decomposes the true power at cfg for the given
// utilizations.
func (t *Truth) BreakdownFromUtilization(cfg hw.Config, util map[hw.Component]float64) *PowerBreakdown {
	vc := t.CoreVNorm(cfg.CoreMHz)
	vm := t.MemVNorm(cfg.MemMHz)

	staticCore := t.StaticCore * vc * (1 + t.LeakageKappa*(vc-1))
	staticMem := t.StaticMem * vm * (1 + t.LeakageKappa*(vm-1))
	idle := vc*vc*cfg.CoreMHz*t.IdlePerCoreMHz + vm*vm*cfg.MemMHz*t.IdlePerMemMHz

	b := &PowerBreakdown{
		Constant:  staticCore + staticMem + idle,
		Component: make(map[hw.Component]float64, len(hw.Components)),
	}

	var maxU float64
	for _, c := range hw.Components {
		u := util[c]
		if u < 0 {
			u = 0
		}
		if u > maxU {
			maxU = u
		}
		switch hw.DomainOf(c) {
		case hw.CoreDomain:
			b.Component[c] = vc * vc * cfg.CoreMHz * t.Gamma[c] * u
		case hw.MemoryDomain:
			b.Component[c] = vm * vm * cfg.MemMHz * t.Gamma[c] * u
		}
	}
	// Unmodelled front-end/texture activity tracks overall busyness of the
	// core domain.
	b.Unmodelled = vc * vc * cfg.CoreMHz * t.UnmodelledPerMHz * maxU
	return b
}

// IdlePower returns the true power with no kernel executing at cfg.
func (t *Truth) IdlePower(cfg hw.Config) float64 {
	return t.PowerFromUtilization(cfg, nil)
}
