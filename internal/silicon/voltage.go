// Package silicon implements the hidden ground truth of the simulated GPUs:
// the true voltage-frequency curves, the true per-component power
// coefficients and the roofline timing model that converts a kernel
// descriptor into execution time and component utilizations.
//
// Nothing in this package is visible to the model estimator. The estimator
// observes the die only through the nvml and cupti façades, exactly as the
// paper observes real silicon — the reproduction is meaningful because the
// fitted model must *recover* what this package hides.
package silicon

import (
	"fmt"
	"sort"
)

// VoltagePoint anchors the piecewise-linear voltage curve: at frequency FMHz
// the rail runs at Volts.
type VoltagePoint struct {
	FMHz  float64
	Volts float64
}

// VoltageCurve is a piecewise-linear V(f) relation. Real NVIDIA devices show
// the two-region shape of paper Fig. 6: a constant plateau at low
// frequencies, then a (super)linear rise — a piecewise-linear curve with a
// flat first segment captures both regions and lets the ground truth deviate
// from anything the estimator assumes.
type VoltageCurve struct {
	points []VoltagePoint
}

// NewVoltageCurve builds a curve from anchor points (any order; they are
// sorted by frequency). At least one point is required; voltages must be
// positive and non-decreasing with frequency (a physical DVFS rail never
// lowers voltage when raising frequency).
func NewVoltageCurve(points ...VoltagePoint) (*VoltageCurve, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("silicon: voltage curve needs at least one point")
	}
	ps := append([]VoltagePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].FMHz < ps[j].FMHz })
	for i, p := range ps {
		if p.Volts <= 0 {
			return nil, fmt.Errorf("silicon: non-positive voltage %g V at %g MHz", p.Volts, p.FMHz)
		}
		if i > 0 {
			if ps[i].FMHz == ps[i-1].FMHz { //lint:ignore floateq anchor frequencies are exact catalog constants; duplicate detection wants bitwise equality
				return nil, fmt.Errorf("silicon: duplicate voltage anchor at %g MHz", p.FMHz)
			}
			if ps[i].Volts < ps[i-1].Volts {
				return nil, fmt.Errorf("silicon: voltage decreases with frequency at %g MHz", p.FMHz)
			}
		}
	}
	return &VoltageCurve{points: ps}, nil
}

// MustVoltageCurve is NewVoltageCurve that panics on error; for the static
// device catalog whose anchors are compile-time constants.
func MustVoltageCurve(points ...VoltagePoint) *VoltageCurve {
	c, err := NewVoltageCurve(points...)
	if err != nil {
		panic(err)
	}
	return c
}

// VoltsAt returns V(f) by linear interpolation, clamping outside the anchor
// range (plateau extension on both ends).
func (c *VoltageCurve) VoltsAt(fMHz float64) float64 {
	ps := c.points
	if fMHz <= ps[0].FMHz {
		return ps[0].Volts
	}
	last := ps[len(ps)-1]
	if fMHz >= last.FMHz {
		if len(ps) == 1 {
			return last.Volts
		}
		// Extrapolate the final segment's slope beyond the last anchor so a
		// ladder extending past it keeps the rising trend.
		prev := ps[len(ps)-2]
		slope := (last.Volts - prev.Volts) / (last.FMHz - prev.FMHz)
		return last.Volts + slope*(fMHz-last.FMHz)
	}
	for i := 1; i < len(ps); i++ {
		if fMHz <= ps[i].FMHz {
			a, b := ps[i-1], ps[i]
			t := (fMHz - a.FMHz) / (b.FMHz - a.FMHz)
			return a.Volts + t*(b.Volts-a.Volts)
		}
	}
	return last.Volts // unreachable
}

// NormalizedAt returns V̄(f) = V(f)/V(refMHz) — the quantity the paper's
// model estimates (Eq. 5 normalization to the reference configuration).
func (c *VoltageCurve) NormalizedAt(fMHz, refMHz float64) float64 {
	return c.VoltsAt(fMHz) / c.VoltsAt(refMHz)
}
