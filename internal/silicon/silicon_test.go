package silicon

import (
	"math"
	"testing"
	"testing/quick"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVoltageCurveInterpolation(t *testing.T) {
	c := MustVoltageCurve(
		VoltagePoint{FMHz: 500, Volts: 0.9},
		VoltagePoint{FMHz: 700, Volts: 0.9},
		VoltagePoint{FMHz: 1000, Volts: 1.2},
	)
	if c.VoltsAt(300) != 0.9 {
		t.Fatal("below-range clamp failed")
	}
	if c.VoltsAt(600) != 0.9 {
		t.Fatal("plateau failed")
	}
	if !almostEq(c.VoltsAt(850), 1.05, 1e-12) {
		t.Fatalf("interp at 850 = %g, want 1.05", c.VoltsAt(850))
	}
	// Above the last anchor: extrapolate the final slope.
	if !almostEq(c.VoltsAt(1300), 1.5, 1e-12) {
		t.Fatalf("extrapolation = %g, want 1.5", c.VoltsAt(1300))
	}
}

func TestVoltageCurveNormalization(t *testing.T) {
	c := MustVoltageCurve(
		VoltagePoint{FMHz: 500, Volts: 0.8},
		VoltagePoint{FMHz: 1000, Volts: 1.6},
	)
	if !almostEq(c.NormalizedAt(500, 1000), 0.5, 1e-12) {
		t.Fatal("normalization wrong")
	}
	if c.NormalizedAt(1000, 1000) != 1 {
		t.Fatal("self-normalization should be 1")
	}
}

func TestVoltageCurveValidation(t *testing.T) {
	if _, err := NewVoltageCurve(); err == nil {
		t.Fatal("empty curve accepted")
	}
	if _, err := NewVoltageCurve(VoltagePoint{FMHz: 1, Volts: 0}); err == nil {
		t.Fatal("zero voltage accepted")
	}
	if _, err := NewVoltageCurve(
		VoltagePoint{FMHz: 1, Volts: 1},
		VoltagePoint{FMHz: 1, Volts: 2},
	); err == nil {
		t.Fatal("duplicate frequency accepted")
	}
	if _, err := NewVoltageCurve(
		VoltagePoint{FMHz: 1, Volts: 2},
		VoltagePoint{FMHz: 2, Volts: 1},
	); err == nil {
		t.Fatal("decreasing voltage accepted")
	}
}

// Property: V(f) is non-decreasing in f for every catalog truth.
func TestCatalogVoltageMonotone(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		tr := MustTruthFor(dev)
		prev := 0.0
		for _, f := range dev.CoreFreqs {
			v := tr.CoreV.VoltsAt(f)
			if v < prev {
				t.Fatalf("%s: core voltage decreases at %g MHz", dev.Name, f)
			}
			prev = v
		}
		if tr.CoreVNorm(dev.DefaultCore) != 1 {
			t.Fatalf("%s: V̄core(ref) != 1", dev.Name)
		}
		if tr.MemVNorm(dev.DefaultMem) != 1 {
			t.Fatalf("%s: V̄mem(ref) != 1", dev.Name)
		}
	}
}

func TestTruthForUnknownDevice(t *testing.T) {
	d := hw.GTXTitanX()
	d.Name = "GTX 480"
	if _, err := TruthFor(d); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func testKernel() *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name: "test",
		WarpInstrs: map[hw.Component]float64{
			hw.SP:  5e8,
			hw.Int: 1e8,
		},
		L2ReadBytes:     6e7,
		L2WriteBytes:    2e7,
		DRAMReadBytes:   6e7,
		DRAMWriteBytes:  2e7,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

func TestSimulateUtilizationBounds(t *testing.T) {
	dev := hw.GTXTitanX()
	for _, cfg := range dev.AllConfigs() {
		e, err := Simulate(dev, testKernel(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for c, u := range e.Utilization {
			if u < 0 || u > 1 {
				t.Fatalf("U(%s) = %g at %v", c, u, cfg)
			}
		}
		if e.Time <= 0 || e.ActiveCycles <= 0 {
			t.Fatalf("non-positive time/cycles at %v", cfg)
		}
	}
}

func TestSimulateBottleneckSaturation(t *testing.T) {
	// A pure-SP kernel with no stalls: SP utilization equals the issue
	// efficiency (the bottleneck saturates there).
	dev := hw.GTXTitanX()
	k := &kernels.KernelSpec{
		Name:            "sp_only",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 1e10},
		IssueEfficiency: 0.92,
	}
	e, err := Simulate(dev, k, dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Utilization[hw.SP], 0.92, 1e-6) {
		t.Fatalf("U(SP) = %g, want 0.92", e.Utilization[hw.SP])
	}
}

func TestSimulateMemoryBoundShiftsWithFmem(t *testing.T) {
	// A DRAM-bound kernel runs slower at low memory frequency, and its
	// compute utilization rises when the core slows down relative to memory.
	dev := hw.GTXTitanX()
	k := &kernels.KernelSpec{
		Name:            "streaming",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 1e8},
		L2ReadBytes:     2e9,
		DRAMReadBytes:   2e9,
		IssueEfficiency: 0.95,
	}
	hi, err := Simulate(dev, k, hw.Config{CoreMHz: 975, MemMHz: 3505})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Simulate(dev, k, hw.Config{CoreMHz: 975, MemMHz: 810})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Time <= hi.Time {
		t.Fatal("lower memory frequency should slow a DRAM-bound kernel")
	}
	if lo.Utilization[hw.DRAM] < hi.Utilization[hw.DRAM] {
		t.Fatal("DRAM utilization should not drop when memory slows")
	}
	slowCore, err := Simulate(dev, k, hw.Config{CoreMHz: 595, MemMHz: 3505})
	if err != nil {
		t.Fatal(err)
	}
	if slowCore.Utilization[hw.SP] < hi.Utilization[hw.SP] {
		t.Fatal("compute utilization should rise as the core slows under a memory bound")
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	dev := hw.GTXTitanX()
	if _, err := Simulate(dev, testKernel(), hw.Config{CoreMHz: 123, MemMHz: 3505}); err == nil {
		t.Fatal("unsupported config accepted")
	}
	bad := testKernel()
	bad.IssueEfficiency = 0
	if _, err := Simulate(dev, bad, dev.DefaultConfig()); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestPowerBreakdownConsistency(t *testing.T) {
	dev := hw.GTXTitanX()
	tr := MustTruthFor(dev)
	e, err := Simulate(dev, testKernel(), dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := tr.Breakdown(e)
	if !almostEq(b.Total(), tr.Power(e), 1e-9) {
		t.Fatal("breakdown total != power")
	}
	if b.Constant <= 0 {
		t.Fatal("constant share must be positive")
	}
	for c, v := range b.Component {
		if v < 0 {
			t.Fatalf("negative component power for %s", c)
		}
	}
}

func TestTitanXCalibrationAnchors(t *testing.T) {
	// The calibrated ground truth must land on the paper's operating
	// points: ~84 W constant at (975, 3505) and ~50 W at (975, 810).
	dev := hw.GTXTitanX()
	tr := MustTruthFor(dev)
	idleHi := tr.IdlePower(hw.Config{CoreMHz: 975, MemMHz: 3505})
	idleLo := tr.IdlePower(hw.Config{CoreMHz: 975, MemMHz: 810})
	if math.Abs(idleHi-84) > 4 {
		t.Fatalf("idle at default = %.1f W, want ~84", idleHi)
	}
	if math.Abs(idleLo-50) > 4 {
		t.Fatalf("idle at low mem = %.1f W, want ~50", idleLo)
	}
}

// Property: true power increases with any component utilization.
func TestPowerMonotoneInUtilization(t *testing.T) {
	dev := hw.GTXTitanX()
	tr := MustTruthFor(dev)
	cfg := dev.DefaultConfig()
	f := func(base [7]float64, idx uint8, delta float64) bool {
		u := map[hw.Component]float64{}
		for i, c := range hw.Components {
			u[c] = math.Abs(math.Mod(base[i], 1))
		}
		c := hw.Components[int(idx)%len(hw.Components)]
		d := math.Abs(math.Mod(delta, 1))
		if math.IsNaN(d) {
			return true
		}
		p1 := tr.PowerFromUtilization(cfg, u)
		u2 := map[hw.Component]float64{}
		for k, v := range u {
			u2[k] = v
		}
		u2[c] = math.Min(1, u2[c]+d)
		p2 := tr.PowerFromUtilization(cfg, u2)
		return p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIdlePowerBelowTDP(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		tr := MustTruthFor(dev)
		for _, cfg := range dev.AllConfigs() {
			if p := tr.IdlePower(cfg); p <= 0 || p >= dev.TDP {
				t.Fatalf("%s idle power %g W at %v out of (0, TDP)", dev.Name, p, cfg)
			}
		}
	}
}

func TestStallSecondsExtendTime(t *testing.T) {
	dev := hw.GTXTitanX()
	k1 := testKernel()
	k2 := testKernel()
	k2.StallSeconds = 1e-3
	e1, err := Simulate(dev, k1, dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Simulate(dev, k2, dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e2.Seconds()-e1.Seconds(), 1e-3, 1e-9) {
		t.Fatalf("stall time not additive: %g vs %g", e1.Seconds(), e2.Seconds())
	}
}
