package silicon

import (
	"fmt"

	"gpupower/internal/hw"
)

// The per-die ground truths below are calibrated so the simulated devices
// reproduce the operating points the paper reports:
//
//   GTX Titan X — ~84 W constant power at the (975, 3505) default (Fig. 5),
//   dropping to ~50 W at f_mem = 810 MHz (Fig. 10); BlackScholes ≈ 181 W and
//   CUTCP ≈ 135 W at the default configuration (Fig. 2); core voltage flat
//   below ≈750 MHz then rising to ≈1.15·Vref at 1164 MHz (Fig. 6a).
//
//   Titan Xp — V̄core from ≈0.8 at 582 MHz to ≈1.35 at 1911 MHz (Fig. 6b).
//
//   Tesla K40c — mild voltage scaling over its narrow 4-level ladder; its
//   larger model error in the paper comes from event inaccuracy, which the
//   cupti façade reproduces.
//
// The kappa/unmodelled terms keep the truth outside the fitted model family.

// TruthFor returns the hidden ground truth for one of the catalog devices.
func TruthFor(dev *hw.Device) (*Truth, error) {
	var t *Truth
	switch dev.Name {
	case "Titan Xp":
		t = &Truth{
			Device:         dev,
			StaticCore:     14.0,
			StaticMem:      8.0,
			IdlePerCoreMHz: 0.0121,  // ≈17 W at 1404 MHz
			IdlePerMemMHz:  0.00701, // ≈40 W at 5705 MHz
			Gamma: map[hw.Component]float64{
				hw.Int:    0.0175,
				hw.SP:     0.0210,
				hw.DP:     0.0140,
				hw.SF:     0.0315,
				hw.Shared: 0.0140,
				hw.L2:     0.0210,
				hw.DRAM:   0.0205,
			},
			CoreV: MustVoltageCurve(
				VoltagePoint{FMHz: 582, Volts: 0.800},
				VoltagePoint{FMHz: 835, Volts: 0.800},
				VoltagePoint{FMHz: 1404, Volts: 1.000},
				VoltagePoint{FMHz: 1911, Volts: 1.350},
			),
			MemV: MustVoltageCurve(
				VoltagePoint{FMHz: 4705, Volts: 1.35},
				VoltagePoint{FMHz: 5705, Volts: 1.35},
			),
			LeakageKappa:     0.12,
			UnmodelledPerMHz: 0.0062,
		}
	case "GTX Titan X":
		t = &Truth{
			Device:         dev,
			StaticCore:     15.0,
			StaticMem:      8.0,
			IdlePerCoreMHz: 0.01723, // ≈16.8 W at 975 MHz
			IdlePerMemMHz:  0.01262, // ≈44.2 W at 3505 MHz
			Gamma: map[hw.Component]float64{
				hw.Int:    0.0250,
				hw.SP:     0.0300,
				hw.DP:     0.0200,
				hw.SF:     0.0450,
				hw.Shared: 0.0200,
				hw.L2:     0.0300,
				hw.DRAM:   0.0334,
			},
			CoreV: MustVoltageCurve(
				VoltagePoint{FMHz: 595, Volts: 0.900},
				VoltagePoint{FMHz: 747, Volts: 0.900},
				VoltagePoint{FMHz: 975, Volts: 1.000},
				VoltagePoint{FMHz: 1164, Volts: 1.150},
			),
			MemV: MustVoltageCurve(
				VoltagePoint{FMHz: 810, Volts: 1.35},
				VoltagePoint{FMHz: 4005, Volts: 1.35},
			),
			LeakageKappa:     0.12,
			UnmodelledPerMHz: 0.0070,
		}
	case "Tesla K40c":
		t = &Truth{
			Device:         dev,
			StaticCore:     18.0,
			StaticMem:      10.0,
			IdlePerCoreMHz: 0.01714, // ≈15 W at 875 MHz
			IdlePerMemMHz:  0.00999, // ≈30 W at 3004 MHz
			Gamma: map[hw.Component]float64{
				hw.Int:    0.0300,
				hw.SP:     0.0360,
				hw.DP:     0.0550,
				hw.SF:     0.0500,
				hw.Shared: 0.0240,
				hw.L2:     0.0340,
				hw.DRAM:   0.0300,
			},
			CoreV: MustVoltageCurve(
				VoltagePoint{FMHz: 666, Volts: 0.95},
				VoltagePoint{FMHz: 745, Volts: 0.95},
				VoltagePoint{FMHz: 875, Volts: 1.00},
			),
			MemV: MustVoltageCurve(
				VoltagePoint{FMHz: 3004, Volts: 1.50},
			),
			LeakageKappa:     0.15,
			UnmodelledPerMHz: 0.0060,
		}
	default:
		return nil, fmt.Errorf("silicon: no ground truth for device %q", dev.Name)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustTruthFor is TruthFor that panics on error; for tests and the static
// experiment drivers operating on catalog devices.
func MustTruthFor(dev *hw.Device) *Truth {
	t, err := TruthFor(dev)
	if err != nil {
		panic(err)
	}
	return t
}
