package silicon

import (
	"fmt"
	"time"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// Execution is the ground-truth outcome of running one kernel at one V-F
// configuration: wall time, per-component utilizations and active cycles.
type Execution struct {
	Kernel *kernels.KernelSpec
	Config hw.Config

	// Time is the kernel execution time.
	Time time.Duration

	// Utilization holds the true average utilization U ∈ [0,1] of each
	// component over the run — the quantity paper Eqs. 8–9 estimate from
	// events.
	Utilization map[hw.Component]float64

	// ActiveCycles is the core-domain cycle count with at least one active
	// warp (the CUPTI "active_cycles" event).
	ActiveCycles float64
}

// componentTime returns the time the kernel would need if component c were
// the only bottleneck, in seconds, at configuration cfg.
func componentTime(dev *hw.Device, k *kernels.KernelSpec, cfg hw.Config, c hw.Component) float64 {
	switch c {
	case hw.Int, hw.SP, hw.DP, hw.SF:
		peak := dev.PeakComputeWarpsPerSec(c, cfg.CoreMHz)
		return k.Warp(c) / peak
	case hw.Shared:
		return k.SharedBytes() / dev.PeakSharedBandwidth(cfg.CoreMHz)
	case hw.L2:
		return k.L2Bytes() / dev.PeakL2Bandwidth(cfg.CoreMHz)
	case hw.DRAM:
		return k.DRAMBytes() / dev.PeakDRAMBandwidth(cfg.MemMHz)
	default:
		panic(fmt.Sprintf("silicon: unknown component %v", c))
	}
}

// Simulate runs the roofline timing model: the kernel time is the slowest
// single-component time divided by the kernel's issue efficiency, plus the
// latency (fixed-cycle) term. Utilizations follow as achieved/peak
// throughput, which by construction lie in [0, IssueEfficiency] ⊆ [0, 1] —
// the same U ∈ [0,1] the paper's Eqs. 8–9 produce, and they drift with the
// configuration exactly the way real kernels do (a memory-bound kernel's
// compute utilization rises as the core slows down).
func Simulate(dev *hw.Device, k *kernels.KernelSpec, cfg hw.Config) (*Execution, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if !dev.SupportsCoreFreq(cfg.CoreMHz) || !dev.SupportsMemFreq(cfg.MemMHz) {
		return nil, fmt.Errorf("silicon: %s does not support %v", dev.Name, cfg)
	}

	var bound float64
	for _, c := range hw.Components {
		if t := componentTime(dev, k, cfg, c); t > bound {
			bound = t
		}
	}
	latency := k.FixedCycles / (cfg.CoreMHz * 1e6)
	total := bound/k.IssueEfficiency + latency + k.StallSeconds
	if total <= 0 {
		// A descriptor with only fixed cycles and zero throughput work still
		// has latency; zero total means an empty kernel, rejected above.
		return nil, fmt.Errorf("silicon: kernel %s has zero execution time", k.Name)
	}

	util := make(map[hw.Component]float64, len(hw.Components))
	for _, c := range hw.Components {
		util[c] = componentTime(dev, k, cfg, c) / total
	}

	return &Execution{
		Kernel:       k,
		Config:       cfg,
		Time:         time.Duration(total * float64(time.Second)),
		Utilization:  util,
		ActiveCycles: total * cfg.CoreMHz * 1e6,
	}, nil
}

// Seconds returns the execution time in seconds.
func (e *Execution) Seconds() float64 { return e.Time.Seconds() }
