package serve

import (
	"encoding/json"
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/hw"
)

// TestPredictScratchAllocFree pins the dynamic half of the //gpower:noalloc
// contract on predictScratch.predictAll: once the pooled scratch has grown
// to the ladder length, repeated full-ladder predictions allocate nothing.
func TestPredictScratchAllocFree(t *testing.T) {
	dev := hw.TeslaK40c()
	m := testModel(t, dev, 40)
	u := core.Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2}
	ladder := dev.Ladder()

	sc := &predictScratch{}
	if _, err := sc.predictAll(m, u, ladder); err != nil {
		t.Fatalf("warm-up predict: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := sc.predictAll(m, u, ladder); err != nil {
			t.Fatalf("warm predict: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("predictAll allocates %.1f objects per warm run; want 0", allocs)
	}
}

// TestAppendJSONStringAllocFree pins the fast path: appending a plain-ASCII
// registry name into a pre-sized buffer allocates nothing, and the escaping
// slow path stays byte-compatible with encoding/json.
func TestAppendJSONStringAllocFree(t *testing.T) {
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendJSONString(buf[:0], "GTX Titan X#42")
	})
	if allocs != 0 {
		t.Fatalf("appendJSONString allocates %.1f objects per run on the ASCII path; want 0", allocs)
	}
	if got := string(buf); got != `"GTX Titan X#42"` {
		t.Fatalf("fast path produced %s", got)
	}

	for _, s := range []string{`quo"te`, `back\slash`, "control\x01char", "accenté"} {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); string(got) != string(want) {
			t.Errorf("slow path for %q: got %s, want %s", s, got, want)
		}
	}
}
