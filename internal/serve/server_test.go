package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/hw"
	"gpupower/internal/registry"
)

// testModel builds a synthetic fitted model for dev; beta0 perturbs the
// core static coefficient so two models are distinguishable everywhere.
func testModel(t *testing.T, dev *hw.Device, beta0 float64) *core.Model {
	t.Helper()
	m := &core.Model{
		DeviceName: dev.Name,
		Ref:        dev.DefaultConfig(),
		Beta:       [4]float64{beta0, 0.02, 10, 0.002},
		OmegaCore: map[hw.Component]float64{
			hw.Int: 0.011, hw.SP: 0.013, hw.DP: 0.017,
			hw.SF: 0.007, hw.Shared: 0.005, hw.L2: 0.009,
		},
		OmegaMem:        0.004,
		Voltages:        core.NewVoltageTable(dev.CoreFreqs, dev.MemFreqs),
		L2BytesPerCycle: dev.L2BytesPerCycle,
		Iterations:      3,
		Converged:       true,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	return m
}

// newTestServer serves one synthetic Tesla K40c entry.
func newTestServer(t *testing.T, opts *Options) (*httptest.Server, *registry.Entry, *core.Model) {
	t.Helper()
	dev := hw.TeslaK40c()
	m := testModel(t, dev, 40)
	e, err := registry.NewEntry("Tesla K40c", dev, nil, nil, m, registry.FitMeta{Source: "test"})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	if err := reg.Add(e); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, opts))
	t.Cleanup(ts.Close)
	return ts, e, m
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status  string `json:"status"`
		Devices int    `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || out.Status != "ok" || out.Devices != 1 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, out)
	}
}

func TestDevices(t *testing.T) {
	ts, e, m := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Devices []struct {
			Name       string  `json:"name"`
			Arch       string  `json:"arch"`
			TDPWatts   float64 `json:"tdp_watts"`
			NumConfigs int     `json:"num_configs"`
			Generation uint64  `json:"generation"`
			Source     string  `json:"source"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Devices) != 1 {
		t.Fatalf("got %d devices", len(out.Devices))
	}
	d := out.Devices[0]
	if d.Name != e.Name() || d.Arch != "Kepler" || d.NumConfigs != 4 || d.Source != "test" {
		t.Fatalf("device listing wrong: %+v", d)
	}
	if d.Generation != m.Generation() {
		t.Fatalf("generation %d, want %d", d.Generation, m.Generation())
	}
}

// predictResponse mirrors the wire schema.
type predictResponse struct {
	Device     string `json:"device"`
	Generation uint64 `json:"generation"`
	Results    []struct {
		Watts []float64 `json:"watts"`
	} `json:"results"`
	Predictions int `json:"predictions"`
}

func TestPredictFullLadderBitwise(t *testing.T) {
	ts, _, m := newTestServer(t, nil)
	u := core.Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2}
	resp, data := postJSON(t, ts.URL+"/v1/predict",
		`{"device":"Tesla K40c","items":[{"utilization":{"SP":0.8,"DRAM":0.4,"L2":0.2}}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out predictResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	configs := hw.TeslaK40c().AllConfigs()
	if len(out.Results) != 1 || len(out.Results[0].Watts) != len(configs) {
		t.Fatalf("shape wrong: %+v", out)
	}
	if out.Predictions != len(configs) {
		t.Fatalf("predictions = %d, want %d", out.Predictions, len(configs))
	}
	if out.Generation != m.Generation() {
		t.Fatalf("generation = %d, want %d", out.Generation, m.Generation())
	}
	for i, cfg := range configs {
		want, err := m.Predict(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out.Results[0].Watts[i]) != math.Float64bits(want) {
			t.Fatalf("config %v: served %x, direct %x", cfg, out.Results[0].Watts[i], want)
		}
	}
}

func TestPredictExplicitConfigsBitwise(t *testing.T) {
	ts, _, m := newTestServer(t, nil)
	u := core.Utilization{hw.Int: 0.3, hw.DRAM: 0.9}
	resp, data := postJSON(t, ts.URL+"/v1/predict",
		`{"device":"Tesla K40c","items":[{"utilization":{"INT":0.3,"DRAM":0.9},"configs":[{"core_mhz":666,"mem_mhz":3004},{"core_mhz":810,"mem_mhz":3004}]}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out predictResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	want := []hw.Config{{CoreMHz: 666, MemMHz: 3004}, {CoreMHz: 810, MemMHz: 3004}}
	if len(out.Results) != 1 || len(out.Results[0].Watts) != len(want) {
		t.Fatalf("shape wrong: %+v", out)
	}
	for i, cfg := range want {
		p, err := m.Predict(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out.Results[0].Watts[i]) != math.Float64bits(p) {
			t.Fatalf("config %v: served %x, direct %x", cfg, out.Results[0].Watts[i], p)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"unknown device", `{"device":"nope","items":[{"utilization":{"SP":1}}]}`, 404},
		{"missing device", `{"items":[{"utilization":{"SP":1}}]}`, 400},
		{"empty items", `{"device":"Tesla K40c","items":[]}`, 400},
		{"bad component", `{"device":"Tesla K40c","items":[{"utilization":{"GPU":1}}]}`, 400},
		{"negative utilization", `{"device":"Tesla K40c","items":[{"utilization":{"SP":-1}}]}`, 400},
		{"unknown field", `{"device":"Tesla K40c","items":[],"wat":1}`, 400},
		{"off-ladder config", `{"device":"Tesla K40c","items":[{"utilization":{"SP":1},"configs":[{"core_mhz":1,"mem_mhz":1}]}]}`, 400},
		{"malformed json", `{`, 400},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/predict", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: HTTP %d (want %d): %s", tc.name, resp.StatusCode, tc.code, data)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, data)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d, want 405", resp.StatusCode)
	}
}

func TestPredictBodyBound(t *testing.T) {
	ts, _, _ := newTestServer(t, &Options{MaxRequestBytes: 256})
	big := `{"device":"Tesla K40c","items":[{"utilization":{"SP":0.1234567890123}}` +
		strings.Repeat(`,{"utilization":{"SP":0.5}}`, 64) + `]}`
	if len(big) <= 256 {
		t.Fatalf("test body too small (%d bytes)", len(big))
	}
	resp, data := postJSON(t, ts.URL+"/v1/predict", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d (want 413): %s", resp.StatusCode, data)
	}
}

func TestGovernMatchesDecide(t *testing.T) {
	ts, e, m := newTestServer(t, nil)
	u := core.Utilization{hw.SP: 0.9, hw.DRAM: 0.2}
	resp, data := postJSON(t, ts.URL+"/v1/govern",
		`{"device":"Tesla K40c","utilization":{"SP":0.9,"DRAM":0.2},"policy":"min-EDP"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Config  struct{ CoreMHz, MemMHz float64 } `json:"-"`
		Raw     json.RawMessage                   `json:"config"`
		Policy  string                            `json:"policy"`
		Power   float64                           `json:"power_watts"`
		RelTime float64                           `json:"rel_time"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	var cfg struct {
		CoreMHz float64 `json:"core_mhz"`
		MemMHz  float64 `json:"mem_mhz"`
	}
	if err := json.Unmarshal(out.Raw, &cfg); err != nil {
		t.Fatal(err)
	}
	want, err := governor.Decide(t.Context(), m, e.Device(), governor.MinEDP, 0, u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cfg.CoreMHz) != math.Float64bits(want.CoreMHz) ||
		math.Float64bits(cfg.MemMHz) != math.Float64bits(want.MemMHz) {
		t.Fatalf("served config (%g,%g), direct Decide %v", cfg.CoreMHz, cfg.MemMHz, want)
	}
	wantPower, err := m.Predict(u, want)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Power) != math.Float64bits(wantPower) {
		t.Fatalf("power %x, want %x", out.Power, wantPower)
	}
	if out.Policy != "min-EDP" {
		t.Fatalf("policy echoed as %q", out.Policy)
	}

	resp, data = postJSON(t, ts.URL+"/v1/govern",
		`{"device":"Tesla K40c","utilization":{"SP":0.9},"policy":"warp-speed"}`)
	if resp.StatusCode != 400 {
		t.Fatalf("unknown policy: HTTP %d: %s", resp.StatusCode, data)
	}
	// A cap below every ladder point is unsatisfiable.
	resp, data = postJSON(t, ts.URL+"/v1/govern",
		`{"device":"Tesla K40c","utilization":{"SP":0.9},"policy":"max-perf-under-cap","power_cap_watts":1}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unsatisfiable cap: HTTP %d: %s", resp.StatusCode, data)
	}
}

func TestBreakdownMatchesDecompose(t *testing.T) {
	ts, _, m := newTestServer(t, nil)
	u := core.Utilization{hw.SP: 0.5, hw.DRAM: 0.5, hw.Shared: 0.1}
	resp, data := postJSON(t, ts.URL+"/v1/breakdown",
		`{"device":"Tesla K40c","utilization":{"SP":0.5,"DRAM":0.5,"Shared":0.1},"config":{"core_mhz":745,"mem_mhz":3004}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Constant   float64            `json:"constant_watts"`
		Components map[string]float64 `json:"component_watts"`
		Total      float64            `json:"total_watts"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	b, err := m.Decompose(u, hw.Config{CoreMHz: 745, MemMHz: 3004})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(out.Constant) != math.Float64bits(b.Constant) {
		t.Fatalf("constant %x, want %x", out.Constant, b.Constant)
	}
	if math.Float64bits(out.Total) != math.Float64bits(b.Total()) {
		t.Fatalf("total %x, want %x", out.Total, b.Total())
	}
	for _, c := range hw.Components {
		if math.Float64bits(out.Components[c.String()]) != math.Float64bits(b.Component[c]) {
			t.Fatalf("%s: %x, want %x", c, out.Components[c.String()], b.Component[c])
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/predict",
		`{"device":"Tesla K40c","items":[{"utilization":{"SP":0.8}}]}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		`gpowerd_requests_total{path="/v1/predict",code="200"} 1`,
		"gpowerd_predictions_total 4",
		"# TYPE gpowerd_request_duration_seconds histogram",
		"gpowerd_surface_cache_hits_total",
		"gpowerd_devices 1",
		`gpowerd_model_generation{device="Tesla K40c"}`,
		`gpowerd_model_converged{device="Tesla K40c"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSwapMidTraffic drives concurrent /v1/predict requests through a real
// HTTP stack while the entry swaps between two models; every response
// batch must be bitwise-identical to one model's expected vector — the
// serving-layer version of the registry's snapshot-per-batch guarantee.
// Run with -race.
func TestSwapMidTraffic(t *testing.T) {
	ts, e, a := newTestServer(t, nil)
	dev := e.Device()
	b := testModel(t, dev, 55)
	u := core.Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2}
	configs := dev.AllConfigs()

	expect := func(m *core.Model) []float64 {
		out := make([]float64, len(configs))
		if err := m.PredictAll(u, configs, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	expectedA, expectedB := expect(a), expect(b)

	body := `{"device":"Tesla K40c","items":[{"utilization":{"SP":0.8,"DRAM":0.4,"L2":0.2}}]}`
	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
					return
				}
				var out predictResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errc <- err
					return
				}
				matchA := batchEquals(out.Results[0].Watts, expectedA)
				matchB := batchEquals(out.Results[0].Watts, expectedB)
				if !matchA && !matchB {
					errc <- fmt.Errorf("served batch matches neither generation: %v", out.Results[0].Watts)
					return
				}
				// The reported generation must agree with the batch content.
				if matchA && !matchB && out.Generation != a.Generation() {
					errc <- fmt.Errorf("batch from model A but generation %d", out.Generation)
					return
				}
			}
		}()
	}

	cur, next := a, b
	for i := 0; i < 150; i++ {
		if _, err := e.Swap(next, registry.FitMeta{}); err != nil {
			t.Fatal(err)
		}
		cur, next = next, cur
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	_ = cur
}

func batchEquals(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return false
		}
	}
	return true
}

// TestPredictEncoderRoundTrip pins the manual response encoder against
// encoding/json semantics: every float that goes out re-parses to the
// identical bits (Go emits shortest round-trip decimals).
func TestPredictEncoderRoundTrip(t *testing.T) {
	ts, _, m := newTestServer(t, nil)
	// An awkward utilization: long decimals everywhere.
	resp, data := postJSON(t, ts.URL+"/v1/predict",
		`{"device":"Tesla K40c","items":[{"utilization":{"SP":0.12345678901234567,"DRAM":0.9876543210987654,"INT":1e-9}}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	var out predictResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	u := core.Utilization{hw.SP: 0.12345678901234567, hw.DRAM: 0.9876543210987654, hw.Int: 1e-9}
	for i, cfg := range hw.TeslaK40c().AllConfigs() {
		want, err := m.Predict(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(out.Results[0].Watts[i]) != math.Float64bits(want) {
			t.Fatalf("config %v: %x vs %x", cfg, out.Results[0].Watts[i], want)
		}
	}
}
