// Package serve is gpowerd's HTTP layer: batch power prediction, DVFS
// governing, power breakdowns and device listings over the model
// registry, plus Prometheus metrics — stdlib only.
//
// The hot path is POST /v1/predict. A request names a registry entry and
// carries a batch of utilization vectors; each item is evaluated either
// over the full frequency ladder (through the process-wide prediction
// surface cache) or at an explicit configuration list (Model.PredictAll).
// The handler snapshots the entry's model once per request, so a batch is
// atomic with respect to a concurrent re-fit swap: its predictions come
// entirely from the old model or entirely from the new one, never a mix.
// Responses are encoded manually into pooled buffers — the encoder is the
// difference between ~10⁵ and >10⁶ predictions/sec on one core.
//
// Request bodies are size-bounded (Options.MaxRequestBytes) and handlers
// honor request-context cancellation, so a draining server never wedges
// on a slow client.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/hw"
	"gpupower/internal/metrics"
	"gpupower/internal/registry"
)

// DefaultMaxRequestBytes bounds request bodies when Options doesn't.
const DefaultMaxRequestBytes = 8 << 20

// Options tunes the server.
type Options struct {
	// MaxRequestBytes caps request body size; 0 means DefaultMaxRequestBytes.
	MaxRequestBytes int64
}

// Server serves a model registry over HTTP. It implements http.Handler.
type Server struct {
	reg  *registry.Registry
	mux  *http.ServeMux
	opts Options

	metrics     *metrics.Registry
	requests    *metrics.CounterVec   // {path, code}
	latency     *metrics.HistogramVec // {path}
	predictions *metrics.Counter
	breakdown   *metrics.GaugeVec // {device, component} last predicted W
	opCore      *metrics.GaugeVec // {device} last governed core MHz
	opMem       *metrics.GaugeVec // {device} last governed mem MHz
}

// New builds a server over reg. The registry's entries may keep being
// re-fitted (Entry.Swap) while the server runs.
func New(reg *registry.Registry, opts *Options) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	if opts != nil {
		s.opts = *opts
	}
	if s.opts.MaxRequestBytes <= 0 {
		s.opts.MaxRequestBytes = DefaultMaxRequestBytes
	}
	s.initMetrics()
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/devices", s.instrument("/v1/devices", s.handleDevices))
	s.mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	s.mux.HandleFunc("/v1/govern", s.instrument("/v1/govern", s.handleGovern))
	s.mux.HandleFunc("/v1/breakdown", s.instrument("/v1/breakdown", s.handleBreakdown))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s
}

// ServeHTTP dispatches to the server's mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's metrics registry (for tests and for
// embedding extra collectors before serving).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

func (s *Server) initMetrics() {
	m := metrics.NewRegistry()
	s.metrics = m
	s.requests = m.NewCounterVec("gpowerd_requests_total",
		"HTTP requests served, by path and status code.", "path", "code")
	s.latency = m.NewHistogramVec("gpowerd_request_duration_seconds",
		"HTTP request latency.",
		[]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5},
		"path")
	s.predictions = m.NewCounterVec("gpowerd_predictions_total",
		"Individual power predictions served by /v1/predict.").With()
	s.breakdown = m.NewGaugeVec("gpowerd_predicted_power_watts",
		"Last predicted power breakdown per device, by component (plus the constant share).",
		"device", "component")
	s.opCore = m.NewGaugeVec("gpowerd_operating_point_core_mhz",
		"Core frequency of the last governed operating point, per device.", "device")
	s.opMem = m.NewGaugeVec("gpowerd_operating_point_mem_mhz",
		"Memory frequency of the last governed operating point, per device.", "device")
	m.NewCounterFunc("gpowerd_surface_cache_hits_total",
		"Prediction-surface cache hits (process-wide).", func() float64 {
			h, _ := core.Surfaces.Stats()
			return float64(h)
		})
	m.NewCounterFunc("gpowerd_surface_cache_misses_total",
		"Prediction-surface cache misses (process-wide).", func() float64 {
			_, miss := core.Surfaces.Stats()
			return float64(miss)
		})
	m.NewGaugeFunc("gpowerd_surface_cache_entries",
		"Prediction surfaces currently cached (process-wide).", func() float64 {
			return float64(core.Surfaces.Len())
		})
	m.NewGaugeFunc("gpowerd_devices",
		"Devices in the model registry.", func() float64 {
			return float64(s.reg.Len())
		})
	gen := m.NewGaugeFuncVec("gpowerd_model_generation",
		"Surface-cache generation of the entry's current model; changes on every re-fit swap.", "device")
	conv := m.NewGaugeFuncVec("gpowerd_model_converged",
		"Whether the entry's current fit converged (1) or hit the iteration cap (0).", "device")
	for _, e := range s.reg.Entries() {
		e := e
		gen.With(func() float64 {
			_, meta := e.Snapshot()
			return float64(meta.Generation)
		}, e.Name())
		conv.With(func() float64 {
			_, meta := e.Snapshot()
			if meta.Converged {
				return 1
			}
			return 0
		}, e.Name())
	}
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request counter and latency
// histogram. The children are resolved once here, not per request.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.latency.With(path)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		hist.Observe(time.Since(start).Seconds())
		s.requests.With(path, strconv.Itoa(sr.code)).Inc()
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(body)
}

// decodeBody decodes a size-bounded JSON request body into dst,
// rejecting unknown fields so client typos fail loudly.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return err
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return err
	}
	return nil
}

// requirePost rejects non-POST methods.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return false
	}
	return true
}

// parseComponent maps a wire component name ("SP", "DRAM", ...) to the
// hw.Component, case-insensitively.
func parseComponent(name string) (hw.Component, error) {
	for _, c := range hw.Components {
		if equalFold(name, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown component %q (want one of INT, SP, DP, SF, Shared, L2, DRAM)", name)
}

// equalFold is strings.EqualFold restricted to ASCII, which component
// names are.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// parseUtilization converts a wire utilization map into a core vector.
// Missing components read as zero; values must be finite and non-negative.
func parseUtilization(wire map[string]float64) (core.Utilization, error) {
	u := make(core.Utilization, len(wire))
	for name, v := range wire {
		c, err := parseComponent(name)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("utilization %s = %g must be finite and non-negative", name, v)
		}
		u[c] = v
	}
	return u, nil
}

// wireConfig is a ladder configuration on the wire.
type wireConfig struct {
	CoreMHz float64 `json:"core_mhz"`
	MemMHz  float64 `json:"mem_mhz"`
}

func (c wireConfig) hw() hw.Config { return hw.Config{CoreMHz: c.CoreMHz, MemMHz: c.MemMHz} }

// lookup resolves a device name to its registry entry, writing a 404 on
// miss.
func (s *Server) lookup(w http.ResponseWriter, device string) (*registry.Entry, bool) {
	if device == "" {
		httpError(w, http.StatusBadRequest, "missing device name")
		return nil, false
	}
	e, ok := s.reg.Lookup(device)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown device %q", device)
		return nil, false
	}
	return e, true
}

// ---- /healthz ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"devices\":%d}\n", s.reg.Len())
}

// ---- /v1/devices ----

type deviceInfo struct {
	Name       string     `json:"name"`
	Device     string     `json:"device"`
	Arch       string     `json:"arch"`
	Ref        wireConfig `json:"ref"`
	TDPWatts   float64    `json:"tdp_watts"`
	NumConfigs int        `json:"num_configs"`
	Generation uint64     `json:"generation"`
	Iterations int        `json:"iterations"`
	Converged  bool       `json:"converged"`
	FittedAt   string     `json:"fitted_at"`
	Source     string     `json:"source"`
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	infos := make([]deviceInfo, 0, s.reg.Len())
	for _, e := range s.reg.Entries() {
		m, meta := e.Snapshot()
		dev := e.Device()
		infos = append(infos, deviceInfo{
			Name:       e.Name(),
			Device:     dev.Name,
			Arch:       string(dev.Arch),
			Ref:        wireConfig{CoreMHz: m.Ref.CoreMHz, MemMHz: m.Ref.MemMHz},
			TDPWatts:   dev.TDP,
			NumConfigs: dev.NumConfigs(),
			Generation: meta.Generation,
			Iterations: meta.Iterations,
			Converged:  meta.Converged,
			FittedAt:   meta.FittedAt.UTC().Format(time.RFC3339),
			Source:     meta.Source,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"devices": infos})
}

// ---- /v1/predict ----

type predictItem struct {
	Utilization map[string]float64 `json:"utilization"`
	// Configs are the ladder points to predict at; empty means the full
	// ladder in dev.AllConfigs() order.
	Configs []wireConfig `json:"configs,omitempty"`
}

type predictRequest struct {
	Device string        `json:"device"`
	Items  []predictItem `json:"items"`
}

// bufPool holds response-encoding scratch buffers for the predict path.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// scratchPool holds per-request prediction scratch (configs + watts).
type predictScratch struct {
	configs []hw.Config
	watts   []float64
}

var scratchPool = sync.Pool{New: func() any { return &predictScratch{} }}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req predictRequest
	if s.decodeBody(w, r, &req) != nil {
		return
	}
	e, ok := s.lookup(w, req.Device)
	if !ok {
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "empty items")
		return
	}
	// One snapshot for the whole batch: every item is predicted by the
	// same model instance even if a re-fit swaps the entry mid-request.
	m, meta := e.Snapshot()
	dev := e.Device()
	ctx := r.Context()

	sc := scratchPool.Get().(*predictScratch)
	defer scratchPool.Put(sc)
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	buf := (*bp)[:0]

	buf = append(buf, `{"device":`...)
	buf = appendJSONString(buf, req.Device)
	buf = append(buf, `,"generation":`...)
	buf = strconv.AppendUint(buf, meta.Generation, 10)
	buf = append(buf, `,"results":[`...)

	total := 0
	for i := range req.Items {
		if err := backend.CheckContext(ctx, "serve: predict batch"); err != nil {
			httpError(w, httpStatusForCancel(ctx), "request canceled")
			return
		}
		u, err := parseUtilization(req.Items[i].Utilization)
		if err != nil {
			httpError(w, http.StatusBadRequest, "items[%d]: %v", i, err)
			return
		}
		var watts []float64
		if len(req.Items[i].Configs) == 0 {
			// Full ladder: served from the memoized prediction surface —
			// repeated utilization vectors reduce to one cache lookup.
			surf, err := core.Surfaces.Get(ctx, m, dev, m.Ref, u)
			if err != nil {
				var npe *core.NonPositiveRefPowerError
				if errors.As(err, &npe) {
					// Relative-energy columns are undefined for this
					// profile, but absolute power is not; predict directly.
					watts, err = sc.predictAll(m, u, dev.Ladder())
				}
				if err != nil {
					httpError(w, http.StatusBadRequest, "items[%d]: %v", i, err)
					return
				}
			} else {
				watts = surf.PowerW
			}
		} else {
			cfgs := sc.configs[:0]
			for _, wc := range req.Items[i].Configs {
				cfgs = append(cfgs, wc.hw())
			}
			sc.configs = cfgs
			watts, err = sc.predictAll(m, u, cfgs)
			if err != nil {
				httpError(w, http.StatusBadRequest, "items[%d]: %v", i, err)
				return
			}
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"watts":[`...)
		for j, p := range watts {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendFloat(buf, p, 'g', -1, 64)
		}
		buf = append(buf, `]}`...)
		total += len(watts)
	}
	buf = append(buf, `],"predictions":`...)
	buf = strconv.AppendInt(buf, int64(total), 10)
	buf = append(buf, '}', '\n')

	s.predictions.Add(uint64(total))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
	*bp = buf[:0]
}

// predictAll evaluates the model over configs into the scratch watts
// slice, growing it as needed.
//
//gpower:noalloc pooled scratch: the watts slice grows to the ladder length once, then requests reuse it
func (sc *predictScratch) predictAll(m *core.Model, u core.Utilization, configs []hw.Config) ([]float64, error) {
	if cap(sc.watts) < len(configs) {
		//gpower:allocs warm-up only: each pooled scratch grows its watts slice to the largest request once
		sc.watts = make([]float64, len(configs))
	}
	watts := sc.watts[:len(configs)]
	if err := m.PredictAll(u, configs, watts); err != nil {
		return nil, err
	}
	return watts, nil
}

// httpStatusForCancel maps a canceled/deadline-exceeded request context
// to the closest HTTP status.
func httpStatusForCancel(ctx context.Context) int {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	// 499 is nginx's "client closed request"; the stdlib has no constant.
	return 499
}

// appendJSONString appends s as a JSON string literal. Registry names are
// plain ASCII ("GTX Titan X#42"); anything needing heavier escaping takes
// the slow path through encoding/json.
//
//gpower:noalloc the ASCII fast path appends into the pooled response buffer; only exotic names defer to encoding/json
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			b, _ := json.Marshal(s) //gpower:allocs slow path: names needing JSON escaping defer to encoding/json; registry names are plain ASCII
			return append(buf, b...)
		}
	}
	//gpower:allocs appends into the pooled response buffer, which keeps its 64 KiB capacity across requests
	buf = append(buf, '"')
	buf = append(buf, s...) //gpower:allocs appends into the pooled response buffer, which keeps its 64 KiB capacity across requests
	return append(buf, '"')
}

// ---- /v1/govern ----

type governRequest struct {
	Device      string             `json:"device"`
	Utilization map[string]float64 `json:"utilization"`
	Policy      string             `json:"policy"`
	// PowerCapWatts only matters for max-perf-under-cap; 0 means the TDP.
	PowerCapWatts float64 `json:"power_cap_watts,omitempty"`
}

type governResponse struct {
	Device     string     `json:"device"`
	Generation uint64     `json:"generation"`
	Policy     string     `json:"policy"`
	Config     wireConfig `json:"config"`
	PowerWatts float64    `json:"power_watts"`
	RelTime    float64    `json:"rel_time"`
}

func (s *Server) handleGovern(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req governRequest
	if s.decodeBody(w, r, &req) != nil {
		return
	}
	e, ok := s.lookup(w, req.Device)
	if !ok {
		return
	}
	policy, err := governor.ParsePolicy(req.Policy)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	u, err := parseUtilization(req.Utilization)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, meta := e.Snapshot()
	cfg, err := governor.Decide(r.Context(), m, e.Device(), policy, req.PowerCapWatts, u)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	power, err := m.Predict(u, cfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.opCore.With(e.Name()).Set(cfg.CoreMHz)
	s.opMem.With(e.Name()).Set(cfg.MemMHz)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(governResponse{
		Device:     e.Name(),
		Generation: meta.Generation,
		Policy:     policy.String(),
		Config:     wireConfig{CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz},
		PowerWatts: power,
		RelTime:    core.EstimateRelativeTime(u, m.Ref, cfg),
	})
}

// ---- /v1/breakdown ----

type breakdownRequest struct {
	Device      string             `json:"device"`
	Utilization map[string]float64 `json:"utilization"`
	// Config is the ladder point to decompose at; zero means the model's
	// reference configuration.
	Config *wireConfig `json:"config,omitempty"`
}

type breakdownResponse struct {
	Device     string             `json:"device"`
	Generation uint64             `json:"generation"`
	Config     wireConfig         `json:"config"`
	Constant   float64            `json:"constant_watts"`
	Components map[string]float64 `json:"component_watts"`
	TotalWatts float64            `json:"total_watts"`
}

func (s *Server) handleBreakdown(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req breakdownRequest
	if s.decodeBody(w, r, &req) != nil {
		return
	}
	e, ok := s.lookup(w, req.Device)
	if !ok {
		return
	}
	u, err := parseUtilization(req.Utilization)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, meta := e.Snapshot()
	cfg := m.Ref
	if req.Config != nil {
		cfg = req.Config.hw()
	}
	b, err := m.Decompose(u, cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	comps := make(map[string]float64, len(b.Component))
	s.breakdown.With(e.Name(), "Constant").Set(b.Constant)
	for _, c := range hw.Components {
		comps[c.String()] = b.Component[c]
		s.breakdown.With(e.Name(), c.String()).Set(b.Component[c])
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(breakdownResponse{
		Device:     e.Name(),
		Generation: meta.Generation,
		Config:     wireConfig{CoreMHz: cfg.CoreMHz, MemMHz: cfg.MemMHz},
		Constant:   b.Constant,
		Components: comps,
		TotalWatts: b.Total(),
	})
}

// ---- /metrics ----

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}
