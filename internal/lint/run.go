package lint

import (
	"fmt"
	"sort"
)

// Runner applies a set of analyzers to loaded packages and folds the results
// through the suppression directives.
type Runner struct {
	Analyzers []*Analyzer
}

// Result is the outcome of one lint run.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings in
	// deterministic (file, line, col, analyzer, message) order.
	Diagnostics []Diagnostic
	// DirectiveErrors are malformed or unknown-analyzer //lint:ignore
	// directives. They fail the run: a suppression that does not parse is
	// not silently discarded.
	DirectiveErrors []error
	// Suppressed counts findings removed by valid directives.
	Suppressed int
}

// Run analyzes every package. Analyzer errors (not diagnostics) abort the run.
func (r *Runner) Run(pkgs []*Package) (*Result, error) {
	known := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		if a.Name == "" || a.Run == nil {
			return nil, fmt.Errorf("lint: analyzer %q is incomplete", a.Name)
		}
		if known[a.Name] {
			return nil, fmt.Errorf("lint: duplicate analyzer name %q", a.Name)
		}
		known[a.Name] = true
	}

	res := &Result{}
	var all []Diagnostic
	var ignores []Ignore
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: package %s has type errors: %w", pkg.Path, pkg.TypeErrors[0])
		}
		for _, f := range pkg.Files {
			igs, errs := ParseIgnores(pkg.Fset, f, known)
			ignores = append(ignores, igs...)
			res.DirectiveErrors = append(res.DirectiveErrors, errs...)
		}
		for _, a := range r.Analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &all,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	for _, d := range all {
		if suppressed(d, ignores) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res, nil
}

func suppressed(d Diagnostic, ignores []Ignore) bool {
	for i := range ignores {
		if ignores[i].Matches(d.Analyzer, d.Pos) {
			return true
		}
	}
	return false
}
