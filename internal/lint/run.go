package lint

import (
	"fmt"
	"sort"
	"sync"

	"gpupower/internal/parallel"
)

// UnusedIgnoreName is the name of the engine-level analyzer that reports
// //lint:ignore directives which suppressed nothing. Unlike the syntactic
// analyzers it cannot be a plain Pass over one package's AST: it needs the
// outcome of suppression, so the Runner computes it after folding every
// other analyzer's findings through the directives. The analyzers package
// registers a descriptor under this name so the check participates in
// -list, -analyzers selection and linttest fixtures like any other.
const UnusedIgnoreName = "unusedignore"

// Runner applies a set of analyzers to loaded packages and folds the results
// through the suppression directives.
type Runner struct {
	Analyzers []*Analyzer
	// Known is the set of analyzer names accepted in //lint:ignore
	// directives. It defaults to the names of Analyzers, but callers running
	// a subset (gpowerlint -analyzers maporder) should set it to the full
	// registry so directives for analyzers that merely did not run this time
	// are not rejected as unknown.
	Known map[string]bool

	// factsMu guards facts, the cross-package fact store shared by every
	// pass this Runner creates. Scoping the store to the Runner (rather
	// than a process global) means its memory — which transitively pins the
	// Loader's type graph and ASTs — is reclaimable once the run's results
	// are merged.
	factsMu sync.Mutex
	facts   *FactStore
}

// factStore lazily creates the Runner's run-scoped fact store; RunGroup is
// called concurrently by the parallel engine and the cache replayer, so the
// first caller wins under the mutex.
func (r *Runner) factStore() *FactStore {
	r.factsMu.Lock()
	defer r.factsMu.Unlock()
	if r.facts == nil {
		r.facts = NewFactStore()
	}
	return r.facts
}

// Result is the outcome of one lint run.
type Result struct {
	// Diagnostics are the surviving (unsuppressed) findings in
	// deterministic (file, line, col, analyzer, message) order.
	Diagnostics []Diagnostic
	// DirectiveErrors are malformed or unknown-analyzer //lint:ignore
	// directives. They fail the run: a suppression that does not parse is
	// not silently discarded.
	DirectiveErrors []error
	// Suppressed counts findings removed by valid directives.
	Suppressed int
}

// Merge appends another result (group-local or cached) into r. Callers are
// expected to sort once at the end via SortDiagnostics.
func (r *Result) Merge(other *Result) {
	r.Diagnostics = append(r.Diagnostics, other.Diagnostics...)
	r.DirectiveErrors = append(r.DirectiveErrors, other.DirectiveErrors...)
	r.Suppressed += other.Suppressed
}

// validate checks the analyzer set and returns the known-name map used for
// directive parsing.
func (r *Runner) validate() (map[string]bool, error) {
	names := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		if a.Name == "" || a.Run == nil {
			return nil, fmt.Errorf("lint: analyzer %q is incomplete", a.Name)
		}
		if names[a.Name] {
			return nil, fmt.Errorf("lint: duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	known := r.Known
	if known == nil {
		known = names
	}
	return known, nil
}

// Run analyzes every package. Analyzer errors (not diagnostics) abort the
// run. Packages are processed in directory groups (a package and its
// external-test sibling share a directory), each of which is self-contained:
// //lint:ignore directives only ever suppress diagnostics in their own file,
// so no suppression crosses a group boundary. This is the property the
// fact cache (internal/lint/cache) relies on to replay groups independently —
// and the property that lets groups run concurrently here: they are fanned
// through internal/parallel with each group's result landing in its own
// slot, merged in index order and sorted once, so the report is
// byte-identical to the sequential-mode run regardless of scheduling.
func (r *Runner) Run(pkgs []*Package) (*Result, error) {
	if _, err := r.validate(); err != nil {
		return nil, err
	}
	groups := GroupByDir(pkgs)
	results := make([]*Result, len(groups))
	// Resolve the fact store before fanning out: the lazy init writes a
	// Runner field, and the closure below must not mutate shared state
	// through its receiver (disjointwrite's own rule, applied to the engine).
	facts := r.factStore()
	if err := parallel.ForEach(len(groups), func(i int) error {
		gr, err := r.runGroup(groups[i], facts)
		if err != nil {
			return err
		}
		results[i] = gr
		return nil
	}); err != nil {
		return nil, err
	}
	res := &Result{}
	for _, gr := range results {
		res.Merge(gr)
	}
	SortDiagnostics(res.Diagnostics)
	return res, nil
}

// GroupByDir splits a package list into runs of consecutive packages that
// share a directory (the base package followed by its hoisted external-test
// package, in LoadAll order).
func GroupByDir(pkgs []*Package) [][]*Package {
	var groups [][]*Package
	for i := 0; i < len(pkgs); {
		j := i + 1
		for j < len(pkgs) && pkgs[j].Dir == pkgs[i].Dir {
			j++
		}
		groups = append(groups, pkgs[i:j])
		i = j
	}
	return groups
}

// RunGroup analyzes one directory group (a package plus, possibly, its
// external-test sibling) and returns a self-contained, sorted result.
func (r *Runner) RunGroup(pkgs []*Package) (*Result, error) {
	return r.runGroup(pkgs, r.factStore())
}

// runGroup is RunGroup with the fact store resolved by the caller; it never
// writes Runner state, so Run's parallel fan-out can call it from closures.
func (r *Runner) runGroup(pkgs []*Package, facts *FactStore) (*Result, error) {
	known, err := r.validate()
	if err != nil {
		return nil, err
	}
	runSet := make(map[string]bool, len(r.Analyzers))
	reportUnused := false
	for _, a := range r.Analyzers {
		if a.Name == UnusedIgnoreName {
			reportUnused = true
			continue
		}
		runSet[a.Name] = true
	}

	res := &Result{}
	var all []Diagnostic
	var ignores []Ignore
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: package %s has type errors: %w", pkg.Path, pkg.TypeErrors[0])
		}
		for _, f := range pkg.Files {
			igs, errs := ParseIgnores(pkg.Fset, f, known)
			ignores = append(ignores, igs...)
			res.DirectiveErrors = append(res.DirectiveErrors, errs...)
		}
		for _, a := range r.Analyzers {
			if a.Name == UnusedIgnoreName {
				continue // engine-level: computed below, after suppression
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Deps:     pkg.Dep,
				diags:    &all,
				facts:    facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	hits := make([]int, len(ignores))
	for _, d := range all {
		if i := suppressedBy(d, ignores); i >= 0 {
			hits[i]++
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}

	if reportUnused {
		unused := unusedIgnores(ignores, hits, runSet)
		// Unused-ignore findings are themselves suppressible — a directive
		// whose analyzer list includes "unusedignore" is exempt by
		// construction (see unusedIgnores), so no fixpoint is needed.
		for _, d := range unused {
			if i := suppressedBy(d, ignores); i >= 0 {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}

	SortDiagnostics(res.Diagnostics)
	return res, nil
}

// unusedIgnores turns zero-hit directives into diagnostics. A directive is
// reported only when a verdict is possible and meaningful:
//
//   - every analyzer it names actually ran (a directive for ctxflow is not
//     "unused" merely because this run selected -analyzers floateq), and
//   - it does not name unusedignore itself — //lint:ignore a,unusedignore
//     is the sanctioned "keep even if currently unused" escape hatch.
func unusedIgnores(ignores []Ignore, hits []int, runSet map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i := range ignores {
		ig := &ignores[i]
		if hits[i] > 0 {
			continue
		}
		decidable := true
		for _, name := range ig.Analyzers {
			if name == UnusedIgnoreName {
				decidable = false
				break
			}
			if !runSet[name] {
				decidable = false
				break
			}
		}
		if !decidable {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: UnusedIgnoreName,
			Pos:      ig.Pos,
			Message: fmt.Sprintf("//lint:ignore %s directive suppressed no diagnostics: the guarded code moved or was fixed, so delete the directive (or add unusedignore to its analyzer list to keep it deliberately)",
				joinNames(ig.Analyzers)),
		})
	}
	return out
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ","
		}
		s += n
	}
	return s
}

// SortDiagnostics orders diagnostics by (file, line, col, analyzer, message)
// — the engine's canonical deterministic report order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// suppressedBy returns the index of the first directive matching d, or -1.
func suppressedBy(d Diagnostic, ignores []Ignore) int {
	for i := range ignores {
		if ignores[i].Matches(d.Analyzer, d.Pos) {
			return i
		}
	}
	return -1
}
