package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses matching diagnostics on its own line (trailing
// comment form) and on the line immediately below it (standalone form). The
// reason is mandatory.
const ignorePrefix = "//lint:ignore"

// Ignore is one parsed suppression directive.
type Ignore struct {
	// Analyzers are the analyzer names the directive applies to.
	Analyzers []string
	// Reason is the mandatory free-text justification.
	Reason string
	// Pos is the directive's own position.
	Pos token.Position
}

// Matches reports whether the directive suppresses a diagnostic from the
// named analyzer at the given position.
func (ig *Ignore) Matches(analyzer string, pos token.Position) bool {
	if pos.Filename != ig.Pos.Filename {
		return false
	}
	if pos.Line != ig.Pos.Line && pos.Line != ig.Pos.Line+1 {
		return false
	}
	for _, a := range ig.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// ParseIgnores extracts every //lint:ignore directive from a file. known maps
// valid analyzer names; a directive naming an unknown analyzer, or missing
// its analyzer list or reason, is returned as an error — silently-dead
// suppressions are worse than none.
func ParseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool) ([]Ignore, []error) {
	var igs []Ignore
	var errs []error
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				// e.g. //lint:ignoreXYZ — not our directive.
				continue
			}
			ig, err := parseIgnoreBody(strings.TrimSpace(rest), known)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s:%d:%d: %w", pos.Filename, pos.Line, pos.Column, err))
				continue
			}
			ig.Pos = pos
			igs = append(igs, ig)
		}
	}
	return igs, errs
}

func parseIgnoreBody(body string, known map[string]bool) (Ignore, error) {
	if body == "" {
		return Ignore{}, fmt.Errorf("malformed directive: want %q", ignorePrefix+" <analyzer> <reason>")
	}
	fields := strings.Fields(body)
	names := strings.Split(fields[0], ",")
	for _, n := range names {
		if n == "" {
			return Ignore{}, fmt.Errorf("malformed directive: empty analyzer name in %q", fields[0])
		}
		if known != nil && !known[n] {
			return Ignore{}, fmt.Errorf("directive names unknown analyzer %q", n)
		}
	}
	if len(fields) < 2 {
		return Ignore{}, fmt.Errorf("directive for %q is missing the mandatory reason", fields[0])
	}
	return Ignore{Analyzers: names, Reason: strings.Join(fields[1:], " ")}, nil
}
