package lint

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: "/repo/internal/core/estimate.go", Line: 554, Column: 11},
			Message:  "exact floating-point comparison (==)",
		},
		{
			Analyzer: "maporder",
			Pos:      token.Position{Filename: "/repo/internal/core/model.go", Line: 173, Column: 3},
			Message:  `floating-point accumulation into "s" inside range over map`,
		},
	}
}

func TestWriteTextRelativizes(t *testing.T) {
	var sb strings.Builder
	if err := WriteText(&sb, "/repo", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	want := "internal/core/estimate.go:554:11: floateq: exact floating-point comparison (==)\n" +
		`internal/core/model.go:173:3: maporder: floating-point accumulation into "s" inside range over map` + "\n"
	if sb.String() != want {
		t.Errorf("text output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteJSONShape(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, "/repo", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var got []jsonDiagnostic
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("want 2 diagnostics, got %d", len(got))
	}
	if got[0].File != "internal/core/estimate.go" || got[0].Line != 554 || got[0].Analyzer != "floateq" {
		t.Errorf("first diagnostic = %+v", got[0])
	}

	// Clean runs emit an empty array, not null.
	sb.Reset()
	if err := WriteJSON(&sb, "", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("clean run emitted %q, want []", sb.String())
	}
}
