// Package lint is a dependency-free static-analysis engine for the gpupower
// module. It mechanically enforces the repository's load-bearing invariants —
// bitwise serial/parallel determinism, context cancellation at iteration
// granularity, the typed backend error taxonomy, numerical hygiene and the
// worker-pool concurrency discipline — that would otherwise rely on reviewer
// vigilance alone.
//
// The engine is built exclusively on the go standard library (go/parser,
// go/ast, go/types, go/token): packages are parsed and type-checked in-module
// by a small recursive importer (see Loader) that delegates standard-library
// imports to importer.Default(). Analyzers implement the Analyzer interface
// and report Diagnostics; findings can be suppressed at a specific site with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either as a trailing comment on the offending line or on its own line
// immediately above it. The reason is mandatory: an invariant exception that
// cannot be justified in half a sentence is a bug, not an exception.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// FactStore memoizes cross-package analysis facts (unitflow result/var units,
// disjointwrite method-mutation summaries) for one engine run. Keys are
// small comparable structs wrapping type-checker objects, so identity keying
// is sound exactly as long as the store lives no longer than the Loader whose
// type graph produced the objects — which is why the store hangs off the
// Runner (one per run) rather than off the analyzers package: a process that
// runs the engine repeatedly (tests, a long-running embedding) must not pin
// every run's type graph and ASTs for its lifetime. The store is
// mutex-guarded for the parallel engine; determinism under concurrent groups
// is the analyzers' responsibility (chain-dependent "tainted" verdicts are
// never stored).
type FactStore struct {
	mu sync.Mutex
	m  map[any]any
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[any]any)} }

// Load returns the fact stored under key, if any.
func (s *FactStore) Load(key any) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	return v, ok
}

// Store records a fact under key.
func (s *FactStore) Store(key, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = val
}

// Analyzer is one static check. Analyzers are stateless: Run is invoked once
// per type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the short identifier used in output and in //lint:ignore
	// directives (e.g. "maporder").
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces, shown by `gpowerlint -list`.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (including in-package _test.go
	// files when the loader runs with Tests enabled).
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker facts for Files.
	Info *types.Info
	// Deps resolves a local import path to the loaded package it names,
	// searching this package's transitive in-module imports. The Runner wires
	// it from the Loader; it is nil in hand-constructed passes, which Dep
	// tolerates. Cross-package analyses (unitflow provenance facts,
	// disjointwrite method summaries) use it to read dependency syntax —
	// dependency packages are always fully loaded by the time this package
	// type-checked, so resolution never triggers new work.
	Deps func(path string) (*Package, bool)

	diags *[]Diagnostic
	facts *FactStore
}

// Dep resolves a local import path to its loaded dependency package, or
// (nil, false) when the path is not an in-module dependency or the pass has
// no loader behind it.
func (p *Pass) Dep(path string) (*Package, bool) {
	if p.Deps == nil {
		return nil, false
	}
	return p.Deps(path)
}

// Facts returns the run-scoped fact store shared by every pass of one
// Runner run (the Runner wires it in; hand-constructed passes get a private
// store on first use, allocated lazily so zero-value passes keep working).
func (p *Pass) Facts() *FactStore {
	if p.facts == nil {
		p.facts = NewFactStore()
	}
	return p.facts
}

// Silent returns a copy of the pass whose reports are discarded. Fact
// derivation re-evaluates syntax (sometimes of dependency packages) purely
// for its value; any diagnostics that evaluation would raise belong to the
// package's own analysis run, not to the querying one. The fact store is
// shared: silent derivations feed the same run-scoped memoization.
func (p *Pass) Silent() *Pass {
	var discard []Diagnostic
	q := *p
	q.facts = p.Facts()
	q.diags = &discard
	return &q
}

// Scratch builds a report-discarding pass over a loaded dependency package,
// for analyzers that walk its syntax to derive cross-package facts. It
// shares the parent pass's fact store, keeping memoization run-scoped.
func (p *Pass) Scratch(pkg *Package) *Pass {
	var discard []Diagnostic
	return &Pass{
		Analyzer: p.Analyzer,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Deps:     pkg.Dep,
		diags:    &discard,
		facts:    p.Facts(),
	}
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned in file:line:col terms.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical single-line form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
