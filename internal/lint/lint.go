// Package lint is a dependency-free static-analysis engine for the gpupower
// module. It mechanically enforces the repository's load-bearing invariants —
// bitwise serial/parallel determinism, context cancellation at iteration
// granularity, the typed backend error taxonomy, numerical hygiene and the
// worker-pool concurrency discipline — that would otherwise rely on reviewer
// vigilance alone.
//
// The engine is built exclusively on the go standard library (go/parser,
// go/ast, go/types, go/token): packages are parsed and type-checked in-module
// by a small recursive importer (see Loader) that delegates standard-library
// imports to importer.Default(). Analyzers implement the Analyzer interface
// and report Diagnostics; findings can be suppressed at a specific site with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either as a trailing comment on the offending line or on its own line
// immediately above it. The reason is mandatory: an invariant exception that
// cannot be justified in half a sentence is a bug, not an exception.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check. Analyzers are stateless: Run is invoked once
// per type-checked package and reports findings through the Pass.
type Analyzer struct {
	// Name is the short identifier used in output and in //lint:ignore
	// directives (e.g. "maporder").
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces, shown by `gpowerlint -list`.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (including in-package _test.go
	// files when the loader runs with Tests enabled).
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker facts for Files.
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned in file:line:col terms.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the canonical single-line form used by the CLI.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}
