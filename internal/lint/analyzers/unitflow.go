package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpupower/internal/lint"
)

// UnitFlow tracks physical-unit provenance through the module's float64
// plumbing. MHz, volts and watts all travel as bare float64 — a silent
// MHz↔V swap is a wrong-by-1000× prediction, not a crash (the bug class
// the multi-domain DVFS literature repeatedly warns about), so the unit
// must be carried by analysis instead of the type system.
var UnitFlow = &lint.Analyzer{
	Name: "unitflow",
	Doc: `flags cross-unit arithmetic on MHz / volts / watts float64 values.

A provenance lattice {MHz, Volts, Watts, unitless} is seeded from the
hardware catalog (hw.Config.CoreMHz/MemMHz, hw.Device frequency ladders and
TDP), the ground-truth voltage curves (silicon.VoltagePoint, VoltsAt /
NormalizedAt) and the fitted voltage tables (core.VoltageTable), plus a
naming convention: any field, parameter or variable whose name ends in MHz,
Volts or Watts carries that unit. Units propagate through assignments,
slice/array elements, range loops and conversions. Addition, subtraction and
ordered/equality comparison of two differently-united values is reported, as
is passing or assigning a value of one unit into a slot declared as another
(a CoreMHz flowing into a volts parameter). Multiplication and division
deliberately erase the unit — V̄²·f is the model's working currency and is
legal by construction.`,
	Run: runUnitFlow,
}

// unit is one point of the provenance lattice.
type unit uint8

const (
	unitUnknown unit = iota // unitless or undetermined: never conflicts
	unitMHz
	unitVolts
	unitWatts
)

func (u unit) String() string {
	switch u {
	case unitMHz:
		return "MHz"
	case unitVolts:
		return "volts"
	case unitWatts:
		return "watts"
	}
	return "unitless"
}

// unitFromName applies the naming convention to fields, params and locals.
func unitFromName(name string) unit {
	switch {
	case strings.HasSuffix(name, "MHz"):
		return unitMHz
	case strings.HasSuffix(name, "Volts") || name == "volts":
		return unitVolts
	case strings.HasSuffix(name, "Watts") || name == "watts":
		return unitWatts
	}
	return unitUnknown
}

// fieldSeeds maps (package-path suffix, field name) → unit for catalog and
// model fields whose names do not carry the suffix convention.
var fieldSeeds = map[string]map[string]unit{
	"internal/hw": {
		"CoreFreqs":   unitMHz,
		"MemFreqs":    unitMHz,
		"DefaultCore": unitMHz,
		"DefaultMem":  unitMHz,
		"TDP":         unitWatts,
	},
	"internal/core": {
		"CoreFreqs": unitMHz,
		"MemFreqs":  unitMHz,
		"VCore":     unitVolts,
		"VMem":      unitVolts,
	},
	"internal/silicon": {
		"FMHz":  unitMHz,
		"Volts": unitVolts,
	},
}

// resultSeeds maps (package-path suffix, function name) → per-result units
// for the voltage-model outputs (method name collisions across packages are
// disambiguated by the path suffix).
var resultSeeds = map[string]map[string][]unit{
	"internal/silicon": {
		"VoltsAt":      {unitVolts},
		"NormalizedAt": {unitVolts},
	},
	"internal/core": {
		"At": {unitVolts, unitVolts, unitUnknown}, // (*VoltageTable).At → (vc, vm, err)
	},
}

// paramSeeds maps (package-path suffix, function name) → per-parameter
// units, for signatures whose parameter names predate the suffix convention.
var paramSeeds = map[string]map[string][]unit{
	"internal/core": {
		"Set": {unitUnknown, unitVolts, unitVolts}, // (*VoltageTable).Set(cfg, vc, vm)
	},
}

func runUnitFlow(pass *lint.Pass) error {
	for _, f := range pass.Files {
		uf := &unitFlowCheck{
			pass:     pass,
			env:      make(map[types.Object]unit),
			reported: make(map[token.Pos]bool),
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				uf.checkAssign(st)
			case *ast.ValueSpec:
				uf.checkValueSpec(st)
			case *ast.RangeStmt:
				uf.seedRange(st)
			case *ast.BinaryExpr:
				uf.checkBinary(st)
			case *ast.CallExpr:
				uf.checkCallArgs(st)
			case *ast.CompositeLit:
				uf.checkCompositeLit(st)
			}
			return true
		})
	}
	return nil
}

// unitFlowCheck holds the per-file inference state: env carries units
// inferred for local objects, reported deduplicates diagnostics when the
// same subtree is evaluated from more than one enclosing check. chain and
// tainted belong to the cross-package fact layer (unitfacts.go): chain is
// the set of objects whose units are being derived further up this
// evaluation, and tainted marks a derivation that had to assume a unit for
// a chain member and therefore must not be memoized.
type unitFlowCheck struct {
	pass     *lint.Pass
	env      map[types.Object]unit
	reported map[token.Pos]bool
	chain    map[types.Object]bool
	tainted  bool
}

func (uf *unitFlowCheck) reportOnce(pos token.Pos, format string, args ...any) {
	if uf.reported[pos] {
		return
	}
	uf.reported[pos] = true
	uf.pass.Reportf(pos, format, args...)
}

// isFloatish gates the analysis to floating-point-valued expressions (and
// containers of them); integer loop math never carries a unit here.
func isFloatish(t types.Type) bool {
	for {
		switch u := t.Underlying().(type) {
		case *types.Basic:
			return u.Info()&types.IsFloat != 0 || u.Kind() == types.UntypedFloat
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
}

// isPackageLevel reports whether a variable lives directly in its package
// scope — the gate for initializer-based unit inference (locals are tracked
// through env instead).
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// declaredUnit resolves the unit a variable object is declared to carry:
// seed tables for known catalog/model fields, then the name convention.
func declaredUnit(obj types.Object) unit {
	v, ok := obj.(*types.Var)
	if !ok || v.Type() == nil || !isFloatish(v.Type()) {
		return unitUnknown
	}
	if pkg := v.Pkg(); pkg != nil {
		for suffix, fields := range fieldSeeds {
			if pathHasSuffix(pkg.Path(), suffix) {
				if u, ok := fields[v.Name()]; ok {
					return u
				}
			}
		}
	}
	return unitFromName(v.Name())
}

// unitOf infers the unit of an expression.
func (uf *unitFlowCheck) unitOf(e ast.Expr) unit {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(uf.pass.Info, x)
		if obj == nil {
			return unitUnknown
		}
		if u, ok := uf.env[obj]; ok && u != unitUnknown {
			return u
		}
		if u := declaredUnit(obj); u != unitUnknown {
			return u
		}
		if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
			return uf.inferredVarUnit(v)
		}
		return unitUnknown
	case *ast.SelectorExpr:
		if obj := uf.pass.Info.Uses[x.Sel]; obj != nil {
			if v, isVar := obj.(*types.Var); isVar {
				if u := declaredUnit(obj); u != unitUnknown {
					return u
				}
				if isPackageLevel(v) {
					return uf.inferredVarUnit(v)
				}
			}
		}
		return unitUnknown
	case *ast.IndexExpr:
		// Element of a united container (ladder slice, voltage table row).
		return uf.unitOf(x.X)
	case *ast.StarExpr:
		return uf.unitOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.SUB || x.Op == token.ADD {
			return uf.unitOf(x.X)
		}
		return unitUnknown
	case *ast.CallExpr:
		// Conversions are unit-transparent: float64(fMHz) is still MHz.
		if tv, ok := uf.pass.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return uf.unitOf(x.Args[0])
		}
		if us := uf.callResultUnits(x); len(us) == 1 {
			return us[0]
		}
		return unitUnknown
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB:
			lu, ru := uf.unitOf(x.X), uf.unitOf(x.Y)
			if lu != unitUnknown && ru != unitUnknown && lu != ru {
				uf.reportOnce(x.OpPos,
					"cross-unit arithmetic: %s-typed value %s %s-typed value (the paper's model only ever adds like quantities; multiplication is what changes a unit)",
					lu, x.Op, ru)
				return unitUnknown
			}
			if lu != unitUnknown {
				return lu
			}
			return ru
		default:
			// MUL/QUO and friends change the unit by construction (V̄²·f),
			// so the result is deliberately unitless.
			return unitUnknown
		}
	}
	return unitUnknown
}

// callResultUnits resolves the units of a call's results: the seed table
// first, then the naming conventions (function name, result names), then —
// for in-module callees neither decides — the cross-package inference facts
// derived from the callee's own return statements (unitfacts.go).
func (uf *unitFlowCheck) callResultUnits(call *ast.CallExpr) []unit {
	fn := calleeFunc(uf.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for suffix, funcs := range resultSeeds {
		if pathHasSuffix(fn.Pkg().Path(), suffix) {
			if us, ok := funcs[fn.Name()]; ok {
				return us
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	// Single-result functions named by the convention (e.g. coreMHz()).
	if sig.Results().Len() == 1 {
		if u := unitFromName(fn.Name()); u != unitUnknown {
			return []unit{u}
		}
	}
	// Named results carrying the convention: func ladder() (fMHz, vVolts float64).
	units := make([]unit, sig.Results().Len())
	named := false
	for i := 0; i < sig.Results().Len(); i++ {
		if u := unitFromName(sig.Results().At(i).Name()); u != unitUnknown {
			units[i] = u
			named = true
		}
	}
	if named {
		return units
	}
	return uf.inferredResultUnits(fn)
}

// checkAssign verifies unit agreement across = / := and updates the local
// environment for plain locals.
func (uf *unitFlowCheck) checkAssign(st *ast.AssignStmt) {
	switch st.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		return // op-assignments reuse the binary-expr rules via checkBinary
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value form: v1, v2, err := call(...).
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		us := uf.callResultUnits(call)
		for i, lhs := range st.Lhs {
			var ru unit
			if i < len(us) {
				ru = us[i]
			}
			uf.flowInto(lhs, ru, st.Tok)
		}
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		uf.flowInto(lhs, uf.unitOf(st.Rhs[i]), st.Tok)
	}
}

// flowInto records/verifies a value of unit ru arriving at lvalue lhs.
func (uf *unitFlowCheck) flowInto(lhs ast.Expr, ru unit, tok token.Token) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	lu := uf.lvalueDeclaredUnit(lhs)
	if lu != unitUnknown && ru != unitUnknown && lu != ru {
		uf.reportOnce(lhs.Pos(),
			"%s-typed value assigned to %s-typed %s: a silent unit swap here is a wrong-by-orders-of-magnitude prediction, not a crash",
			ru, lu, describeLValue(lhs))
		return
	}
	// Inference: plain local identifiers inherit the RHS unit. A later
	// re-assignment from a unitless expression clears the inference rather
	// than leaving a stale unit behind.
	if tok == token.DEFINE || lu == unitUnknown {
		if obj := identObj(uf.pass.Info, lhs); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				if ru != unitUnknown {
					uf.env[obj] = ru
				} else if tok == token.ASSIGN {
					delete(uf.env, obj)
				}
			}
		}
	}
}

// lvalueDeclaredUnit is the declared unit of an assignment target: field
// seeds and the name convention for idents/selectors, element transparency
// for indexed writes.
func (uf *unitFlowCheck) lvalueDeclaredUnit(lhs ast.Expr) unit {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := identObj(uf.pass.Info, x); obj != nil {
			return declaredUnit(obj)
		}
	case *ast.SelectorExpr:
		if obj := uf.pass.Info.Uses[x.Sel]; obj != nil {
			return declaredUnit(obj)
		}
	case *ast.IndexExpr:
		return uf.lvalueDeclaredUnit(x.X)
	case *ast.StarExpr:
		return uf.lvalueDeclaredUnit(x.X)
	}
	return unitUnknown
}

func describeLValue(lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return "variable \"" + x.Name + "\""
	case *ast.SelectorExpr:
		return "field \"" + x.Sel.Name + "\""
	case *ast.IndexExpr:
		return "element of " + describeLValue(x.X)
	case *ast.StarExpr:
		return describeLValue(x.X)
	}
	return "target"
}

// checkValueSpec handles var declarations with initializers.
func (uf *unitFlowCheck) checkValueSpec(spec *ast.ValueSpec) {
	if len(spec.Values) != len(spec.Names) {
		return
	}
	for i, name := range spec.Names {
		ru := uf.unitOf(spec.Values[i])
		lu := unitUnknown
		if obj := uf.pass.Info.Defs[name]; obj != nil {
			lu = declaredUnit(obj)
			if lu != unitUnknown && ru != unitUnknown && lu != ru {
				uf.reportOnce(name.Pos(),
					"%s-typed value assigned to %s-typed variable %q: a silent unit swap here is a wrong-by-orders-of-magnitude prediction, not a crash",
					ru, lu, name.Name)
				continue
			}
			if ru != unitUnknown {
				uf.env[obj] = ru
			}
		}
	}
}

// seedRange gives range value variables the element unit of the container.
func (uf *unitFlowCheck) seedRange(st *ast.RangeStmt) {
	if st.Value == nil {
		return
	}
	cu := uf.unitOf(st.X)
	if cu == unitUnknown {
		return
	}
	if obj := identObj(uf.pass.Info, st.Value); obj != nil {
		uf.env[obj] = cu
	}
}

// checkBinary reports cross-unit comparisons (the additive case is reported
// from unitOf itself so nested occurrences inside larger expressions are
// caught too).
func (uf *unitFlowCheck) checkBinary(be *ast.BinaryExpr) {
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		lu, ru := uf.unitOf(be.X), uf.unitOf(be.Y)
		if lu != unitUnknown && ru != unitUnknown && lu != ru {
			uf.reportOnce(be.OpPos,
				"cross-unit comparison: %s-typed value %s %s-typed value (comparing frequencies to voltages is meaningless at any tolerance)",
				lu, be.Op, ru)
		}
	case token.ADD, token.SUB:
		uf.unitOf(be) // triggers the additive mismatch report with dedup
	}
}

// checkCompositeLit verifies struct-literal fields: Config{CoreMHz: volts}
// and VoltagePoint{Volts: cfg.CoreMHz} are the classic construction-site
// swaps. Both keyed and positional forms are checked.
func (uf *unitFlowCheck) checkCompositeLit(cl *ast.CompositeLit) {
	tv, ok := uf.pass.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		var field *types.Var
		var val ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			field, _ = uf.pass.Info.Uses[id].(*types.Var)
			val = kv.Value
		} else if i < st.NumFields() {
			field, val = st.Field(i), elt
		}
		if field == nil {
			continue
		}
		fu := declaredUnit(field)
		if fu == unitUnknown {
			continue
		}
		vu := uf.unitOf(val)
		if vu != unitUnknown && vu != fu {
			uf.reportOnce(val.Pos(),
				"%s-typed value assigned to %s-typed field %q: a silent unit swap here is a wrong-by-orders-of-magnitude prediction, not a crash",
				vu, fu, field.Name())
		}
	}
}

// checkCallArgs verifies argument units against parameter units declared by
// name convention or the seed table.
func (uf *unitFlowCheck) checkCallArgs(call *ast.CallExpr) {
	fn := calleeFunc(uf.pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() || sig.Params().Len() != len(call.Args) {
		return
	}
	var seeded []unit
	if fn.Pkg() != nil {
		for suffix, funcs := range paramSeeds {
			if pathHasSuffix(fn.Pkg().Path(), suffix) {
				if us, ok := funcs[fn.Name()]; ok {
					seeded = us
				}
			}
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		pu := declaredUnit(p)
		if i < len(seeded) && seeded[i] != unitUnknown {
			pu = seeded[i]
		}
		if pu == unitUnknown {
			continue
		}
		au := uf.unitOf(call.Args[i])
		if au != unitUnknown && au != pu {
			uf.reportOnce(call.Args[i].Pos(),
				"%s-typed value passed to %s parameter %q of %s: frequency and voltage share float64 here, so only provenance separates a ladder entry from a rail voltage",
				au, pu, p.Name(), fn.Name())
		}
	}
}
