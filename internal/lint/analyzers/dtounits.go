package analyzers

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"

	"gpupower/internal/lint"
)

// DTOUnits guards the serving wire format: a JSON DTO field whose Go name
// and json tag both claim a physical unit must claim the same one. The
// hw.Config → governor → serve DTO chain re-states units twice — once in the
// field name unitflow tracks, once in the snake_case tag clients parse — and
// nothing else cross-checks the two, so a CoreMHz field tagged json:"volts"
// ships a wrong-by-1000× API without failing a single test.
var DTOUnits = &lint.Analyzer{
	Name: "dtounits",
	Doc: `flags struct fields whose name and json tag disagree on the unit.

For every struct field carrying a json tag, the unit implied by the Go field
name (the unitflow convention: ...MHz, ...Volts, ...Watts suffixes plus the
catalog seed table) is compared with the unit implied by the wire name (a
_mhz / _volts / _watts suffix, tag options ignored). Both known and
different is a report; either side unit-less stays silent, so Constant
watts-by-tag-only fields and unit-free names are fine. The check is the wire-
format completion of unitflow: inside the process provenance flows by name,
and the tag is where that name is translated for clients.`,
	Run: runDTOUnits,
}

func runDTOUnits(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Tag == nil || len(field.Names) == 0 {
					continue
				}
				raw, err := strconv.Unquote(field.Tag.Value)
				if err != nil {
					continue
				}
				wire := reflect.StructTag(raw).Get("json")
				if i := strings.Index(wire, ","); i >= 0 {
					wire = wire[:i]
				}
				if wire == "" || wire == "-" {
					continue
				}
				tu := unitFromTag(wire)
				if tu == unitUnknown {
					continue
				}
				for _, name := range field.Names {
					nu := unitUnknown
					if obj := pass.Info.Defs[name]; obj != nil {
						nu = declaredUnit(obj)
					}
					if nu == unitUnknown {
						nu = unitFromName(name.Name)
					}
					if nu != unitUnknown && nu != tu {
						pass.Reportf(name.Pos(),
							"field %s carries %s by name but its json tag %q says %s: clients will parse the wrong unit off the wire",
							name.Name, nu, wire, tu)
					}
				}
			}
			return true
		})
	}
	return nil
}

// unitFromTag maps a wire name to the unit its snake_case suffix claims.
func unitFromTag(wire string) unit {
	switch {
	case strings.HasSuffix(wire, "_mhz") || wire == "mhz":
		return unitMHz
	case strings.HasSuffix(wire, "_volts") || wire == "volts":
		return unitVolts
	case strings.HasSuffix(wire, "_watts") || wire == "watts":
		return unitWatts
	}
	return unitUnknown
}
