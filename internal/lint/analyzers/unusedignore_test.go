package analyzers_test

import (
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

// TestUnusedIgnore runs the engine-level check together with floateq so the
// fixture's "used" directive has a live diagnostic to suppress.
func TestUnusedIgnore(t *testing.T) {
	linttest.RunAnalyzers(t, "testdata",
		[]*lint.Analyzer{analyzers.FloatEq, analyzers.UnusedIgnore},
		"unusedignore")
}
