package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpupower/internal/lint"
)

// Cross-package unit-inference facts for unitflow.
//
// The seed tables and the naming convention resolve units locally; what they
// cannot see is a value whose unit is only established in another package —
// hw.Config.CoreMHz flowing through an unconventionally-named governor
// helper into a serve DTO. This file closes that gap: when a call's result
// units are not locally decidable, unitflow asks for the callee's declaration
// (in the current package, or in a dependency via Pass.Dep), silently
// evaluates its return statements with the same lattice, and memoizes the
// verdict per *types.Func. Package-level vars get the same treatment via
// their initializers.
//
// Facts are memoized in the run-scoped lint.FactStore carried by the Pass,
// keyed by object identity — sound because each run's concurrency-safe
// Loader type-checks each package exactly once, so every directory group of
// that run sees the same *types.Func for the same function (and the store
// dies with the run, so it never pins a retired Loader's type graph). The
// store is mutex-guarded for the parallel engine; determinism under
// concurrent groups holds because an inference that had to assume a unit
// for an in-progress (cyclic) callee is "tainted" and never memoized —
// every cached fact is chain-independent, so the store's contents cannot
// depend on group scheduling.
type resultFactKey struct{ fn *types.Func }

type varFactKey struct{ v *types.Var }

func cachedResultFact(pass *lint.Pass, fn *types.Func) ([]unit, bool) {
	v, ok := pass.Facts().Load(resultFactKey{fn})
	if !ok {
		return nil, false
	}
	return v.([]unit), true
}

func storeResultFact(pass *lint.Pass, fn *types.Func, us []unit) {
	pass.Facts().Store(resultFactKey{fn}, us)
}

func cachedVarFact(pass *lint.Pass, v *types.Var) (unit, bool) {
	u, ok := pass.Facts().Load(varFactKey{v})
	if !ok {
		return unitUnknown, false
	}
	return u.(unit), true
}

func storeVarFact(pass *lint.Pass, v *types.Var, u unit) {
	pass.Facts().Store(varFactKey{v}, u)
}

// inferredResultUnits derives the per-result units of an in-module function
// from its return statements, or nil when no verdict is possible (foreign
// package, no syntax, conflicting returns).
func (uf *unitFlowCheck) inferredResultUnits(fn *types.Func) []unit {
	if us, ok := cachedResultFact(uf.pass, fn); ok {
		return us
	}
	if uf.chain[fn] {
		// In-progress on this inference chain (recursion or mutual
		// recursion): assume unknown, and poison memoization upward so no
		// chain-dependent value is ever cached.
		uf.tainted = true
		return nil
	}
	fd, pkgPass := uf.declOf(fn)
	if fd == nil || fd.Body == nil || fd.Type.Results == nil {
		storeResultFact(uf.pass, fn, nil) // settled: no syntax to learn from
		return nil
	}
	sub := uf.subCheck(pkgPass, fn)
	us, tainted := sub.evalResultUnits(fd)
	if tainted {
		uf.tainted = true
		return us
	}
	storeResultFact(uf.pass, fn, us)
	return us
}

// inferredVarUnit derives a package-level variable's unit from its
// initializer, with the same memoization and taint rules.
func (uf *unitFlowCheck) inferredVarUnit(v *types.Var) unit {
	if v.Type() == nil || !isFloatish(v.Type()) {
		return unitUnknown
	}
	if u, ok := cachedVarFact(uf.pass, v); ok {
		return u
	}
	if uf.chain[v] {
		uf.tainted = true
		return unitUnknown
	}
	spec, idx, pkgPass := uf.varSpecOf(v)
	if spec == nil || len(spec.Values) != len(spec.Names) {
		storeVarFact(uf.pass, v, unitUnknown)
		return unitUnknown
	}
	sub := uf.subCheck(pkgPass, v)
	u := sub.unitOf(spec.Values[idx])
	if sub.tainted {
		uf.tainted = true
		return u
	}
	storeVarFact(uf.pass, v, u)
	return u
}

// subCheck builds the silent evaluator for one inference step: same lattice,
// reports discarded, chain extended with the object being derived.
func (uf *unitFlowCheck) subCheck(pass *lint.Pass, deriving types.Object) *unitFlowCheck {
	chain := make(map[types.Object]bool, len(uf.chain)+1)
	for o := range uf.chain {
		chain[o] = true
	}
	chain[deriving] = true
	return &unitFlowCheck{
		pass:     pass,
		env:      make(map[types.Object]unit),
		reported: make(map[token.Pos]bool),
		chain:    chain,
	}
}

// declOf locates the FuncDecl for an in-module function: in the current
// package's files, or in a dependency package reached through Pass.Dep.
// The returned pass is silent and scoped to the declaring package.
func (uf *unitFlowCheck) declOf(fn *types.Func) (*ast.FuncDecl, *lint.Pass) {
	return funcDeclOf(uf.pass, fn)
}

// varSpecOf locates the ValueSpec (and the name's index in it) declaring a
// package-level variable.
func (uf *unitFlowCheck) varSpecOf(v *types.Var) (*ast.ValueSpec, int, *lint.Pass) {
	if v.Pkg() == nil {
		return nil, 0, nil
	}
	files, info, pass := declScope(uf.pass, v.Pkg())
	if files == nil {
		return nil, 0, nil
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if info.Defs[name] == v {
						return vs, i, pass
					}
				}
			}
		}
	}
	return nil, 0, nil
}

// evalResultUnits evaluates a function's return statements and merges them
// slot-wise: every return must agree on a slot's unit or the slot is
// unknown. The walk seeds the local environment from assignments and range
// loops on the way (skipping nested function literals, whose returns belong
// to a different function).
func (uf *unitFlowCheck) evalResultUnits(fd *ast.FuncDecl) ([]unit, bool) {
	var resultObjs []types.Object
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			resultObjs = append(resultObjs, nil)
			continue
		}
		for _, name := range field.Names {
			resultObjs = append(resultObjs, uf.pass.Info.Defs[name])
		}
	}
	n := len(resultObjs)
	if n == 0 {
		return nil, false
	}

	units := make([]unit, n)
	sawReturn := false
	merge := func(i int, u unit) {
		if !sawReturn {
			return // first return seeds below
		}
		if units[i] != u {
			units[i] = unitUnknown
		}
	}

	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			uf.checkAssign(st)
		case *ast.ValueSpec:
			uf.checkValueSpec(st)
		case *ast.RangeStmt:
			uf.seedRange(st)
		case *ast.ReturnStmt:
			returns = append(returns, st)
		}
		return true
	})

	for _, ret := range returns {
		var this []unit
		switch {
		case len(ret.Results) == n:
			this = make([]unit, n)
			for i, e := range ret.Results {
				this[i] = uf.unitOf(e)
			}
		case len(ret.Results) == 0:
			// Bare return with named results: read the tracked/declared
			// units of the result variables themselves.
			this = make([]unit, n)
			for i, obj := range resultObjs {
				if obj == nil {
					continue
				}
				if u, ok := uf.env[obj]; ok {
					this[i] = u
				} else {
					this[i] = declaredUnit(obj)
				}
			}
		default:
			// return f() fan-out: take the callee's units if resolvable.
			if len(ret.Results) == 1 {
				if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
					if us := uf.callResultUnits(call); len(us) == n {
						this = us
					}
				}
			}
			if this == nil {
				this = make([]unit, n) // all unknown
			}
		}
		if !sawReturn {
			copy(units, this)
			sawReturn = true
			continue
		}
		for i, u := range this {
			merge(i, u)
		}
	}
	if !sawReturn {
		return nil, uf.tainted
	}
	all := unitUnknown
	for _, u := range units {
		if u != unitUnknown {
			all = u
		}
	}
	if all == unitUnknown {
		return nil, uf.tainted
	}
	return units, uf.tainted
}
