package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpupower/internal/lint"
)

// AtomicSnap enforces the registry's one-snapshot-per-scope contract on
// atomic.Pointer[T]. internal/registry publishes each device's fitted model
// through an atomic pointer that Refit swaps wholesale; a batch that calls
// .Load() twice can observe two different fit generations and silently mix
// their predictions — a bug class the -race detector cannot see (both loads
// are perfectly synchronized) and that PR 7 could only guard with handwritten
// equivalence tests.
var AtomicSnap = &lint.Analyzer{
	Name: "atomicsnap",
	Doc: `flags repeated atomic.Pointer Load()s that can mix snapshot generations.

Two checks, applied per function scope (function literals are their own
scope). (1) A second .Load() of the same atomic.Pointer[T] within one scope
is reported: a batch must take one snapshot and use it throughout, because a
concurrent Swap between the two loads hands the scope two different
generations. (2) An inline p.Load().Field / p.Load().Method() inside a
for/range loop whose pointer is declared outside the loop is reported even
when it is the only load: it re-snapshots every iteration, so the loop as a
whole mixes generations. Binding one load to a variable before the loop (or
one per iteration for deliberately generation-chasing loops) is the fix;
compare-and-swap retry loops that re-load into a variable each attempt are
not flagged.`,
	Run: runAtomicSnap,
}

func runAtomicSnap(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests deliberately race generations to prove invariants
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSnapScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkSnapScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkSnapScope applies both checks to one function body, not descending
// into nested function literals (each is its own snapshot scope — a closure
// handed to a worker pool takes its own snapshot by design).
func checkSnapScope(pass *lint.Pass, body *ast.BlockStmt) {
	reported := make(map[token.Pos]bool)

	// Check 2 first so the loop-specific message wins when a load is both
	// inside a loop and a second load of its pointer.
	forEachInScope(body, func(n ast.Node) {
		var loopBody *ast.BlockStmt
		var loopPos, loopEnd token.Pos
		switch l := n.(type) {
		case *ast.ForStmt:
			loopBody, loopPos, loopEnd = l.Body, l.Pos(), l.End()
		case *ast.RangeStmt:
			loopBody, loopPos, loopEnd = l.Body, l.Pos(), l.End()
		default:
			return
		}
		forEachInScope(loopBody, func(n ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			call, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return
			}
			recv, path := atomicPointerLoad(pass.Info, call)
			if recv == nil {
				return
			}
			// Only loop-invariant pointers: a pointer produced inside the
			// loop body is a fresh snapshot source each iteration by
			// construction.
			if recv.Pos() >= loopPos && recv.Pos() < loopEnd {
				return
			}
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"inline %s.Load().%s inside a loop re-snapshots the atomic pointer every iteration: hoist one Load above the loop so every iteration sees the same generation",
					path, sel.Sel.Name)
			}
		})
	})

	// Check 1: second load of the same pointer in this scope. The key pairs
	// the anchoring object's identity with the printed receiver path, so
	// e.cur and e.prev are distinct pointers on the same receiver while two
	// spellings of the same field chain collide as they should.
	type loadKey struct {
		obj  types.Object
		path string
	}
	seen := make(map[loadKey]token.Pos)
	forEachInScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, path := atomicPointerLoad(pass.Info, call)
		if recv == nil {
			return
		}
		key := loadKey{obj: recv, path: path}
		if first, ok := seen[key]; ok {
			if !reported[call.Pos()] {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"second Load of %s in this scope (first at line %d): a concurrent Swap between the loads hands this scope two model generations — take one snapshot and use it throughout",
					path, pass.Fset.Position(first).Line)
			}
			return
		}
		seen[key] = call.Pos()
	})
}

// forEachInScope walks a body in source order, invoking fn for every node
// but never descending into nested function literals.
func forEachInScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// atomicPointerLoad reports whether call is a .Load() on a sync/atomic
// Pointer[T] (any receiver form: value field, pointer field, local). It
// returns the base object anchoring the receiver and the receiver's printed
// path ("e.cur"), or (nil, "") when the call is something else.
func atomicPointerLoad(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return nil, ""
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync/atomic.Pointer[") || !strings.HasSuffix(full, ".Load") {
		return nil, ""
	}
	base := baseIdentObj(info, sel.X)
	if base == nil {
		return nil, ""
	}
	return base, types.ExprString(sel.X)
}

// baseIdentObj walks a receiver expression (e.cur, (&s.reg).cur, ptr) down
// to its anchoring identifier's object.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
