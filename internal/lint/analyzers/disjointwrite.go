package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpupower/internal/lint"
)

// DisjointWrite mechanizes the DESIGN.md §7 disjoint-write convention: a
// closure handed to the worker pool may write shared (captured) state only
// through slots selected by its loop index — slot i belongs to iteration i,
// slot w to worker w — so parallel execution stays bitwise-identical to
// serial and data-race-free by construction.
var DisjointWrite = &lint.Analyzer{
	Name: "disjointwrite",
	Doc: `flags non-index-derived writes to captured state in parallel closures.

For every function literal passed to parallel.ForEach / ForEachWorker / Map /
MapPool / SumOrdered (package functions and *Pool methods alike), the closure
body is scanned for writes to variables declared outside it. A write is legal
only when it lands in a slot derived from the closure's loop parameters: a
slice/array element whose index expression mentions i or w (directly or
through locals assigned from them, e.g. r := i*stride; buf[r] = v), or memory
reached through an alias obtained with an i-derived selection (row :=
m.RowView(i); row[j] = v). Writes to whole captured variables, to captured
maps (concurrent map writes race regardless of key), and to elements at
indices unrelated to the loop parameters are reported. Method calls on
shared receivers are checked through per-method mutation summaries: when an
in-module method provably writes through its receiver (directly, or
transitively via other receiver methods), calling it on captured state whose
selection is not loop-derived is reported like the underlying write would
be. Methods whose bodies are unavailable (stdlib, interfaces) summarize to
non-mutating, so externally-synchronized state (mu.Lock) stays quiet at the
call and must be annotated where its guarded writes occur, with
//lint:ignore disjointwrite and a reason.`,
	Run: runDisjointWrite,
}

// parallelEntryPoints are the worker-pool loop functions whose final
// argument is the per-item closure. Both package-level wrappers and *Pool
// methods share these names.
var parallelEntryPoints = map[string]bool{
	"ForEach":       true,
	"ForEachWorker": true,
	"Map":           true,
	"MapPool":       true,
	"SumOrdered":    true,
}

func runDisjointWrite(pass *lint.Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/parallel") {
		// The pool implementation itself is the one sanctioned place where
		// goroutines and shared slices meet; it is covered by -race and the
		// equivalence suite, not by this syntactic convention.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, lit := parallelCallback(pass.Info, call)
			if lit != nil {
				dw := &disjointWriteCheck{pass: pass, entry: name, lit: lit}
				dw.run()
			}
			return true
		})
	}
	return nil
}

// parallelCallback returns the entry-point name and the function-literal
// callback of a worker-pool loop call, or ("", nil).
func parallelCallback(info *types.Info, call *ast.CallExpr) (string, *ast.FuncLit) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	if !pathHasSuffix(fn.Pkg().Path(), "internal/parallel") || !parallelEntryPoints[fn.Name()] {
		return "", nil
	}
	if len(call.Args) == 0 {
		return "", nil
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		// A named function passed as the callback is analyzed at its own
		// definition only if it is itself a parallel callback elsewhere;
		// the convention keeps loop bodies as literals, so this is rare.
		return "", nil
	}
	return fn.Name(), lit
}

// disjointWriteCheck is the per-closure dataflow pass. Two intra-closure
// facts are tracked per local object:
//
//   - derived:   the value is (transitively) computed from a loop parameter,
//     so using it as an index selects an item-owned slot;
//   - aliasShared / aliasDerived: the local aliases captured memory (row :=
//     m.RowView(r)), and whether that alias was selected by a derived value.
//
// Both are propagated in a single syntactic-order pass — good enough for
// the straight-line loop bodies the convention prescribes, and strictly
// conservative: an undecidable write is reported, never ignored.
type disjointWriteCheck struct {
	pass  *lint.Pass
	entry string
	lit   *ast.FuncLit

	derived      map[types.Object]bool
	aliasShared  map[types.Object]bool
	aliasDerived map[types.Object]bool
}

func (dw *disjointWriteCheck) run() {
	dw.derived = make(map[types.Object]bool)
	dw.aliasShared = make(map[types.Object]bool)
	dw.aliasDerived = make(map[types.Object]bool)

	// Every callback parameter is an index seed: ForEach/Map/SumOrdered pass
	// (i), ForEachWorker passes (worker, i) — per-worker scratch indexed by
	// w is as disjoint as per-item slots indexed by i.
	if dw.lit.Type.Params != nil {
		for _, field := range dw.lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := dw.pass.Info.Defs[name]; obj != nil {
					dw.derived[obj] = true
				}
			}
		}
	}

	ast.Inspect(dw.lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if _, lit := parallelCallback(dw.pass.Info, inner); lit != nil {
				// A nested pool loop is checked by its own pass; descending
				// here would double-report its writes against the outer seeds.
				return false
			}
			dw.checkMethodCall(inner)
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			dw.propagate(st)
			dw.checkAssign(st)
		case *ast.IncDecStmt:
			dw.checkWrite(st.X, st.Pos())
		case *ast.RangeStmt:
			dw.propagateRange(st)
		}
		return true
	})
}

// localObj resolves e to a variable object declared inside the closure.
func (dw *disjointWriteCheck) localObj(e ast.Expr) types.Object {
	obj := identObj(dw.pass.Info, e)
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	if obj.Pos() < dw.lit.Pos() || obj.Pos() > dw.lit.End() {
		return nil
	}
	return obj
}

// capturedVar resolves e to a variable captured from outside the closure
// (including package-level variables).
func (dw *disjointWriteCheck) capturedVar(e ast.Expr) types.Object {
	obj := identObj(dw.pass.Info, e)
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= dw.lit.Pos() && v.Pos() <= dw.lit.End() {
		return nil
	}
	return v
}

// mentionsDerived reports whether any identifier in e resolves to a
// loop-parameter-derived value.
func (dw *disjointWriteCheck) mentionsDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := dw.pass.Info.Uses[id]; obj != nil && (dw.derived[obj] || dw.aliasDerived[obj]) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsShared reports whether e references captured variables or shared
// aliases — i.e. whether a value computed from e can alias shared memory.
func (dw *disjointWriteCheck) mentionsShared(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := dw.pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if dw.aliasShared[obj] {
				found = true
			} else if v, ok := obj.(*types.Var); ok && (v.Pos() < dw.lit.Pos() || v.Pos() > dw.lit.End()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// freshAlloc reports whether e's top-level form provably creates new memory
// (make/new/composite literal), so a local initialized from it owns its
// storage even when size arguments mention captured variables.
func freshAlloc(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "new"
			}
		}
	}
	return false
}

// aliasCapable reports whether a value of this type can alias other memory:
// pointers, slices, maps, interfaces and channels can; plain scalars and
// value structs cannot. (Keyed on the declared object's type, not Info.Types,
// because the LHS ident of a := definition has no recorded expression type.)
func aliasCapable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan:
		return true
	}
	return false
}

// propagate updates the derived/alias facts for locals on the LHS of an
// assignment.
func (dw *disjointWriteCheck) propagate(st *ast.AssignStmt) {
	// Only 1:1 and n:n forms propagate; the rare multi-value call form
	// (v, err := f(...)) conservatively taints every LHS from the call expr.
	for i, lhs := range st.Lhs {
		obj := dw.localObj(lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		} else {
			continue
		}
		if dw.mentionsDerived(rhs) {
			dw.derived[obj] = true
		}
		if aliasCapable(obj.Type()) && dw.mentionsShared(rhs) && !freshAlloc(dw.pass.Info, rhs) {
			dw.aliasShared[obj] = true
			if dw.mentionsDerived(rhs) {
				dw.aliasDerived[obj] = true
			}
		}
	}
}

// propagateRange seeds range key/value locals: ranging over an i-derived or
// shared-aliased container propagates both facts onto the element variables.
func (dw *disjointWriteCheck) propagateRange(st *ast.RangeStmt) {
	seed := func(e ast.Expr) {
		obj := dw.localObj(e)
		if obj == nil {
			return
		}
		if dw.mentionsDerived(st.X) {
			dw.derived[obj] = true
		}
		if aliasCapable(obj.Type()) && dw.mentionsShared(st.X) {
			dw.aliasShared[obj] = true
			if dw.mentionsDerived(st.X) {
				dw.aliasDerived[obj] = true
			}
		}
	}
	if st.Key != nil {
		seed(st.Key)
	}
	if st.Value != nil {
		seed(st.Value)
	}
}

// checkMethodCall consults the per-method mutation summary for calls whose
// receiver reaches captured state without a loop-derived selection: t.Set(k,
// v) on a captured table is the same race as t.m[k] = v, one call deeper.
func (dw *disjointWriteCheck) checkMethodCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := calleeFunc(dw.pass.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sel.X
	if !dw.mentionsShared(recv) || dw.mentionsDerived(recv) {
		// Receiver is closure-owned, or was selected by a loop parameter
		// (rows[i].Accumulate(v) targets iteration i's own slot).
		return
	}
	if mutates, _ := methodMutates(dw.pass, fn, nil); !mutates {
		return
	}
	dw.pass.Reportf(call.Pos(),
		"call to %s.%s inside a parallel.%s closure mutates shared state through its receiver: the method's writes race across iterations exactly like direct assignments; target an index-owned slot or annotate the external synchronization (DESIGN.md §7)",
		types.ExprString(recv), fn.Name(), dw.entry)
}

// checkAssign inspects every assigned lvalue. Pure definitions (:= creating
// locals) are not writes to shared state; everything else goes through
// checkWrite.
func (dw *disjointWriteCheck) checkAssign(st *ast.AssignStmt) {
	for _, lhs := range st.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if st.Tok == token.DEFINE {
			continue // := always creates or rebinds closure-local names
		}
		dw.checkWrite(lhs, st.Pos())
	}
}

// checkWrite classifies one written lvalue and reports violations of the
// disjoint-write convention.
func (dw *disjointWriteCheck) checkWrite(lhs ast.Expr, pos token.Pos) {
	// Whole-variable write to a captured variable: never disjoint.
	if v := dw.capturedVar(lhs); v != nil {
		dw.pass.Reportf(pos,
			"write to captured variable %q inside a parallel.%s closure: whole-variable writes race across iterations; give each item its own slot (out[i] = ...) and fold after the loop (DESIGN.md §7 disjoint-write convention)",
			v.Name(), dw.entry)
		return
	}
	if obj := dw.localObj(lhs); obj != nil {
		return // rebinding a closure-local scalar/slice header is private
	}

	// Walk the lvalue chain down to its base, tracking whether any index
	// step is loop-derived and whether the outermost step writes a map.
	indexDerived := false
	mapWrite := false
	e := ast.Unparen(lhs)
	if ix, ok := e.(*ast.IndexExpr); ok {
		if tv, ok := dw.pass.Info.Types[ix.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				mapWrite = true
			}
		}
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			if dw.mentionsDerived(x.Index) {
				indexDerived = true
			}
			e = x.X
			continue
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := dw.pass.Info.Uses[x]
			if obj == nil {
				return
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return
			}
			local := v.Pos() >= dw.lit.Pos() && v.Pos() <= dw.lit.End()
			shared := !local || dw.aliasShared[obj]
			if !shared {
				return // closure-owned memory: always fine
			}
			if dw.derived[obj] || dw.aliasDerived[obj] {
				indexDerived = true // the alias itself was selected by i
			}
			if mapWrite {
				dw.pass.Reportf(pos,
					"write into captured map through %q inside a parallel.%s closure: concurrent map writes race regardless of key; collect per-item results in an index-owned slice and fold into the map after the loop (DESIGN.md §7)",
					v.Name(), dw.entry)
				return
			}
			if !indexDerived {
				dw.pass.Reportf(pos,
					"write to shared state through %q inside a parallel.%s closure is not indexed by a loop parameter: iteration i may write only slot i (or derived indices like i*stride+k); derive the index from the closure's parameters or annotate the external synchronization (DESIGN.md §7)",
					v.Name(), dw.entry)
			}
			return
		default:
			return // unresolvable base (call result, type assertion): out of scope
		}
	}
}
