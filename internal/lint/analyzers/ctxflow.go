package analyzers

import (
	"go/ast"
	"go/types"

	"gpupower/internal/lint"
)

// CtxFlow enforces the cancellation invariant from PR 2: long operations are
// cancellable at iteration/configuration granularity, and contexts flow from
// the entry point down — they are not minted in the middle of the call graph.
var CtxFlow = &lint.Analyzer{
	Name: "ctxflow",
	Doc: `flags dropped-context loops and mid-stack context.Background()/TODO().

Two checks. (1) An exported function that accepts a context.Context and
contains a for/range loop must consult the context somewhere in its body —
either directly (ctx.Err(), ctx.Done(), backend.CheckContext) or by
forwarding ctx into a callee; accepting a context and then looping over
configurations or iterations without ever touching it silently loses
cancellation. (2) context.Background() and context.TODO() may appear only in
package main and in _test.go files; library code must thread the caller's
context (root-façade convenience wrappers carry explicit
//lint:ignore ctxflow annotations). The estimator, profiler, experiment,
autotune, governor and DVFS paths are where this invariant is load-bearing,
but the check holds module-wide.`,
	Run: runCtxFlow,
}

func runCtxFlow(pass *lint.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		testFile := pass.IsTestFile(f.Pos())

		// Check 2: no context minting outside main/tests.
		if !isMain && !testFile {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch calleeFullName(pass.Info, call) {
				case "context.Background", "context.TODO":
					pass.Reportf(call.Pos(),
						"%s in library code: thread the caller's context instead of minting one mid-stack (cancellation stops here)", calleeFullName(pass.Info, call))
				}
				return true
			})
		}

		// Check 1: exported funcs that accept a ctx, loop, and never consult it.
		if testFile {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxParams := contextParams(pass.Info, fd)
			if len(ctxParams) == 0 {
				continue
			}
			hasLoop := false
			usesCtx := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch m := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					hasLoop = true
				case *ast.Ident:
					if obj := pass.Info.Uses[m]; obj != nil {
						for _, p := range ctxParams {
							if obj == p {
								usesCtx = true
							}
						}
					}
				}
				return true
			})
			if hasLoop && !usesCtx {
				pass.Reportf(fd.Name.Pos(),
					"exported %s accepts a context.Context and loops but never consults or forwards it: check ctx.Err()/ctx.Done() (or pass ctx to the callee) so iteration-granular cancellation holds", fd.Name.Name)
			}
		}
	}
	return nil
}

// contextParams returns the objects of the function's context.Context
// parameters (empty when it takes none or they are blank).
func contextParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if named, ok := obj.Type().(*types.Named); ok {
				tn := named.Obj()
				if tn.Pkg() != nil && tn.Pkg().Path() == "context" && tn.Name() == "Context" {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}
