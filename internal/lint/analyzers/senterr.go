package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"gpupower/internal/lint"
)

// SentErr enforces the typed-error taxonomy from PR 2: sentinel errors
// (internal/backend's ErrThrottled, ErrTraceMismatch, ...) are matched with
// errors.Is so wrapped chains keep matching, and wrapping preserves the chain
// with %w.
var SentErr = &lint.Analyzer{
	Name: "senterr",
	Doc: `flags sentinel-error equality and error wrapping that breaks errors.Is.

Two checks. (1) == / != between two error-typed operands (err ==
backend.ErrThrottled, err != io.EOF): once anything in the call chain wraps
the sentinel with %w, the identity comparison silently stops matching — use
errors.Is. Comparisons against nil are never flagged (err == nil is the
idiomatic success check, in tests and elsewhere). (2) fmt.Errorf calls that
receive an error argument but whose format string has no %w verb: the cause
is flattened into text and the taxonomy is lost to callers.`,
	Run: runSentErr,
}

func runSentErr(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if isErrorExpr(pass.Info, e.X) && isErrorExpr(pass.Info, e.Y) {
					pass.Reportf(e.OpPos,
						"sentinel-error comparison with %s: use errors.Is so wrapped chains still match", e.Op)
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, e)
			}
			return true
		})
	}
	return nil
}

func checkErrorfWrap(pass *lint.Pass, call *ast.CallExpr) {
	if calleeFullName(pass.Info, call) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	hasErrArg := false
	for _, arg := range call.Args[1:] {
		if isErrorExpr(pass.Info, arg) {
			hasErrArg = true
			break
		}
	}
	if !hasErrArg {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: cannot decide statically
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
		return
	}
	pass.Reportf(call.Pos(),
		"fmt.Errorf wraps an error without %%w: the cause is flattened to text and errors.Is/errors.As stop matching; use %%w")
}
