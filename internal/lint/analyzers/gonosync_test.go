package analyzers_test

import (
	"testing"

	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

func TestGoNoSync(t *testing.T) {
	// gonosync/internal/parallel is loaded too: the worker-pool exemption is
	// asserted by the absence of want comments there.
	linttest.Run(t, "testdata", analyzers.GoNoSync, "gonosync/...")
}
