package analyzers

import (
	"gpupower/internal/lint"
)

// UnusedIgnore reports //lint:ignore directives that suppressed nothing.
// The directive inventory (~35 reasoned guard sites at the time of writing)
// is load-bearing documentation: each one asserts "this exact line violates
// an invariant for a reason". When the guarded code moves or is fixed, the
// stale directive keeps asserting an exception that no longer exists — and
// worse, silently re-arms if a *new* violation lands on its line.
//
// Unlike the syntactic analyzers, this check cannot run as a Pass over one
// package's AST: it needs the outcome of suppression. The Run hook is
// therefore a no-op and the engine computes the findings after folding every
// other analyzer through the directives (see lint.Runner). The descriptor
// exists so the check is selectable, listable and fixture-testable like any
// other analyzer.
var UnusedIgnore = &lint.Analyzer{
	Name: lint.UnusedIgnoreName,
	Doc: `flags //lint:ignore directives that suppressed zero diagnostics.

A directive is reported only when the verdict is decidable: every analyzer
it names must have actually run (running -analyzers floateq does not declare
all ctxflow ignores dead). A directive that names unusedignore itself
(//lint:ignore floateq,unusedignore reason) is the sanctioned way to keep a
deliberately dormant suppression, e.g. one guarding generated or
platform-conditional code.`,
	Run: func(*lint.Pass) error { return nil }, // engine-level: see lint.Runner
}
