package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpupower/internal/lint"
)

// MapOrder enforces the bitwise-determinism invariant from PR 1: the §III-D
// estimator must fit the same model bit-for-bit regardless of scheduling, so
// no order-sensitive effect may depend on Go's randomized map iteration
// order.
var MapOrder = &lint.Analyzer{
	Name: "maporder",
	Doc: `flags range-over-map loops with order-sensitive bodies.

A range over a map is flagged when its body (a) appends to a slice declared
outside the loop that is not subsequently passed to sort.*/slices.Sort*, (b)
accumulates floating-point values declared outside the loop (float addition is
not associative, so the sum is scheduling-dependent bit-for-bit), or (c)
emits output (fmt printing, Write*/io.WriteString). The sanctioned pattern is
to collect the keys, sort them, and range over the sorted slice — collecting
keys into a slice that is later sorted is recognized and not flagged.`,
	Run: runMapOrder,
}

func runMapOrder(pass *lint.Pass) error {
	for _, f := range pass.Files {
		sorted := collectSortCalls(pass.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs, sorted)
			return true
		})
	}
	return nil
}

// collectSortCalls records every object that appears in the arguments of a
// sorting call (any sort.* call, or a slices.Sort* call), with the call
// positions — the "collect keys then sort" laundering pattern.
func collectSortCalls(info *types.Info, f *ast.File) map[types.Object][]token.Pos {
	out := make(map[types.Object][]token.Pos)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		isSort := fn.Pkg().Path() == "sort" ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						out[obj] = append(out[obj], call.Pos())
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func checkMapRangeBody(pass *lint.Pass, rs *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		obj := identObj(pass.Info, e)
		if obj == nil {
			return nil, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return obj, false // loop-local: per-iteration state is order-insensitive
		}
		return obj, true
	}
	sortedAfter := func(obj types.Object) bool {
		for _, p := range sorted[obj] {
			if p > rs.End() {
				return true
			}
		}
		return false
	}
	isAppendTo := func(rhs ast.Expr) bool {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "append"
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range st.Lhs {
					obj, outside := declaredOutside(lhs)
					if obj != nil && outside && isFloat(pass.Info, lhs) {
						pass.Reportf(st.Pos(),
							"floating-point accumulation into %q inside range over map: float addition is not associative, so the result depends on the randomized iteration order; range over sorted keys instead", obj.Name())
					}
				}
			case token.ASSIGN:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					obj, outside := declaredOutside(lhs)
					if obj == nil || !outside {
						continue
					}
					rhs := st.Rhs[i]
					if isAppendTo(rhs) {
						if !sortedAfter(obj) {
							pass.Reportf(st.Pos(),
								"append to %q inside range over map without a subsequent sort: element order follows the randomized map iteration order; sort %q afterwards or range over sorted keys", obj.Name(), obj.Name())
						}
						continue
					}
					if be, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok &&
						(be.Op == token.ADD || be.Op == token.SUB) && isFloat(pass.Info, lhs) {
						if x := identObj(pass.Info, be.X); x == obj {
							pass.Reportf(st.Pos(),
								"floating-point accumulation into %q inside range over map: float addition is not associative, so the result depends on the randomized iteration order; range over sorted keys instead", obj.Name())
						} else if y := identObj(pass.Info, be.Y); y == obj {
							pass.Reportf(st.Pos(),
								"floating-point accumulation into %q inside range over map: float addition is not associative, so the result depends on the randomized iteration order; range over sorted keys instead", obj.Name())
						}
					}
				}
			}
		case *ast.CallExpr:
			if emitsOutput(pass.Info, st) {
				pass.Reportf(st.Pos(),
					"output emitted inside range over map: lines appear in randomized iteration order; range over sorted keys instead")
			}
		}
		return true
	})
}

// emitsOutput recognizes calls that externalize data in iteration order:
// the fmt print family, io.WriteString, and Write*/String-builder methods.
func emitsOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		// print/println builtins
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "print" || b.Name() == "println"
			}
		}
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			switch fn.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
			return false
		case "io":
			return fn.Name() == "WriteString"
		}
	}
	if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}
