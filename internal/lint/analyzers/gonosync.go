package analyzers

import (
	"go/ast"

	"gpupower/internal/lint"
)

// GoNoSync enforces the worker-pool invariant from PR 1: production
// concurrency goes through internal/parallel, whose pool owns worker counts,
// panic propagation, deterministic folding and cancellation. A naked go
// statement elsewhere reintroduces exactly the unbounded, unsynchronized
// fan-out the pool exists to prevent.
var GoNoSync = &lint.Analyzer{
	Name: "gonosync",
	Doc: `flags go statements outside internal/parallel.

The worker pool (internal/parallel) is the only sanctioned spawn site for
production goroutines: it bounds fan-out, propagates panics, folds results in
deterministic order and honors cancellation. _test.go files are exempt —
tests legitimately race goroutines against contexts and deadlines.`,
	Run: runGoNoSync,
}

func runGoNoSync(pass *lint.Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/parallel") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"naked go statement outside internal/parallel: spawn through the worker pool (parallel.ForEach/ForEachWorker) so fan-out stays bounded, panics propagate and results fold deterministically")
			}
			return true
		})
	}
	return nil
}
