// Fixture for the maporder analyzer: order-sensitive effects inside
// range-over-map bodies.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// SumFloats accumulates floats across randomized map iteration order.
func SumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "floating-point accumulation into \"s\" inside range over map"
	}
	return s
}

// SumFloatsPlain uses the x = x + v spelling.
func SumFloatsPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "floating-point accumulation into \"total\" inside range over map"
	}
	return total
}

// CollectUnsorted appends map keys without a subsequent sort.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside range over map without a subsequent sort"
	}
	return keys
}

// Emit prints in map iteration order.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output emitted inside range over map"
	}
}

// BuildString writes into a builder in map iteration order.
func BuildString(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "output emitted inside range over map"
	}
	return sb.String()
}

// --- negative cases: must not be flagged ---

// SortedKeys is the sanctioned collect-then-sort pattern.
func SortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// IntCount accumulates integers: associative, so order-insensitive.
func IntCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// MaxValue tracks an extremum: order-insensitive.
func MaxValue(m map[string]float64) float64 {
	var mx float64
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// MapToMap writes into another map: content is order-insensitive.
func MapToMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// LoopLocal accumulates into a variable declared inside the loop body.
func LoopLocal(m map[string][]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k, vs := range m {
		keys = append(keys, k)
		var local float64
		for _, v := range vs {
			local += v
		}
		_ = local
	}
	sort.Strings(keys)
	return nil
}

// SliceRange accumulates floats over a slice: iteration order is fixed.
func SliceRange(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}
