// Package core deliberately re-introduces the unsorted map-accumulation
// that PR 1 removed from the estimator (the OmegaCore fold in
// (*Breakdown).Total): the acceptance regression proving maporder would
// catch the determinism bug coming back.
package core

// Component mirrors hw.Component.
type Component int

// Breakdown mirrors the model's power decomposition.
type Breakdown struct {
	Constant  float64
	OmegaCore map[Component]float64
}

// Total re-introduces the pre-lint nondeterministic fold: summing the
// per-component map in randomized iteration order.
func (b *Breakdown) Total() float64 {
	s := b.Constant
	for _, w := range b.OmegaCore {
		s += w // want "floating-point accumulation into \"s\" inside range over map"
	}
	return s
}
