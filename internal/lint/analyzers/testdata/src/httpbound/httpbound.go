// Fixture for the httpbound analyzer: unbounded request-body reads and
// minted contexts inside HTTP handlers.
package httpbound

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
)

type payload struct {
	CoreMHz float64 `json:"core_mhz"`
}

// UnboundedDecode reads the body with no MaxBytesReader anywhere.
func UnboundedDecode(w http.ResponseWriter, r *http.Request) {
	var p payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil { // want "r.Body is read without an http.MaxBytesReader bound"
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// ReadBeforeWrap bounds the body, but only after already reading it.
func ReadBeforeWrap(w http.ResponseWriter, r *http.Request) {
	peek, _ := io.ReadAll(r.Body) // want "r.Body is read before the http.MaxBytesReader wrap"
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	_ = peek
}

// MintedContext threads a fresh context instead of the request's.
func MintedContext(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background inside a request handler"
	doWork(ctx)
}

// MintedTODO is the TODO variant, inside a handler closure without its own
// request parameter (it belongs to the enclosing handler's scope).
func MintedTODO(w http.ResponseWriter, r *http.Request) {
	run := func() {
		doWork(context.TODO()) // want "context.TODO inside a request handler"
	}
	run()
}

// Annotated is the sanctioned escape hatch with a reason.
func Annotated(w http.ResponseWriter, r *http.Request) {
	var p payload
	dec := json.NewDecoder(r.Body) //lint:ignore httpbound trusted internal socket: bounded by the reverse proxy in front
	_ = dec.Decode(&p)
}

// --- negative cases ---

// BoundedDecode is the contract: wrap first, then read.
func BoundedDecode(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var p payload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
	doWork(r.Context())
}

// DelegatingHandler never touches r.Body itself; the helper bounds it.
func DelegatingHandler(w http.ResponseWriter, r *http.Request) {
	var p payload
	if !decodeBody(w, r, &p) {
		return
	}
	doWork(r.Context())
}

// decodeBody is the shared bounding helper (the internal/serve idiom).
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// NoBodyNoContext handlers (health checks, GETs) owe nothing.
func NoBodyNoContext(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
}

// NotAHandler: minting a context outside any request-taking function is
// ctxflow's business, not httpbound's.
func NotAHandler() {
	doWork(context.Background())
}

func doWork(ctx context.Context) { _ = ctx }
