// Fixture for the unitflow analyzer: MHz / volts / watts provenance through
// assignments, arithmetic, comparisons, signatures and composite literals.
package unitflow

import (
	"unitflow/internal/hw"
	"unitflow/internal/silicon"
)

// ScalePower is a volts-parameter sink for the call-argument checks.
func ScalePower(busVolts float64, scale float64) float64 {
	return busVolts * busVolts * scale
}

// --- true positives ---

// AddFreqToVolts adds a ladder frequency to a rail voltage.
func AddFreqToVolts(cfg hw.Config, railVolts float64) float64 {
	return cfg.CoreMHz + railVolts // want "cross-unit arithmetic: MHz-typed value \+ volts-typed value"
}

// CompareFreqToVolts orders a frequency against a voltage.
func CompareFreqToVolts(cfg hw.Config, railVolts float64) bool {
	return cfg.MemMHz < railVolts // want "cross-unit comparison: MHz-typed value < volts-typed value"
}

// MHzIntoVoltsParam feeds a catalog frequency into a voltage parameter.
func MHzIntoVoltsParam(cfg hw.Config) float64 {
	return ScalePower(cfg.CoreMHz, 2) // want "MHz-typed value passed to volts parameter \"busVolts\" of ScalePower"
}

// MHzIntoVoltsField assigns a frequency into the voltage anchor of a curve
// point — the wrong-by-1000x seed the analyzer exists to catch.
func MHzIntoVoltsField(cfg hw.Config, p *silicon.VoltagePoint) {
	p.Volts = cfg.CoreMHz // want "MHz-typed value assigned to volts-typed field \"Volts\""
}

// SwappedLiteral builds an anchor point with the fields crossed.
func SwappedLiteral(cfg hw.Config, curve *silicon.VoltageCurve) silicon.VoltagePoint {
	v := curve.VoltsAt(cfg.CoreMHz)
	return silicon.VoltagePoint{
		FMHz:  v,           // want "volts-typed value assigned to MHz-typed field \"FMHz\""
		Volts: cfg.CoreMHz, // want "MHz-typed value assigned to volts-typed field \"Volts\""
	}
}

// PropagatedSwap shows the unit following a local: fc is MHz via
// assignment, so the later comparison against a voltage is flagged.
func PropagatedSwap(dev *hw.Device, curve *silicon.VoltageCurve) bool {
	fc := dev.DefaultCore
	v := curve.VoltsAt(fc)
	return fc == v // want "cross-unit comparison: MHz-typed value == volts-typed value"
}

// LadderElement tracks units through slice elements and range loops.
func LadderElement(dev *hw.Device, railVolts float64) float64 {
	var worst float64
	for _, f := range dev.CoreFreqs {
		worst = f - railVolts // want "cross-unit arithmetic: MHz-typed value - volts-typed value"
	}
	return worst
}

// TDPVsVolts compares the watts budget to a voltage.
func TDPVsVolts(dev *hw.Device, railVolts float64) bool {
	return dev.TDP > railVolts // want "cross-unit comparison: watts-typed value > volts-typed value"
}

// SuffixedLocal seeds from the naming convention alone.
func SuffixedLocal(cfg hw.Config) float64 {
	refMHz := cfg.CoreMHz
	vddVolts := 1.05
	return refMHz + vddVolts // want "cross-unit arithmetic: MHz-typed value \+ volts-typed value"
}

// --- negatives: the model's legal shapes ---

// DynamicPower is the paper's working currency: multiplication changes the
// unit, so V̄²·f (and any scaling through products) is legal.
func DynamicPower(cfg hw.Config, curve *silicon.VoltageCurve) float64 {
	v := curve.VoltsAt(cfg.CoreMHz)
	return v * v * cfg.CoreMHz
}

// SameUnitMath adds and compares like quantities freely.
func SameUnitMath(cfg hw.Config, dev *hw.Device) bool {
	span := dev.DefaultCore - dev.CoreFreqs[0]
	mid := cfg.CoreMHz + span/2
	return mid <= dev.DefaultCore
}

// Interpolate mirrors VoltsAt: unit-preserving adds inside, unitless ratio
// from the division, volts carried through the blend.
func Interpolate(a, b silicon.VoltagePoint, fMHz float64) float64 {
	t := (fMHz - a.FMHz) / (b.FMHz - a.FMHz)
	return a.Volts + t*(b.Volts-a.Volts)
}

// UnitlessConstants never conflict: 0 and 1e6 carry no unit.
func UnitlessConstants(cfg hw.Config) bool {
	hz := cfg.CoreMHz * 1e6
	return hz > 0 && cfg.CoreMHz != 0
}

// ConversionTransparent keeps the unit through an explicit conversion.
func ConversionTransparent(cfg hw.Config, dev *hw.Device) bool {
	return float64(cfg.CoreMHz) <= dev.DefaultCore
}

// RightSignature passes each unit where it belongs.
func RightSignature(cfg hw.Config, curve *silicon.VoltageCurve) float64 {
	return ScalePower(curve.VoltsAt(cfg.CoreMHz), 2)
}

// Annotated demonstrates the escape hatch for a deliberate raw comparison.
func Annotated(cfg hw.Config, railVolts float64) bool {
	//lint:ignore unitflow fixture: deliberately comparing raw magnitudes
	return cfg.CoreMHz > railVolts
}
