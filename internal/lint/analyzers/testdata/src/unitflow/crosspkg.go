// Cross-package unit-inference cases: the hw → governor → DTO flow where
// the unit is established in one package and misused in another.
package unitflow

import (
	"unitflow/internal/governor"
	"unitflow/internal/hw"
	"unitflow/internal/silicon"
)

// operatingDTO mirrors a serve wire struct: field names declare the units.
type operatingDTO struct {
	CoreMHz   float64
	RailVolts float64
}

// CrossPackageFieldSwap routes an inferred-MHz governor result into the
// volts slot of the DTO — the exact serving-arc bug class.
func CrossPackageFieldSwap(c hw.Config) operatingDTO {
	return operatingDTO{
		CoreMHz:   governor.Target(c),
		RailVolts: governor.Target(c), // want "MHz-typed value assigned to volts-typed field \"RailVolts\""
	}
}

// CrossPackageArith adds an inferred-MHz value to a seeded-volts value.
func CrossPackageArith(c hw.Config, pt silicon.VoltagePoint) float64 {
	return governor.Target(c) + pt.Volts // want "cross-unit arithmetic: MHz-typed value \+ volts-typed value"
}

// VarFactMisuse reads the unit of a dependency's package-level var from its
// initializer.
func VarFactMisuse(pt silicon.VoltagePoint) bool {
	return governor.Anchor < pt.Volts // want "cross-unit comparison: MHz-typed value < volts-typed value"
}

// ChainedInference follows facts through two in-module hops.
func ChainedInference(c hw.Config, pt silicon.VoltagePoint) float64 {
	return governor.Chained(c) - pt.Volts // want "cross-unit arithmetic: MHz-typed value - volts-typed value"
}

// MultiResultInference destructures a two-result inferred signature.
func MultiResultInference(c hw.Config, pt silicon.VoltagePoint) float64 {
	core, mem := governor.Split(c)
	_ = mem
	return core + pt.Volts // want "cross-unit arithmetic: MHz-typed value \+ volts-typed value"
}

// --- negative cases ---

// CrossPackageAgreement uses the inferred values in unit-correct slots.
func CrossPackageAgreement(c hw.Config) operatingDTO {
	core, _ := governor.Split(c)
	return operatingDTO{CoreMHz: core}
}

// BlendedStaysUnchecked: the callee's returns disagree, so no fact exists
// and this deliberate mix is not (and cannot soundly be) reported.
func BlendedStaysUnchecked(c hw.Config, d hw.Device, pt silicon.VoltagePoint) float64 {
	return governor.Blended(c, d) + pt.Volts
}
