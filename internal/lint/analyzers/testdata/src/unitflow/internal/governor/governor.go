// Package governor mirrors the serving-arc plumbing: values acquire their
// unit here and flow out through neutrally-named APIs, so only the
// cross-package inference facts can carry the provenance to callers.
package governor

import "unitflow/internal/hw"

var defaultCfg = hw.Config{CoreMHz: 1911, MemMHz: 5505}

// Anchor's unit is visible only in its initializer — a package-level var
// fact.
var Anchor = defaultCfg.CoreMHz

// Target returns the governor's chosen core clock. Nothing in the name or
// signature says MHz; the fact layer derives it from the return statements.
func Target(c hw.Config) float64 {
	if c.CoreMHz > 0 {
		return c.CoreMHz
	}
	return defaultCfg.CoreMHz
}

// Split returns both clocks through a neutrally-named two-result signature.
func Split(c hw.Config) (float64, float64) {
	return c.CoreMHz, c.MemMHz
}

// Chained forwards another inferable function: facts compose transitively.
func Chained(c hw.Config) float64 {
	return Target(c)
}

// Blended disagrees with itself across returns (a frequency on one path, a
// budget on the other), so no fact is derivable and callers stay unchecked.
func Blended(c hw.Config, d hw.Device) float64 {
	if c.CoreMHz > 0 {
		return c.CoreMHz
	}
	return d.TDP
}
