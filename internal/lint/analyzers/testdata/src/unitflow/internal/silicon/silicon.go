// Package silicon mirrors the voltage-model surface the unitflow analyzer
// seeds from.
package silicon

// VoltagePoint anchors a V(f) curve: at frequency FMHz the rail runs at
// Volts.
type VoltagePoint struct {
	FMHz  float64
	Volts float64
}

// VoltageCurve is a piecewise-linear V(f) relation.
type VoltageCurve struct {
	Points []VoltagePoint
}

// VoltsAt returns V(f).
func (c *VoltageCurve) VoltsAt(fMHz float64) float64 {
	if len(c.Points) == 0 {
		return 0
	}
	return c.Points[0].Volts
}

// NormalizedAt returns V̄(f) = V(f)/V(refMHz).
func (c *VoltageCurve) NormalizedAt(fMHz, refMHz float64) float64 {
	return c.VoltsAt(fMHz) / c.VoltsAt(refMHz)
}
