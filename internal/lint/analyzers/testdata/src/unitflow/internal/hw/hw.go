// Package hw mirrors the catalog surface the unitflow analyzer seeds from.
package hw

// Config is one (core, memory) frequency configuration in MHz.
type Config struct {
	CoreMHz float64
	MemMHz  float64
}

// Device carries the frequency ladders and the power budget.
type Device struct {
	CoreFreqs   []float64
	MemFreqs    []float64
	DefaultCore float64
	DefaultMem  float64
	TDP         float64
}

// DefaultConfig returns the device's reference configuration.
func (d *Device) DefaultConfig() Config {
	return Config{CoreMHz: d.DefaultCore, MemMHz: d.DefaultMem}
}
