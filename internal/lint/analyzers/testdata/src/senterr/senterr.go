// Fixture for the senterr analyzer: sentinel-error identity comparisons and
// wrap-without-%w.
package senterr

import (
	"errors"
	"fmt"
)

// ErrThrottled mirrors the backend taxonomy's sentinels.
var ErrThrottled = errors.New("reference run throttled")

// IsThrottled compares a sentinel by identity: breaks once wrapped.
func IsThrottled(err error) bool {
	return err == ErrThrottled // want "sentinel-error comparison with =="
}

// NotThrottled is the != spelling.
func NotThrottled(err error) bool {
	return err != ErrThrottled // want "sentinel-error comparison with !="
}

// WrapLossy flattens the cause to text.
func WrapLossy(err error) error {
	return fmt.Errorf("measuring reference: %v", err) // want "fmt.Errorf wraps an error without %w"
}

// WrapLossyS loses the chain through %s too.
func WrapLossyS(err error) error {
	return fmt.Errorf("measuring reference: %s", err) // want "fmt.Errorf wraps an error without %w"
}

// --- negative cases ---

// NilCheck is the idiomatic success check and is never flagged.
func NilCheck(err error) bool { return err == nil }

// NotNilCheck likewise.
func NotNilCheck(err error) bool { return err != nil }

// IsThrottledIs is the sanctioned matcher.
func IsThrottledIs(err error) bool { return errors.Is(err, ErrThrottled) }

// WrapPreserving keeps the chain.
func WrapPreserving(err error) error {
	return fmt.Errorf("measuring reference: %w", err)
}

// WrapMixed has an error and a non-error argument with %w present.
func WrapMixed(cfg string, err error) error {
	return fmt.Errorf("config %s: %w", cfg, err)
}

// NoErrArg formats plain values.
func NoErrArg(cfg string, watts float64) error {
	return fmt.Errorf("config %s: %g W over TDP", cfg, watts)
}
