// Fixture for the floateq analyzer: exact floating-point comparisons.
package floateq

// Converged compares two floats exactly.
func Converged(a, b float64) bool {
	return a == b // want "exact floating-point comparison"
}

// Changed uses != on float32.
func Changed(a, b float32) bool {
	return a != b // want "exact floating-point comparison"
}

// ZeroGuard compares against the zero literal (still exact; must be
// annotated at deliberate guard sites).
func ZeroGuard(x float64) bool {
	return x == 0 // want "exact floating-point comparison"
}

// AnnotatedGuard is the sanctioned annotated form.
func AnnotatedGuard(x float64) float64 {
	if x == 0 { //lint:ignore floateq division guard: exactly-zero denominators must not divide
		return 0
	}
	return 1 / x
}

// --- negative cases ---

// IntEq compares integers.
func IntEq(a, b int) bool { return a == b }

// Tolerance is how comparisons should be written.
func Tolerance(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// ConstFold is decided at compile time.
func ConstFold() bool {
	const a, b = 1.0, 2.0
	return a == b
}

// StructEq compares structs (exact config identity, not float arithmetic).
type cfg struct{ Core, Mem float64 }

func StructEq(a, b cfg) bool { return a == b }
