// Package linalg mirrors the module's approved tolerance-helper home: exact
// comparisons here are deliberate (pivot checks, NNLS active-set zeros) and
// exempt from floateq.
package linalg

// ExactZero is allowed here and only here without annotation.
func ExactZero(x float64) bool { return x == 0 }

// BitwiseEqual is the approved exact-equality helper.
func BitwiseEqual(a, b float64) bool { return a == b }
