// Fixture for the unusedignore analyzer: directives that suppress nothing
// are themselves diagnostics. Run together with floateq so "used" has a
// witness.
package unusedignore

// LadderContains carries a *used* floateq ignore: the exact comparison below
// is a real floateq finding, so the directive earns its keep (no want).
func LadderContains(ladder []float64, f float64) bool {
	for _, y := range ladder {
		if y == f { //lint:ignore floateq fixture: ladder membership is exact by construction
			return true
		}
	}
	return false
}

// StaleGuard carries an ignore on a line with no finding at all: the guarded
// comparison was long since rewritten, the annotation rotted in place.
func StaleGuard(a, b float64) bool {
	//lint:ignore floateq fixture: this guarded an exact comparison that no longer exists // want "//lint:ignore floateq directive suppressed no diagnostics"
	return a > b
}

// TrailingStale is the trailing-comment form of the same rot.
func TrailingStale(a, b float64) float64 {
	return a + b //lint:ignore floateq fixture: stale trailing annotation // want "//lint:ignore floateq directive suppressed no diagnostics"
}

// KeptDeliberately names unusedignore in its own list: the sanctioned way
// to keep a deliberately dormant suppression (no want).
func KeptDeliberately(a, b float64) bool {
	//lint:ignore floateq,unusedignore fixture: dormant on purpose, guards a build-tagged variant
	return a > b
}
