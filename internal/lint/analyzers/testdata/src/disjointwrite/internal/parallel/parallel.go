// Package parallel is a serial stand-in for the real worker pool, carrying
// the same entry-point signatures so the disjointwrite fixtures resolve the
// callees exactly as the module does.
package parallel

// Pool mirrors the real bounded worker pool.
type Pool struct{ workers int }

// NewPool returns a pool with the given worker bound.
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// ForEach runs fn(i) for every i in [0, n).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.ForEachWorker(n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker id passed to fn.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// ForEach runs fn over [0, n) on the default pool.
func ForEach(n int, fn func(i int) error) error {
	return (&Pool{}).ForEach(n, fn)
}

// ForEachWorker runs fn over [0, n) on the default pool.
func ForEachWorker(n int, fn func(worker, i int) error) error {
	return (&Pool{}).ForEachWorker(n, fn)
}

// Map runs fn for every index and returns the results in index order.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapPool[T](nil, n, fn)
}

// MapPool is Map on an explicit pool.
func MapPool[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// SumOrdered folds per-item partial sums in index order.
func SumOrdered(n int, fn func(i int) (float64, error)) (float64, error) {
	var s float64
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s, nil
}
