// Package accum gives the disjointwrite fixture a dependency whose mutating
// method is only visible through the cross-package summary layer.
package accum

// Counter is a shared tally mutated one call deep.
type Counter struct{ n int }

// Add writes through the pointer receiver.
func (c *Counter) Add(d int) { c.n += d }

// Total only reads.
func (c *Counter) Total() int { return c.n }
