// Fixture for the disjointwrite analyzer: writes to captured state inside
// worker-pool closures must be confined to loop-parameter-derived slots.
package disjointwrite

import (
	"sync"

	"disjointwrite/internal/accum"
	"disjointwrite/internal/parallel"
)

// Matrix mimics the linalg row-view surface the real tree aliases through.
type Matrix struct{ data []float64 }

// RowView returns a view of row i.
func (m *Matrix) RowView(i int) []float64 { return m.data[i*4 : (i+1)*4] }

// --- true positives ---

// SharedScalar accumulates into a captured scalar from every iteration.
func SharedScalar(xs []float64) float64 {
	var sum float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		sum += xs[i] // want "write to captured variable \"sum\" inside a parallel.ForEach closure"
		return nil
	})
	return sum
}

// FixedSlot funnels every iteration into element 0.
func FixedSlot(xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(len(xs), func(i int) error {
		out[0] = xs[i] // want "write to shared state through \"out\" inside a parallel.ForEach closure is not indexed by a loop parameter"
		return nil
	})
	return out
}

// ForeignIndex indexes by a captured variable unrelated to the loop.
func ForeignIndex(xs []float64, j int) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(len(xs), func(i int) error {
		out[j] = xs[i] // want "write to shared state through \"out\" inside a parallel.ForEach closure is not indexed by a loop parameter"
		return nil
	})
	return out
}

// MapWrite writes a captured map: concurrent map writes race on any key.
func MapWrite(names []string) map[string]int {
	out := make(map[string]int)
	_ = parallel.ForEach(len(names), func(i int) error {
		out[names[i]] = i // want "write into captured map through \"out\" inside a parallel.ForEach closure"
		return nil
	})
	return out
}

// AppendShared grows a captured slice: append moves the header and races.
func AppendShared(xs []float64) []float64 {
	var kept []float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		kept = append(kept, xs[i]) // want "write to captured variable \"kept\" inside a parallel.ForEach closure"
		return nil
	})
	return kept
}

// SharedAliasWrite writes through an alias of captured memory selected
// without any loop-derived index.
func SharedAliasWrite(m *Matrix, xs []float64) {
	_ = parallel.ForEach(len(xs), func(i int) error {
		row := m.RowView(0)
		row[1] = xs[i] // want "write to shared state through \"row\" inside a parallel.ForEach closure is not indexed by a loop parameter"
		return nil
	})
}

// SharedCounter increments a captured counter via ++.
func SharedCounter(n int) int {
	var count int
	_ = parallel.ForEach(n, func(i int) error {
		count++ // want "write to captured variable \"count\" inside a parallel.ForEach closure"
		return nil
	})
	return count
}

// StructField writes one captured struct field from every iteration.
func StructField(xs []float64) float64 {
	var acc struct{ last float64 }
	_ = parallel.ForEach(len(xs), func(i int) error {
		acc.last = xs[i] // want "write to shared state through \"acc\" inside a parallel.ForEach closure is not indexed by a loop parameter"
		return nil
	})
	return acc.last
}

// --- negatives: the sanctioned disjoint-write shapes ---

// SlotPerItem writes slot i only.
func SlotPerItem(xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(len(xs), func(i int) error {
		out[i] = 2 * xs[i]
		return nil
	})
	return out
}

// DerivedIndex writes through a local derived from i (r := i*stride; r++).
func DerivedIndex(xs []float64, stride int) []float64 {
	out := make([]float64, len(xs)*stride)
	_ = parallel.ForEach(len(xs), func(i int) error {
		r := i * stride
		for k := 0; k < stride; k++ {
			out[r] = xs[i]
			r++
		}
		return nil
	})
	return out
}

// WorkerScratch indexes per-worker scratch by the worker id.
func WorkerScratch(xs []float64, workers int) []float64 {
	scratch := make([]float64, workers)
	_ = parallel.ForEachWorker(len(xs), func(w, i int) error {
		scratch[w] += xs[i]
		return nil
	})
	return scratch
}

// RowAlias writes through an i-derived row view at arbitrary columns:
// the alias itself selects a disjoint region.
func RowAlias(m *Matrix, n int) {
	_ = parallel.ForEach(n, func(i int) error {
		row := m.RowView(i)
		for j := range row {
			row[j] = float64(j)
		}
		return nil
	})
}

// LocalState keeps all mutation on closure-owned memory.
func LocalState(xs []float64) []float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(len(xs), func(i int) error {
		tmp := make([]float64, 4)
		for k := range tmp {
			tmp[k] = xs[i]
		}
		var s float64
		for _, v := range tmp {
			s += v
		}
		out[i] = s
		return nil
	})
	return out
}

// NestedIndexChain writes out[names[i]][i] style chains: the slice element
// write carries an i-derived index even though the inner map index is a read.
func NestedIndexChain(names []string, seeds []int) map[string][]int {
	out := make(map[string][]int, len(names))
	for _, n := range names {
		out[n] = make([]int, len(seeds))
	}
	_ = parallel.ForEach(len(names)*len(seeds), func(i int) error {
		si, di := i/len(names), i%len(names)
		out[names[di]][si] = seeds[si]
		return nil
	})
	return out
}

// MapResults uses parallel.Map, which owns slot assignment internally.
func MapResults(xs []float64) ([]float64, error) {
	return parallel.Map(len(xs), func(i int) (float64, error) {
		return xs[i] * xs[i], nil
	})
}

// PoolMethod exercises the *Pool method route of the same entry points.
func PoolMethod(xs []float64) []float64 {
	p := parallel.NewPool(2)
	out := make([]float64, len(xs))
	_ = p.ForEach(len(xs), func(i int) error {
		out[i] = xs[i]
		return nil
	})
	return out
}

// PoolMethodViolation is the method-route positive.
func PoolMethodViolation(xs []float64) float64 {
	p := parallel.NewPool(2)
	var sum float64
	_ = p.ForEach(len(xs), func(i int) error {
		sum += xs[i] // want "write to captured variable \"sum\" inside a parallel.ForEach closure"
		return nil
	})
	return sum
}

// Annotated shows the sanctioned escape hatch for externally synchronized
// state (here: pretend a mutex guards total elsewhere).
func Annotated(xs []float64) float64 {
	var total float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		total = xs[i] //lint:ignore disjointwrite fixture: pretend a mutex guards this write
		return nil
	})
	return total
}

// --- method mutation summaries ---

// Table hides its map write one call deep.
type Table struct{ m map[string]float64 }

// NewTable allocates an empty table.
func NewTable() *Table { return &Table{m: make(map[string]float64)} }

// Set writes through the receiver: the summary marks it mutating.
func (t *Table) Set(k string, v float64) { t.m[k] = v }

// Get only reads.
func (t *Table) Get(k string) float64 { return t.m[k] }

// Bump mutates transitively, through Set.
func (t *Table) Bump(k string) { t.Set(k, t.Get(k)+1) }

// Depth is recursive and read-only: the cycle summarizes to non-mutating.
func (t *Table) Depth(k string) int {
	if len(k) == 0 {
		return 0
	}
	return 1 + t.Depth(k[1:])
}

// Grid has value-receiver methods; only writes that reach shared memory
// through an index or deref step count as mutation.
type Grid struct{ cells []float64 }

// Put writes the shared backing array despite the value receiver.
func (g Grid) Put(i int, v float64) { g.cells[i] = v }

// Detach rebinds a field of the receiver copy: caller-invisible.
func (g Grid) Detach() { g.cells = nil }

// MethodMutation calls a mutating method on a captured receiver.
func MethodMutation(names []string) *Table {
	t := NewTable()
	_ = parallel.ForEach(len(names), func(i int) error {
		t.Set(names[i], 1) // want "call to t.Set inside a parallel.ForEach closure mutates shared state through its receiver"
		return nil
	})
	return t
}

// TransitiveMethodMutation reaches the write through two method hops.
func TransitiveMethodMutation(names []string) *Table {
	t := NewTable()
	_ = parallel.ForEach(len(names), func(i int) error {
		t.Bump(names[i]) // want "call to t.Bump inside a parallel.ForEach closure mutates shared state through its receiver"
		return nil
	})
	return t
}

// ValueReceiverMutation: a value receiver still mutates the shared backing
// array when the write goes through an index step.
func ValueReceiverMutation(g Grid, j int, n int) {
	_ = parallel.ForEach(n, func(i int) error {
		g.Put(j, 1) // want "call to g.Put inside a parallel.ForEach closure mutates shared state through its receiver"
		return nil
	})
}

// CrossPackageMethodMutation resolves the summary through Pass.Dep.
func CrossPackageMethodMutation(xs []float64) int {
	var c accum.Counter
	_ = parallel.ForEach(len(xs), func(i int) error {
		c.Add(1) // want "call to c.Add inside a parallel.ForEach closure mutates shared state through its receiver"
		return nil
	})
	return c.Total()
}

// AnnotatedMethodMutation is the escape hatch at the call site.
func AnnotatedMethodMutation(names []string) *Table {
	t := NewTable()
	_ = parallel.ForEach(len(names), func(i int) error {
		t.Set(names[i], 1) //lint:ignore disjointwrite fixture: pretend Table.Set locks internally
		return nil
	})
	return t
}

// --- method-summary negatives ---

// MethodReadOnly calls only non-mutating methods on the shared receiver.
func MethodReadOnly(t *Table, names []string, out []float64) {
	_ = parallel.ForEach(len(names), func(i int) error {
		out[i] = t.Get(names[i]) + float64(t.Depth(names[i]))
		return nil
	})
}

// DerivedReceiverMethod mutates a receiver selected by the loop parameter:
// iteration i owns tables[i], so the call is disjoint.
func DerivedReceiverMethod(tables []*Table, names []string) {
	_ = parallel.ForEach(len(tables), func(i int) error {
		tables[i].Set(names[0], 1)
		return nil
	})
}

// LocalReceiverMethod mutates a closure-owned receiver.
func LocalReceiverMethod(names []string, out []float64) {
	_ = parallel.ForEach(len(names), func(i int) error {
		t := NewTable()
		t.Set(names[i], 1)
		out[i] = t.Get(names[i])
		return nil
	})
}

// CopyOnlyMethod writes a field of the receiver copy: no shared mutation.
func CopyOnlyMethod(g Grid, n int) {
	_ = parallel.ForEach(n, func(i int) error {
		g.Detach()
		return nil
	})
}

// StdlibMethodQuiet: methods without syntax (sync.Mutex.Lock) summarize to
// non-mutating, so the lock is quiet and the guarded write carries the
// annotation, as before.
func StdlibMethodQuiet(xs []float64) float64 {
	var mu sync.Mutex
	var total float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		mu.Lock()
		total += xs[i] //lint:ignore disjointwrite fixture: guarded by mu
		mu.Unlock()
		return nil
	})
	return total
}
