// Fixture for the ctxflow analyzer: dropped-context loops and mid-stack
// context minting.
package ctxflow

import "context"

type config struct{ core, mem float64 }

// SweepDropped accepts a context, loops over configurations, and never
// consults or forwards it: cancellation is silently lost.
func SweepDropped(ctx context.Context, configs []config) float64 { // want "accepts a context.Context and loops but never consults or forwards it"
	var best float64
	for _, c := range configs {
		best += c.core + c.mem
	}
	return best
}

// MintBackground mints a context mid-stack in library code.
func MintBackground() error {
	ctx := context.Background() // want "context.Background in library code"
	return ctx.Err()
}

// MintTODO is the same invariant for TODO.
func MintTODO() error {
	ctx := context.TODO() // want "context.TODO in library code"
	return ctx.Err()
}

// AnnotatedWrapper is the sanctioned façade-wrapper form.
func AnnotatedWrapper(configs []config) (float64, error) {
	return SweepChecked(context.Background(), configs) //lint:ignore ctxflow non-cancellable convenience wrapper; the Context sibling is the cancellable API
}

// --- negative cases ---

// SweepChecked consults ctx.Err at iteration granularity.
func SweepChecked(ctx context.Context, configs []config) (float64, error) {
	var best float64
	for _, c := range configs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		best += c.core + c.mem
	}
	return best, nil
}

// SweepForwarded delegates cancellation to the callee.
func SweepForwarded(ctx context.Context, configs []config) (float64, error) {
	var total float64
	for range configs {
		v, err := SweepChecked(ctx, configs)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// SweepDone selects on ctx.Done.
func SweepDone(ctx context.Context, configs []config) error {
	for range configs {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// NoLoop accepts a context but has nothing iterative to cancel.
func NoLoop(ctx context.Context) error { return nil }

// NoContext loops but exposes no cancellation surface.
func NoContext(configs []config) int { return len(configs) }

// unexportedDropped is internal plumbing; only the exported API surface is
// held to the invariant.
func unexportedDropped(ctx context.Context, configs []config) int {
	n := 0
	for range configs {
		n++
	}
	return n
}
