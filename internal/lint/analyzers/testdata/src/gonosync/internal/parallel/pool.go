// Package parallel mirrors the module's worker pool: the one sanctioned
// spawn site, exempt from gonosync.
package parallel

import "sync"

// ForEach fans work out across a bounded worker set.
func ForEach(n int, f func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(i int) { // allowed: the pool is the sanctioned spawn site
			defer wg.Done()
			f(i)
		}(w)
	}
	wg.Wait()
}
