// Fixture for the gonosync analyzer: naked go statements outside the worker
// pool.
package gonosync

// FanOut spawns unbounded goroutines instead of using the pool.
func FanOut(work []func()) {
	for _, w := range work {
		go w() // want "naked go statement outside internal/parallel"
	}
}

// Background leaks a goroutine with no synchronization.
func Background() {
	go func() {}() // want "naked go statement outside internal/parallel"
}

// --- negative case ---

// Serial does the work inline.
func Serial(work []func()) {
	for _, w := range work {
		w()
	}
}
