// Fixture for the dtounits analyzer: JSON DTOs whose field names and wire
// tags disagree about the physical unit.
package dtounits

// swappedDTO re-states each unit twice and gets two of them crossed.
type swappedDTO struct {
	CoreMHz  float64 `json:"core_volts"`        // want "field CoreMHz carries MHz by name but its json tag \"core_volts\" says volts"
	VddVolts float64 `json:"vdd_mhz,omitempty"` // want "field VddVolts carries volts by name but its json tag \"vdd_mhz\" says MHz"
	TDPWatts float64 `json:"tdp_mhz"`           // want "field TDPWatts carries watts by name but its json tag \"tdp_mhz\" says MHz"
}

// annotatedDTO is the escape hatch for deliberate legacy wire names.
type annotatedDTO struct {
	BusMHz float64 `json:"bus_volts"` //lint:ignore dtounits legacy wire name frozen by the v0 API contract
}

// --- negative cases ---

// agreeingDTO is the serve idiom: name and tag carry the same unit.
type agreeingDTO struct {
	CoreMHz    float64 `json:"core_mhz"`
	MemMHz     float64 `json:"mem_mhz,omitempty"`
	PowerWatts float64 `json:"power_watts"`
	RailVolts  float64 `json:"rail_volts"`
}

// oneSidedDTO: either side unit-less stays silent — Constant is watts only
// by tag (the serve breakdown idiom), Score carries no unit at all, and an
// untagged united field has no wire name to disagree with.
type oneSidedDTO struct {
	Constant float64 `json:"constant_watts"`
	Score    float64 `json:"score"`
	IdleMHz  float64
	Name     string  `json:"name"`
	Skipped  float64 `json:"-"`
}
