// Fixture for the atomicsnap analyzer: repeated atomic.Pointer loads that
// can observe two different swap generations in one scope.
package atomicsnap

import "sync/atomic"

type fitted struct {
	Gen   int
	Scale float64
}

type entry struct {
	cur  atomic.Pointer[fitted]
	prev atomic.Pointer[fitted]
}

// DoubleLoad takes two snapshots of the same pointer in one scope: a Swap
// between them mixes generations.
func DoubleLoad(e *entry) (int, float64) {
	gen := e.cur.Load().Gen
	scale := e.cur.Load().Scale // want "second Load of e.cur in this scope"
	return gen, scale
}

// DoubleLoadViaVars is the same bug through bound variables.
func DoubleLoadViaVars(e *entry) float64 {
	a := e.cur.Load()
	b := e.cur.Load() // want "second Load of e.cur in this scope"
	return a.Scale + b.Scale
}

// InlineLoadInLoop re-snapshots the loop-invariant pointer every iteration.
func InlineLoadInLoop(e *entry, xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x * e.cur.Load().Scale // want "inline e.cur.Load\(\).Scale inside a loop"
	}
	return sum
}

// InlineLoadInForLoop is the plain-for variant.
func InlineLoadInForLoop(e *entry) int {
	total := 0
	for i := 0; i < 3; i++ {
		total += e.cur.Load().Gen // want "inline e.cur.Load\(\).Gen inside a loop"
	}
	return total
}

// Annotated is the sanctioned escape hatch for deliberately generation-
// chasing code.
func Annotated(e *entry) int {
	first := e.cur.Load().Gen
	second := e.cur.Load().Gen //lint:ignore atomicsnap drift probe: intentionally samples two generations to detect a swap
	return second - first
}

// --- negative cases ---

// OneSnapshot is the contract: one Load, used throughout.
func OneSnapshot(e *entry, xs []float64) float64 {
	m := e.cur.Load()
	var sum float64
	for _, x := range xs {
		sum += x * m.Scale
	}
	return sum + float64(m.Gen)
}

// DistinctPointers may each be loaded once: cur and prev are different
// pointers.
func DistinctPointers(e *entry) int {
	return e.cur.Load().Gen - e.prev.Load().Gen
}

// DistinctReceivers loads the same field of two different entries.
func DistinctReceivers(a, b *entry) int {
	return a.cur.Load().Gen - b.cur.Load().Gen
}

// ClosureScopes: each function literal is its own snapshot scope (a worker
// closure takes its own snapshot by design).
func ClosureScopes(e *entry) (int, int) {
	f := func() int { return e.cur.Load().Gen }
	g := func() int { return e.cur.Load().Gen }
	return f(), g()
}

// CASRetry is the compare-and-swap idiom: one Load call site, bound to a
// variable each attempt — not an inline field read.
func CASRetry(e *entry, next *fitted) {
	for {
		old := e.cur.Load()
		if e.cur.CompareAndSwap(old, next) {
			return
		}
	}
}

// FreshPointerPerIteration: the pointer itself is produced inside the loop,
// so each iteration's load is a distinct snapshot source.
func FreshPointerPerIteration(es []*entry) int {
	total := 0
	for _, e := range es {
		total += e.cur.Load().Gen
	}
	return total
}
