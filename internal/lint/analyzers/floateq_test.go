package analyzers_test

import (
	"testing"

	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

func TestFloatEq(t *testing.T) {
	// floateq/internal/linalg is loaded too: the approved-package exemption
	// is asserted by the absence of want comments there.
	linttest.Run(t, "testdata", analyzers.FloatEq, "floateq/...")
}
