// Package analyzers holds the gpowerlint domain analyzers: mechanical
// enforcement of the repository's determinism, cancellation, error-taxonomy,
// numerical-hygiene and concurrency invariants (DESIGN.md §9).
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"gpupower/internal/lint"
)

// All returns every registered analyzer, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		MapOrder,
		FloatEq,
		CtxFlow,
		SentErr,
		GoNoSync,
		DisjointWrite,
		UnitFlow,
		AtomicSnap,
		HTTPBound,
		DTOUnits,
		UnusedIgnore,
	}
}

// KnownNames returns the full registry name set — the directive vocabulary
// the Runner should accept even when only a subset of analyzers runs.
func KnownNames() map[string]bool {
	out := make(map[string]bool)
	for _, a := range All() {
		out[a.Name] = true
	}
	return out
}

// ByName resolves a comma-separated analyzer list ("maporder,floateq").
func ByName(names string) ([]*lint.Analyzer, bool) {
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// --- shared type-query helpers ---

// isFloat reports whether the expression's type is a floating-point kind.
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// errIface is the universe error interface.
var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorExpr reports whether the expression is error-typed (implements the
// built-in error interface) and is not the nil literal.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return types.Implements(tv.Type, errIface)
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for builtins, conversions and indirect calls through plain variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id]
	if !ok {
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// calleeFullName returns the fully-qualified callee name ("fmt.Errorf",
// "(*strings.Builder).WriteString"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return ""
}

// pathHasSuffix reports whether a package import path equals suffix or ends
// with "/"+suffix (so "gpupower/internal/linalg" and a fixture's
// "floateq/internal/linalg" both match "internal/linalg").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// identObj resolves an identifier expression to its object, or nil.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := info.Uses[id]; ok {
		return obj
	}
	return info.Defs[id]
}

// --- cross-package declaration lookup (shared by the fact layers) ---

// declScope resolves a *types.Package to the syntax and type facts it was
// checked from: the current pass for the package under analysis, Pass.Dep
// for in-module dependencies, nothing for foreign packages. The returned
// pass is silent — fact derivation re-reads syntax for its value only.
func declScope(pass *lint.Pass, pkg *types.Package) ([]*ast.File, *types.Info, *lint.Pass) {
	if pkg == pass.Pkg {
		return pass.Files, pass.Info, pass.Silent()
	}
	dep, ok := pass.Dep(pkg.Path())
	if !ok || dep.Types != pkg {
		return nil, nil, nil
	}
	return dep.Files, dep.Info, pass.Scratch(dep)
}

// funcDeclOf locates the FuncDecl for an in-module function: in the current
// package's files, or in a dependency package reached through Pass.Dep.
// The returned pass is silent and scoped to the declaring package.
func funcDeclOf(pass *lint.Pass, fn *types.Func) (*ast.FuncDecl, *lint.Pass) {
	if fn.Pkg() == nil {
		return nil, nil
	}
	files, info, declPass := declScope(pass, fn.Pkg())
	if files == nil {
		return nil, nil
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if info.Defs[fd.Name] == fn {
				return fd, declPass
			}
		}
	}
	return nil, nil
}
