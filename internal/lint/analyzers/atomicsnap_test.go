package analyzers_test

import (
	"testing"

	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

func TestAtomicSnap(t *testing.T) {
	linttest.Run(t, "testdata", analyzers.AtomicSnap, "atomicsnap")
}
