package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpupower/internal/lint"
)

// HTTPBound enforces the serving hygiene contract from PR 7: every HTTP
// handler bounds the request body before reading it and threads the
// request's context — not a freshly minted one — into the work it starts.
// gpowerd fronts a fleet surface; one unbounded POST body or one
// uncancellable downstream call is all it takes to let a single client pin
// memory or outlive its disconnect.
var HTTPBound = &lint.Analyzer{
	Name: "httpbound",
	Doc: `flags unbounded r.Body reads and minted contexts in HTTP handlers.

Applies to every function that takes an *http.Request (handlers, middleware,
decode helpers). (1) Any use of the request's Body must be syntactically
preceded, in the same function, by the bounding re-assignment
r.Body = http.MaxBytesReader(w, r.Body, n); decoding an unbounded body lets
one client exhaust server memory. Handlers that delegate body handling to a
bounding helper (s.decodeBody(w, r, &req)) never touch r.Body themselves and
are clean by construction. (2) context.Background() / context.TODO() inside
such a function is reported: handler work must derive from r.Context() so a
client disconnect cancels it. _test.go files are exempt.

Known limitation: "preceded" is syntactic (source position), not
control-flow-aware — a wrap buried in one conditional branch sanctions every
later read, including on paths that never execute the wrap. Keep the
MaxBytesReader wrap an unconditional statement at the top of the handler;
the analyzer cannot catch a conditional wrap that misses a path.`,
	Run: runHTTPBound,
}

func runHTTPBound(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			reqs := requestParams(pass.Info, ft)
			if len(reqs) == 0 {
				return true
			}
			checkHandler(pass, body, reqs)
			return true
		})
	}
	return nil
}

// requestParams returns the objects of the function's *http.Request
// parameters.
func requestParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			ptr, ok := obj.Type().(*types.Pointer)
			if !ok {
				continue
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok {
				continue
			}
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "net/http" && tn.Name() == "Request" {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkHandler applies both checks to one request-taking function. Nested
// function literals are visited as part of the enclosing body here (not
// skipped): a closure over r launched by the handler reads the same body
// and owes the same bounds — but a nested literal that redeclares its own
// *http.Request parameter is its own handler and is analyzed separately by
// the outer walk, so its body is skipped to avoid double reports.
func checkHandler(pass *lint.Pass, body *ast.BlockStmt, reqs []types.Object) {
	// Pass 1: where (if anywhere) does each request's body get bounded, and
	// which Body mentions belong to the bounding assignment itself?
	wrapPos := make(map[types.Object]token.Pos)
	exempt := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		req := bodySelectorOf(pass.Info, as.Lhs[0], reqs)
		if req == nil {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || calleeFullName(pass.Info, call) != "net/http.MaxBytesReader" {
			return true
		}
		if prev, ok := wrapPos[req]; !ok || as.End() < prev {
			wrapPos[req] = as.End()
		}
		// The wrap's own r.Body mentions (lhs and the reader argument) are
		// the sanctioned ones.
		for _, e := range []ast.Expr{as.Lhs[0], as.Rhs[0]} {
			ast.Inspect(e, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok && bodySelectorOf(pass.Info, sel, reqs) != nil {
					exempt[sel.Pos()] = true
				}
				return true
			})
		}
		return true
	})

	// Pass 2: every other Body use must come after the wrap. "After" is
	// source position, not dominance — a conditional wrap sanctions reads on
	// paths that skip it (see the Doc's known-limitation note); the payoff is
	// zero false positives on the unconditional top-of-handler idiom.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && len(requestParams(pass.Info, lit.Type)) > 0 {
			return false // a nested handler with its own *http.Request: analyzed on its own
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		req := bodySelectorOf(pass.Info, sel, reqs)
		if req == nil || exempt[sel.Pos()] {
			return true
		}
		wp, wrapped := wrapPos[req]
		if !wrapped {
			pass.Reportf(sel.Pos(),
				"%s.Body is read without an http.MaxBytesReader bound: wrap it first (r.Body = http.MaxBytesReader(w, r.Body, n)) or one client's unbounded request exhausts server memory",
				req.Name())
		} else if sel.Pos() < wp {
			pass.Reportf(sel.Pos(),
				"%s.Body is read before the http.MaxBytesReader wrap at line %d: the bound must be in place before the first read",
				req.Name(), pass.Fset.Position(wp).Line)
		}
		return true
	})

	// Check 2: no minted contexts where r.Context() is available.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && len(requestParams(pass.Info, lit.Type)) > 0 {
			return false // analyzed as its own handler
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch name := calleeFullName(pass.Info, call); name {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(),
				"%s inside a request handler: thread r.Context() instead, so a client disconnect cancels the work it started", name)
		}
		return true
	})
}

// bodySelectorOf reports whether sel (or expr) is `req.Body` for one of the
// handler's request params, returning that param's object.
func bodySelectorOf(info *types.Info, e ast.Expr, reqs []types.Object) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Body" {
		return nil
	}
	obj := identObj(info, sel.X)
	if obj == nil {
		return nil
	}
	for _, req := range reqs {
		if obj == req {
			return req
		}
	}
	return nil
}
