package analyzers

import (
	"go/ast"
	"go/token"

	"gpupower/internal/lint"
)

// FloatEq enforces numerical hygiene: exact floating-point equality is almost
// always a latent bug in a fitting pipeline (NNLS tolerances, isotonic
// projections and over-relaxation all perturb values at the ulp level).
var FloatEq = &lint.Analyzer{
	Name: "floateq",
	Doc: `flags == and != between floating-point operands.

Comparisons must go through the tolerance helpers in internal/linalg (the
approved home for exact comparisons — that package is exempt) or be
explicitly annotated with //lint:ignore floateq <reason> at deliberate guard
sites such as division-by-zero checks (mx == 0). Constant-only comparisons
are ignored. _test.go files are exempt: bitwise serial/parallel equivalence
tests are the sanctioned use of exact float comparison in this repository.`,
	Run: runFloatEq,
}

func runFloatEq(pass *lint.Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/linalg") {
		return nil // the approved tolerance-helper package
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info, be.X) || !isFloat(pass.Info, be.Y) {
				return true
			}
			xc := pass.Info.Types[be.X].Value != nil
			yc := pass.Info.Types[be.Y].Value != nil
			if xc && yc {
				return true // constant folding, decided at compile time
			}
			pass.Reportf(be.OpPos,
				"exact floating-point comparison (%s): use a tolerance helper from internal/linalg, or annotate a deliberate guard with //lint:ignore floateq <reason>", be.Op)
			return true
		})
	}
	return nil
}
