package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

// runModule loads and analyzes a module tree with the full registry.
func runModule(t *testing.T, root, modPath string) *lint.Result {
	t.Helper()
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	runner := &lint.Runner{Analyzers: analyzers.All(), Known: analyzers.KnownNames()}
	res, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	return res
}

// seededMutation is a file of deliberately planted violations written into a
// throwaway copy of the real repository: the classic bugs the new dataflow
// analyzers exist to catch, expressed against the real internal/parallel,
// internal/hw and internal/silicon APIs rather than fixture stand-ins.
const seededMutation = `// Package zzseeded holds deliberately planted invariant violations for the
// analyzer smoke test. It never exists in the real tree.
package zzseeded

import (
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
	"gpupower/internal/silicon"
)

// sharedAccumulate reduces into a captured scalar from inside a ForEach
// closure — the race the disjoint-write convention forbids.
func sharedAccumulate(xs []float64) float64 {
	var sum float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		sum += xs[i]
		return nil
	})
	return sum
}

// swappedAnchor feeds a core frequency into a voltage anchor — the silent
// wrong-by-orders-of-magnitude unit swap unitflow exists to catch.
func swappedAnchor(cfg hw.Config) silicon.VoltagePoint {
	return silicon.VoltagePoint{FMHz: 1000, Volts: cfg.CoreMHz}
}
`

// TestSeededMutationsCaught is the end-to-end smoke check promised by the
// analyzer suite: the real repository is clean under the full registry, and
// planting a non-indexed parallel write plus an MHz-into-volts flow into a
// copy of it produces exactly the two expected diagnostics.
func TestSeededMutationsCaught(t *testing.T) {
	src, modPath := linttest.ModuleRoot(t)
	copyDir := t.TempDir()
	linttest.CopyModuleGoFiles(t, src, copyDir)

	clean := runModule(t, copyDir, modPath)
	if len(clean.Diagnostics) != 0 || len(clean.DirectiveErrors) != 0 {
		t.Fatalf("repository copy is not clean before mutation:\n%s\ndirective errors: %v",
			linttest.Fprint(clean.Diagnostics), clean.DirectiveErrors)
	}

	mutDir := filepath.Join(copyDir, "internal", "zzseeded")
	if err := os.MkdirAll(mutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mutDir, "seeded.go"), []byte(seededMutation), 0o644); err != nil {
		t.Fatal(err)
	}

	mutated := runModule(t, copyDir, modPath)
	wants := map[string]string{
		"disjointwrite": `write to captured variable "sum" inside a parallel.ForEach closure`,
		"unitflow":      `MHz-typed value assigned to volts-typed field "Volts"`,
	}
	for analyzer, fragment := range wants {
		found := false
		for _, d := range mutated.Diagnostics {
			if d.Analyzer == analyzer && strings.Contains(d.Message, fragment) &&
				strings.HasSuffix(d.Pos.Filename, filepath.Join("zzseeded", "seeded.go")) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seeded %s mutation not caught; report:\n%s", analyzer, linttest.Fprint(mutated.Diagnostics))
		}
	}
	for _, d := range mutated.Diagnostics {
		if !strings.Contains(d.Pos.Filename, "zzseeded") {
			t.Errorf("mutation leaked a diagnostic outside the seeded package: %s", d)
		}
	}
}
