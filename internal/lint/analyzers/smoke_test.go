package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

// runModule loads and analyzes a module tree with the full registry.
func runModule(t *testing.T, root, modPath string) *lint.Result {
	t.Helper()
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	runner := &lint.Runner{Analyzers: analyzers.All(), Known: analyzers.KnownNames()}
	res, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	return res
}

// seededMutation is a file of deliberately planted violations written into a
// throwaway copy of the real repository: the classic bugs the new dataflow
// analyzers exist to catch, expressed against the real internal/parallel,
// internal/hw and internal/silicon APIs rather than fixture stand-ins.
const seededMutation = `// Package zzseeded holds deliberately planted invariant violations for the
// analyzer smoke test. It never exists in the real tree.
package zzseeded

import (
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
	"gpupower/internal/silicon"
)

// sharedAccumulate reduces into a captured scalar from inside a ForEach
// closure — the race the disjoint-write convention forbids.
func sharedAccumulate(xs []float64) float64 {
	var sum float64
	_ = parallel.ForEach(len(xs), func(i int) error {
		sum += xs[i]
		return nil
	})
	return sum
}

// swappedAnchor feeds a core frequency into a voltage anchor — the silent
// wrong-by-orders-of-magnitude unit swap unitflow exists to catch.
func swappedAnchor(cfg hw.Config) silicon.VoltagePoint {
	return silicon.VoltagePoint{FMHz: 1000, Volts: cfg.CoreMHz}
}
`

// seededDoubleLoad is planted INSIDE the copied internal/registry package (it
// needs the unexported cur field): a method that pairs fields from two
// Load() snapshots — the torn-read bug atomicsnap exists to catch.
const seededDoubleLoad = `package registry

// zzSnapshotSkew deliberately reads the model generation and the source from
// two different snapshots; a concurrent Refit between the Loads makes them
// describe different models. Smoke-test plant only.
func (e *Entry) zzSnapshotSkew() (uint64, string) {
	gen := e.cur.Load().meta.Generation
	src := e.cur.Load().meta.Source
	return gen, src
}
`

// seededUnboundedHandler is planted inside the copied internal/serve package:
// a handler that decodes the request body with no MaxBytesReader bound and
// mints its own context instead of threading r.Context().
const seededUnboundedHandler = `package serve

import (
	"context"
	"encoding/json"
	"net/http"
)

// zzHandleRaw is a deliberately unbounded handler. Smoke-test plant only.
func zzHandleRaw(w http.ResponseWriter, r *http.Request) {
	var req struct{ Device string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad body", http.StatusBadRequest)
		return
	}
	ctx := context.Background()
	_ = ctx
	w.WriteHeader(http.StatusOK)
}
`

// TestSeededMutationsCaught is the end-to-end smoke check promised by the
// analyzer suite: the real repository is clean under the full registry, and
// planting the classic violations into a copy of it — a non-indexed parallel
// write, an MHz-into-volts flow, a double atomic-pointer Load inside the real
// registry, and an unbounded request handler inside the real serve package —
// produces exactly the expected diagnostics, each pinned to its plant.
func TestSeededMutationsCaught(t *testing.T) {
	src, modPath := linttest.ModuleRoot(t)
	copyDir := t.TempDir()
	linttest.CopyModuleGoFiles(t, src, copyDir)

	clean := runModule(t, copyDir, modPath)
	if len(clean.Diagnostics) != 0 || len(clean.DirectiveErrors) != 0 {
		t.Fatalf("repository copy is not clean before mutation:\n%s\ndirective errors: %v",
			linttest.Fprint(clean.Diagnostics), clean.DirectiveErrors)
	}

	mutDir := filepath.Join(copyDir, "internal", "zzseeded")
	if err := os.MkdirAll(mutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	plants := map[string]string{
		filepath.Join(mutDir, "seeded.go"):                            seededMutation,
		filepath.Join(copyDir, "internal", "registry", "zzseeded.go"): seededDoubleLoad,
		filepath.Join(copyDir, "internal", "serve", "zzseeded.go"):    seededUnboundedHandler,
	}
	for path, content := range plants {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	mutated := runModule(t, copyDir, modPath)
	wants := []struct {
		analyzer string
		fragment string
		file     string
	}{
		{"disjointwrite", `write to captured variable "sum" inside a parallel.ForEach closure`, filepath.Join("zzseeded", "seeded.go")},
		{"unitflow", `MHz-typed value assigned to volts-typed field "Volts"`, filepath.Join("zzseeded", "seeded.go")},
		{"atomicsnap", `second Load of e.cur in this scope`, filepath.Join("registry", "zzseeded.go")},
		{"httpbound", `r.Body is read without an http.MaxBytesReader bound`, filepath.Join("serve", "zzseeded.go")},
		{"httpbound", `context.Background inside a request handler`, filepath.Join("serve", "zzseeded.go")},
	}
	for _, want := range wants {
		found := false
		for _, d := range mutated.Diagnostics {
			if d.Analyzer == want.analyzer && strings.Contains(d.Message, want.fragment) &&
				strings.HasSuffix(d.Pos.Filename, want.file) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("seeded %s mutation (%s) not caught; report:\n%s",
				want.analyzer, want.fragment, linttest.Fprint(mutated.Diagnostics))
		}
	}
	for _, d := range mutated.Diagnostics {
		if !strings.Contains(d.Pos.Filename, "zzseeded") {
			t.Errorf("mutation leaked a diagnostic outside the seeded files: %s", d)
		}
	}
}
