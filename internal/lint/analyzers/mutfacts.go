package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpupower/internal/lint"
)

// Per-method mutation summaries for disjointwrite.
//
// The per-closure dataflow sees direct writes (t.rows[i] = v) but not the
// same write hidden one call deep (t.Set(i, v)). This file summarizes, per
// *types.Func, whether calling the method provably mutates memory reachable
// through its receiver: a write whose lvalue chain reaches the receiver
// (through a pointer receiver, or through an alias-capable step — index,
// deref — on a value receiver), or a transitive call to another in-module
// receiver method that does. Methods without syntax (stdlib, interfaces,
// foreign packages) and recursion cycles summarize to "not provably
// mutating": the check stays strictly under-approximate, so every report is
// a real receiver mutation.
//
// The store follows the unit-facts discipline (see unitfacts.go): the
// run-scoped lint.FactStore carried by the Pass, mutex-guarded, keyed by
// object identity (sound because each run's Loader type-checks each package
// exactly once, and the store does not outlive that Loader's type graph).
// A summary computed under an in-progress-cycle assumption is tainted and
// never memoized, keeping store contents independent of parallel group
// scheduling.
type mutFactKey struct{ fn *types.Func }

func cachedMutFact(pass *lint.Pass, fn *types.Func) (bool, bool) {
	v, ok := pass.Facts().Load(mutFactKey{fn})
	if !ok {
		return false, false
	}
	return v.(bool), true
}

func storeMutFact(pass *lint.Pass, fn *types.Func, v bool) {
	pass.Facts().Store(mutFactKey{fn}, v)
}

// methodMutates reports whether calling fn provably mutates memory reachable
// through its receiver. chain carries the in-progress summaries of the
// current derivation (nil at the top level); the second result is the taint
// flag — true when the verdict leaned on an in-progress assumption and must
// not be memoized by the caller.
func methodMutates(pass *lint.Pass, fn *types.Func, chain map[*types.Func]bool) (bool, bool) {
	if v, ok := cachedMutFact(pass, fn); ok {
		return v, false
	}
	if chain[fn] {
		// Recursive or mutually-recursive method chain: assume the in-progress
		// frame settles it, and poison memoization upward.
		return false, true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		storeMutFact(pass, fn, false)
		return false, false
	}
	fd, declPass := funcDeclOf(pass, fn)
	if fd == nil || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
		// No syntax (stdlib, cgo, foreign module): not provably mutating.
		storeMutFact(pass, fn, false)
		return false, false
	}
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		// An unnamed receiver cannot be written through.
		storeMutFact(pass, fn, false)
		return false, false
	}
	recvObj := declPass.Info.Defs[recvField.Names[0]]
	if recvObj == nil {
		storeMutFact(pass, fn, false)
		return false, false
	}
	_, ptrRecv := sig.Recv().Type().Underlying().(*types.Pointer)

	sub := make(map[*types.Func]bool, len(chain)+1)
	for f := range chain {
		sub[f] = true
	}
	sub[fn] = true

	mutates := false
	tainted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if mutates {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			// A nested literal may escape the call; stay under-approximate.
			return false
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if writesThroughReceiver(declPass.Info, lhs, recvObj, ptrRecv) {
					mutates = true
				}
			}
		case *ast.IncDecStmt:
			if writesThroughReceiver(declPass.Info, st.X, recvObj, ptrRecv) {
				mutates = true
			}
		case *ast.CallExpr:
			callee := calleeFunc(declPass.Info, st)
			if callee == nil || callee == fn {
				return true
			}
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if exprBaseObj(declPass.Info, sel.X) != recvObj {
				return true
			}
			m, t := methodMutates(declPass, callee, sub)
			if t {
				tainted = true
			}
			if m {
				mutates = true
			}
		}
		return true
	})
	if tainted && !mutates {
		// The "no mutation" verdict leaned on a cycle assumption; don't cache.
		return false, true
	}
	storeMutFact(pass, fn, mutates)
	return mutates, false
}

// writesThroughReceiver reports whether the written lvalue reaches memory
// shared with the caller via the receiver: any chain rooted at the receiver
// for a pointer receiver, or a chain containing an index/deref step for a
// value receiver (writing t.m[k] mutates the shared map even though t is a
// copy; writing t.x does not).
func writesThroughReceiver(info *types.Info, lhs ast.Expr, recvObj types.Object, ptrRecv bool) bool {
	sawIndirect := false
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			sawIndirect = true
			e = x.X
		case *ast.StarExpr:
			sawIndirect = true
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			if identObj(info, x) != recvObj {
				return false
			}
			return ptrRecv || sawIndirect
		default:
			return false
		}
	}
}

// exprBaseObj walks a receiver expression (t, t.field, (*t).field, rows[i])
// down to its base identifier's object, or nil.
func exprBaseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return identObj(info, x)
		default:
			return nil
		}
	}
}
