package analyzers_test

import (
	"testing"

	"gpupower/internal/lint/analyzers"
	"gpupower/internal/lint/linttest"
)

func TestHTTPBound(t *testing.T) {
	linttest.Run(t, "testdata", analyzers.HTTPBound, "httpbound")
}
