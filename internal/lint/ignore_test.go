package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

var knownAnalyzers = map[string]bool{
	"maporder": true, "floateq": true, "ctxflow": true, "senterr": true, "gonosync": true,
}

func parseIgnoresFrom(t *testing.T, src string) (*token.FileSet, []Ignore, []error) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	igs, errs := ParseIgnores(fset, f, knownAnalyzers)
	return fset, igs, errs
}

func TestParseIgnoresTrailingAndStandalone(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	return a == b //lint:ignore floateq bitwise tie-break keeps the search reproducible
}

func g(a, b float64) bool {
	//lint:ignore floateq,maporder shared guard across two invariants
	return a != b
}
`
	_, igs, errs := parseIgnoresFrom(t, src)
	if len(errs) != 0 {
		t.Fatalf("unexpected directive errors: %v", errs)
	}
	if len(igs) != 2 {
		t.Fatalf("want 2 directives, got %d: %+v", len(igs), igs)
	}

	// Trailing form: suppresses its own line (4) and the next.
	d := igs[0]
	if d.Pos.Line != 4 {
		t.Errorf("first directive on line %d, want 4", d.Pos.Line)
	}
	if got := d.Reason; got != "bitwise tie-break keeps the search reproducible" {
		t.Errorf("reason = %q", got)
	}
	for line, want := range map[int]bool{3: false, 4: true, 5: true, 6: false} {
		pos := token.Position{Filename: "fix.go", Line: line}
		if d.Matches("floateq", pos) != want {
			t.Errorf("line %d: Matches(floateq) = %v, want %v", line, !want, want)
		}
	}
	if d.Matches("maporder", token.Position{Filename: "fix.go", Line: 4}) {
		t.Error("directive for floateq must not match maporder")
	}
	if d.Matches("floateq", token.Position{Filename: "other.go", Line: 4}) {
		t.Error("directive must not match a different file")
	}

	// Standalone multi-analyzer form: line 8, suppresses line 9 for both names.
	d2 := igs[1]
	if d2.Pos.Line != 8 {
		t.Errorf("second directive on line %d, want 8", d2.Pos.Line)
	}
	for _, name := range []string{"floateq", "maporder"} {
		if !d2.Matches(name, token.Position{Filename: "fix.go", Line: 9}) {
			t.Errorf("comma-separated directive does not match %s on the following line", name)
		}
	}
	if d2.Matches("senterr", token.Position{Filename: "fix.go", Line: 9}) {
		t.Error("comma-separated directive must not match an unlisted analyzer")
	}
}

func TestParseIgnoresRejectsUnknownAnalyzer(t *testing.T) {
	src := `package p

//lint:ignore nosuchcheck because reasons
var X = 1
`
	_, igs, errs := parseIgnoresFrom(t, src)
	if len(igs) != 0 {
		t.Fatalf("unknown-analyzer directive was accepted: %+v", igs)
	}
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `unknown analyzer "nosuchcheck"`) {
		t.Fatalf("want one unknown-analyzer error, got %v", errs)
	}
	if !strings.Contains(errs[0].Error(), "fix.go:3:") {
		t.Errorf("error does not carry the directive position: %v", errs[0])
	}
}

func TestParseIgnoresRequiresReason(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//lint:ignore floateq\nvar X = 1\n",
		"package p\n\n//lint:ignore\nvar X = 1\n",
	} {
		_, igs, errs := parseIgnoresFrom(t, src)
		if len(igs) != 0 {
			t.Fatalf("reasonless directive was accepted: %+v", igs)
		}
		if len(errs) != 1 {
			t.Fatalf("want one error for %q, got %v", src, errs)
		}
	}
	_, _, errs := parseIgnoresFrom(t, "package p\n\n//lint:ignore floateq\nvar X = 1\n")
	if !strings.Contains(errs[0].Error(), "missing the mandatory reason") {
		t.Errorf("want mandatory-reason error, got %v", errs[0])
	}
}

func TestParseIgnoresSkipsLookalikes(t *testing.T) {
	src := `package p

//lint:ignoreXYZ floateq not a directive at all
// lint:ignore floateq leading space means a plain comment
var X = 1
`
	_, igs, errs := parseIgnoresFrom(t, src)
	if len(igs) != 0 || len(errs) != 0 {
		t.Fatalf("lookalike comments misparsed: igs=%v errs=%v", igs, errs)
	}
}
