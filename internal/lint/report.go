package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the stable machine-readable shape emitted by -json.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteText prints diagnostics one per line as file:line:col: analyzer:
// message, with file paths relative to base when possible.
func WriteText(w io.Writer, base string, diags []Diagnostic) error {
	for _, d := range diags {
		name := relPath(base, d.Pos.Filename)
		if _, err := fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the diagnostics as a JSON array (empty slice, not null,
// when clean — consumers can always range over the result).
func WriteJSON(w io.Writer, base string, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(base, name string) string {
	if base == "" {
		return name
	}
	rel, err := filepath.Rel(base, name)
	if err != nil || len(rel) >= len(name) {
		return name
	}
	return rel
}
