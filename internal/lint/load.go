package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package (plus, when the directory has
// an external test package, that package as a sibling entry produced by
// LoadAll).
type Package struct {
	// Path is the import path ("gpupower/internal/core"). External test
	// packages get the conventional "_test" suffix appended.
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-checker errors. A non-empty slice means
	// the analysis facts are incomplete and the run should be treated as
	// failed rather than clean.
	TypeErrors []error

	loader     *Loader     // back-link for Dep resolution
	deps       []string    // local import paths, recorded at load time
	xtestFiles []*ast.File // package foo_test files, hoisted into a sibling Package by LoadAll
	xtestMu    sync.Mutex  // guards xtestPkg memoization under concurrent groups
	xtestPkg   *Package    // memoized external-test sibling, built on first LoadPackages
}

// Dep resolves a local import path to its loaded package, searching the
// package's direct imports first and then breadth-first through their
// imports. Cross-package analyses (unitflow facts, disjointwrite method
// summaries) use it to reach the syntax of the packages this one depends
// on; it never triggers a new load — every reachable dependency was loaded
// when this package type-checked.
func (p *Package) Dep(path string) (*Package, bool) {
	if p.loader == nil {
		return nil, false
	}
	seen := map[string]bool{p.Path: true}
	queue := append([]string(nil), p.deps...)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		dep, ok := p.loader.completed(cur)
		if !ok {
			continue
		}
		if cur == path {
			return dep, true
		}
		queue = append(queue, dep.deps...)
	}
	return nil, false
}

// Loader parses and type-checks packages of a single module (or of a
// GOPATH-style fixture tree) without any toolchain dependency beyond the
// standard library. Local imports are resolved recursively from source;
// everything else is delegated to importer.Default() with a source-importer
// fallback.
//
// The loader is safe for concurrent use: each package is parsed and
// type-checked exactly once (single-flight — concurrent requests for the
// same path block on the first one), the shared stdlib importers are
// serialized, and a wait-graph check turns a cross-goroutine import cycle
// into the same "import cycle" error the recursive case produces instead
// of a deadlock. token.FileSet is internally synchronized, so one position
// table serves all goroutines.
type Loader struct {
	// RootDir is the directory tree containing the packages.
	RootDir string
	// RootPath is the module path prefix ("gpupower"). Empty means
	// GOPATH-fixture mode: import paths are directory paths relative to
	// RootDir ("maporder/internal/core").
	RootPath string
	// Tests includes _test.go files: in-package test files are type-checked
	// together with the package, external test files become a separate
	// "<path>_test" package.
	Tests bool

	fset *token.FileSet

	// mu guards entries and waits. Entries are claimed under mu and
	// completed by closing their done channel; waits records, for EVERY
	// in-progress path a blocked goroutine has claimed (its whole load
	// stack, not just the innermost entry), the path that goroutine is
	// currently blocked on, so a would-be waiter on any of those entries
	// can detect a cross-goroutine wait cycle.
	mu      sync.Mutex
	entries map[string]*pkgEntry
	waits   map[string]string

	// stdMu serializes the shared stdlib importers, which make no
	// concurrency promises of their own.
	stdMu  sync.Mutex
	std    types.Importer
	srcImp types.Importer

	// checkedMu guards checked: every path handed to the type checker, in
	// check order. The fact cache's warm-run integration test asserts this
	// stays empty when nothing changed.
	checkedMu sync.Mutex
	checked   []string
}

// pkgEntry is the single-flight slot for one package: the goroutine that
// claims it closes done after pkg/err are final; everyone else waits.
type pkgEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader returns a loader over rootDir. rootPath is the module path prefix
// ("" for GOPATH-style fixture trees).
func NewLoader(rootDir, rootPath string) *Loader {
	return &Loader{
		RootDir:  rootDir,
		RootPath: rootPath,
		Tests:    true,
		fset:     token.NewFileSet(),
		entries:  make(map[string]*pkgEntry),
		waits:    make(map[string]string),
	}
}

// Fset exposes the loader's position table.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Discover walks RootDir and returns the sorted import paths of every
// directory containing buildable .go files. testdata, vendor, hidden and
// underscore-prefixed directories are skipped (testdata trees deliberately
// contain invariant violations).
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.Walk(l.RootDir, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if p != l.RootDir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.RootDir, dir)
		if err != nil {
			return err
		}
		paths = append(paths, l.relToPath(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// Deduplicate (one entry per .go file was appended).
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}

// LoadAll loads every discovered package, hoisting external test packages
// into sibling entries, and returns them in deterministic path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths, err := l.Discover()
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, p := range paths {
		pkgs, err := l.LoadPackages(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// LoadPackages loads the package at path plus, when the directory carries an
// external test package, that package as a second entry — the directory
// group the Runner and the fact cache operate on. The external-test sibling
// is memoized, so repeated calls do not re-type-check it.
func (l *Loader) LoadPackages(path string) ([]*Package, error) {
	pkg, err := l.Load(path)
	if err != nil {
		return nil, fmt.Errorf("lint: load %s: %w", path, err)
	}
	out := []*Package{pkg}
	if len(pkg.xtestFiles) > 0 {
		pkg.xtestMu.Lock()
		if pkg.xtestPkg == nil {
			xp, err := l.checkXTest(pkg)
			if err != nil {
				pkg.xtestMu.Unlock()
				return nil, fmt.Errorf("lint: load %s external tests: %w", path, err)
			}
			pkg.xtestPkg = xp
		}
		xp := pkg.xtestPkg
		pkg.xtestMu.Unlock()
		out = append(out, xp)
	}
	return out, nil
}

// DirFor resolves an import path to its directory under RootDir, reporting
// whether the path is local to the loaded tree. The fact cache uses it to
// hash package sources without forcing a load.
func (l *Loader) DirFor(path string) (string, bool) { return l.pathToDir(path) }

// TypeCheckedPaths returns the package paths that have been handed to the
// type checker so far, in check order (external-test packages appear under
// their "<path>_test" name). A warm cache run over an unchanged tree keeps
// this empty — the property the incremental engine exists to provide.
func (l *Loader) TypeCheckedPaths() []string {
	l.checkedMu.Lock()
	defer l.checkedMu.Unlock()
	return append([]string(nil), l.checked...)
}

// completed returns the loaded package for path only if its load already
// finished; it never blocks and never starts a load.
func (l *Loader) completed(path string) (*Package, bool) {
	l.mu.Lock()
	e, ok := l.entries[path]
	l.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.pkg == nil {
			return nil, false
		}
		return e.pkg, true
	default:
		return nil, false
	}
}

func (l *Loader) relToPath(rel string) string {
	rel = filepath.ToSlash(rel)
	switch {
	case rel == "." && l.RootPath != "":
		return l.RootPath
	case rel == ".":
		return ""
	case l.RootPath != "":
		return l.RootPath + "/" + rel
	default:
		return rel
	}
}

func (l *Loader) pathToDir(path string) (string, bool) {
	var rel string
	switch {
	case l.RootPath != "" && path == l.RootPath:
		rel = "."
	case l.RootPath != "" && strings.HasPrefix(path, l.RootPath+"/"):
		rel = strings.TrimPrefix(path, l.RootPath+"/")
	case l.RootPath == "" && path != "":
		rel = path
	default:
		return "", false
	}
	dir := filepath.Join(l.RootDir, filepath.FromSlash(rel))
	fi, err := os.Stat(dir)
	if err != nil || !fi.IsDir() {
		return "", false
	}
	return dir, true
}

// local reports whether an import path resolves inside the loaded tree.
func (l *Loader) local(path string) bool {
	_, ok := l.pathToDir(path)
	return ok
}

// Load parses and type-checks the package at the given import path (module
// packages only; stdlib goes through the importer delegation). Safe for
// concurrent use; concurrent loads of the same path coalesce into one.
func (l *Loader) Load(path string) (*Package, error) {
	return l.load(path, nil)
}

// load is the single-flight core. stack is the chain of in-progress paths
// on this goroutine (each one claimed by us), innermost last; it provides
// same-goroutine cycle detection, and its top names the entry we own when
// we must block on another goroutine's load.
func (l *Loader) load(path string, stack []string) (*Package, error) {
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}

	l.mu.Lock()
	if e, ok := l.entries[path]; ok {
		select {
		case <-e.done:
			l.mu.Unlock()
			return e.pkg, e.err
		default:
		}
		// In progress on another goroutine (were it ours, path would be in
		// stack). Before blocking, walk the wait graph: if the owner of
		// this entry is (transitively) blocked on a path we own, waiting
		// would deadlock — that shape only arises from an import cycle
		// split across goroutines, so report it as one. The visited set
		// bounds the walk: a closed ring among *other* goroutines' waits
		// (none of them ours) must not spin us forever under mu.
		cur := path
		visited := map[string]bool{}
		for !visited[cur] {
			visited[cur] = true
			next, waiting := l.waits[cur]
			if !waiting {
				break
			}
			for _, s := range stack {
				if s == next {
					l.mu.Unlock()
					return nil, fmt.Errorf("import cycle through %q", path)
				}
			}
			cur = next
		}
		// Record the edge for every entry we own, not just the innermost:
		// a goroutine blocked here is what's stalling ALL of its claimed
		// in-progress loads, and a waiter can arrive at any one of them. The
		// check-then-record is atomic under mu, so of two goroutines whose
		// waits would close a cycle, the later one always sees the earlier
		// one's edges and errors out instead of blocking.
		for _, s := range stack {
			l.waits[s] = path
		}
		l.mu.Unlock()
		<-e.done
		if len(stack) > 0 {
			l.mu.Lock()
			for _, s := range stack {
				delete(l.waits, s)
			}
			l.mu.Unlock()
		}
		return e.pkg, e.err
	}
	e := &pkgEntry{done: make(chan struct{})}
	l.entries[path] = e
	l.mu.Unlock()

	e.pkg, e.err = l.loadClaimed(path, append(stack, path))
	close(e.done)
	return e.pkg, e.err
}

// loadClaimed parses and type-checks one package; the caller owns its entry.
func (l *Loader) loadClaimed(path string, stack []string) (*Package, error) {
	dir, ok := l.pathToDir(path)
	if !ok {
		return nil, fmt.Errorf("no package directory for %q under %s", path, l.RootDir)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, xtest []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.Tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(name, "_test.go") {
			xtest = append(xtest, f)
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 && len(xtest) == 0 {
		return nil, fmt.Errorf("no buildable go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, loader: l, xtestFiles: xtest}
	pkg.deps = l.localImports(path, files)
	pkg.Types, pkg.Info, pkg.TypeErrors = l.check(path, files, stack)
	if len(pkg.TypeErrors) > 0 {
		return pkg, pkg.TypeErrors[0]
	}
	return pkg, nil
}

// localImports collects the in-module import paths of a file set, sorted and
// deduplicated — the Dep search space for cross-package analyses.
func (l *Loader) localImports(path string, files []*ast.File) []string {
	set := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != path && l.local(p) {
				set[p] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// check type-checks one set of files as the package named by path.
func (l *Loader) check(path string, files []*ast.File, stack []string) (*types.Package, *types.Info, []error) {
	l.checkedMu.Lock()
	l.checked = append(l.checked, path)
	l.checkedMu.Unlock()
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := &types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			return l.importPkg(p, stack)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	return tpkg, info, errs
}

// checkXTest type-checks the external test files of pkg as "<path>_test".
// Its import of the package under test resolves to the already-loaded
// in-package object (which includes export_test.go declarations, matching the
// go toolchain's test-binary semantics).
func (l *Loader) checkXTest(pkg *Package) (*Package, error) {
	xp := &Package{Path: pkg.Path + "_test", Dir: pkg.Dir, Fset: l.fset, Files: pkg.xtestFiles, loader: l}
	xp.deps = l.localImports(xp.Path, pkg.xtestFiles)
	xp.Types, xp.Info, xp.TypeErrors = l.check(xp.Path, pkg.xtestFiles, []string{xp.Path})
	if len(xp.TypeErrors) > 0 {
		return xp, xp.TypeErrors[0]
	}
	return xp, nil
}

// importPkg is the recursive in-module importer: local packages are loaded
// from source (single-flight memoized), "unsafe" maps to types.Unsafe, and
// everything else — the standard library — is delegated to
// importer.Default(), falling back to the slower source importer when no
// export data is available.
func (l *Loader) importPkg(path string, stack []string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.local(path) {
		pkg, err := l.load(path, stack)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	if l.std == nil {
		l.std = importer.Default()
	}
	tp, err := l.std.Import(path)
	if err == nil {
		return tp, nil
	}
	if l.srcImp == nil {
		l.srcImp = importer.ForCompiler(l.fset, "source", nil)
	}
	tp2, err2 := l.srcImp.Import(path)
	if err2 != nil {
		return nil, fmt.Errorf("import %q: %w (source fallback: %v)", path, err, err2)
	}
	return tp2, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
