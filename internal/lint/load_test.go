package lint

import (
	"go/token"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestImporterChain type-checks a cycle-free local-import chain
// (chainmod/a → chainmod/b → chainmod/c → strings) through the recursive
// in-module importer, asserting local resolution, memoization and stdlib
// delegation.
func TestImporterChain(t *testing.T) {
	l := NewLoader("testdata/chain", "chainmod")
	pkg, err := l.Load("chainmod/a")
	if err != nil {
		t.Fatalf("load chainmod/a: %v", err)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if pkg.Types.Name() != "a" {
		t.Errorf("package name = %q, want a", pkg.Types.Name())
	}
	if pkg.Types.Scope().Lookup("Top") == nil {
		t.Error("chainmod/a lost its Top declaration")
	}

	// The chain must have pulled b and c in transitively, memoized.
	for _, dep := range []string{"chainmod/b", "chainmod/c"} {
		cached, ok := l.completed(dep)
		if !ok {
			t.Fatalf("transitive dependency %s was not loaded", dep)
		}
		reloaded, err := l.Load(dep)
		if err != nil {
			t.Fatalf("reload %s: %v", dep, err)
		}
		if reloaded != cached {
			t.Errorf("%s was re-loaded instead of memoized", dep)
		}
	}

	// Leaf's stdlib import went through the delegating importer.
	c, err := l.Load("chainmod/c")
	if err != nil {
		t.Fatal(err)
	}
	foundStrings := false
	for _, imp := range c.Types.Imports() {
		if imp.Path() == "strings" {
			foundStrings = true
		}
	}
	if !foundStrings {
		t.Error("chainmod/c does not record its strings import")
	}

	// Discovery sees exactly the three chain packages, in sorted order.
	paths, err := l.Discover()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"chainmod/a", "chainmod/b", "chainmod/c"}
	if len(paths) != len(want) {
		t.Fatalf("Discover = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Discover = %v, want %v", paths, want)
		}
	}
}

// TestImporterRejectsLocalCycle: go/types cannot represent import cycles, so
// the recursive importer must refuse them with a diagnosable error instead
// of recursing forever.
func TestImporterRejectsLocalCycle(t *testing.T) {
	l := NewLoader("testdata/cycle", "cyclemod")
	_, err := l.Load("cyclemod/x")
	if err == nil {
		t.Fatal("loading a cyclic import chain succeeded")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error does not mention the cycle: %v", err)
	}
}

// TestLoadAllModule smoke-loads the real module through the loader — the
// exact path cmd/gpowerlint takes — and asserts every package type-checks.
func TestLoadAllModule(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check in -short mode")
	}
	root, modPath := "../..", "gpupower"
	l := NewLoader(root, modPath)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		if seen[p.Path] {
			t.Errorf("duplicate package %s", p.Path)
		}
		seen[p.Path] = true
		if len(p.TypeErrors) != 0 {
			t.Errorf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}
	// The external test packages ride along as "_test" siblings.
	if !seen["gpupower_test"] {
		t.Error("root external test package was not hoisted")
	}
}

// TestConcurrentLoadSingleFlight hammers one loader from many goroutines and
// asserts single-flight semantics: every goroutine gets the same *Package
// object per path (object identity is what cross-package facts key on) and
// each path reaches the type checker exactly once.
func TestConcurrentLoadSingleFlight(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	l := NewLoader("testdata/chain", "chainmod")
	paths := []string{"chainmod/a", "chainmod/b", "chainmod/c"}
	const goroutines = 12
	got := make([]*Package, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := l.Load(paths[i%len(paths)])
			if err != nil {
				t.Errorf("concurrent load %s: %v", paths[i%len(paths)], err)
				return
			}
			got[i] = p
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if got[i] == nil {
			t.Fatalf("goroutine %d got no package", i)
		}
		if prior := got[i%len(paths)]; got[i] != prior {
			t.Errorf("goroutine %d got a distinct *Package for %s — load was not single-flight", i, paths[i%len(paths)])
		}
	}
	counts := make(map[string]int)
	for _, p := range l.TypeCheckedPaths() {
		counts[p]++
	}
	for _, p := range paths {
		if counts[p] != 1 {
			t.Errorf("%s type-checked %d times, want exactly 1", p, counts[p])
		}
	}
}

// TestConcurrentCycleLoadErrorsNotDeadlocks loads the two halves of the
// cyclemod import cycle from separate goroutines simultaneously, repeatedly.
// Without the wait-graph check the two single-flight owners block on each
// other forever; the contract is that every goroutine returns, and at least
// one sees a cycle error.
func TestConcurrentCycleLoadErrorsNotDeadlocks(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for round := 0; round < 20; round++ {
		l := NewLoader("testdata/cycle", "cyclemod")
		errs := make(chan error, 2)
		for _, p := range []string{"cyclemod/x", "cyclemod/y"} {
			go func(p string) {
				_, err := l.Load(p)
				errs <- err
			}(p)
		}
		sawCycle := false
		for i := 0; i < 2; i++ {
			select {
			case err := <-errs:
				if err != nil && strings.Contains(err.Error(), "cycle") {
					sawCycle = true
				}
			case <-time.After(30 * time.Second):
				t.Fatalf("round %d: concurrent cycle load deadlocked", round)
			}
		}
		if !sawCycle {
			t.Fatalf("round %d: no goroutine reported the import cycle", round)
		}
	}
}

// TestConcurrentThreePackageCycle loads the a→b→c→a cycle concurrently from
// every root. This is the shape the top-of-stack wait keying deadlocked on:
// a goroutine that claimed a and b before blocking on c recorded only its
// innermost edge, so a waiter arriving at a found no edge in the wait graph
// and blocked forever. The contract is the same as the two-package case —
// every goroutine returns, at least one with a cycle error.
func TestConcurrentThreePackageCycle(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	roots := []string{"cycle3mod/a", "cycle3mod/b", "cycle3mod/c"}
	for round := 0; round < 30; round++ {
		// Vary which subset of roots loads concurrently: the reviewer's
		// reproduction was roots {a, c}, but any pair or the full triple
		// must be deadlock-free.
		for _, pick := range [][]string{{roots[0], roots[2]}, {roots[1], roots[0]}, roots} {
			l := NewLoader("testdata/cycle3", "cycle3mod")
			errs := make(chan error, len(pick))
			for _, p := range pick {
				go func(p string) {
					_, err := l.Load(p)
					errs <- err
				}(p)
			}
			sawCycle := false
			for i := 0; i < len(pick); i++ {
				select {
				case err := <-errs:
					if err != nil && strings.Contains(err.Error(), "cycle") {
						sawCycle = true
					}
				case <-time.After(30 * time.Second):
					t.Fatalf("round %d roots %v: concurrent 3-package cycle load deadlocked", round, pick)
				}
			}
			if !sawCycle {
				t.Fatalf("round %d roots %v: no goroutine reported the import cycle", round, pick)
			}
		}
	}
}

// TestPassIsTestFile covers the _test.go exemption plumbing analyzers rely on.
func TestPassIsTestFile(t *testing.T) {
	fset := token.NewFileSet()
	base1 := fset.AddFile("pkg.go", -1, 100)
	base2 := fset.AddFile("pkg_test.go", -1, 100)
	p := &Pass{Fset: fset}
	if p.IsTestFile(base1.Pos(0)) {
		t.Error("pkg.go classified as a test file")
	}
	if !p.IsTestFile(base2.Pos(0)) {
		t.Error("pkg_test.go not classified as a test file")
	}
}
