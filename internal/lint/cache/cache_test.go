package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/lint/analyzers"
)

// writeTree materializes a synthetic module: map of root-relative path to
// file content.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// newRunner builds the full-registry runner the CLI uses.
func newRunner() *lint.Runner {
	return &lint.Runner{Analyzers: analyzers.All(), Known: analyzers.KnownNames()}
}

// diagStrings flattens a result for order-sensitive comparison.
func diagStrings(res *lint.Result) []string {
	var out []string
	for _, d := range res.Diagnostics {
		out = append(out, fmt.Sprintf("%s:%d:%d %s %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return out
}

func sameDiags(t *testing.T, label string, got, want *lint.Result) {
	t.Helper()
	g, w := diagStrings(got), diagStrings(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d diagnostics, want %d\ngot:  %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("%s: diagnostic %d differs\ngot:  %s\nwant: %s", label, i, g[i], w[i])
		}
	}
	if got.Suppressed != want.Suppressed {
		t.Errorf("%s: suppressed=%d, want %d", label, got.Suppressed, want.Suppressed)
	}
}

// twoPackageTree is a module where pkg b imports pkg a, a has a real floateq
// finding plus a suppressed one, so both diagnostics and suppression counts
// must round-trip through the cache.
func twoPackageTree() map[string]string {
	return map[string]string{
		"a/a.go": `package a

// Eq is a deliberate floateq violation so the cache has a diagnostic to
// round-trip.
func Eq(x, y float64) bool { return x == y }

// Hidden is the suppressed twin: Suppressed must round-trip too.
func Hidden(x, y float64) bool {
	return x == y //lint:ignore floateq cache test: exercising suppression round-trip
}

// Scale feeds b.
func Scale(x float64) float64 { return 2 * x }
`,
		"b/b.go": `package b

import "example.com/m/a"

// Use depends on a: editing a must invalidate b's cache entry.
func Use(x float64) float64 { return a.Scale(x) + 1 }
`,
	}
}

func runCached(t *testing.T, root, facts string) (*lint.Result, *Stats, *lint.Loader) {
	t.Helper()
	loader := lint.NewLoader(root, "example.com/m")
	res, stats, err := Run(loader, newRunner(), facts)
	if err != nil {
		t.Fatal(err)
	}
	return res, stats, loader
}

// TestColdWarmAndContentInvalidation is the cache's core contract: a cold
// run misses everything, a warm run over an unchanged tree hits everything
// without type-checking a single package, editing a leaf package re-analyzes
// only that group, and editing a dependency re-analyzes its importers too.
func TestColdWarmAndContentInvalidation(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	writeTree(t, root, twoPackageTree())

	cold, stats, _ := runCached(t, root, facts)
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("cold run: %+v, want 0 hits / 2 misses", *stats)
	}
	if len(cold.Diagnostics) != 1 || cold.Diagnostics[0].Analyzer != "floateq" {
		t.Fatalf("cold run diagnostics: %v", diagStrings(cold))
	}
	if cold.Suppressed != 1 {
		t.Fatalf("cold run suppressed=%d, want 1", cold.Suppressed)
	}

	warm, stats, loader := runCached(t, root, facts)
	if stats.Hits != 2 || stats.Misses != 0 {
		t.Fatalf("warm run: %+v, want 2 hits / 0 misses", *stats)
	}
	if checked := loader.TypeCheckedPaths(); len(checked) != 0 {
		t.Fatalf("warm run type-checked %v; the incremental engine must not load unchanged packages", checked)
	}
	sameDiags(t, "warm vs cold", warm, cold)

	// Edit the leaf importer b: only b's group re-runs.
	writeTree(t, root, map[string]string{"b/b.go": `package b

import "example.com/m/a"

// Use gained a constant: content change, same findings (none).
func Use(x float64) float64 { return a.Scale(x) + 2 }
`})
	after, stats, _ := runCached(t, root, facts)
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after editing b: %+v, want 1 hit / 1 miss", *stats)
	}
	sameDiags(t, "after editing b", after, cold)

	// Edit dependency a: both a and its importer b must re-run.
	writeTree(t, root, map[string]string{"a/a.go": strings.Replace(
		twoPackageTree()["a/a.go"], "2 * x", "3 * x", 1)})
	after, stats, _ = runCached(t, root, facts)
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("after editing a: %+v, want 0 hits / 2 misses (dep invalidation)", *stats)
	}
	sameDiags(t, "after editing a", after, cold)
}

// TestCacheMatchesUncachedRun pins byte-identical reports: the cached engine
// and the plain engine must agree on an unchanged tree, both cold and warm.
func TestCacheMatchesUncachedRun(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	writeTree(t, root, twoPackageTree())

	plainLoader := lint.NewLoader(root, "example.com/m")
	pkgs, err := plainLoader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := newRunner().Run(pkgs)
	if err != nil {
		t.Fatal(err)
	}

	cold, _, _ := runCached(t, root, facts)
	sameDiags(t, "cold vs plain", cold, plain)
	warm, _, _ := runCached(t, root, facts)
	sameDiags(t, "warm vs plain", warm, plain)
}

// TestCorruptEntryRecovery truncates one entry on disk: the run must treat
// it as a miss, repair it, and still produce the full report.
func TestCorruptEntryRecovery(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	writeTree(t, root, twoPackageTree())
	cold, _, _ := runCached(t, root, facts)

	entries, err := filepath.Glob(filepath.Join(facts, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("expected 2 cache entries, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{ truncated garbag"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, stats, _ := runCached(t, root, facts)
	if stats.Corrupt != 1 || stats.Misses != 1 || stats.Hits != 1 {
		t.Fatalf("corrupt recovery run: %+v, want 1 corrupt / 1 miss / 1 hit", *stats)
	}
	sameDiags(t, "after corruption", res, cold)

	// The repaired entry must serve the next run.
	_, stats, _ = runCached(t, root, facts)
	if stats.Hits != 2 || stats.Corrupt != 0 {
		t.Fatalf("post-repair run: %+v, want 2 hits", *stats)
	}
}

// TestDirectiveErrorGroupsNeverCached: a malformed //lint:ignore must fail
// every run, so its group is re-analyzed each time rather than replayed.
func TestDirectiveErrorGroupsNeverCached(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	tree := twoPackageTree()
	tree["c/c.go"] = `package c

//lint:ignore nosuchanalyzer this directive names an unknown analyzer
func Broken() {}
`
	writeTree(t, root, tree)

	res, stats, _ := runCached(t, root, facts)
	if len(res.DirectiveErrors) != 1 {
		t.Fatalf("directive errors: %v, want 1", res.DirectiveErrors)
	}
	if stats.Misses != 3 {
		t.Fatalf("cold run: %+v, want 3 misses", *stats)
	}
	res, stats, _ = runCached(t, root, facts)
	if len(res.DirectiveErrors) != 1 {
		t.Fatalf("warm run lost the directive error: %v", res.DirectiveErrors)
	}
	if stats.Hits != 2 || stats.Misses != 1 {
		t.Fatalf("warm run: %+v, want 2 hits / 1 miss (broken group refused caching)", *stats)
	}
}

// TestAnalyzerSubsetGetsOwnEntries: -analyzers subsets and the full registry
// must not serve each other's results.
func TestAnalyzerSubsetGetsOwnEntries(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	writeTree(t, root, twoPackageTree())

	full, _, _ := runCached(t, root, facts)
	if len(full.Diagnostics) != 1 {
		t.Fatalf("full run: %v", diagStrings(full))
	}

	sub, ok := analyzers.ByName("maporder")
	if !ok {
		t.Fatal("maporder not registered")
	}
	loader := lint.NewLoader(root, "example.com/m")
	res, stats, err := Run(loader, &lint.Runner{Analyzers: sub, Known: analyzers.KnownNames()}, facts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 0 {
		t.Fatalf("subset run hit the full-registry entries: %+v", *stats)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("maporder-only run reported %v", diagStrings(res))
	}
}

// TestTestsFlagPartitionsCache: -tests=false runs hash a different file set
// and must not reuse -tests=true entries (a _test.go finding would leak).
func TestTestsFlagPartitionsCache(t *testing.T) {
	root, facts := t.TempDir(), t.TempDir()
	tree := twoPackageTree()
	tree["a/a_test.go"] = `package a

import "testing"

func TestEq(t *testing.T) {
	if !Eq(1, 1) { // the fixture's floateq body is in a.go, not here
		t.Fatal("Eq")
	}
}
`
	writeTree(t, root, tree)

	loader := lint.NewLoader(root, "example.com/m")
	full, _, err := Run(loader, newRunner(), facts)
	if err != nil {
		t.Fatal(err)
	}

	noTests := lint.NewLoader(root, "example.com/m")
	noTests.Tests = false
	res, stats, err := Run(noTests, newRunner(), facts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 0 {
		t.Fatalf("-tests=false run reused -tests=true entries: %+v", *stats)
	}
	sameDiags(t, "tests=false vs tests=true (findings live in non-test files)", res, full)
}
