package cache

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/parallel"
)

// manyGroupTree synthesizes a module with n sibling packages, each carrying
// one floateq finding, one suppressed finding and a stdlib import — enough
// groups that the parallel engine actually fans out, with diagnostics whose
// merged order would expose any scheduling leak.
func manyGroupTree(n int) map[string]string {
	tree := make(map[string]string, n)
	for i := 0; i < n; i++ {
		tree[fmt.Sprintf("p%02d/p.go", i)] = fmt.Sprintf(`package p%02d

import "math"

// Eq is this group's deliberate floateq finding.
func Eq(x, y float64) bool { return x == y }

// Near is the suppressed twin, so Suppressed counts must merge too.
func Near(x, y float64) bool {
	return math.Abs(x-y) == 0 //lint:ignore floateq parallel-engine test: suppression must merge deterministically
}
`, i)
	}
	return tree
}

// renderText renders a result exactly as the CLI would, so the comparison
// below is over the bytes a user sees, not a lossy summary.
func renderText(t *testing.T, res *lint.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := lint.WriteText(&buf, "", res.Diagnostics); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelOutputByteIdenticalToSerial is the engine-parallelism
// acceptance gate: the parallel run's rendered report — for both the plain
// Runner and the cached engine, cold and warm — must be byte-identical to
// the sequential-mode run over the same tree.
func TestParallelOutputByteIdenticalToSerial(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prevProcs)

	root := t.TempDir()
	writeTree(t, root, manyGroupTree(12))

	run := func(facts string) (plain, cold, warm *lint.Result) {
		t.Helper()
		loader := lint.NewLoader(root, "example.com/m")
		pkgs, err := loader.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		plain, err = newRunner().Run(pkgs)
		if err != nil {
			t.Fatal(err)
		}
		cold, stats, _ := runCached(t, root, facts)
		if stats.Misses != 12 || stats.Hits != 0 {
			t.Fatalf("cold cached run: %+v, want 12 misses", *stats)
		}
		warm, stats, _ = runCached(t, root, facts)
		if stats.Hits != 12 || stats.Misses != 0 || stats.Corrupt != 0 {
			t.Fatalf("warm cached run: %+v, want 12 hits (atomic counters must not tear)", *stats)
		}
		return plain, cold, warm
	}

	prev := parallel.SetSequential(true)
	serialPlain, serialCold, serialWarm := run(t.TempDir())
	parallel.SetSequential(false)
	parPlain, parCold, parWarm := run(t.TempDir())
	parallel.SetSequential(prev)

	if got := len(serialPlain.Diagnostics); got != 12 {
		t.Fatalf("fixture produced %d diagnostics, want 12", got)
	}
	for _, c := range []struct {
		label       string
		serial, par *lint.Result
	}{
		{"plain Runner.Run", serialPlain, parPlain},
		{"cache.Run cold", serialCold, parCold},
		{"cache.Run warm", serialWarm, parWarm},
	} {
		sb, pb := renderText(t, c.serial), renderText(t, c.par)
		if !bytes.Equal(sb, pb) {
			t.Errorf("%s: parallel output differs from serial\nserial:\n%s\nparallel:\n%s", c.label, sb, pb)
		}
		if c.serial.Suppressed != c.par.Suppressed {
			t.Errorf("%s: suppressed=%d parallel vs %d serial", c.label, c.par.Suppressed, c.serial.Suppressed)
		}
	}
}
