package cache

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeGCFile drops a file of n bytes with the given age into dir.
func writeGCFile(t *testing.T, dir, name string, n int, age time.Duration) string {
	t.Helper()
	full := filepath.Join(dir, name)
	if err := os.WriteFile(full, make([]byte, n), 0o644); err != nil {
		t.Fatal(err)
	}
	mt := time.Now().Add(-age)
	if err := os.Chtimes(full, mt, mt); err != nil {
		t.Fatal(err)
	}
	return full
}

func TestGCMissingDirIsNoop(t *testing.T) {
	stats, err := GC(filepath.Join(t.TempDir(), "nope"), GCOptions{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 0 || stats.ReclaimBytes != 0 {
		t.Fatalf("missing dir should be a no-op, got %+v", stats)
	}
}

func TestGCAgeBound(t *testing.T) {
	dir := t.TempDir()
	old := writeGCFile(t, dir, "pkg-a-000000000000000000000000.json", 100, 48*time.Hour)
	fresh := writeGCFile(t, dir, "pkg-b-111111111111111111111111.json", 100, time.Minute)

	stats, err := GC(dir, GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemovedAge != 1 || stats.RemainCount != 1 {
		t.Fatalf("want 1 expired + 1 kept, got %+v", stats)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("expired entry %s should be gone", old)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh entry should survive: %v", err)
	}
}

func TestGCSizeBoundEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	oldest := writeGCFile(t, dir, "pkg-a-000000000000000000000000.json", 400, 3*time.Hour)
	middle := writeGCFile(t, dir, "pkg-b-111111111111111111111111.json", 400, 2*time.Hour)
	newest := writeGCFile(t, dir, "pkg-c-222222222222222222222222.json", 400, time.Hour)

	stats, err := GC(dir, GCOptions{MaxBytes: 900})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemovedSize != 1 {
		t.Fatalf("want exactly the oldest evicted, got %+v", stats)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Fatalf("oldest entry should be gone")
	}
	for _, keep := range []string{middle, newest} {
		if _, err := os.Stat(keep); err != nil {
			t.Fatalf("%s should survive: %v", keep, err)
		}
	}
	if stats.RemainBytes != 800 || stats.RemainCount != 2 {
		t.Fatalf("want 800 B in 2 entries left, got %+v", stats)
	}
}

func TestGCRemovesStaleTempsKeepsFreshOnes(t *testing.T) {
	dir := t.TempDir()
	stale := writeGCFile(t, dir, ".tmp-12345", 50, time.Hour)
	inFlight := writeGCFile(t, dir, ".tmp-67890", 50, 0)
	entry := writeGCFile(t, dir, "pkg-a-000000000000000000000000.json", 100, time.Minute)

	stats, err := GC(dir, GCOptions{MaxAge: 24 * time.Hour, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemovedTemp != 1 {
		t.Fatalf("want the stale temp removed, got %+v", stats)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp should be gone")
	}
	if _, err := os.Stat(inFlight); err != nil {
		t.Fatalf("in-flight temp should survive: %v", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Fatalf("entry should survive: %v", err)
	}
}

func TestGCIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	foreign := writeGCFile(t, dir, "README.txt", 10, 100*24*time.Hour)
	stats, err := GC(dir, GCOptions{MaxAge: time.Hour, MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 0 {
		t.Fatalf("non-entry files must not be scanned, got %+v", stats)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file must never be touched: %v", err)
	}
}
