package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCOptions bounds the on-disk cache. Every source edit strands the old
// entry under its previous key (keys are content hashes, so an entry is
// never overwritten, only orphaned), which makes the directory grow
// without bound on a long-lived machine; GC is what reclaims it.
type GCOptions struct {
	// MaxAge evicts entries not written for longer than this.
	// Zero disables the age bound.
	MaxAge time.Duration
	// MaxBytes evicts oldest-first until the directory's entry bytes fit.
	// Zero disables the size bound.
	MaxBytes int64
}

// GCStats reports what one GC pass did.
type GCStats struct {
	Scanned      int   // entry files considered
	RemovedAge   int   // removed by the age bound
	RemovedSize  int   // removed by the size bound
	RemovedTemp  int   // stale .tmp-* files from crashed writers
	RemainBytes  int64 // entry bytes left on disk
	RemainCount  int   // entry files left on disk
	ReclaimBytes int64 // bytes freed
}

func (s GCStats) String() string {
	return fmt.Sprintf("gc: %d scanned, %d expired, %d over budget, %d stale temp, %d entries (%d KiB) kept",
		s.Scanned, s.RemovedAge, s.RemovedSize, s.RemovedTemp, s.RemainCount, s.RemainBytes/1024)
}

// gcFile is one candidate entry during a pass.
type gcFile struct {
	path  string
	size  int64
	mtime time.Time
}

// GC prunes the cache directory: stale temp files from crashed writers go
// unconditionally, entries older than MaxAge go next, then oldest-first
// eviction until the remaining entry bytes fit MaxBytes. A missing
// directory is a no-op. Removal races with concurrent lint runs are
// benign — a removed entry is simply a future miss — so GC never locks
// anything.
func GC(dir string, opts GCOptions) (GCStats, error) {
	var stats GCStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil
		}
		return stats, fmt.Errorf("lint cache gc: %w", err)
	}
	now := time.Now()
	cutoff := time.Time{}
	if opts.MaxAge > 0 {
		cutoff = now.Add(-opts.MaxAge)
	}

	var live []gcFile
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		full := filepath.Join(dir, name)
		info, err := de.Info()
		if err != nil {
			continue // raced with another remover; nothing to do
		}
		if strings.HasPrefix(name, ".tmp-") {
			// A writer's window between CreateTemp and Rename is
			// milliseconds; anything older than a minute is a crash leftover.
			if info.ModTime().Before(now.Add(-time.Minute)) {
				if os.Remove(full) == nil {
					stats.RemovedTemp++
					stats.ReclaimBytes += info.Size()
				}
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		stats.Scanned++
		if !cutoff.IsZero() && info.ModTime().Before(cutoff) {
			if os.Remove(full) == nil {
				stats.RemovedAge++
				stats.ReclaimBytes += info.Size()
				continue
			}
		}
		live = append(live, gcFile{path: full, size: info.Size(), mtime: info.ModTime()})
	}

	var total int64
	for _, f := range live {
		total += f.size
	}
	if opts.MaxBytes > 0 && total > opts.MaxBytes {
		// Oldest first; ties break on path so the pass is deterministic.
		sort.Slice(live, func(i, j int) bool {
			if !live[i].mtime.Equal(live[j].mtime) {
				return live[i].mtime.Before(live[j].mtime)
			}
			return live[i].path < live[j].path
		})
		for len(live) > 0 && total > opts.MaxBytes {
			f := live[0]
			live = live[1:]
			if os.Remove(f.path) == nil {
				stats.RemovedSize++
				stats.ReclaimBytes += f.size
				total -= f.size
			}
		}
	}
	stats.RemainCount = len(live)
	stats.RemainBytes = total
	return stats, nil
}
