package cache

import (
	"testing"

	"gpupower/internal/lint"
	"gpupower/internal/lint/linttest"
)

// TestWarmCacheSkipsTypeCheckingRealModule is the incremental engine's
// headline property, asserted over the actual repository rather than a
// synthetic tree: after one cold run, a warm run with a fresh loader replays
// every directory group from disk and hands *zero* packages to the type
// checker, while reporting the identical (empty, at HEAD) result.
func TestWarmCacheSkipsTypeCheckingRealModule(t *testing.T) {
	root, modPath := linttest.ModuleRoot(t)
	facts := t.TempDir()

	coldLoader := lint.NewLoader(root, modPath)
	cold, coldStats, err := Run(coldLoader, newRunner(), facts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Hits != 0 || coldStats.Misses == 0 {
		t.Fatalf("cold run over real module: %+v, want all misses", *coldStats)
	}
	if len(coldLoader.TypeCheckedPaths()) == 0 {
		t.Fatal("cold run type-checked nothing; the miss path is broken")
	}
	if len(cold.Diagnostics) != 0 || len(cold.DirectiveErrors) != 0 {
		t.Fatalf("repository is not lint-clean at HEAD:\n%s\ndirective errors: %v",
			linttest.Fprint(cold.Diagnostics), cold.DirectiveErrors)
	}

	warmLoader := lint.NewLoader(root, modPath)
	warm, warmStats, err := Run(warmLoader, newRunner(), facts)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Misses != 0 || warmStats.Hits != coldStats.Groups {
		t.Fatalf("warm run over unchanged module: %+v, want %d hits / 0 misses", *warmStats, coldStats.Groups)
	}
	if checked := warmLoader.TypeCheckedPaths(); len(checked) != 0 {
		t.Fatalf("warm run re-type-checked %v; unchanged packages must replay from disk", checked)
	}
	sameDiags(t, "warm vs cold over real module", warm, cold)
}
