// Package cache is gpowerlint's content-hash incremental engine.
//
// A cold run type-checks the whole module from source — the dominant cost of
// `make lint` by two orders of magnitude over the analyzers themselves. But
// the run's outcome for one directory group (a package plus its external-test
// sibling) is a pure function of
//
//   - the group's own .go sources,
//   - the sources of every in-module package it transitively imports
//     (type information flows along imports, nothing else),
//   - the analyzer set (names + doc-fingerprints) and directive vocabulary,
//   - the Tests flag and the Go version that type-checks it.
//
// So each group's post-suppression result is stored on disk under a SHA-256
// key over exactly those inputs, and a warm run replays unchanged groups
// without parsing or type-checking them at all. Suppression never crosses a
// file boundary (see lint.Ignore), so groups replay independently and the
// merged report is byte-identical to a cold run.
//
// Failure containment: a group whose run produced directive errors is never
// cached (those must fail loudly every run until fixed), an unreadable or
// mismatched entry is treated as a miss and deleted, and any hashing problem
// falls back to a plain uncached run of that group. The cache can make a run
// faster or it can get out of the way; it cannot change the verdict.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"gpupower/internal/lint"
	"gpupower/internal/parallel"
)

// SchemaVersion invalidates every entry when the cache layout or the engine's
// replay semantics change. Bump it whenever entry (de)serialization, the key
// recipe, or Runner group semantics change incompatibly.
const SchemaVersion = 1

// Stats summarizes one cached run.
type Stats struct {
	Groups  int // directory groups considered
	Hits    int // groups replayed from disk
	Misses  int // groups analyzed from source (includes corrupt entries)
	Corrupt int // entries that existed but failed to decode or key-match
}

func (s Stats) String() string {
	return fmt.Sprintf("%d/%d groups cached (%d analyzed, %d corrupt)", s.Hits, s.Groups, s.Misses, s.Corrupt)
}

// Run executes runner over every package in loader's tree, replaying
// unchanged directory groups from dir. The returned result is identical to
// runner.Run(loader.LoadAll()) — same diagnostics, same order — with
// loader.TypeCheckedPaths() staying empty for fully-warm runs.
//
// Groups are processed concurrently through internal/parallel: keys are
// hashed up-front (serial — memoized across the shared import closure, and
// cheap next to type-checking), then each group independently replays from
// disk or analyzes from source, with its result landing in its own slot.
// Slots merge in path order and sort once, so the report is byte-identical
// to the sequential-mode run. Hit/miss/corrupt tallies go through atomic
// counters (snapshotted into Stats at the end) and entry writes go through
// write-then-rename, so concurrent groups can neither tear the counters nor
// a cache file; distinct groups never share an entry file.
func Run(loader *lint.Loader, runner *lint.Runner, dir string) (*lint.Result, *Stats, error) {
	paths, err := loader.Discover()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("lint cache: %w", err)
	}
	h := &hasher{loader: loader, fset: token.NewFileSet(), keys: make(map[string]string), visiting: make(map[string]bool)}
	fingerprint := runnerFingerprint(runner, loader.Tests)

	// Phase 1 (serial): resolve every group's content key. The hasher memoizes
	// per-path keys across the whole closure, so this is one pass over the
	// sources with ImportsOnly parses — milliseconds against the seconds of
	// type-checking it lets phase 2 skip or parallelize.
	keys := make([]string, len(paths))
	keyErrs := make([]error, len(paths))
	for i, path := range paths {
		keys[i], keyErrs[i] = h.groupKey(path, fingerprint)
	}

	var hits, misses, corrupt atomic.Int64
	results := make([]*lint.Result, len(paths))
	if err := parallel.ForEach(len(paths), func(i int) error {
		path := paths[i]
		if keyErrs[i] != nil {
			// Hashing trouble (unreadable file, import cycle in a broken
			// tree): run the group uncached; the loader will produce the
			// authoritative error if there is one.
			gr, err := runGroup(loader, runner, path)
			if err != nil {
				return err
			}
			misses.Add(1)
			results[i] = gr
			return nil
		}
		file := entryFile(dir, path, keys[i])
		if cached, ok := readEntry(file, keys[i]); ok {
			hits.Add(1)
			results[i] = cached.result(loader.RootDir)
			return nil
		} else if _, statErr := os.Stat(file); statErr == nil {
			corrupt.Add(1)
			os.Remove(file)
		}
		gr, err := runGroup(loader, runner, path)
		if err != nil {
			return err
		}
		misses.Add(1)
		results[i] = gr
		if len(gr.DirectiveErrors) == 0 {
			writeEntry(file, newEntry(keys[i], path, gr, loader.RootDir))
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	stats := &Stats{
		Groups:  len(paths),
		Hits:    int(hits.Load()),
		Misses:  int(misses.Load()),
		Corrupt: int(corrupt.Load()),
	}
	res := &lint.Result{}
	for _, gr := range results {
		res.Merge(gr)
	}
	lint.SortDiagnostics(res.Diagnostics)
	return res, stats, nil
}

func runGroup(loader *lint.Loader, runner *lint.Runner, path string) (*lint.Result, error) {
	pkgs, err := loader.LoadPackages(path)
	if err != nil {
		return nil, err
	}
	return runner.RunGroup(pkgs)
}

// runnerFingerprint folds everything about the analysis configuration —
// which analyzers run, what their documented contracts are, the directive
// vocabulary, the Tests flag and the Go toolchain version — into one digest.
func runnerFingerprint(r *lint.Runner, tests bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\n", SchemaVersion)
	fmt.Fprintf(h, "go=%s\n", runtime.Version())
	fmt.Fprintf(h, "tests=%v\n", tests)
	for _, a := range r.Analyzers {
		fmt.Fprintf(h, "analyzer=%s\x00%s\n", a.Name, a.Doc)
	}
	var known []string
	for name := range r.Known {
		known = append(known, name)
	}
	sort.Strings(known)
	fmt.Fprintf(h, "known=%s\n", strings.Join(known, ","))
	return hex.EncodeToString(h.Sum(nil))
}

// hasher computes transitive content keys for directory groups. Keys are
// memoized per import path; visiting guards against import cycles (a broken
// tree — surfaced as a key error, which degrades to an uncached run).
type hasher struct {
	loader   *lint.Loader
	fset     *token.FileSet
	keys     map[string]string
	visiting map[string]bool
}

// groupKey returns the cache key for the group at path: a digest over the
// runner fingerprint, the group's own sorted (name, content-hash) pairs and
// the recursive keys of its in-module imports.
func (h *hasher) groupKey(path, fingerprint string) (string, error) {
	self, err := h.pathKey(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(fingerprint + "\x00" + self))
	return hex.EncodeToString(sum[:]), nil
}

// pathKey is the content-only (fingerprint-free) recursive key of a package
// directory, shared between a group's own key and its importers' keys.
func (h *hasher) pathKey(path string) (string, error) {
	if k, ok := h.keys[path]; ok {
		return k, nil
	}
	if h.visiting[path] {
		return "", fmt.Errorf("lint cache: import cycle through %q", path)
	}
	h.visiting[path] = true
	defer delete(h.visiting, path)

	dir, ok := h.loader.DirFor(path)
	if !ok {
		return "", fmt.Errorf("lint cache: no directory for %q", path)
	}
	files, err := groupFiles(dir, h.loader.Tests)
	if err != nil {
		return "", err
	}
	hash := sha256.New()
	fmt.Fprintf(hash, "path=%s\n", path)
	depSet := make(map[string]bool)
	for _, name := range files {
		full := filepath.Join(dir, name)
		data, err := os.ReadFile(full)
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(hash, "file=%s\x00%s\n", name, hex.EncodeToString(sum[:]))
		for _, imp := range h.imports(full, data) {
			if imp == path {
				continue // external tests import their own package
			}
			if _, local := h.loader.DirFor(imp); local {
				depSet[imp] = true
			}
		}
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	for _, d := range deps {
		dk, err := h.pathKey(d)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(hash, "dep=%s\x00%s\n", d, dk)
	}
	key := hex.EncodeToString(hash.Sum(nil))
	h.keys[path] = key
	return key, nil
}

// imports extracts the import paths of one file via an ImportsOnly parse —
// the whole point being that no full parse or type check happens on the
// warm path.
func (h *hasher) imports(filename string, src []byte) []string {
	f, err := parser.ParseFile(h.fset, filename, src, parser.ImportsOnly)
	if err != nil {
		return nil // unparsable files will fail the real load on the miss path
	}
	var out []string
	for _, spec := range f.Imports {
		if p, err := strconv.Unquote(spec.Path.Value); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// groupFiles lists the directory's buildable .go file names under the same
// filter the loader applies, so key inputs and analyzed inputs agree.
func groupFiles(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// entry is the on-disk record of one group's post-suppression result.
type entry struct {
	Schema     int       `json:"schema"`
	Key        string    `json:"key"`
	Path       string    `json:"path"`
	Suppressed int       `json:"suppressed"`
	Diags      []diagRec `json:"diags,omitempty"`
}

// diagRec flattens a lint.Diagnostic with the filename made root-relative,
// so a cache survives the checkout moving (CI restores into varying paths).
type diagRec struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Offset   int    `json:"offset"`
	Message  string `json:"message"`
}

func newEntry(key, path string, res *lint.Result, root string) *entry {
	e := &entry{Schema: SchemaVersion, Key: key, Path: path, Suppressed: res.Suppressed}
	for _, d := range res.Diagnostics {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		e.Diags = append(e.Diags, diagRec{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Offset:   d.Pos.Offset,
			Message:  d.Message,
		})
	}
	return e
}

// result rehydrates the entry into a group result, resolving filenames
// against the current module root.
func (e *entry) result(root string) *lint.Result {
	res := &lint.Result{Suppressed: e.Suppressed}
	for _, d := range e.Diags {
		file := filepath.FromSlash(d.File)
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		res.Diagnostics = append(res.Diagnostics, lint.Diagnostic{
			Analyzer: d.Analyzer,
			Pos:      token.Position{Filename: file, Line: d.Line, Column: d.Col, Offset: d.Offset},
			Message:  d.Message,
		})
	}
	return res
}

// entryFile names the on-disk entry: a readable path slug plus the key, so
// `ls` of the cache directory is debuggable and distinct configurations
// (analyzer subsets, -tests=false) coexist.
func entryFile(dir, path, key string) string {
	slug := strings.NewReplacer("/", "-", "\\", "-", ":", "-").Replace(path)
	if len(slug) > 80 {
		slug = slug[len(slug)-80:]
	}
	return filepath.Join(dir, slug+"-"+key[:24]+".json")
}

// readEntry loads and validates one entry; any mismatch is a miss.
func readEntry(file, key string) (*entry, bool) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != SchemaVersion || e.Key != key {
		return nil, false
	}
	return &e, true
}

// writeEntry persists one entry atomically (write-then-rename), so a crashed
// or concurrent run never leaves a half-written record where a future run
// would read it. Persistence failures are silently a non-event: the next run
// simply misses.
func writeEntry(file string, e *entry) {
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(file), ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, file); err != nil {
		os.Remove(name)
	}
}
