// Package linttest is the annotated-fixture harness for gpowerlint
// analyzers, in the spirit of golang.org/x/tools' analysistest but built on
// the standard library only.
//
// Fixtures live in GOPATH-style trees (testdata/src/<importpath>/...). A
// line that should produce a diagnostic carries a trailing comment
//
//	// want "regexp"
//
// (several quoted regexps may follow one want). The harness runs the
// analyzer through the full engine — including //lint:ignore suppression —
// and asserts an exact one-to-one match: every want is satisfied by a
// diagnostic on its line, and every diagnostic is expected by a want.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"gpupower/internal/lint"
)

// wantRe matches the quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the given fixture packages from testdata/src (GOPATH-style: the
// pattern "maporder/..." loads every package under that prefix) and checks
// the analyzer's diagnostics against the // want annotations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	loader := lint.NewLoader(testdata+"/src", "")
	all, err := loader.Discover()
	if err != nil {
		t.Fatalf("discover fixtures: %v", err)
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		matched := false
		for _, path := range all {
			if path == pat || (strings.HasSuffix(pat, "/...") &&
				(path == strings.TrimSuffix(pat, "/...") || strings.HasPrefix(path, strings.TrimSuffix(pat, "...")))) {
				pkg, err := loader.Load(path)
				if err != nil {
					t.Fatalf("load fixture %s: %v", path, err)
				}
				pkgs = append(pkgs, pkg)
				matched = true
			}
		}
		if !matched {
			t.Fatalf("pattern %q matched no fixture package under %s/src", pat, testdata)
		}
	}

	runner := &lint.Runner{Analyzers: []*lint.Analyzer{a}}
	res, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, derr := range res.DirectiveErrors {
		t.Errorf("directive error: %v", derr)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(t *testing.T, pkg *lint.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			ms := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
			}
		}
	}
	return out
}

// Fprint is a tiny helper for debugging fixture runs from tests.
func Fprint(diags []lint.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&sb, d)
	}
	return sb.String()
}
