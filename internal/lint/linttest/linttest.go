// Package linttest is the annotated-fixture harness for gpowerlint
// analyzers, in the spirit of golang.org/x/tools' analysistest but built on
// the standard library only.
//
// Fixtures live in GOPATH-style trees (testdata/src/<importpath>/...). A
// line that should produce a diagnostic carries a trailing comment
//
//	// want "regexp"
//
// (several quoted regexps may follow one want). The harness runs the
// analyzer through the full engine — including //lint:ignore suppression —
// and asserts an exact one-to-one match: every want is satisfied by a
// diagnostic on its line, and every diagnostic is expected by a want.
package linttest

import (
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gpupower/internal/lint"
)

// wantRe matches the quoted regexps of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the given fixture packages from testdata/src (GOPATH-style: the
// pattern "maporder/..." loads every package under that prefix) and checks
// the analyzer's diagnostics against the // want annotations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	RunAnalyzers(t, testdata, []*lint.Analyzer{a}, patterns...)
}

// RunAnalyzers is Run over a set of analyzers sharing one fixture tree —
// needed by engine-level checks like unusedignore, whose verdicts depend on
// what the other analyzers suppressed.
func RunAnalyzers(t *testing.T, testdata string, as []*lint.Analyzer, patterns ...string) {
	t.Helper()
	loader := lint.NewLoader(testdata+"/src", "")
	all, err := loader.Discover()
	if err != nil {
		t.Fatalf("discover fixtures: %v", err)
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		matched := false
		for _, path := range all {
			if path == pat || (strings.HasSuffix(pat, "/...") &&
				(path == strings.TrimSuffix(pat, "/...") || strings.HasPrefix(path, strings.TrimSuffix(pat, "...")))) {
				pkg, err := loader.Load(path)
				if err != nil {
					t.Fatalf("load fixture %s: %v", path, err)
				}
				pkgs = append(pkgs, pkg)
				matched = true
			}
		}
		if !matched {
			t.Fatalf("pattern %q matched no fixture package under %s/src", pat, testdata)
		}
	}

	runner := &lint.Runner{Analyzers: as}
	res, err := runner.Run(pkgs)
	if err != nil {
		t.Fatalf("run %s: %v", as[0].Name, err)
	}
	for _, derr := range res.DirectiveErrors {
		t.Errorf("directive error: %v", derr)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	for _, d := range res.Diagnostics {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(t *testing.T, pkg *lint.Package, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				// A //lint:ignore directive occupies the whole comment, so a
				// fixture asserting a diagnostic *about the directive itself*
				// (unusedignore) embeds the want at the end of the directive
				// text: //lint:ignore a reason // want "regexp".
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				text = text[i+len("// "):]
			}
			pos := pkg.Fset.Position(c.Pos())
			ms := wantRe.FindAllStringSubmatch(text[len("want "):], -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
			}
		}
	}
	return out
}

// ModuleRoot walks upward from the test's working directory to the enclosing
// go.mod and returns the module root directory and module path. Integration
// tests use it to run the engine over the real repository.
func ModuleRoot(t *testing.T) (root, modPath string) {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^module\s+(\S+)`)
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			m := re.FindSubmatch(data)
			if m == nil {
				t.Fatalf("no module directive in %s/go.mod", dir)
			}
			return dir, string(m[1])
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test working directory")
		}
		dir = parent
	}
}

// CopyModuleGoFiles mirrors the module's buildable tree (every .go file
// outside hidden, underscore, vendor and testdata directories) into dst, so
// a test can seed mutations into a throwaway copy of the real repository
// without touching the checkout.
func CopyModuleGoFiles(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if p != src && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	})
	if err != nil {
		t.Fatalf("copy module tree: %v", err)
	}
}

// Fprint is a tiny helper for debugging fixture runs from tests.
func Fprint(diags []lint.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&sb, d)
	}
	return sb.String()
}
