// Package c closes the three-package import cycle back to a.
package c

import "cycle3mod/a"

// C calls back into a.
func C() int { return a.A() }
