// Package a opens a deliberate three-package import cycle (a → b → c → a),
// the shape that exercises cross-goroutine cycle detection through an entry
// that is not the blocked owner's innermost load.
package a

import "cycle3mod/b"

// A calls into b.
func A() int { return b.B() }
