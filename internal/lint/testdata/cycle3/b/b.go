// Package b is the middle hop of the three-package import cycle.
package b

import "cycle3mod/c"

// B calls into c.
func B() int { return c.C() }
