// Package c is the leaf of the importer-test chain; it exercises the
// stdlib delegation path of the importer.
package c

import "strings"

// Leaf sums a slice.
func Leaf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Join exists to force a standard-library import through the delegating
// importer.
func Join(parts []string) string { return strings.Join(parts, ",") }
