// Package a heads the cycle-free local-import chain a → b → c used by the
// in-module importer tests.
package a

import "chainmod/b"

// Top sums through the chain.
func Top(xs []float64) float64 { return b.Mid(xs) }
