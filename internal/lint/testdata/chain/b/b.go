// Package b is the middle of the importer-test chain.
package b

import "chainmod/c"

// Mid forwards to the leaf.
func Mid(xs []float64) float64 { return c.Leaf(xs) }
