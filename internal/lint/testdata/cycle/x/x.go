// Package x participates in a deliberate local import cycle (x → y → x),
// which the recursive importer must refuse with a clear error.
package x

import "cyclemod/y"

// X calls into y.
func X() int { return y.Y() }
