// Package y closes the deliberate import cycle.
package y

import "cyclemod/x"

// Y calls back into x.
func Y() int { return x.X() }
