package lint

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// Changed-file filtering: `gpowerlint -changed <git-ref>` restricts the
// report to diagnostics in files touched since the ref, so an incremental
// run on a large branch surfaces only the findings the branch could have
// introduced. The full-module type check still runs — analyzers need whole-
// program type information — only the *reporting* is filtered.
//
// The git interaction is isolated in ChangedSince; ParseChangedList and
// FilterChanged are pure and unit-tested over synthetic diffs.

// ParseChangedList reads newline-separated file paths (the output shape of
// `git diff --name-only` and `git ls-files --others`) and returns the set
// of absolute paths, resolving relative names against root. Non-Go files
// are dropped — analyzers only ever position diagnostics in .go files —
// and blank lines are ignored.
func ParseChangedList(r io.Reader, root string) (map[string]bool, error) {
	set := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name := strings.TrimSpace(sc.Text())
		if name == "" || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, name)
		}
		set[filepath.Clean(name)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// FilterChanged keeps only diagnostics positioned in the changed set.
// Filenames are compared after Clean, so "./a/b.go" and "a/b.go" agree;
// relative diagnostic positions are resolved against root first.
func FilterChanged(diags []Diagnostic, changed map[string]bool, root string) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		name := d.Pos.Filename
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, name)
		}
		if changed[filepath.Clean(name)] {
			out = append(out, d)
		}
	}
	return out
}

// ParseNameStatus reads `git diff --name-status --find-renames` output
// (STATUS<TAB>path, or STATUS<TAB>old<TAB>new for renames/copies) and
// returns the set of Go files that exist in the working tree and carry the
// change. Status letters decide which path matters:
//
//	D          deleted — no file left to position a diagnostic in, skipped
//	R*/C*      renamed/copied — the *destination* path is the changed file
//	            (the score-suffixed letter, e.g. R100, still starts with R)
//	M/A/T/...  the single listed path
//
// This is the rename-correct replacement for parsing `--name-only`, whose
// line shape cannot distinguish a rename destination from a deleted source:
// with rename detection off (diff.renames=false, old git, plumbing configs)
// a rename appears as D+A and the dead source path pollutes the set, and
// the filter has no way to tell which side still exists.
func ParseNameStatus(r io.Reader, root string) (map[string]bool, error) {
	set := make(map[string]bool)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("lint: malformed --name-status line %q", line)
		}
		var name string
		switch fields[0][0] {
		case 'D':
			continue
		case 'R', 'C':
			if len(fields) < 3 {
				return nil, fmt.Errorf("lint: rename/copy --name-status line %q has no destination", line)
			}
			name = fields[len(fields)-1]
		default:
			name = fields[1]
		}
		if !strings.HasSuffix(name, ".go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, name)
		}
		set[filepath.Clean(name)] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// ChangedSince returns the set of Go files (absolute paths) that differ
// from ref in the working tree, including untracked files — the union a
// reviewer sees as "this branch's changes". It shells out to git, which is
// how the repository itself is versioned; no library dependency is taken.
//
// Rename detection is forced on (--find-renames) rather than inherited from
// the user's diff.renames config, so a `git mv` surfaces as the destination
// path no matter how the environment is configured.
func ChangedSince(root, ref string) (map[string]bool, error) {
	diff, err := gitOutput(root, "diff", "--name-status", "--find-renames", ref, "--")
	if err != nil {
		return nil, fmt.Errorf("lint: git diff --name-status %s: %w", ref, err)
	}
	set, err := ParseNameStatus(strings.NewReader(diff), root)
	if err != nil {
		return nil, err
	}
	untracked, err := gitOutput(root, "ls-files", "--others", "--exclude-standard")
	if err != nil {
		return nil, fmt.Errorf("lint: git ls-files --others: %w", err)
	}
	more, err := ParseChangedList(strings.NewReader(untracked), root)
	if err != nil {
		return nil, err
	}
	for k := range more {
		set[k] = true
	}
	return set, nil
}

// gitOutput runs one git subcommand rooted at the module directory.
func gitOutput(root string, args ...string) (string, error) {
	cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
	out, err := cmd.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) && len(ee.Stderr) > 0 {
			return "", fmt.Errorf("%w: %s", err, strings.TrimSpace(string(ee.Stderr)))
		}
		return "", err
	}
	return string(out), nil
}
