package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// diagAt builds a diagnostic positioned in the named file.
func diagAt(file string, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  "finding",
	}
}

// TestParseChangedListSyntheticDiff exercises the -changed filter over a
// synthetic `git diff --name-only` output: non-Go files are dropped, blank
// lines are skipped, relative names resolve against the module root, and
// path cleaning makes "./x.go" and "x.go" agree.
func TestParseChangedListSyntheticDiff(t *testing.T) {
	const root = "/mod"
	diff := strings.Join([]string{
		"internal/core/surface.go",
		"",
		"Makefile",
		"docs/DESIGN.md",
		"./dvfs.go",
		"cmd/gpowerlint/main.go",
		"/mod/internal/lint/changed.go",
	}, "\n")
	set, err := ParseChangedList(strings.NewReader(diff), root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/mod/internal/core/surface.go",
		"/mod/dvfs.go",
		"/mod/cmd/gpowerlint/main.go",
		"/mod/internal/lint/changed.go",
	}
	if len(set) != len(want) {
		t.Fatalf("parsed %d files, want %d: %v", len(set), len(want), set)
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("changed set is missing %s", w)
		}
	}
}

// TestFilterChangedKeepsOnlyTouchedFiles pins the report filter: only
// diagnostics in changed files survive, order is preserved, and relative
// diagnostic positions resolve against the root before matching.
func TestFilterChangedKeepsOnlyTouchedFiles(t *testing.T) {
	const root = "/mod"
	set, err := ParseChangedList(strings.NewReader("a/x.go\nb/y.go\n"), root)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		diagAt("/mod/a/x.go", 3, "floateq"),
		diagAt("/mod/c/z.go", 9, "maporder"), // untouched: filtered out
		diagAt("b/y.go", 5, "ctxflow"),       // relative position: resolves to /mod/b/y.go
		diagAt("/mod/a/x.go", 12, "senterr"),
	}
	got := FilterChanged(diags, set, root)
	if len(got) != 3 {
		t.Fatalf("filtered to %d diagnostics, want 3: %v", len(got), got)
	}
	wantLines := []int{3, 5, 12}
	for i, d := range got {
		if d.Pos.Line != wantLines[i] {
			t.Errorf("diag %d at line %d, want %d (order not preserved?)", i, d.Pos.Line, wantLines[i])
		}
	}
	for _, d := range got {
		if strings.HasSuffix(d.Pos.Filename, "z.go") {
			t.Errorf("diagnostic in untouched file survived: %v", d)
		}
	}
}

// TestParseNameStatusStatusLetters pins the status-letter dispatch over a
// synthetic `git diff --name-status --find-renames` transcript: modified and
// added paths pass through, deletions are dropped (no file left to hold a
// diagnostic), and renames/copies contribute their destination — never the
// dead source path.
func TestParseNameStatusStatusLetters(t *testing.T) {
	const root = "/mod"
	diff := strings.Join([]string{
		"M\tinternal/core/surface.go",
		"A\tcmd/gpowerlint/cache.go",
		"D\tinternal/old/removed.go",
		"R100\tinternal/lint/incremental.go\tinternal/lint/cache/cache.go",
		"R087\tinternal/hw/freqs.go\tinternal/hw/ladder.go",
		"C075\tinternal/core/model.go\tinternal/core/model_mem.go",
		"T\ttools/gen.go",
		"M\tREADME.md",
		"",
	}, "\n")
	set, err := ParseNameStatus(strings.NewReader(diff), root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/mod/internal/core/surface.go",
		"/mod/cmd/gpowerlint/cache.go",
		"/mod/internal/lint/cache/cache.go",
		"/mod/internal/hw/ladder.go",
		"/mod/internal/core/model_mem.go",
		"/mod/tools/gen.go",
	}
	if len(set) != len(want) {
		t.Fatalf("parsed %d files, want %d: %v", len(set), len(want), set)
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("changed set is missing %s", w)
		}
	}
	for _, dead := range []string{
		"/mod/internal/old/removed.go",      // deleted
		"/mod/internal/lint/incremental.go", // rename source
		"/mod/internal/hw/freqs.go",         // rename source (with edits)
	} {
		if set[dead] {
			t.Errorf("dead path %s must not be in the changed set", dead)
		}
	}
}

// TestParseNameStatusMalformed rejects truncated lines instead of guessing.
func TestParseNameStatusMalformed(t *testing.T) {
	if _, err := ParseNameStatus(strings.NewReader("M internal/a.go\n"), "/mod"); err == nil {
		t.Error("space-separated (non-TAB) line accepted")
	}
	if _, err := ParseNameStatus(strings.NewReader("R100\told.go\n"), "/mod"); err == nil {
		t.Error("rename line without destination accepted")
	}
}

// gitIn runs one git command in dir with identity/config pinned so the test
// is hermetic with respect to the host's git configuration.
func gitIn(t *testing.T, dir string, args ...string) string {
	t.Helper()
	base := []string{
		"-C", dir,
		"-c", "user.name=lint-test", "-c", "user.email=lint@test",
		"-c", "commit.gpgsign=false", "-c", "protocol.file.allow=always",
	}
	cmd := exec.Command("git", append(base, args...)...)
	cmd.Env = append(os.Environ(), "GIT_CONFIG_GLOBAL=/dev/null", "GIT_CONFIG_SYSTEM=/dev/null")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestChangedSinceTracksRenames builds a real throwaway repository and checks
// the end-to-end contract that motivated the --name-status rewrite: after a
// `git mv` the changed set names the destination file and not the dead
// source, deletions vanish from the set, and untracked files still join.
// The repo's diff.renames is forced off to model environments (old git,
// plumbing-style configs) where `--name-only` degrades to D+A pairs — the
// explicit --find-renames in ChangedSince must win over that config.
func TestChangedSinceTracksRenames(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not installed")
	}
	root := t.TempDir()
	gitIn(t, root, "init", "-q")
	gitIn(t, root, "config", "diff.renames", "false")

	const body = "package scratch\n\n// Stable enough content for git similarity detection to call\n// the move below a rename rather than an unrelated delete/add pair.\nfunc Keep() int { return 42 }\n"
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("old.go", body)
	write("doomed.go", "package scratch\n\nfunc Doomed() {}\n")
	gitIn(t, root, "add", ".")
	gitIn(t, root, "commit", "-q", "-m", "seed")

	gitIn(t, root, "mv", "old.go", "renamed.go")
	gitIn(t, root, "rm", "-q", "doomed.go")
	write("untracked.go", "package scratch\n")
	write("notes.txt", "not a go file\n")

	set, err := ChangedSince(root, "HEAD")
	if err != nil {
		t.Fatal(err)
	}
	for _, wantIn := range []string{"renamed.go", "untracked.go"} {
		if !set[filepath.Join(root, wantIn)] {
			t.Errorf("changed set is missing %s: %v", wantIn, set)
		}
	}
	for _, wantOut := range []string{"old.go", "doomed.go", "notes.txt"} {
		if set[filepath.Join(root, wantOut)] {
			t.Errorf("changed set must not contain %s: %v", wantOut, set)
		}
	}
}

// TestFilterChangedEmptySet checks the degenerate branch: nothing changed
// means nothing reported, never a nil-map panic.
func TestFilterChangedEmptySet(t *testing.T) {
	diags := []Diagnostic{diagAt("/mod/a.go", 1, "floateq")}
	if got := FilterChanged(diags, map[string]bool{}, "/mod"); len(got) != 0 {
		t.Fatalf("empty changed set kept %d diagnostics", len(got))
	}
	if got := FilterChanged(diags, nil, "/mod"); len(got) != 0 {
		t.Fatalf("nil changed set kept %d diagnostics", len(got))
	}
}
