package lint

import (
	"go/token"
	"strings"
	"testing"
)

// diagAt builds a diagnostic positioned in the named file.
func diagAt(file string, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  "finding",
	}
}

// TestParseChangedListSyntheticDiff exercises the -changed filter over a
// synthetic `git diff --name-only` output: non-Go files are dropped, blank
// lines are skipped, relative names resolve against the module root, and
// path cleaning makes "./x.go" and "x.go" agree.
func TestParseChangedListSyntheticDiff(t *testing.T) {
	const root = "/mod"
	diff := strings.Join([]string{
		"internal/core/surface.go",
		"",
		"Makefile",
		"docs/DESIGN.md",
		"./dvfs.go",
		"cmd/gpowerlint/main.go",
		"/mod/internal/lint/changed.go",
	}, "\n")
	set, err := ParseChangedList(strings.NewReader(diff), root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/mod/internal/core/surface.go",
		"/mod/dvfs.go",
		"/mod/cmd/gpowerlint/main.go",
		"/mod/internal/lint/changed.go",
	}
	if len(set) != len(want) {
		t.Fatalf("parsed %d files, want %d: %v", len(set), len(want), set)
	}
	for _, w := range want {
		if !set[w] {
			t.Errorf("changed set is missing %s", w)
		}
	}
}

// TestFilterChangedKeepsOnlyTouchedFiles pins the report filter: only
// diagnostics in changed files survive, order is preserved, and relative
// diagnostic positions resolve against the root before matching.
func TestFilterChangedKeepsOnlyTouchedFiles(t *testing.T) {
	const root = "/mod"
	set, err := ParseChangedList(strings.NewReader("a/x.go\nb/y.go\n"), root)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		diagAt("/mod/a/x.go", 3, "floateq"),
		diagAt("/mod/c/z.go", 9, "maporder"), // untouched: filtered out
		diagAt("b/y.go", 5, "ctxflow"),       // relative position: resolves to /mod/b/y.go
		diagAt("/mod/a/x.go", 12, "senterr"),
	}
	got := FilterChanged(diags, set, root)
	if len(got) != 3 {
		t.Fatalf("filtered to %d diagnostics, want 3: %v", len(got), got)
	}
	wantLines := []int{3, 5, 12}
	for i, d := range got {
		if d.Pos.Line != wantLines[i] {
			t.Errorf("diag %d at line %d, want %d (order not preserved?)", i, d.Pos.Line, wantLines[i])
		}
	}
	for _, d := range got {
		if strings.HasSuffix(d.Pos.Filename, "z.go") {
			t.Errorf("diagnostic in untouched file survived: %v", d)
		}
	}
}

// TestFilterChangedEmptySet checks the degenerate branch: nothing changed
// means nothing reported, never a nil-map panic.
func TestFilterChangedEmptySet(t *testing.T) {
	diags := []Diagnostic{diagAt("/mod/a.go", 1, "floateq")}
	if got := FilterChanged(diags, map[string]bool{}, "/mod"); len(got) != 0 {
		t.Fatalf("empty changed set kept %d diagnostics", len(got))
	}
	if got := FilterChanged(diags, nil, "/mod"); len(got) != 0 {
		t.Fatalf("nil changed set kept %d diagnostics", len(got))
	}
}
