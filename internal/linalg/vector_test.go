package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Dot length mismatch did not panic")
			}
		}()
		Dot([]float64{1}, []float64{1, 2})
	}()
}

func TestNorm2(t *testing.T) {
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2 of empty should be 0")
	}
	// Overflow guard: elements near MaxFloat64 must not overflow to Inf.
	big := math.MaxFloat64 / 4
	if math.IsInf(Norm2([]float64{big, big}), 1) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestAxpyScaleSub(t *testing.T) {
	y := []float64{1, 2}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 10 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 5 {
		t.Fatalf("Scale = %v", y)
	}
	d := Sub([]float64{5, 5}, y)
	if d[0] != 1.5 || d[1] != 0 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 5, 2}) != 3 {
		t.Fatal("MaxAbsDiff wrong")
	}
}

// Property: ‖v‖² == v·v for moderate values.
func TestNormDotConsistency(t *testing.T) {
	f := func(v [5]float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return true
			}
		}
		n := Norm2(v[:])
		return almostEq(n*n, Dot(v[:], v[:]), 1e-6*(1+n*n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
