package linalg

import (
	"math"
	"testing"

	"gpupower/internal/stats"
)

// TestNNLSBlockedSetRecovery is the regression test for the permanent-block
// bug: a variable whose inclusion transiently made the passive set singular
// used to be excluded from the candidate picks forever, even after the
// passive set changed and the collinearity disappeared. The transient
// singularity is simulated with an injected passive solver that fails
// exactly once (the way a QR rank check fails on a momentarily collinear
// submatrix, e.g. the all-V̄≡1 step-1 design), because at working precision
// a genuinely singular pick also has a sub-tolerance gradient.
func TestNNLSBlockedSetRecovery(t *testing.T) {
	// Columns: c0 = e1, c1 = e2, c2 = (3, 0.1, 1); b = (1, 2, −0.5).
	// Initial gradients (Aᵀb): w0 = 1, w1 = 2, w2 = 2.7 → c2 enters first.
	// The next pick is c1, whose solve we fail once → c1 is blocked.
	// Then c0 enters and the {c0, c2} fit drives x2 negative → c2 is
	// clipped out, the passive set shrinks, and the fixed algorithm
	// re-enables c1, reaching the true optimum x* = (1, 2, 0). The pre-fix
	// algorithm terminated at x = (1, 0, 0) with the KKT conditions
	// violated (w1 = 2 > 0 on a clamped variable).
	a, err := NewMatrixFromRows([][]float64{
		{1, 0, 3},
		{0, 1, 0.1},
		{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, -0.5}

	failed := false
	flaky := func(a *Matrix, rhs []float64, passive []bool) ([]float64, error) {
		if !failed && passive[1] {
			failed = true
			return nil, ErrRankDeficient
		}
		return solvePassive(a, rhs, passive)
	}

	x, err := nnls(a, b, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("injected singularity never triggered; the test no longer exercises the blocked path")
	}
	want := []float64{1, 2, 0}
	for j := range want {
		if math.Abs(x[j]-want[j]) > 1e-9 {
			t.Fatalf("x = %v, want %v (blocked variable 1 not recovered)", x, want)
		}
	}
	// KKT check: the recovered point must leave no clamped variable with a
	// positive gradient.
	resid, err := Residual(a, x, b)
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.TMulVec(resid)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		if x[j] == 0 && w[j] > 1e-8 {
			t.Fatalf("KKT violated at clamped variable %d: gradient %g", j, w[j])
		}
	}
}

// TestNNLSPersistentSingularityStaysBlocked pins the other side of the
// recovery rule: when the singularity is not transient (every solve
// including the variable fails), NNLS must still terminate and return the
// best point available without it, not loop or error out.
func TestNNLSPersistentSingularityStaysBlocked(t *testing.T) {
	a, err := NewMatrixFromRows([][]float64{
		{1, 0, 3},
		{0, 1, 0.1},
		{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, -0.5}
	alwaysFail := func(a *Matrix, rhs []float64, passive []bool) ([]float64, error) {
		if passive[1] {
			return nil, ErrRankDeficient
		}
		return solvePassive(a, rhs, passive)
	}
	x, err := nnls(a, b, alwaysFail)
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Fatalf("x1 = %g, want 0 when its solves always fail", x[1])
	}
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %g < 0", j, v)
		}
	}
}

func TestNNLSMatchesOLSWhenInterior(t *testing.T) {
	// When the unconstrained optimum is strictly positive, NNLS must agree
	// with ordinary least squares.
	a, _ := NewMatrixFromRows([][]float64{
		{1, 0},
		{0, 1},
		{1, 1},
	})
	b := []float64{1, 2, 3.1}
	ols, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ols {
		if !almostEq(ols[j], nn[j], 1e-8) {
			t.Fatalf("NNLS %v != OLS %v", nn, ols)
		}
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Fit y = -1·x with x ≥ 0 forced: the coefficient must clamp at 0.
	a, _ := NewMatrixFromRows([][]float64{{1}, {2}, {3}})
	x, err := NNLS(a, []float64{-1, -2, -3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("x = %v, want [0]", x)
	}
}

func TestNNLSNonNegativityProperty(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		m, n := 12, 5
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Normal(0, 1))
			}
			b[i] = rng.Normal(0, 2)
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: x[%d] = %g < 0", trial, j, v)
			}
		}
	}
}

// Property: the NNLS solution satisfies the KKT conditions — for passive
// variables the gradient of the residual is ~0; for clamped variables the
// gradient pushes toward negative values.
func TestNNLSKKT(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 50; trial++ {
		m, n := 15, 4
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Normal(0, 1))
			}
			b[i] = rng.Normal(0, 1)
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			g := Dot(a.Col(j), r) // = -∂SSE/∂x_j / 2
			if x[j] > 1e-9 {
				if math.Abs(g) > 1e-6 {
					t.Fatalf("trial %d: passive var %d has gradient %g", trial, j, g)
				}
			} else if g > 1e-6 {
				t.Fatalf("trial %d: clamped var %d wants to grow (g=%g)", trial, j, g)
			}
		}
	}
}

func TestNNLSCollinearColumns(t *testing.T) {
	// Identical columns (the V̄≡1 static-split case): NNLS must return a
	// valid non-negative solution without hanging.
	a, _ := NewMatrixFromRows([][]float64{
		{1, 1, 2},
		{1, 1, 3},
		{1, 1, 4},
		{1, 1, 5},
	})
	b := []float64{10, 13, 16, 19}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect fit exists: x0+x1 = 4, x2 = 3.
	ax, _ := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-6) {
			t.Fatalf("fit %v vs %v", ax, b)
		}
	}
	for _, v := range x {
		if v < 0 {
			t.Fatalf("negative component in %v", x)
		}
	}
}

func TestNNLSZeroInput(t *testing.T) {
	a := NewMatrix(3, 2)
	x, err := NNLS(a, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("x = %v, want zeros", x)
	}
}

func TestNNLSRHSLengthMismatch(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := NNLS(a, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBoundedNNLS(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 0},
		{0, 1},
	})
	b := []float64{5, 2}
	x, err := BoundedNNLS(a, b, []float64{3, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestBoundedNNLSBadUpper(t *testing.T) {
	a := NewMatrix(2, 2)
	if _, err := BoundedNNLS(a, []float64{0, 0}, []float64{1}); err == nil {
		t.Fatal("upper length mismatch accepted")
	}
}
