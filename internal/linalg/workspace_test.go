package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSystem builds a random m×n system with well-scaled entries.
func randSystem(rng *rand.Rand, m, n int) (*Matrix, []float64) {
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// TestQRWorkspaceMatchesNewQR checks that the workspace Factorize/SolveInto
// path is bitwise-identical to the allocating NewQR/Solve path: both run the
// same householder/qrSolveInto kernels, so any divergence is a bug.
func TestQRWorkspaceMatchesNewQR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := NewQRWorkspace(64, 12)
	for trial := 0; trial < 50; trial++ {
		m := 12 + rng.Intn(52)
		n := 1 + rng.Intn(12)
		a, b := randSystem(rng, m, n)

		f, err := NewQR(a)
		if err != nil {
			t.Fatalf("NewQR: %v", err)
		}
		want, err := f.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}

		if err := ws.Factorize(a); err != nil {
			t.Fatalf("Factorize: %v", err)
		}
		got := make([]float64, n)
		if err := ws.SolveInto(got, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d: x[%d] = %x, want %x (not bitwise equal)",
					trial, j, got[j], want[j])
			}
		}
	}
}

// TestNNLSWorkspaceMatchesNNLS checks that a reused NNLSWorkspace produces
// bitwise-identical solutions to the one-shot NNLS entry point across a
// sequence of systems (stale state from solve k must not leak into k+1).
func TestNNLSWorkspaceMatchesNNLS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := NewNNLSWorkspace(80, 11)
	for trial := 0; trial < 40; trial++ {
		m := 11 + rng.Intn(70)
		n := 2 + rng.Intn(10)
		a, b := randSystem(rng, m, n)

		want, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("NNLS: %v", err)
		}
		got := make([]float64, n)
		if err := ws.SolveInto(got, a, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d: x[%d] = %x, want %x (not bitwise equal)",
					trial, j, got[j], want[j])
			}
		}
	}
}

// TestBoundedSolveIntoMatchesBoundedNNLS does the same for the box-bounded
// refinement, which nests a second NNLS solve inside the workspace and must
// therefore keep its bounded-level buffers disjoint from the nested solve's.
func TestBoundedSolveIntoMatchesBoundedNNLS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := NewNNLSWorkspace(80, 11)
	for trial := 0; trial < 40; trial++ {
		m := 11 + rng.Intn(70)
		n := 2 + rng.Intn(10)
		a, b := randSystem(rng, m, n)
		upper := make([]float64, n)
		for j := range upper {
			switch rng.Intn(3) {
			case 0:
				upper[j] = math.Inf(1)
			case 1:
				upper[j] = 0.5 * rng.Float64()
			default:
				upper[j] = 2 * rng.Float64()
			}
		}

		want, err := BoundedNNLS(a, b, upper)
		if err != nil {
			t.Fatalf("BoundedNNLS: %v", err)
		}
		got := make([]float64, n)
		if err := ws.BoundedSolveInto(got, a, b, upper); err != nil {
			t.Fatalf("BoundedSolveInto: %v", err)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d: x[%d] = %x, want %x (not bitwise equal)",
					trial, j, got[j], want[j])
			}
		}
	}
}

// TestSolvePassiveIntoMatchesReference pins the workspace passive solve to
// the allocating reference implementation used by the injection tests.
func TestSolvePassiveIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ws := NewNNLSWorkspace(32, 8)
	for trial := 0; trial < 30; trial++ {
		m := 8 + rng.Intn(24)
		n := 2 + rng.Intn(7)
		a, b := randSystem(rng, m, n)
		passive := make([]bool, n)
		any := false
		for j := range passive {
			passive[j] = rng.Intn(2) == 0
			any = any || passive[j]
		}
		if !any {
			passive[0] = true
		}

		want, err := solvePassive(a, b, passive)
		if err != nil {
			t.Fatalf("solvePassive: %v", err)
		}
		if err := ws.solvePassiveInto(a, b, passive); err != nil {
			t.Fatalf("solvePassiveInto: %v", err)
		}
		got := ws.z[:n]
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("trial %d: z[%d] = %x, want %x (not bitwise equal)",
					trial, j, got[j], want[j])
			}
		}
	}
}

// TestMulIntoMatchesMul pins the in-place product to the allocating one.
func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := randSystem(rng, 17, 9)
	b, _ := randSystem(rng, 9, 13)
	want, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	got := NewMatrix(17, 13)
	// Dirty the destination to prove MulInto fully overwrites it.
	for i := range got.data {
		got.data[i] = math.NaN()
	}
	if err := a.MulInto(got, b); err != nil {
		t.Fatalf("MulInto: %v", err)
	}
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("entry %d: %x, want %x", i, got.data[i], want.data[i])
		}
	}
}

// --- allocation regression tests (ISSUE: 0 allocs after warm-up) ---

func TestQRWorkspaceSolveIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randSystem(rng, 40, 11)
	ws := NewQRWorkspace(40, 11)
	x := make([]float64, 11)
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.Factorize(a); err != nil {
			t.Fatalf("Factorize: %v", err)
		}
		if err := ws.SolveInto(x, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("QRWorkspace Factorize+SolveInto allocates %.1f/op, want 0", allocs)
	}
}

func TestNNLSWorkspaceSolveIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randSystem(rng, 60, 11)
	ws := NewNNLSWorkspace(60, 11)
	x := make([]float64, 11)
	// Warm-up solve (idx capacity growth etc. happens in NewNNLSWorkspace,
	// but warm once anyway to mirror steady-state use).
	if err := ws.SolveInto(x, a, b); err != nil {
		t.Fatalf("warm-up SolveInto: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.SolveInto(x, a, b); err != nil {
			t.Fatalf("SolveInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("NNLSWorkspace.SolveInto allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestBoundedSolveIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randSystem(rng, 60, 11)
	upper := make([]float64, 11)
	for j := range upper {
		upper[j] = 0.25
	}
	ws := NewNNLSWorkspace(60, 11)
	x := make([]float64, 11)
	if err := ws.BoundedSolveInto(x, a, b, upper); err != nil {
		t.Fatalf("warm-up BoundedSolveInto: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.BoundedSolveInto(x, a, b, upper); err != nil {
			t.Fatalf("BoundedSolveInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BoundedSolveInto allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestMulVecIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, _ := randSystem(rng, 40, 11)
	x := make([]float64, 11)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	dst := make([]float64, 40)
	tdst := make([]float64, 11)
	y := make([]float64, 40)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := a.MulVecInto(dst, x); err != nil {
			t.Fatalf("MulVecInto: %v", err)
		}
		if err := a.TMulVecInto(tdst, y); err != nil {
			t.Fatalf("TMulVecInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MulVecInto/TMulVecInto allocate %.1f/op, want 0", allocs)
	}
}
