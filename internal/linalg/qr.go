package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a least-squares system does not have a
// unique solution at working precision.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with Q orthogonal (stored implicitly as Householder reflectors)
// and R upper triangular.
type QR struct {
	qr   *Matrix   // packed reflectors below diagonal, R on/above diagonal
	rdia []float64 // diagonal of R
}

// NewQR computes the QR factorization of a. It requires Rows ≥ Cols.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflector to remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries relative to
// the largest one.
func (f *QR) FullRank() bool {
	var mx float64
	for _, d := range f.rdia {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return false
	}
	const relTol = 1e-12
	for _, d := range f.rdia {
		if math.Abs(d) <= relTol*mx {
			return false
		}
	}
	return true
}

// Solve returns x minimizing ‖A·x − b‖₂. It returns ErrRankDeficient when A
// is numerically rank-deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrRankDeficient
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution R·x = y.
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.qr.At(k, j) * x[j]
		}
		x[k] = s / f.rdia[k]
	}
	return x, nil
}

// LeastSquares solves min_x ‖A·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves the Tikhonov-regularized problem
// min_x ‖A·x − b‖² + λ‖x‖² by augmenting the system with √λ·I. It is used
// as a fallback when the plain system is rank-deficient (e.g. a
// microbenchmark set that never exercises one component).
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge parameter %g", lambda)
	}
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
	}
	sl := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sl)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}

// Residual returns b − A·x.
func Residual(a *Matrix, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	return Sub(b, ax), nil
}
