package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrRankDeficient is returned when a least-squares system does not have a
// unique solution at working precision.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with Q orthogonal (stored implicitly as Householder reflectors)
// and R upper triangular.
type QR struct {
	qr   *Matrix   // packed reflectors below diagonal, R on/above diagonal
	rdia []float64 // diagonal of R
}

// householder factorizes qr in place: packed Householder reflectors below
// the diagonal, R on/above it, R's diagonal in rdia (len Cols). It is the
// single shared kernel behind NewQR and QRWorkspace.Factorize, so the two
// paths are arithmetically — and therefore bitwise — identical.
func householder(qr *Matrix, rdia []float64) {
	m, n := qr.rows, qr.cols
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflector to remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdia[k] = -nrm
	}
}

// fullRank reports whether rdia has no (near-)zero entries relative to the
// largest one.
func fullRank(rdia []float64) bool {
	var mx float64
	for _, d := range rdia {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return false
	}
	const relTol = 1e-12
	for _, d := range rdia {
		if math.Abs(d) <= relTol*mx {
			return false
		}
	}
	return true
}

// qrSolveInto solves the factored least-squares system into dst (len Cols),
// using y (len Rows) as scratch for the Qᵀ·b application. It performs no
// allocation; rank checking is the caller's responsibility.
func qrSolveInto(qr *Matrix, rdia, dst, y, b []float64) {
	m, n := qr.rows, qr.cols
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += qr.At(i, k) * y[i]
		}
		s = -s / qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * qr.At(i, k)
		}
	}
	// Back substitution R·x = y.
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= qr.At(k, j) * dst[j]
		}
		dst[k] = s / rdia[k]
	}
}

// NewQR computes the QR factorization of a. It requires Rows ≥ Cols.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	householder(qr, rdia)
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries relative to
// the largest one.
func (f *QR) FullRank() bool { return fullRank(f.rdia) }

// Solve returns x minimizing ‖A·x − b‖₂. It returns ErrRankDeficient when A
// is numerically rank-deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrRankDeficient
	}
	y := make([]float64, m)
	x := make([]float64, n)
	qrSolveInto(f.qr, f.rdia, x, y, b)
	return x, nil
}

// QRWorkspace is a preallocated Householder QR factorization buffer: one
// allocation up front (sized for the largest system the caller will solve),
// zero allocations per Factorize/SolveInto afterwards. It is the inner
// kernel of the estimator's iterative refits (DESIGN.md §10), where the
// same-shaped system is solved hundreds of times per fit.
//
// A workspace is single-goroutine state: confine each instance to one
// worker (see parallel.PerWorker) or guard it externally.
type QRWorkspace struct {
	maxRows, maxCols int
	qrData           []float64
	rdia             []float64
	y                []float64

	qr       Matrix // current factorization view over qrData
	factored bool
}

// NewQRWorkspace preallocates a workspace able to factorize any matrix with
// rows ≤ maxRows and cols ≤ maxCols (rows ≥ cols still required per solve).
func NewQRWorkspace(maxRows, maxCols int) *QRWorkspace {
	if maxRows <= 0 || maxCols <= 0 || maxRows < maxCols {
		panic(fmt.Sprintf("linalg: invalid QR workspace capacity %dx%d", maxRows, maxCols))
	}
	return &QRWorkspace{
		maxRows: maxRows,
		maxCols: maxCols,
		qrData:  make([]float64, maxRows*maxCols),
		rdia:    make([]float64, maxCols),
		y:       make([]float64, maxRows),
	}
}

// Factorize copies a into the workspace and factorizes it in place. The
// arithmetic is byte-for-byte the NewQR kernel; only the storage is reused.
func (w *QRWorkspace) Factorize(a *Matrix) error {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	if m > w.maxRows || n > w.maxCols {
		return fmt.Errorf("linalg: %dx%d exceeds QR workspace capacity %dx%d", m, n, w.maxRows, w.maxCols)
	}
	w.qr = Matrix{rows: m, cols: n, data: w.qrData[:m*n]}
	copy(w.qr.data, a.data)
	householder(&w.qr, w.rdia[:n])
	w.factored = true
	return nil
}

// FullRank reports whether the last factorized matrix has full column rank
// at working precision.
func (w *QRWorkspace) FullRank() bool {
	return w.factored && fullRank(w.rdia[:w.qr.cols])
}

// SolveInto writes x minimizing ‖A·x − b‖₂ into dst (len Cols of the last
// Factorize), allocating nothing. It returns ErrRankDeficient when the
// factorized matrix is numerically rank-deficient.
func (w *QRWorkspace) SolveInto(dst, b []float64) error {
	if !w.factored {
		return fmt.Errorf("linalg: QR workspace solve before Factorize")
	}
	m, n := w.qr.rows, w.qr.cols
	if len(b) != m {
		return fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if len(dst) != n {
		return fmt.Errorf("linalg: QR solve dst length %d, want %d", len(dst), n)
	}
	if !fullRank(w.rdia[:n]) {
		return ErrRankDeficient
	}
	qrSolveInto(&w.qr, w.rdia[:n], dst, w.y[:m], b)
	return nil
}

// LeastSquares solves min_x ‖A·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves the Tikhonov-regularized problem
// min_x ‖A·x − b‖² + λ‖x‖² by augmenting the system with √λ·I. It is used
// as a fallback when the plain system is rank-deficient (e.g. a
// microbenchmark set that never exercises one component).
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge parameter %g", lambda)
	}
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
	}
	sl := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sl)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}

// Residual returns b − A·x.
func Residual(a *Matrix, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	return Sub(b, ax), nil
}
