package linalg

import (
	"errors"
	"fmt"
	"math"

	"gpupower/internal/parallel"
)

// ErrRankDeficient is returned when a least-squares system does not have a
// unique solution at working precision.
var ErrRankDeficient = errors.New("linalg: rank-deficient system")

// QR holds a Householder QR factorization of an m×n matrix (m ≥ n):
// A = Q·R with Q orthogonal (stored implicitly as Householder reflectors)
// and R upper triangular.
type QR struct {
	qr   *Matrix   // packed reflectors below diagonal, R on/above diagonal
	rdia []float64 // diagonal of R
}

// qrRowBlock is the fixed row-block length of the blocked Householder
// kernel. Block b of column k covers rows [k+b·qrRowBlock, k+(b+1)·qrRowBlock),
// so the block decomposition — and therefore the partial-sum association of
// the fused reflector application — is a property of the matrix shape alone,
// never of the worker count. Serial and parallel factorizations of the same
// matrix are bitwise-identical.
const qrRowBlock = 256

// qrBlocks returns the number of row blocks a factorization of m rows can
// touch (the column-0 count, which is the maximum over all columns).
func qrBlocks(m int) int { return (m + qrRowBlock - 1) / qrRowBlock }

// colNorm2 computes the Euclidean norm of rows [k, m) of column k with one
// scaled sum-of-squares pass (overflow-safe like a Hypot chain, but one
// division per element and a single Sqrt instead of a libcall per element).
func colNorm2(qr *Matrix, k int) float64 {
	m, n := qr.rows, qr.cols
	var mx float64
	for i := k; i < m; i++ {
		if a := math.Abs(qr.data[i*n+k]); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	var ss float64
	for i := k; i < m; i++ {
		v := qr.data[i*n+k] / mx
		ss += v * v
	}
	return mx * math.Sqrt(ss)
}

// reflectorPartial computes row block b's partial sums of vᵀ·A over the
// trailing columns of the column-k reflector into partial[b·cols : (b+1)·cols].
// Package function (not a closure) so the inline serial dispatch in
// applyReflector allocates nothing — the same closure-escape trap MulInto
// documents.
func reflectorPartial(qr *Matrix, k, b int, partial []float64) {
	m, n := qr.rows, qr.cols
	lo := k + b*qrRowBlock
	hi := lo + qrRowBlock
	if hi > m {
		hi = m
	}
	data := qr.data
	part := partial[b*n : (b+1)*n]
	for j := k + 1; j < n; j++ {
		part[j] = 0
	}
	for i := lo; i < hi; i++ {
		row := data[i*n : (i+1)*n]
		vi := row[k]
		for j := k + 1; j < n; j++ {
			part[j] += vi * row[j]
		}
	}
}

// reflectorUpdate applies the rank-1 update of the column-k reflector to row
// block b: A_ij += w_j·v_i. Blocks own disjoint rows. Package function for
// the same allocation reason as reflectorPartial.
func reflectorUpdate(qr *Matrix, k, b int, w []float64) {
	m, n := qr.rows, qr.cols
	lo := k + b*qrRowBlock
	hi := lo + qrRowBlock
	if hi > m {
		hi = m
	}
	data := qr.data
	for i := lo; i < hi; i++ {
		row := data[i*n : (i+1)*n]
		vi := row[k]
		for j := k + 1; j < n; j++ {
			row[j] += w[j] * vi
		}
	}
}

// applyReflector applies the column-k Householder reflector (packed in rows
// [k, m) of column k, pivot on the diagonal) to the trailing columns with a
// fused two-pass row sweep:
//
//	pass 1:  w_j = Σ_i v_i·A_ij   (per-block partials, folded in block order)
//	pass 2:  A_ij += s_j·v_i      (s_j = −w_j/v_k; disjoint row blocks)
//
// Compared with the historical column-at-a-time loop this reads each row
// once per pass (row-major, cache-friendly), touches no bounds-checked
// At/Set accessors, and is the fan-out point that lets the step-1/step-3
// refits scale across cores. Both passes run over the same fixed block
// decomposition whether dispatched inline or across the pool, so serial and
// parallel factorizations are bitwise-identical.
//
// w needs len ≥ cols; partial needs len ≥ blocks·cols.
func applyReflector(qr *Matrix, k int, w, partial []float64) {
	m, n := qr.rows, qr.cols
	if k+1 >= n {
		return
	}
	rows := m - k
	blocks := (rows + qrRowBlock - 1) / qrRowBlock
	fanOut := blocks > 1 && rows*(n-k-1) >= parallelMinWork
	// Pass 1: per-block partial sums of vᵀ·A over the trailing columns.
	if fanOut {
		// The per-block work is reflectorPartial either way; the closure only
		// routes the block index, so fan-out cannot change a bit.
		//gpower:allocs large-matrix fan-out: the block closure escapes into the worker pool; small solves take the inline loop below
		_ = parallel.ForEach(blocks, func(b int) error {
			reflectorPartial(qr, k, b, partial)
			return nil
		})
	} else {
		for b := 0; b < blocks; b++ {
			reflectorPartial(qr, k, b, partial)
		}
	}
	// Fold the partials in block order (fixed association) and precompute
	// the per-column update scale.
	data := qr.data
	pivot := data[k*n+k]
	for j := k + 1; j < n; j++ {
		var s float64
		for b := 0; b < blocks; b++ {
			s += partial[b*n+j]
		}
		w[j] = -s / pivot
	}
	// Pass 2: rank-1 update, disjoint row blocks.
	if fanOut {
		//gpower:allocs large-matrix fan-out: the block closure escapes into the worker pool; small solves take the inline loop below
		_ = parallel.ForEach(blocks, func(b int) error {
			reflectorUpdate(qr, k, b, w)
			return nil
		})
	} else {
		for b := 0; b < blocks; b++ {
			reflectorUpdate(qr, k, b, w)
		}
	}
}

// householder factorizes qr in place: packed Householder reflectors below
// the diagonal, R on/above it, R's diagonal in rdia (len Cols). It is the
// single shared kernel behind NewQR and QRWorkspace.Factorize, so the two
// paths are arithmetically — and therefore bitwise — identical. The
// reflector application is blocked and fused (see applyReflector); the
// historical Hypot-chain kernel survives as householderRef, the baseline of
// the speedup measurements.
//
// w and partial are caller-owned scratch: len(w) ≥ cols,
// len(partial) ≥ qrBlocks(rows)·cols.
func householder(qr *Matrix, rdia, w, partial []float64) {
	m, n := qr.rows, qr.cols
	data := qr.data
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		nrm := colNorm2(qr, k)
		if nrm != 0 {
			if data[k*n+k] < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				data[i*n+k] /= nrm
			}
			data[k*n+k]++
			applyReflector(qr, k, w, partial)
		}
		rdia[k] = -nrm
	}
}

// fullRank reports whether rdia has no (near-)zero entries relative to the
// largest one.
func fullRank(rdia []float64) bool {
	var mx float64
	for _, d := range rdia {
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return false
	}
	const relTol = 1e-12
	for _, d := range rdia {
		if math.Abs(d) <= relTol*mx {
			return false
		}
	}
	return true
}

// qrSolveInto solves the factored least-squares system into dst (len Cols),
// using y (len Rows) as scratch for the Qᵀ·b application. It performs no
// allocation; rank checking is the caller's responsibility.
func qrSolveInto(qr *Matrix, rdia, dst, y, b []float64) {
	m, n := qr.rows, qr.cols
	data := qr.data
	copy(y, b)
	// Apply Qᵀ to b. Direct data indexing (not At/Set) with the exact loop
	// order of the historical accessor-based code: same arithmetic, no
	// per-element bounds re-checks.
	for k := 0; k < n; k++ {
		if data[k*n+k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += data[i*n+k] * y[i]
		}
		s = -s / data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * data[i*n+k]
		}
	}
	// Back substitution R·x = y.
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		row := data[k*n : (k+1)*n]
		for j := k + 1; j < n; j++ {
			s -= row[j] * dst[j]
		}
		dst[k] = s / rdia[k]
	}
}

// NewQR computes the QR factorization of a. It requires Rows ≥ Cols.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	householder(qr, rdia, make([]float64, n), make([]float64, qrBlocks(m)*n))
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries relative to
// the largest one.
func (f *QR) FullRank() bool { return fullRank(f.rdia) }

// Solve returns x minimizing ‖A·x − b‖₂. It returns ErrRankDeficient when A
// is numerically rank-deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrRankDeficient
	}
	y := make([]float64, m)
	x := make([]float64, n)
	qrSolveInto(f.qr, f.rdia, x, y, b)
	return x, nil
}

// QRWorkspace is a preallocated Householder QR factorization buffer: one
// allocation up front (sized for the largest system the caller will solve),
// zero allocations per Factorize/SolveInto afterwards. It is the inner
// kernel of the estimator's iterative refits (DESIGN.md §10), where the
// same-shaped system is solved hundreds of times per fit.
//
// A workspace is single-goroutine state: confine each instance to one
// worker (see parallel.PerWorker) or guard it externally.
type QRWorkspace struct {
	maxRows, maxCols int
	qrData           []float64
	rdia             []float64
	y                []float64
	w                []float64 // blocked-kernel per-column update scales
	partial          []float64 // blocked-kernel per-block partial sums

	qr       Matrix // current factorization view over qrData
	factored bool
}

// NewQRWorkspace preallocates a workspace able to factorize any matrix with
// rows ≤ maxRows and cols ≤ maxCols (rows ≥ cols still required per solve).
func NewQRWorkspace(maxRows, maxCols int) *QRWorkspace {
	if maxRows <= 0 || maxCols <= 0 || maxRows < maxCols {
		panic(fmt.Sprintf("linalg: invalid QR workspace capacity %dx%d", maxRows, maxCols))
	}
	return &QRWorkspace{
		maxRows: maxRows,
		maxCols: maxCols,
		qrData:  make([]float64, maxRows*maxCols),
		rdia:    make([]float64, maxCols),
		y:       make([]float64, maxRows),
		w:       make([]float64, maxCols),
		partial: make([]float64, qrBlocks(maxRows)*maxCols),
	}
}

// Factorize copies a into the workspace and factorizes it in place. The
// arithmetic is byte-for-byte the NewQR kernel; only the storage is reused.
//
//gpower:noalloc in-capacity factorizations run entirely on preallocated workspace storage
func (w *QRWorkspace) Factorize(a *Matrix) error {
	m, n := a.Rows(), a.Cols()
	if m < n {
		//gpower:allocs validation error path: a malformed shape never reaches the kernel
		return fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	if m > w.maxRows || n > w.maxCols {
		//gpower:allocs validation error path: an over-capacity matrix never reaches the kernel
		return fmt.Errorf("linalg: %dx%d exceeds QR workspace capacity %dx%d", m, n, w.maxRows, w.maxCols)
	}
	w.qr = Matrix{rows: m, cols: n, data: w.qrData[:m*n]}
	copy(w.qr.data, a.data)
	householder(&w.qr, w.rdia[:n], w.w[:n], w.partial[:qrBlocks(m)*n])
	w.factored = true
	return nil
}

// FullRank reports whether the last factorized matrix has full column rank
// at working precision.
func (w *QRWorkspace) FullRank() bool {
	return w.factored && fullRank(w.rdia[:w.qr.cols])
}

// SolveInto writes x minimizing ‖A·x − b‖₂ into dst (len Cols of the last
// Factorize), allocating nothing. It returns ErrRankDeficient when the
// factorized matrix is numerically rank-deficient.
//
//gpower:noalloc back-substitution on preallocated workspace storage
func (w *QRWorkspace) SolveInto(dst, b []float64) error {
	if !w.factored {
		//gpower:allocs validation error path: solving before Factorize is a caller bug
		return fmt.Errorf("linalg: QR workspace solve before Factorize")
	}
	m, n := w.qr.rows, w.qr.cols
	if len(b) != m {
		//gpower:allocs validation error path: a mis-sized rhs never reaches the kernel
		return fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if len(dst) != n {
		//gpower:allocs validation error path: a mis-sized dst never reaches the kernel
		return fmt.Errorf("linalg: QR solve dst length %d, want %d", len(dst), n)
	}
	if !fullRank(w.rdia[:n]) {
		return ErrRankDeficient
	}
	qrSolveInto(&w.qr, w.rdia[:n], dst, w.y[:m], b)
	return nil
}

// LeastSquares solves min_x ‖A·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves the Tikhonov-regularized problem
// min_x ‖A·x − b‖² + λ‖x‖² by augmenting the system with √λ·I. It is used
// as a fallback when the plain system is rank-deficient (e.g. a
// microbenchmark set that never exercises one component).
func RidgeLeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge parameter %g", lambda)
	}
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
	}
	sl := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sl)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}

// Residual returns b − A·x.
func Residual(a *Matrix, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	return Sub(b, ax), nil
}
