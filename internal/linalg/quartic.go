package linalg

import (
	"fmt"
	"math"
)

// Quartic2D is a bivariate quartic surface of the shape produced by the
// estimator's per-configuration step-2 objective (paper Section III-D):
//
//	f(x, y) = Σ_b (D_b − p·x − q_b·x² − r·y − s_b·y²)²
//
// expanded into thirteen monomial coefficients. Compiling the sum of squares
// into this closed form turns every objective evaluation inside the 2-D
// minimization from an O(n_benchmarks) loop into a constant-time polynomial
// evaluation — the evaluation count per fit is in the hundreds of thousands,
// so this is where the step-2 time goes.
//
// Cxy multiplies xˣ·yʸ. The expansion cost is one O(n_benchmarks) pass per
// configuration (see core.solveVoltages); evaluation is pure straight-line
// arithmetic, so it is deterministic and allocation-free by construction.
type Quartic2D struct {
	C00, C10, C20, C30, C40 float64 // 1, x, x², x³, x⁴
	C01, C02, C03, C04      float64 // y, y², y³, y⁴
	C11, C12, C21, C22      float64 // x·y, x·y², x²·y, x²·y²
}

// Eval evaluates the surface at (x, y) with a fixed operation order, so the
// result is bitwise-reproducible across calls and goroutines.
func (q *Quartic2D) Eval(x, y float64) float64 {
	x2 := x * x
	y2 := y * y
	sx := q.C00 + q.C10*x + q.C20*x2 + q.C30*x2*x + q.C40*x2*x2
	sy := q.C01*y + q.C02*y2 + q.C03*y2*y + q.C04*y2*y2
	sxy := q.C11*x*y + q.C12*x*y2 + q.C21*x2*y + q.C22*x2*y2
	return sx + sy + sxy
}

// evalAxis evaluates along one coordinate with the other held fixed:
// f(t, other) when alongX, f(other, t) otherwise.
func (q *Quartic2D) evalAxis(t, other float64, alongX bool) float64 {
	if alongX {
		return q.Eval(t, other)
	}
	return q.Eval(other, t)
}

// minimizeAxis is Minimize1D specialized to the compiled surface: identical
// golden-section + parabolic-refinement arithmetic, but the evaluations are
// direct method calls — no closure is created, so the per-configuration
// voltage solves stay off the allocator.
func (q *Quartic2D) minimizeAxis(alongX bool, other, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // 1/φ
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := q.evalAxis(c, other, alongX), q.evalAxis(d, other, alongX)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = q.evalAxis(c, other, alongX)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = q.evalAxis(d, other, alongX)
		}
	}
	x := (a + b) / 2
	// One parabolic refinement through (a, mid, b) if it stays in range.
	m := x
	fa, fm, fb := q.evalAxis(a, other, alongX), q.evalAxis(m, other, alongX), q.evalAxis(b, other, alongX)
	den := (a-m)*(fm-fb) - (m-b)*(fa-fm)
	if den != 0 {
		num := (a-m)*(a-m)*(fm-fb) - (m-b)*(m-b)*(fa-fm)
		cand := m - 0.5*num/den
		if cand > lo && cand < hi && !math.IsNaN(cand) && q.evalAxis(cand, other, alongX) < fm {
			x = cand
		}
	}
	return x
}

// Minimize minimizes the surface on [xlo,xhi]×[ylo,yhi] by coordinate
// descent with golden-section line searches — the same search structure as
// Minimize2D, with the closure-based objective replaced by the compiled
// polynomial. Allocation-free.
func (q *Quartic2D) Minimize(xlo, xhi, ylo, yhi, tol float64) (float64, float64, error) {
	if !(xlo < xhi) || !(ylo < yhi) {
		return 0, 0, fmt.Errorf("linalg: Quartic2D minimize invalid box [%g,%g]x[%g,%g]", xlo, xhi, ylo, yhi)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	x := (xlo + xhi) / 2
	y := (ylo + yhi) / 2
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		px, py := x, y
		x = q.minimizeAxis(true, y, xlo, xhi, tol)
		y = q.minimizeAxis(false, x, ylo, yhi, tol)
		if math.Abs(x-px) < tol && math.Abs(y-py) < tol {
			break
		}
	}
	return x, y, nil
}
