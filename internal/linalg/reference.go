package linalg

import (
	"fmt"
	"math"
)

// This file preserves the pre-blocking least-squares arithmetic as a living
// reference implementation. It is the measured baseline of the estimate-fit
// speedup rows (internal/experiments/speedup.go) and the accuracy oracle the
// kernel tests compare the blocked path against, so regressions in the fast
// path are caught against real, runnable history — not against a remembered
// number. Nothing on the production fit path calls into this file.

// householderRef is the historical Householder kernel: a Hypot chain per
// column norm and column-at-a-time reflector application through the
// bounds-checked accessors. Arithmetic is preserved verbatim; only the new
// blocked kernel (householder) replaced it on the hot path.
func householderRef(qr *Matrix, rdia []float64) {
	m, n := qr.rows, qr.cols
	for k := 0; k < n; k++ {
		// Householder vector for column k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Set(k, k, qr.At(k, k)+1)
			// Apply the reflector to remaining columns.
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
				}
			}
		}
		rdia[k] = -nrm
	}
}

// LeastSquaresRef solves min‖A·x − b‖₂ with the reference Householder
// kernel. Solve-phase arithmetic (Qᵀ·b application, back substitution) is
// shared with the production path — only the factorization kernel differs.
func LeastSquaresRef(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	qr := a.Clone()
	rdia := make([]float64, n)
	householderRef(qr, rdia)
	if !fullRank(rdia) {
		return nil, ErrRankDeficient
	}
	x := make([]float64, n)
	qrSolveInto(qr, rdia, x, make([]float64, m), b)
	return x, nil
}

// NNLSRef is the Lawson–Hanson iteration with every passive-set solve routed
// through the reference QR kernel (gather-by-CopyColumns + LeastSquaresRef).
// The active-set logic itself is shared with the production NNLS.
func NNLSRef(a *Matrix, b []float64) ([]float64, error) {
	return nnls(a, b, func(a *Matrix, b []float64, passive []bool) ([]float64, error) {
		n := a.Cols()
		var idx []int
		for j := 0; j < n; j++ {
			if passive[j] {
				idx = append(idx, j)
			}
		}
		z := make([]float64, n)
		if len(idx) == 0 {
			return z, nil
		}
		zs, err := LeastSquaresRef(a.CopyColumns(idx), b)
		if err != nil {
			return nil, err
		}
		for k, j := range idx {
			z[j] = zs[k]
		}
		return z, nil
	})
}
