package linalg

import (
	"fmt"
	"math"
)

// Minimize1D finds a minimizer of f on [lo, hi] by golden-section search
// refined with a final parabolic step. It assumes f is continuous; for the
// voltage-estimation objective (a quartic polynomial with positive leading
// coefficient on a narrow physical interval) this converges to the global
// minimum on the interval.
func Minimize1D(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if !(lo < hi) {
		return 0, fmt.Errorf("linalg: Minimize1D invalid interval [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	const invPhi = 0.6180339887498949 // 1/φ
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	x := (a + b) / 2
	// One parabolic refinement through (a, mid, b) if it stays in range.
	m := x
	fa, fm, fb := f(a), f(m), f(b)
	den := (a-m)*(fm-fb) - (m-b)*(fa-fm)
	if den != 0 {
		num := (a-m)*(a-m)*(fm-fb) - (m-b)*(m-b)*(fa-fm)
		cand := m - 0.5*num/den
		if cand > lo && cand < hi && !math.IsNaN(cand) && f(cand) < fm {
			x = cand
		}
	}
	return x, nil
}

// Minimize2D minimizes f(x, y) on the box [xlo,xhi]×[ylo,yhi] by coordinate
// descent with golden-section line searches. Used for the per-configuration
// joint (V̄core, V̄mem) estimation (paper Eq. 12). Returns the minimizer.
func Minimize2D(f func(x, y float64) float64, xlo, xhi, ylo, yhi, tol float64) (float64, float64, error) {
	if !(xlo < xhi) || !(ylo < yhi) {
		return 0, 0, fmt.Errorf("linalg: Minimize2D invalid box [%g,%g]x[%g,%g]", xlo, xhi, ylo, yhi)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	x := (xlo + xhi) / 2
	y := (ylo + yhi) / 2
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		px, py := x, y
		nx, err := Minimize1D(func(t float64) float64 { return f(t, y) }, xlo, xhi, tol)
		if err != nil {
			return 0, 0, err
		}
		x = nx
		ny, err := Minimize1D(func(t float64) float64 { return f(x, t) }, ylo, yhi, tol)
		if err != nil {
			return 0, 0, err
		}
		y = ny
		if math.Abs(x-px) < tol && math.Abs(y-py) < tol {
			break
		}
	}
	return x, y, nil
}
