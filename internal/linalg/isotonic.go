package linalg

import "fmt"

// IsotonicRegression returns the non-decreasing sequence closest (in
// weighted least squares) to y, computed with the Pool-Adjacent-Violators
// Algorithm (PAVA). weights may be nil, in which case all points weigh 1.
//
// The estimator uses it to enforce the paper's voltage monotonicity
// constraint: f_x1 > f_x2 ⇒ V̄(f_x1) ≥ V̄(f_x2) (Section III-D, Eq. 12).
func IsotonicRegression(y, weights []float64) ([]float64, error) {
	n := len(y)
	if n == 0 {
		return nil, fmt.Errorf("linalg: isotonic regression on empty input")
	}
	w := weights
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}
	if len(w) != n {
		return nil, fmt.Errorf("linalg: isotonic weights length %d, want %d", len(w), n)
	}
	for i, wi := range w {
		if wi <= 0 {
			return nil, fmt.Errorf("linalg: isotonic weight %d is %g, must be positive", i, wi)
		}
	}

	// Blocks of pooled values: value, weight, count.
	type block struct {
		v, w  float64
		count int
	}
	blocks := make([]block, 0, n)
	for i := 0; i < n; i++ {
		blocks = append(blocks, block{v: y[i], w: w[i], count: 1})
		// Merge backwards while the monotonicity is violated.
		for len(blocks) >= 2 {
			b := len(blocks) - 1
			if blocks[b-1].v <= blocks[b].v {
				break
			}
			merged := block{
				w:     blocks[b-1].w + blocks[b].w,
				count: blocks[b-1].count + blocks[b].count,
			}
			merged.v = (blocks[b-1].v*blocks[b-1].w + blocks[b].v*blocks[b].w) / merged.w
			blocks = blocks[:b-1]
			blocks = append(blocks, merged)
		}
	}
	out := make([]float64, 0, n)
	for _, b := range blocks {
		for k := 0; k < b.count; k++ {
			out = append(out, b.v)
		}
	}
	return out, nil
}

// IsotonicDecreasing returns the non-increasing fit, by reflecting the input.
func IsotonicDecreasing(y, weights []float64) ([]float64, error) {
	n := len(y)
	ry := make([]float64, n)
	for i := range y {
		ry[i] = y[n-1-i]
	}
	var rw []float64
	if weights != nil {
		rw = make([]float64, n)
		for i := range weights {
			rw[i] = weights[n-1-i]
		}
	}
	fit, err := IsotonicRegression(ry, rw)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range fit {
		out[i] = fit[n-1-i]
	}
	return out, nil
}
