// Package linalg provides the small dense linear-algebra kernel used by the
// DVFS-aware power model estimator: dense matrices, Householder QR, ordinary
// and non-negative least squares, isotonic regression and 1-D minimization.
//
// It is deliberately self-contained (stdlib only) and tuned for the modest
// problem sizes of the model-fitting pipeline (hundreds of rows, ~a dozen
// columns), not for BLAS-scale workloads.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"gpupower/internal/parallel"
)

// parallelMinWork is the scalar-op threshold below which the parallel
// matrix kernels stay on the inline serial path: the estimator's 11-column
// systems are far too small for goroutine fan-out to pay for itself, but
// the same kernels are reused by batched workloads where rows × cols grows
// into the millions.
const parallelMinWork = 1 << 16

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized rows×cols matrix.
// It panics if either dimension is not positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty row data")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row %d has %d entries, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Reshape repoints m at a rows×cols view, reusing the backing array when it
// has the capacity and reallocating otherwise. Element contents after a
// Reshape are unspecified — it exists for reusable workspaces (fleet fitting
// refits many device models through one buffer set) whose assembly loops
// overwrite every entry before it is read. It panics on non-positive
// dimensions, like NewMatrix.
func (m *Matrix) Reshape(rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	}
	m.data = m.data[:n]
	m.rows, m.cols = rows, cols
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		//gpower:allocs panic path: an out-of-bounds index is a caller bug, mirroring the runtime's own bounds check
		panic(fmt.Sprintf("linalg: index (%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice sharing the matrix's storage: writes
// through the slice mutate the matrix. It exists for allocation-free
// assembly loops (the estimator's incremental design-matrix fill) that
// would otherwise pay a scratch-row copy per row; callers must not retain
// the slice past the matrix's lifetime.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of bounds for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies r into row i.
func (m *Matrix) SetRow(i int, r []float64) {
	if len(r) != m.cols {
		panic(fmt.Sprintf("linalg: SetRow length %d, want %d", len(r), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], r)
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of bounds for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b. Output rows are independent, so for
// large products the row loop fans out across the worker pool (each
// goroutine writes a disjoint row of out with the same per-row arithmetic
// as the serial loop — the result is bitwise-identical).
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	out := NewMatrix(m.rows, b.cols)
	if err := m.MulInto(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulInto computes out = m·b into a caller-owned matrix, reusing its
// storage so iterative callers allocate nothing per product. out is fully
// overwritten; it must not alias m or b. The row kernel is shared with Mul,
// so the two are bitwise-identical.
func (m *Matrix) MulInto(out *Matrix, b *Matrix) error {
	if m.cols != b.rows {
		return fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	if out.rows != m.rows || out.cols != b.cols {
		return fmt.Errorf("linalg: MulInto destination %dx%d, want %dx%d", out.rows, out.cols, m.rows, b.cols)
	}
	// The serial path inlines the row kernel rather than calling a shared
	// closure: a func literal created before the branch escapes into the
	// parallel.ForEach callback and costs one heap allocation per call even
	// when the loop never fans out. The two bodies are textually identical,
	// so the results remain bitwise-equal.
	if m.rows*m.cols*b.cols < parallelMinWork {
		for i := 0; i < m.rows; i++ {
			mulRowInto(out, m, b, i)
		}
		return nil
	}
	return parallel.ForEach(m.rows, func(i int) error {
		mulRowInto(out, m, b, i)
		return nil
	})
}

// gatherRow copies the selected columns of row i of m into row i of out.
// Package function (not a closure) so the serial path of CopyColumns pays
// only the destination allocation.
func gatherRow(out, m *Matrix, cols []int, i int) {
	src := m.data[i*m.cols : (i+1)*m.cols]
	dst := out.data[i*out.cols : (i+1)*out.cols]
	for k, j := range cols {
		dst[k] = src[j]
	}
}

// mulRowInto computes row i of out = m·b. It is a package function (not a
// closure) so the serial path of MulInto allocates nothing.
func mulRowInto(out, m, b *Matrix, i int) {
	orow := out.data[i*out.cols : (i+1)*out.cols]
	for j := range orow {
		orow[j] = 0
	}
	for k := 0; k < m.cols; k++ {
		a := m.data[i*m.cols+k]
		if a == 0 {
			continue
		}
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for j, bv := range brow {
			orow[j] += a * bv
		}
	}
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes m·x into dst (len Rows), reusing the caller's buffer
// so iterative solvers allocate nothing per iteration.
func (m *Matrix) MulVecInto(dst, x []float64) error {
	if m.cols != len(x) {
		//gpower:allocs validation error path: a dimension mismatch never reaches the kernel
		return fmt.Errorf("linalg: MulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(x))
	}
	if len(dst) != m.rows {
		//gpower:allocs validation error path: a mis-sized dst never reaches the kernel
		return fmt.Errorf("linalg: MulVec dst length %d, want %d", len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// CopyColumns gathers the given columns (in order) into a new matrix —
// the sub-matrix assembly used by the NNLS passive-set solves. Rows are
// copied independently; large gathers fan the row loop out across the
// worker pool (disjoint destination rows, bitwise-identical result).
func (m *Matrix) CopyColumns(cols []int) *Matrix {
	for _, j := range cols {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("linalg: CopyColumns index %d out of bounds for %dx%d matrix", j, m.rows, m.cols))
		}
	}
	out := NewMatrix(m.rows, len(cols))
	if m.rows*len(cols) < parallelMinWork {
		for i := 0; i < m.rows; i++ {
			gatherRow(out, m, cols, i)
		}
		return out
	}
	// Gather errors are impossible (bounds pre-checked), so the error
	// return is structurally nil.
	_ = parallel.ForEach(m.rows, func(i int) error {
		gatherRow(out, m, cols, i)
		return nil
	})
	return out
}

// TMulVec returns the transpose product Aᵀ·y without materializing Aᵀ.
// This is the gradient kernel of the NNLS active-set loop (w = Aᵀ·resid).
// Columns are independent, so large systems fan the column loop out across
// the worker pool; each goroutine writes one disjoint out[j] with the same
// ascending-row accumulation as the serial loop (bitwise-identical).
func (m *Matrix) TMulVec(y []float64) ([]float64, error) {
	out := make([]float64, m.cols)
	if err := m.TMulVecInto(out, y); err != nil {
		return nil, err
	}
	return out, nil
}

// TMulVecInto computes Aᵀ·y into dst (len Cols), reusing the caller's
// buffer so iterative solvers allocate nothing per iteration.
func (m *Matrix) TMulVecInto(dst, y []float64) error {
	if len(y) != m.rows {
		//gpower:allocs validation error path: a dimension mismatch never reaches the kernel
		return fmt.Errorf("linalg: TMulVec dimension mismatch %dx%d · %d", m.rows, m.cols, len(y))
	}
	if len(dst) != m.cols {
		//gpower:allocs validation error path: a mis-sized dst never reaches the kernel
		return fmt.Errorf("linalg: TMulVec dst length %d, want %d", len(dst), m.cols)
	}
	// Serial body inlined (not a shared closure) so this path allocates
	// nothing — it is the per-iteration gradient kernel of the NNLS loop.
	if m.rows*m.cols < parallelMinWork {
		for j := 0; j < m.cols; j++ {
			var s float64
			for i := 0; i < m.rows; i++ {
				s += m.data[i*m.cols+j] * y[i]
			}
			dst[j] = s
		}
		return nil
	}
	//gpower:allocs large-matrix fan-out: the column closure escapes into the worker pool; NNLS-sized systems take the inline loop above
	return parallel.ForEach(m.cols, func(j int) error {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += m.data[i*m.cols+j] * y[i]
		}
		dst[j] = s
		return nil
	})
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// MaxAbs returns the largest absolute entry of the matrix.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
