package linalg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"gpupower/internal/parallel"
)

// Tests for the blocked Householder kernel (qr.go): the row-blocked,
// fan-out-capable factorization must be bitwise-independent of the worker
// count and must agree with the preserved reference kernel (reference.go)
// to factorization accuracy.

// tallSystem builds a system tall enough that applyReflector's fan-out
// condition (blocks > 1 && rows*(n-k-1) >= parallelMinWork) holds for the
// early columns: 8192 rows × 11 cols ⇒ 32 row blocks, 8192·10 ≥ 2¹⁶.
func tallSystem(seed int64) (*Matrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	m, n := 8192, 11
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// TestBlockedQRSerialParallelBitwise pins the tentpole invariant at the
// kernel level: the factorization (and therefore the solve) is the same
// bits whether the reflector applications fan out across the pool or run
// inline. The decomposition into fixed 256-row blocks depends only on the
// matrix shape, and per-block partials fold in block order, so worker
// scheduling cannot reorder a single addition.
func TestBlockedQRSerialParallelBitwise(t *testing.T) {
	a, b := tallSystem(21)

	prev := parallel.SetSequential(true)
	serial, err := LeastSquares(a, b)
	parallel.SetSequential(prev)
	if err != nil {
		t.Fatalf("serial LeastSquares: %v", err)
	}

	prevProcs := runtime.GOMAXPROCS(4)
	par, err := LeastSquares(a, b)
	runtime.GOMAXPROCS(prevProcs)
	if err != nil {
		t.Fatalf("parallel LeastSquares: %v", err)
	}

	for j := range serial {
		if math.Float64bits(par[j]) != math.Float64bits(serial[j]) {
			t.Fatalf("x[%d] = %x serial, %x parallel (not bitwise equal)",
				j, serial[j], par[j])
		}
	}
}

// TestBlockedQRMatchesReferenceKernel compares the blocked kernel's
// least-squares solutions to the reference (Hypot-chain) kernel's. The two
// kernels order their floating-point operations differently, so bitwise
// equality is not expected — but on well-conditioned systems both compute
// the same QR factorization to close to machine precision.
func TestBlockedQRMatchesReferenceKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 5; trial++ {
		m := 512 + rng.Intn(4096)
		n := 2 + rng.Intn(10)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		want, err := LeastSquaresRef(a, b)
		if err != nil {
			t.Fatalf("trial %d: LeastSquaresRef: %v", trial, err)
		}
		got, err := LeastSquares(a, b)
		if err != nil {
			t.Fatalf("trial %d: LeastSquares: %v", trial, err)
		}
		scale := 0.0
		for j := range want {
			scale = math.Max(scale, math.Abs(want[j]))
		}
		for j := range want {
			if diff := math.Abs(got[j] - want[j]); diff > 1e-10*(1+scale) {
				t.Fatalf("trial %d: x[%d] = %v, reference %v (diff %g)",
					trial, j, got[j], want[j], diff)
			}
		}
	}
}

// TestNNLSMatchesReferenceKernel does the same through the active-set loop:
// the passive-set trajectory must survive the kernel swap, so solutions
// agree to factorization accuracy (identical zero patterns, close values).
func TestNNLSMatchesReferenceKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		m := 64 + rng.Intn(512)
		n := 2 + rng.Intn(10)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}

		want, err := NNLSRef(a, b)
		if err != nil {
			t.Fatalf("trial %d: NNLSRef: %v", trial, err)
		}
		got, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: NNLS: %v", trial, err)
		}
		for j := range want {
			if (want[j] == 0) != (got[j] == 0) {
				t.Fatalf("trial %d: active-set mismatch at %d: %v vs reference %v",
					trial, j, got[j], want[j])
			}
			if diff := math.Abs(got[j] - want[j]); diff > 1e-9*(1+math.Abs(want[j])) {
				t.Fatalf("trial %d: x[%d] = %v, reference %v (diff %g)",
					trial, j, got[j], want[j], diff)
			}
		}
	}
}
