package linalg

import (
	"math"
	"testing"

	"gpupower/internal/stats"
)

func TestMinimize1DQuadratic(t *testing.T) {
	x, err := Minimize1D(func(x float64) float64 { return (x - 1.3) * (x - 1.3) }, 0, 3, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 1.3, 1e-6) {
		t.Fatalf("x = %g, want 1.3", x)
	}
}

func TestMinimize1DQuarticVoltageShape(t *testing.T) {
	// The step-2 objective shape: (P − β0·v − v²·f·A)² with one observation.
	const (
		beta0 = 30.0
		f     = 975.0
		A     = 0.08
		vTrue = 0.87
	)
	p := beta0*vTrue + vTrue*vTrue*f*A
	obj := func(v float64) float64 {
		d := p - beta0*v - v*v*f*A
		return d * d
	}
	x, err := Minimize1D(obj, 0.5, 1.8, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, vTrue, 1e-4) {
		t.Fatalf("x = %g, want %g", x, vTrue)
	}
}

func TestMinimize1DBoundary(t *testing.T) {
	// Monotone decreasing function: minimum at the right edge.
	x, err := Minimize1D(func(x float64) float64 { return -x }, 0, 2, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 2, 1e-4) {
		t.Fatalf("x = %g, want 2", x)
	}
}

func TestMinimize1DInvalidInterval(t *testing.T) {
	if _, err := Minimize1D(func(x float64) float64 { return x }, 2, 1, 1e-9); err == nil {
		t.Fatal("invalid interval accepted")
	}
}

func TestMinimize2DQuadraticBowl(t *testing.T) {
	x, y, err := Minimize2D(func(x, y float64) float64 {
		return (x-0.8)*(x-0.8) + 2*(y-1.2)*(y-1.2) + 0.5*(x-0.8)*(y-1.2)
	}, 0, 2, 0, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 0.8, 1e-4) || !almostEq(y, 1.2, 1e-4) {
		t.Fatalf("(x,y) = (%g,%g), want (0.8,1.2)", x, y)
	}
}

func TestMinimize2DRandomQuadratics(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 50; trial++ {
		cx := rng.Uniform(0.6, 1.6)
		cy := rng.Uniform(0.6, 1.6)
		ax := rng.Uniform(0.5, 5)
		ay := rng.Uniform(0.5, 5)
		x, y, err := Minimize2D(func(x, y float64) float64 {
			return ax*(x-cx)*(x-cx) + ay*(y-cy)*(y-cy)
		}, 0.5, 1.8, 0.5, 1.8, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x-cx) > 1e-4 || math.Abs(y-cy) > 1e-4 {
			t.Fatalf("trial %d: got (%g,%g), want (%g,%g)", trial, x, y, cx, cy)
		}
	}
}

func TestMinimize2DInvalidBox(t *testing.T) {
	if _, _, err := Minimize2D(func(x, y float64) float64 { return 0 }, 1, 0, 0, 1, 1e-9); err == nil {
		t.Fatal("invalid box accepted")
	}
}
