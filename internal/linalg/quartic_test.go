package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// step2Problem is a synthetic instance of the step-2 objective
// Σ_b (D_b − β0·vc − A_b·fc·vc² − β2·vm − B_b·fm·vm²)², the sum of squares
// the compiled Quartic2D expands into 13 monomial coefficients.
type step2Problem struct {
	beta0, beta2, fc, fm float64
	A, B, D              []float64
}

func randStep2(rng *rand.Rand, nb int) step2Problem {
	p := step2Problem{
		beta0: 20 + 30*rng.Float64(),
		beta2: 5 + 10*rng.Float64(),
		fc:    0.5 + rng.Float64(),
		fm:    0.5 + rng.Float64(),
		A:     make([]float64, nb),
		B:     make([]float64, nb),
		D:     make([]float64, nb),
	}
	for b := 0; b < nb; b++ {
		p.A[b] = 10 + 40*rng.Float64()
		p.B[b] = 2 + 10*rng.Float64()
		// Targets near the model at (vc, vm) ≈ (1, 1) plus noise, so the
		// minimum sits inside the voltage box like a real step-2 solve.
		p.D[b] = p.beta0 + p.fc*p.A[b] + p.beta2 + p.fm*p.B[b] + rng.NormFloat64()
	}
	return p
}

// direct evaluates the objective the pre-compilation way: one O(nb) loop.
func (p step2Problem) direct(vc, vm float64) float64 {
	var s float64
	for b := range p.D {
		pred := p.beta0*vc + vc*vc*p.fc*p.A[b] + p.beta2*vm + vm*vm*p.fm*p.B[b]
		diff := p.D[b] - pred
		s += diff * diff
	}
	return s
}

// compile expands the problem into monomial coefficients with the same
// moment algebra solveVoltages uses.
func (p step2Problem) compile() Quartic2D {
	var sumA, sumB, sumA2, sumB2, sumAB float64
	var sumD, sumD2, sumDA, sumDB float64
	for b := range p.D {
		sumA += p.A[b]
		sumB += p.B[b]
		sumA2 += p.A[b] * p.A[b]
		sumB2 += p.B[b] * p.B[b]
		sumAB += p.A[b] * p.B[b]
		sumD += p.D[b]
		sumD2 += p.D[b] * p.D[b]
		sumDA += p.D[b] * p.A[b]
		sumDB += p.D[b] * p.B[b]
	}
	nbf := float64(len(p.D))
	return Quartic2D{
		C00: sumD2,
		C10: -2 * p.beta0 * sumD,
		C20: nbf*p.beta0*p.beta0 - 2*p.fc*sumDA,
		C30: 2 * p.beta0 * p.fc * sumA,
		C40: p.fc * p.fc * sumA2,
		C01: -2 * p.beta2 * sumD,
		C02: nbf*p.beta2*p.beta2 - 2*p.fm*sumDB,
		C03: 2 * p.beta2 * p.fm * sumB,
		C04: p.fm * p.fm * sumB2,
		C11: 2 * nbf * p.beta0 * p.beta2,
		C12: 2 * p.beta0 * p.fm * sumB,
		C21: 2 * p.beta2 * p.fc * sumA,
		C22: 2 * p.fc * p.fm * sumAB,
	}
}

// TestQuartic2DEvalMatchesDirect checks the monomial expansion against the
// direct sum of squares across the voltage box. The two forms order their
// floating-point work differently, so agreement is relative, not bitwise.
func TestQuartic2DEvalMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		p := randStep2(rng, 8+rng.Intn(80))
		q := p.compile()
		for i := 0; i < 50; i++ {
			vc := 0.5 + rng.Float64()
			vm := 0.5 + rng.Float64()
			want := p.direct(vc, vm)
			got := q.Eval(vc, vm)
			if diff := math.Abs(got - want); diff > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("trial %d: Eval(%v, %v) = %v, direct %v (diff %g)",
					trial, vc, vm, got, want, diff)
			}
		}
	}
}

// TestQuartic2DMinimizeMatchesMinimize2D pins the closure-free coordinate
// descent to the generic minimizer on the same objective: same box, same
// tolerance, the same minimizer arithmetic, so the located minima must
// coincide to within the search tolerance.
func TestQuartic2DMinimizeMatchesMinimize2D(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		p := randStep2(rng, 8+rng.Intn(80))
		q := p.compile()

		const lo, hi, tol = 0.5, 1.5, 1e-6
		wantVc, wantVm, err := Minimize2D(p.direct, lo, hi, lo, hi, tol)
		if err != nil {
			t.Fatalf("trial %d: Minimize2D: %v", trial, err)
		}
		gotVc, gotVm, err := q.Minimize(lo, hi, lo, hi, tol)
		if err != nil {
			t.Fatalf("trial %d: Quartic2D.Minimize: %v", trial, err)
		}

		if math.Abs(gotVc-wantVc) > 1e-4 || math.Abs(gotVm-wantVm) > 1e-4 {
			t.Fatalf("trial %d: argmin (%v, %v), Minimize2D found (%v, %v)",
				trial, gotVc, gotVm, wantVc, wantVm)
		}
		// The objective at the two minima must agree even more tightly than
		// the argmins (the surface is flat at the bottom).
		fw, fg := p.direct(wantVc, wantVm), p.direct(gotVc, gotVm)
		if diff := math.Abs(fg - fw); diff > 1e-6*(1+math.Abs(fw)) {
			t.Fatalf("trial %d: objective %v vs %v at the two minima", trial, fg, fw)
		}
	}
}
