package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Axpy computes y ← y + alpha·x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// MaxAbsDiff returns max_i |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}
