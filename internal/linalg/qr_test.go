package linalg

import (
	"math"
	"testing"

	"gpupower/internal/stats"
)

func TestLeastSquaresExact(t *testing.T) {
	// Square full-rank system: exact solution.
	a, _ := NewMatrixFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-10) || !almostEq(x[1], 3, 1e-10) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// y = 2 + 3t sampled with symmetric perturbation: regression recovers it.
	rows := [][]float64{}
	var b []float64
	for i := 0; i < 10; i++ {
		tt := float64(i)
		rows = append(rows, []float64{1, tt})
		noise := 0.0
		if i%2 == 0 {
			noise = 0.5
		} else {
			noise = -0.5
		}
		b = append(b, 2+3*tt+noise)
	}
	a, _ := NewMatrixFromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2.05, 0.2) || !almostEq(x[1], 3, 0.05) {
		t.Fatalf("x = %v, want approx [2 3]", x)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Two identical columns.
	a, _ := NewMatrixFromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system accepted")
	}
}

func TestQRRequiresTallMatrix(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := NewQR(a); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestQRSolveWrongRHSLength(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1}, {2}})
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestLeastSquaresNormalEquations(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		m, n := 8, 3
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Normal(0, 1))
			}
			b[i] = rng.Normal(0, 1)
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Residual(a, x, b)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if d := math.Abs(Dot(a.Col(j), r)); d > 1e-8 {
				t.Fatalf("trial %d: residual not orthogonal to column %d: %g", trial, j, d)
			}
		}
	}
}

func TestRidgeLeastSquaresHandlesCollinear(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	x, err := RidgeLeastSquares(a, []float64{2, 4, 6}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	// Any split with x0+x1 ≈ 2 fits; ridge picks the symmetric one.
	if !almostEq(x[0]+x[1], 2, 1e-3) {
		t.Fatalf("x = %v, want x0+x1 ≈ 2", x)
	}
	if !almostEq(x[0], x[1], 1e-6) {
		t.Fatalf("ridge solution not symmetric: %v", x)
	}
}

func TestRidgeRejectsNegativeLambda(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1}, {1}})
	if _, err := RidgeLeastSquares(a, []float64{1, 1}, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
}
