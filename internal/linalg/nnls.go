package linalg

import (
	"fmt"
	"math"
)

// passiveSolver solves the least-squares problem restricted to the passive
// columns. The default path is the workspace-backed solvePassiveInto; tests
// inject failing solvers through nnls() to exercise the transient-
// singularity (blocked-set) recovery path.
type passiveSolver func(a *Matrix, b []float64, passive []bool) ([]float64, error)

// NNLS solves the non-negative least-squares problem
//
//	min_x ‖A·x − b‖₂  subject to  x ≥ 0
//
// using the active-set algorithm of Lawson & Hanson (1974). The power-model
// estimator relies on it because every hardware coefficient (β, ω) is a
// physical capacitance/leakage quantity and must be non-negative.
//
// NNLS allocates a fresh workspace per call; iterative callers (the
// Section III-D refit loop) should hold an NNLSWorkspace and use SolveInto,
// which allocates nothing in steady state.
func NNLS(a *Matrix, b []float64) ([]float64, error) {
	return nnls(a, b, nil)
}

// nnls is the active-set iteration with an injectable passive solver
// (nil selects the allocation-free workspace path).
func nnls(a *Matrix, b []float64, solve passiveSolver) ([]float64, error) {
	ws := NewNNLSWorkspace(a.Rows(), a.Cols())
	ws.testSolve = solve
	x := make([]float64, a.Cols())
	if err := ws.SolveInto(x, a, b); err != nil {
		return nil, err
	}
	return x, nil
}

// NNLSWorkspace holds every buffer the Lawson–Hanson active-set iteration
// needs — gradient, residual, passive/blocked sets, the passive submatrix
// and its QR factorization — preallocated for a maximum system size.
// SolveInto then runs with zero steady-state heap allocations, which is
// what keeps the estimator's step-1/step-3 refits off the allocator
// (DESIGN.md §10).
//
// A workspace is single-goroutine state: confine each instance to one
// worker (see parallel.PerWorker) or guard it externally.
type NNLSWorkspace struct {
	maxRows, maxCols int

	w, z, zs  []float64 // maxCols
	passive   []bool
	blocked   []bool
	idx       []int
	resid, ax []float64 // maxRows
	subData   []float64 // maxRows*maxCols
	sub       Matrix    // current passive-submatrix view over subData
	qr        *QRWorkspace

	// Bounded-solve scratch (BoundedSolveInto only). The bounded refinement
	// nests a second NNLS solve inside the workspace, so it owns disjoint
	// buffers: the nested SolveInto freely reuses z/zs/sub while the
	// bounded-level submatrix and solution live here.
	rhs          []float64 // maxRows
	boundIdx     []int
	boundX       []float64 // maxCols
	boundSubData []float64 // maxRows*maxCols

	// testSolve, when non-nil, replaces the passive solve (test injection).
	testSolve passiveSolver
}

// NewNNLSWorkspace preallocates a workspace for systems with rows ≤ maxRows
// and cols ≤ maxCols.
func NewNNLSWorkspace(maxRows, maxCols int) *NNLSWorkspace {
	if maxRows <= 0 || maxCols <= 0 {
		panic(fmt.Sprintf("linalg: invalid NNLS workspace capacity %dx%d", maxRows, maxCols))
	}
	qrRows := maxRows
	if qrRows < maxCols {
		qrRows = maxCols
	}
	return &NNLSWorkspace{
		maxRows:      maxRows,
		maxCols:      maxCols,
		w:            make([]float64, maxCols),
		z:            make([]float64, maxCols),
		zs:           make([]float64, maxCols),
		passive:      make([]bool, maxCols),
		blocked:      make([]bool, maxCols),
		idx:          make([]int, 0, maxCols),
		resid:        make([]float64, maxRows),
		ax:           make([]float64, maxRows),
		subData:      make([]float64, maxRows*maxCols),
		qr:           NewQRWorkspace(qrRows, maxCols),
		rhs:          make([]float64, maxRows),
		boundIdx:     make([]int, 0, maxCols),
		boundX:       make([]float64, maxCols),
		boundSubData: make([]float64, maxRows*maxCols),
	}
}

// Ensure grows the workspace to accommodate systems with rows ≤ maxRows and
// cols ≤ maxCols, reallocating the internal buffers only when the requested
// capacity exceeds the current one. It exists for long-lived per-worker
// workspaces (fleet fitting) that meet heterogeneous system shapes; growing
// never changes solve results, because every buffer is (re)initialized per
// SolveInto. Not safe to call concurrently with a solve.
func (ws *NNLSWorkspace) Ensure(maxRows, maxCols int) {
	if maxRows <= ws.maxRows && maxCols <= ws.maxCols {
		return
	}
	if maxRows < ws.maxRows {
		maxRows = ws.maxRows
	}
	if maxCols < ws.maxCols {
		maxCols = ws.maxCols
	}
	grown := NewNNLSWorkspace(maxRows, maxCols)
	grown.testSolve = ws.testSolve
	*ws = *grown
}

// SolveInto solves min ‖A·x − b‖ s.t. x ≥ 0 into dst (len Cols). The
// arithmetic — including the passive QR solves — is shared with the
// allocating NNLS entry point, so the two are bitwise-identical; only the
// storage strategy differs.
//
//gpower:noalloc the active-set iteration runs entirely on preallocated workspace storage
func (ws *NNLSWorkspace) SolveInto(dst []float64, a *Matrix, b []float64) error {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		//gpower:allocs validation error path: a mis-sized rhs never reaches the solver
		return fmt.Errorf("linalg: NNLS rhs length %d, want %d", len(b), m)
	}
	if len(dst) != n {
		//gpower:allocs validation error path: a mis-sized dst never reaches the solver
		return fmt.Errorf("linalg: NNLS dst length %d, want %d", len(dst), n)
	}
	if m > ws.maxRows || n > ws.maxCols {
		//gpower:allocs validation error path: an over-capacity system never reaches the solver
		return fmt.Errorf("linalg: %dx%d exceeds NNLS workspace capacity %dx%d", m, n, ws.maxRows, ws.maxCols)
	}

	x := dst
	for j := range x {
		x[j] = 0
	}
	passive := ws.passive[:n] // true: variable free, false: clamped at 0
	blocked := ws.blocked[:n] // variables whose inclusion made the passive set singular
	for j := 0; j < n; j++ {
		passive[j] = false
		blocked[j] = false
	}

	w := ws.w[:n] // gradient of the active (clamped) variables
	resid := ws.resid[:m]
	copy(resid, b)

	const (
		maxOuter = 3 * 64
		tol      = 1e-10
	)
	// Scale tolerance with the problem.
	scale := a.MaxAbs() * Norm2(b)
	if scale == 0 {
		return nil // A or b is all-zero; x = 0 is optimal.
	}
	gradTol := tol * scale

	outer := 0
	for {
		outer++
		if outer > maxOuter+n*8 {
			// Defensive bound; in practice the loop terminates long before.
			break
		}
		// w = Aᵀ·resid (the KKT gradient of the clamped variables).
		if err := a.TMulVecInto(w, resid); err != nil {
			return err
		}
		// Pick the most promising clamped variable.
		best, bestW := -1, gradTol
		for j := 0; j < n; j++ {
			if !passive[j] && !blocked[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break // KKT conditions satisfied.
		}
		passive[best] = true

		// Inner loop: solve the unconstrained problem on the passive set and
		// clip any variables that went negative. removed tracks whether any
		// variable left the passive set this outer iteration — if so, the
		// passive geometry changed and stale singularity verdicts (blocked
		// flags) must be re-examined.
		removed := false
		blockedBest := false
		for {
			z, err := ws.solvePassive(a, b, passive)
			if err != nil {
				// The passive submatrix became singular (e.g. collinear
				// columns when every voltage is pinned to 1); clamp the
				// variable we just freed and exclude it from the picks until
				// the passive set changes again.
				passive[best] = false
				blocked[best] = true
				blockedBest = true
				break
			}
			// Feasible?
			minIdx, alpha := -1, 1.0
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					// Step length to the first bound along x→z.
					den := x[j] - z[j]
					if den <= 0 {
						continue
					}
					a2 := x[j] / den
					if a2 < alpha {
						alpha, minIdx = a2, j
					}
				}
			}
			if minIdx < 0 {
				copy(x, z)
				break
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
				}
			}
			for j := 0; j < n; j++ {
				if passive[j] && x[j] <= tol {
					x[j] = 0
					passive[j] = false
					removed = true
				}
			}
		}

		// Blocked-set recovery: a blocked variable was only unusable against
		// the passive set that existed when it was blocked. Once any variable
		// has left the passive set, the offending collinearity may be gone,
		// so every blocked variable becomes eligible again (except one
		// blocked in this very iteration, which reflects the current set).
		// Without this, a transiently collinear column stayed excluded
		// forever and NNLS could return a suboptimal, KKT-violating point.
		if removed {
			for j := range blocked {
				blocked[j] = false
			}
			if blockedBest {
				blocked[best] = true
			}
		}

		// Refresh the residual.
		ax := ws.ax[:m]
		if err := a.MulVecInto(ax, x); err != nil {
			return err
		}
		for i := range resid {
			resid[i] = b[i] - ax[i]
		}
	}
	// Clean tiny negatives from floating-point noise.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-12 {
			x[j] = 0
		}
	}
	return nil
}

// solvePassive dispatches the passive-set solve: the injected test solver
// when present, the allocation-free workspace path otherwise. Either way
// the solution lands in ws.z (zeros on the active set).
func (ws *NNLSWorkspace) solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, error) {
	if ws.testSolve != nil {
		//gpower:allocs test-only injection point: production workspaces never set testSolve
		z, err := ws.testSolve(a, b, passive)
		if err != nil {
			return nil, err
		}
		copy(ws.z[:a.Cols()], z)
		return ws.z[:a.Cols()], nil
	}
	if err := ws.solvePassiveInto(a, b, passive); err != nil {
		return nil, err
	}
	return ws.z[:a.Cols()], nil
}

// solvePassiveInto solves the least-squares problem restricted to the
// passive columns into ws.z, gathering the submatrix into the workspace and
// factorizing with the preallocated QR — no allocation. The gathered values
// and the factorization kernel are identical to the historical
// CopyColumns + LeastSquares path, so the solution is bitwise-equal.
func (ws *NNLSWorkspace) solvePassiveInto(a *Matrix, b []float64, passive []bool) error {
	m, n := a.Rows(), a.Cols()
	idx := ws.idx[:0]
	for j := 0; j < n; j++ {
		if passive[j] {
			//gpower:allocs appends into ws.idx, preallocated to maxCols, so at most n ≤ maxCols entries stay in capacity
			idx = append(idx, j)
		}
	}
	z := ws.z[:n]
	for j := range z {
		z[j] = 0
	}
	if len(idx) == 0 {
		return nil
	}
	k := len(idx)
	ws.sub = Matrix{rows: m, cols: k, data: ws.subData[:m*k]}
	for i := 0; i < m; i++ {
		src := a.data[i*a.cols : (i+1)*a.cols]
		dst := ws.sub.data[i*k : (i+1)*k]
		for p, j := range idx {
			dst[p] = src[j]
		}
	}
	if err := ws.qr.Factorize(&ws.sub); err != nil {
		return err
	}
	zs := ws.zs[:k]
	if err := ws.qr.SolveInto(zs, b); err != nil {
		return err
	}
	for p, j := range idx {
		z[j] = zs[p]
	}
	return nil
}

// solvePassive is the allocating reference implementation of the passive-
// set solve: gather the passive columns, least-squares, scatter back. The
// workspace path (solvePassiveInto) performs the same arithmetic on reused
// storage; the equivalence tests compare the two bitwise, and the injection
// tests fall back to this one.
func solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, error) {
	n := a.Cols()
	var idx []int
	for j := 0; j < n; j++ {
		if passive[j] {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return make([]float64, n), nil
	}
	sub := a.CopyColumns(idx)
	zs, err := LeastSquares(sub, b)
	if err != nil {
		return nil, err
	}
	z := make([]float64, n)
	for k, j := range idx {
		z[j] = zs[k]
	}
	return z, nil
}

// BoundedNNLS solves min ‖A·x−b‖ s.t. 0 ≤ x ≤ upper (element-wise), by a
// simple projected refinement on top of NNLS. upper entries may be +Inf.
func BoundedNNLS(a *Matrix, b []float64, upper []float64) ([]float64, error) {
	ws := NewNNLSWorkspace(a.Rows(), a.Cols())
	x := make([]float64, a.Cols())
	if err := ws.BoundedSolveInto(x, a, b, upper); err != nil {
		return nil, err
	}
	return x, nil
}

// BoundedSolveInto is BoundedNNLS on caller-owned scratch: zero steady-state
// allocations when reusing the workspace across solves.
//
//gpower:noalloc the projected refinement reuses the workspace's bound buffers
func (ws *NNLSWorkspace) BoundedSolveInto(dst []float64, a *Matrix, b, upper []float64) error {
	m, n := a.Rows(), a.Cols()
	if len(upper) != n {
		//gpower:allocs validation error path: a mis-sized bound vector never reaches the solver
		return fmt.Errorf("linalg: BoundedNNLS upper length %d, want %d", len(upper), n)
	}
	x := dst
	if err := ws.SolveInto(x, a, b); err != nil {
		return err
	}
	clipped := false
	for j := range x {
		if x[j] > upper[j] {
			x[j] = upper[j]
			clipped = true
		}
	}
	if !clipped {
		return nil
	}
	// Re-solve the unclipped variables with the clipped contribution moved to
	// the right-hand side, once. This is not a full active-set method over
	// box constraints but is exact when the clip set is correct, which holds
	// for the well-conditioned systems produced by the estimator.
	rhs := ws.rhs[:m]
	copy(rhs, b)
	cols := ws.boundIdx[:0]
	for j := 0; j < n; j++ {
		if x[j] >= upper[j] && !math.IsInf(upper[j], 1) {
			for i := 0; i < m; i++ {
				rhs[i] -= a.At(i, j) * upper[j]
			}
		} else {
			//gpower:allocs appends into ws.boundIdx, preallocated to maxCols, so at most n ≤ maxCols entries stay in capacity
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	k := len(cols)
	am := Matrix{rows: m, cols: k, data: ws.boundSubData[:m*k]}
	for i := 0; i < m; i++ {
		src := a.data[i*a.cols : (i+1)*a.cols]
		row := am.data[i*k : (i+1)*k]
		for p, j := range cols {
			row[p] = src[j]
		}
	}
	xs := ws.boundX[:k]
	if err := ws.SolveInto(xs, &am, rhs); err != nil {
		return err
	}
	for p, j := range cols {
		v := xs[p]
		if v > upper[j] {
			v = upper[j]
		}
		x[j] = v
	}
	return nil
}
