package linalg

import (
	"fmt"
	"math"
)

// passiveSolver solves the least-squares problem restricted to the passive
// columns. NNLS uses solvePassive; tests inject failing solvers to exercise
// the transient-singularity (blocked-set) recovery path.
type passiveSolver func(a *Matrix, b []float64, passive []bool) ([]float64, error)

// NNLS solves the non-negative least-squares problem
//
//	min_x ‖A·x − b‖₂  subject to  x ≥ 0
//
// using the active-set algorithm of Lawson & Hanson (1974). The power-model
// estimator relies on it because every hardware coefficient (β, ω) is a
// physical capacitance/leakage quantity and must be non-negative.
func NNLS(a *Matrix, b []float64) ([]float64, error) {
	return nnls(a, b, solvePassive)
}

// nnls is the active-set iteration with an injectable passive solver.
func nnls(a *Matrix, b []float64, solve passiveSolver) ([]float64, error) {
	m, n := a.Rows(), a.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: NNLS rhs length %d, want %d", len(b), m)
	}

	x := make([]float64, n)
	passive := make([]bool, n) // true: variable free, false: clamped at 0
	blocked := make([]bool, n) // variables whose inclusion made the passive set singular

	w := make([]float64, n) // gradient of the active (clamped) variables
	resid := make([]float64, m)
	copy(resid, b)

	const (
		maxOuter = 3 * 64
		tol      = 1e-10
	)
	// Scale tolerance with the problem.
	scale := a.MaxAbs() * Norm2(b)
	if scale == 0 {
		return x, nil // A or b is all-zero; x = 0 is optimal.
	}
	gradTol := tol * scale

	outer := 0
	for {
		outer++
		if outer > maxOuter+n*8 {
			// Defensive bound; in practice the loop terminates long before.
			break
		}
		// w = Aᵀ·resid (the KKT gradient of the clamped variables).
		if err := a.TMulVecInto(w, resid); err != nil {
			return nil, err
		}
		// Pick the most promising clamped variable.
		best, bestW := -1, gradTol
		for j := 0; j < n; j++ {
			if !passive[j] && !blocked[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			break // KKT conditions satisfied.
		}
		passive[best] = true

		// Inner loop: solve the unconstrained problem on the passive set and
		// clip any variables that went negative. removed tracks whether any
		// variable left the passive set this outer iteration — if so, the
		// passive geometry changed and stale singularity verdicts (blocked
		// flags) must be re-examined.
		removed := false
		blockedBest := false
		for {
			z, err := solve(a, b, passive)
			if err != nil {
				// The passive submatrix became singular (e.g. collinear
				// columns when every voltage is pinned to 1); clamp the
				// variable we just freed and exclude it from the picks until
				// the passive set changes again.
				passive[best] = false
				blocked[best] = true
				blockedBest = true
				break
			}
			// Feasible?
			minIdx, alpha := -1, 1.0
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					// Step length to the first bound along x→z.
					den := x[j] - z[j]
					if den <= 0 {
						continue
					}
					a2 := x[j] / den
					if a2 < alpha {
						alpha, minIdx = a2, j
					}
				}
			}
			if minIdx < 0 {
				copy(x, z)
				break
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
				}
			}
			for j := 0; j < n; j++ {
				if passive[j] && x[j] <= tol {
					x[j] = 0
					passive[j] = false
					removed = true
				}
			}
		}

		// Blocked-set recovery: a blocked variable was only unusable against
		// the passive set that existed when it was blocked. Once any variable
		// has left the passive set, the offending collinearity may be gone,
		// so every blocked variable becomes eligible again (except one
		// blocked in this very iteration, which reflects the current set).
		// Without this, a transiently collinear column stayed excluded
		// forever and NNLS could return a suboptimal, KKT-violating point.
		if removed {
			for j := range blocked {
				blocked[j] = false
			}
			if blockedBest {
				blocked[best] = true
			}
		}

		// Refresh the residual.
		ax, err := a.MulVec(x)
		if err != nil {
			return nil, err
		}
		for i := range resid {
			resid[i] = b[i] - ax[i]
		}
	}
	// Clean tiny negatives from floating-point noise.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-12 {
			x[j] = 0
		}
	}
	return x, nil
}

// solvePassive solves the least-squares problem restricted to the passive
// columns, returning a full-length vector with zeros on the active set.
// The sub-matrix assembly copies disjoint rows and is parallelized through
// Matrix.Mul-style row fan-out for large systems via CopyColumns.
func solvePassive(a *Matrix, b []float64, passive []bool) ([]float64, error) {
	n := a.Cols()
	var idx []int
	for j := 0; j < n; j++ {
		if passive[j] {
			idx = append(idx, j)
		}
	}
	if len(idx) == 0 {
		return make([]float64, n), nil
	}
	sub := a.CopyColumns(idx)
	zs, err := LeastSquares(sub, b)
	if err != nil {
		return nil, err
	}
	z := make([]float64, n)
	for k, j := range idx {
		z[j] = zs[k]
	}
	return z, nil
}

// BoundedNNLS solves min ‖A·x−b‖ s.t. 0 ≤ x ≤ upper (element-wise), by a
// simple projected refinement on top of NNLS. upper entries may be +Inf.
func BoundedNNLS(a *Matrix, b []float64, upper []float64) ([]float64, error) {
	n := a.Cols()
	if len(upper) != n {
		return nil, fmt.Errorf("linalg: BoundedNNLS upper length %d, want %d", len(upper), n)
	}
	x, err := NNLS(a, b)
	if err != nil {
		return nil, err
	}
	clipped := false
	for j := range x {
		if x[j] > upper[j] {
			x[j] = upper[j]
			clipped = true
		}
	}
	if !clipped {
		return x, nil
	}
	// Re-solve the unclipped variables with the clipped contribution moved to
	// the right-hand side, once. This is not a full active-set method over
	// box constraints but is exact when the clip set is correct, which holds
	// for the well-conditioned systems produced by the estimator.
	m := a.Rows()
	rhs := make([]float64, m)
	copy(rhs, b)
	var cols []int
	for j := 0; j < n; j++ {
		if x[j] >= upper[j] && !math.IsInf(upper[j], 1) {
			for i := 0; i < m; i++ {
				rhs[i] -= a.At(i, j) * upper[j]
			}
		} else {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return x, nil
	}
	am := a.CopyColumns(cols)
	xs, err := NNLS(am, rhs)
	if err != nil {
		return nil, err
	}
	for k, j := range cols {
		v := xs[k]
		if v > upper[j] {
			v = upper[j]
		}
		x[j] = v
	}
	return x, nil
}
