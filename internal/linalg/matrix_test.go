package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewMatrix(dims[0], dims[1])
		}()
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("unexpected contents: %v", m)
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestSetAtRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("Set/At mismatch")
	}
	m.SetRow(0, []float64{1, 2, 3})
	r := m.Row(0)
	if r[0] != 1 || r[2] != 3 {
		t.Fatalf("Row = %v", r)
	}
	// Row returns a copy.
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row did not return a copy")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 7 {
		t.Fatalf("Col = %v", c)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %dx%d", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul (%d,%d) = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		m, _ := NewMatrixFromRows([][]float64{vals[:3], vals[3:]})
		tt := m.T().T()
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				if m.At(i, j) != tt.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix-vector multiplication is linear: A(x+y) = Ax + Ay.
func TestMulVecLinearity(t *testing.T) {
	f := func(vals [6]float64, x, y [3]float64) bool {
		m, _ := NewMatrixFromRows([][]float64{vals[:3], vals[3:]})
		for i := range vals {
			if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
				return true
			}
		}
		for i := 0; i < 3; i++ {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) || math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
				return true
			}
			// Keep magnitudes sane to avoid float cancellation dominating.
			if math.Abs(x[i]) > 1e6 || math.Abs(y[i]) > 1e6 {
				return true
			}
		}
		for i := range vals {
			if math.Abs(vals[i]) > 1e6 {
				return true
			}
		}
		sum := []float64{x[0] + y[0], x[1] + y[1], x[2] + y[2]}
		axy, _ := m.MulVec(sum)
		ax, _ := m.MulVec(x[:])
		ay, _ := m.MulVec(y[:])
		for i := range axy {
			if !almostEq(axy[i], ax[i]+ay[i], 1e-6*(1+math.Abs(axy[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, -7}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %g, want 7", m.MaxAbs())
	}
}

func TestTMulVecMatchesExplicitTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	y := []float64{10, 100}
	got, err := m.TMulVec(y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.T().MulVec(y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("TMulVec = %v, Aᵀ·y = %v", got, want)
		}
	}
	if _, err := m.TMulVec([]float64{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := m.TMulVecInto(make([]float64, 2), y); err == nil {
		t.Fatal("bad dst length accepted")
	}
}

func TestTMulVecLargeParallelPath(t *testing.T) {
	// Large enough to cross parallelMinWork: the parallel column fan-out
	// must agree bitwise with the serial transpose product.
	const rows, cols = 700, 120
	m := NewMatrix(rows, cols)
	y := make([]float64, rows)
	for i := 0; i < rows; i++ {
		y[i] = math.Sin(float64(i))
		for j := 0; j < cols; j++ {
			m.Set(i, j, math.Cos(float64(i*cols+j)))
		}
	}
	got, err := m.TMulVec(y)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < cols; j++ {
		var s float64
		for i := 0; i < rows; i++ {
			s += m.At(i, j) * y[i]
		}
		if got[j] != s {
			t.Fatalf("col %d: parallel %v != serial %v", j, got[j], s)
		}
	}
}

func TestCopyColumns(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	sub := m.CopyColumns([]int{2, 0})
	if sub.Rows() != 2 || sub.Cols() != 2 {
		t.Fatalf("shape %dx%d", sub.Rows(), sub.Cols())
	}
	want := [][]float64{{3, 1}, {6, 4}}
	for i := range want {
		for j := range want[i] {
			if sub.At(i, j) != want[i][j] {
				t.Fatalf("CopyColumns = %v", sub)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column accepted")
		}
	}()
	m.CopyColumns([]int{3})
}

func TestMulLargeParallelMatchesSerial(t *testing.T) {
	// Cross the parallelMinWork threshold and compare against a straight
	// triple loop; the row-parallel product must be bitwise-identical.
	const n = 48
	a := NewMatrix(n, n)
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 1/float64(i+j+1))
			b.Set(i, j, float64((i*j)%7)-3)
		}
	}
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				av := a.At(i, k)
				if av == 0 {
					continue
				}
				s += av * b.At(k, j)
			}
			if got.At(i, j) != s {
				t.Fatalf("(%d,%d): parallel %g != serial %g", i, j, got.At(i, j), s)
			}
		}
	}
}
