package linalg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gpupower/internal/stats"
)

func isNonDecreasing(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1]-1e-12 {
			return false
		}
	}
	return true
}

func TestIsotonicAlreadyMonotone(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	fit, err := IsotonicRegression(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if fit[i] != y[i] {
			t.Fatalf("monotone input changed: %v -> %v", y, fit)
		}
	}
}

func TestIsotonicPoolsViolation(t *testing.T) {
	fit, err := IsotonicRegression([]float64{1, 3, 2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEq(fit[i], want[i], 1e-12) {
			t.Fatalf("fit = %v, want %v", fit, want)
		}
	}
}

func TestIsotonicReversedInput(t *testing.T) {
	fit, err := IsotonicRegression([]float64{3, 2, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fit {
		if !almostEq(v, 2, 1e-12) {
			t.Fatalf("fit = %v, want all 2", fit)
		}
	}
}

func TestIsotonicWeighted(t *testing.T) {
	// Heavy weight on the first point pulls the pooled value toward it.
	fit, err := IsotonicRegression([]float64{3, 1}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := (3*3.0 + 1*1.0) / 4
	if !almostEq(fit[0], want, 1e-12) || !almostEq(fit[1], want, 1e-12) {
		t.Fatalf("fit = %v, want both %g", fit, want)
	}
}

func TestIsotonicErrors(t *testing.T) {
	if _, err := IsotonicRegression(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := IsotonicRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, err := IsotonicRegression([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

// Property: output is non-decreasing, idempotent, and preserves the
// weighted mean.
func TestIsotonicProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		y := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			y[i] = math.Mod(v, 1000)
		}
		fit, err := IsotonicRegression(y, nil)
		if err != nil {
			return false
		}
		if !isNonDecreasing(fit) {
			return false
		}
		again, err := IsotonicRegression(fit, nil)
		if err != nil {
			return false
		}
		for i := range fit {
			if !almostEq(fit[i], again[i], 1e-9) {
				return false
			}
		}
		var sy, sf float64
		for i := range y {
			sy += y[i]
			sf += fit[i]
		}
		return almostEq(sy, sf, 1e-6*(1+math.Abs(sy)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PAVA produces the L2-optimal monotone fit — it must be at least
// as good as sorting the input (a valid monotone candidate).
func TestIsotonicOptimalityVsSort(t *testing.T) {
	rng := stats.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(20)
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.Normal(0, 5)
		}
		fit, err := IsotonicRegression(y, nil)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]float64(nil), y...)
		sort.Float64s(sorted)
		var sseFit, sseSort float64
		for i := range y {
			sseFit += (fit[i] - y[i]) * (fit[i] - y[i])
			sseSort += (sorted[i] - y[i]) * (sorted[i] - y[i])
		}
		if sseFit > sseSort+1e-9 {
			t.Fatalf("trial %d: PAVA SSE %g worse than sorted candidate %g", trial, sseFit, sseSort)
		}
	}
}

func TestIsotonicDecreasing(t *testing.T) {
	fit, err := IsotonicDecreasing([]float64{1, 3, 2, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fit); i++ {
		if fit[i] > fit[i-1]+1e-12 {
			t.Fatalf("fit %v is not non-increasing", fit)
		}
	}
}
