package sim

import (
	"math"
	"testing"
	"time"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

func newSim(t *testing.T, name string) *Device {
	t.Helper()
	dev, err := hw.DeviceByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(dev, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func lightKernel() *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name:            "light",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 5e8, hw.Int: 1e8},
		L2ReadBytes:     5e7,
		DRAMReadBytes:   5e7,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

// hotKernel exceeds TDP at the top clocks of the GTX Titan X.
func hotKernel() *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name: "hot",
		WarpInstrs: map[hw.Component]float64{
			hw.SP: 2e10, hw.Int: 1.6e10, hw.SF: 4e9,
		},
		SharedLoadBytes: 5e9, SharedStoreBytes: 5e9,
		L2ReadBytes: 8e9, L2WriteBytes: 4e9,
		DRAMReadBytes: 8e9, DRAMWriteBytes: 4e9,
		IssueEfficiency: 0.95,
	}
}

func TestSetClocksValidation(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if err := s.SetClocks(3505, 975); err != nil {
		t.Fatal(err)
	}
	if got := s.Clocks(); got.CoreMHz != 975 || got.MemMHz != 3505 {
		t.Fatalf("Clocks = %v", got)
	}
	if err := s.SetClocks(1234, 975); err == nil {
		t.Fatal("bad memory clock accepted")
	}
	if err := s.SetClocks(3505, 1000); err == nil {
		t.Fatal("bad core clock accepted")
	}
}

func TestExecuteAtRequestedClocks(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if err := s.SetClocks(810, 595); err != nil {
		t.Fatal(err)
	}
	run, err := s.Execute(lightKernel())
	if err != nil {
		t.Fatal(err)
	}
	if run.Requested != run.Effective {
		t.Fatalf("light kernel throttled: %v -> %v", run.Requested, run.Effective)
	}
	if run.TruePower <= 0 || run.TruePower > s.HW().TDP {
		t.Fatalf("power %g out of range", run.TruePower)
	}
}

func TestTDPGovernorCapsCoreClock(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if err := s.SetClocks(4005, 1164); err != nil {
		t.Fatal(err)
	}
	run, err := s.Execute(hotKernel())
	if err != nil {
		t.Fatal(err)
	}
	if run.Effective.CoreMHz >= run.Requested.CoreMHz {
		t.Fatalf("hot kernel not throttled (requested %v, effective %v, power %.0f W)",
			run.Requested, run.Effective, run.TruePower)
	}
	if run.TruePower > s.HW().TDP {
		t.Fatalf("post-throttle power %.0f W exceeds TDP", run.TruePower)
	}
	// The governor must pick the closest feasible level: one step up would
	// violate TDP again.
	ladder := s.HW().CoreFreqs
	for i, f := range ladder {
		if f == run.Effective.CoreMHz && i+1 < len(ladder) && ladder[i+1] < run.Requested.CoreMHz {
			if err := s.SetClocks(4005, ladder[i+1]); err != nil {
				t.Fatal(err)
			}
			up, err := s.Execute(hotKernel())
			if err != nil {
				t.Fatal(err)
			}
			if up.Effective.CoreMHz > run.Effective.CoreMHz {
				t.Fatal("governor did not pick the closest feasible level")
			}
		}
	}
}

func TestSampledAveragePowerLongRun(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if err := s.SetClocks(3505, 975); err != nil {
		t.Fatal(err)
	}
	run, err := s.Execute(lightKernel())
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := s.SampledAveragePower(lightKernel(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(p-run.TruePower) / run.TruePower; rel > 0.03 {
		t.Fatalf("1 s sampled power %g deviates %.1f%% from true %g", p, 100*rel, run.TruePower)
	}
}

func TestShortRunMixesIdlePower(t *testing.T) {
	// A run shorter than the sensor refresh must bias the reading toward
	// idle power — the pathology that forces the ≥1 s repetition rule.
	s := newSim(t, "GTX Titan X") // 100 ms refresh
	if err := s.SetClocks(3505, 975); err != nil {
		t.Fatal(err)
	}
	k := lightKernel()
	run, err := s.Execute(k)
	if err != nil {
		t.Fatal(err)
	}
	if run.Exec.Seconds() > 0.01 {
		t.Skipf("test kernel too slow (%v) for the short-run scenario", run.Exec.Time)
	}
	idle := s.IdlePower()
	p, _, err := s.SampledAveragePower(k, 0) // no repetition: single launch
	if err != nil {
		t.Fatal(err)
	}
	if p >= run.TruePower {
		t.Fatalf("short-run reading %g not biased below true %g", p, run.TruePower)
	}
	if p <= idle*0.8 {
		t.Fatalf("short-run reading %g below idle %g", p, idle)
	}
}

func TestSampledIdlePower(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if err := s.SetClocks(3505, 975); err != nil {
		t.Fatal(err)
	}
	idle := s.IdlePower()
	meas := s.SampledIdlePower(time.Second)
	if math.Abs(meas-idle)/idle > 0.05 {
		t.Fatalf("sampled idle %g vs true %g", meas, idle)
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	a := newSim(t, "Tesla K40c")
	b := newSim(t, "Tesla K40c")
	pa, _, err := a.SampledAveragePower(lightKernel(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := b.SampledAveragePower(lightKernel(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("same seed, different measurements: %g vs %g", pa, pb)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	dev := hw.GTXTitanX()
	a, err := New(dev, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(hw.GTXTitanX(), 2)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, _ := a.SampledAveragePower(lightKernel(), 100*time.Millisecond)
	pb, _, _ := b.SampledAveragePower(lightKernel(), 100*time.Millisecond)
	if pa == pb {
		t.Fatal("different seeds produced identical noisy readings")
	}
}

func TestThirdPartyVoltageReadout(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if v := s.ThirdPartyVoltageReadout(975); v != 1 {
		t.Fatalf("V̄ at ref = %g, want 1", v)
	}
	if v := s.ThirdPartyVoltageReadout(595); v >= 1 {
		t.Fatalf("V̄ at floor = %g, want < 1", v)
	}
	if v := s.ThirdPartyVoltageReadout(1164); v <= 1 {
		t.Fatalf("V̄ at top = %g, want > 1", v)
	}
}

func TestMilliwattQuantization(t *testing.T) {
	// A single sensor reading (one refresh window) is quantized to mW,
	// like real NVML.
	s := newSim(t, "GTX Titan X")
	p := s.SampledIdlePower(s.HW().SensorRefresh)
	if p != math.Trunc(p*1000)/1000 {
		t.Fatalf("reading %v not quantized to mW", p)
	}
}

func TestTotalEnergyAccumulates(t *testing.T) {
	s := newSim(t, "GTX Titan X")
	if s.TotalEnergyJoules() != 0 {
		t.Fatal("fresh device has non-zero energy")
	}
	if err := s.SetClocks(3505, 975); err != nil {
		t.Fatal(err)
	}
	run, err := s.Execute(lightKernel())
	if err != nil {
		t.Fatal(err)
	}
	want := run.TruePower * run.Exec.Seconds()
	if got := s.TotalEnergyJoules(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy after one launch = %g J, want %g", got, want)
	}
	if _, err := s.Execute(lightKernel()); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalEnergyJoules(); math.Abs(got-2*want) > 1e-9 {
		t.Fatalf("energy after two launches = %g J, want %g", got, 2*want)
	}
}
