// Package sim provides the runtime simulation of a GPU device: clock state,
// kernel execution (via the silicon ground truth), TDP-driven frequency
// capping and the on-board power sensor with its refresh-period sampling
// pathology. The nvml and cupti packages are thin façades over a sim.Device;
// the profiler and model estimator only ever talk to those façades.
package sim

import (
	"fmt"
	"sync"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/silicon"
	"gpupower/internal/stats"
)

// Device is one simulated GPU with mutable clock state.
type Device struct {
	hwd   *hw.Device
	truth *silicon.Truth

	mu  sync.Mutex
	cfg hw.Config

	// energyJ accumulates the true energy of every executed launch, backing
	// the NVML total-energy counter.
	energyJ float64

	sensorRNG *stats.RNG
	eventRNG  *stats.RNG
}

// New creates a simulated device for the given hardware description, with
// all stochastic behaviour (sensor noise, event error) derived from seed.
func New(dev *hw.Device, seed uint64) (*Device, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	truth, err := silicon.TruthFor(dev)
	if err != nil {
		return nil, err
	}
	root := stats.NewRNG(seed)
	return &Device{
		hwd:       dev,
		truth:     truth,
		cfg:       dev.DefaultConfig(),
		sensorRNG: root.Fork(1),
		eventRNG:  root.Fork(2),
	}, nil
}

// HW returns the static hardware description.
func (d *Device) HW() *hw.Device { return d.hwd }

// SetClocks requests application clocks, like nvmlDeviceSetApplicationsClocks.
// Both frequencies must be supported ladder levels.
func (d *Device) SetClocks(memMHz, coreMHz float64) error {
	if !d.hwd.SupportsMemFreq(memMHz) {
		return fmt.Errorf("sim: %s: memory clock %g MHz: %w", d.hwd.Name, memMHz, backend.ErrUnsupportedClock)
	}
	if !d.hwd.SupportsCoreFreq(coreMHz) {
		return fmt.Errorf("sim: %s: core clock %g MHz: %w", d.hwd.Name, coreMHz, backend.ErrUnsupportedClock)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cfg = hw.Config{CoreMHz: coreMHz, MemMHz: memMHz}
	return nil
}

// Clocks returns the currently requested application clocks.
func (d *Device) Clocks() hw.Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg
}

// RunResult summarizes one kernel execution.
type RunResult struct {
	// Requested is the application-clock configuration in force at launch.
	Requested hw.Config
	// Effective is the configuration the hardware actually ran at; it
	// differs from Requested when the TDP governor stepped the core clock
	// down (paper Fig. 9: "automatic frequency decrease to the closest
	// frequency level that does not violate TDP").
	Effective hw.Config
	// Exec is the ground-truth execution at the effective configuration.
	Exec *silicon.Execution
	// TruePower is the exact average power of the run, W. Measurement code
	// must not use it; it exists for validation and tests.
	TruePower float64
}

// Execute runs one kernel launch at the current clocks, applying the TDP
// governor, and returns the ground-truth outcome.
func (d *Device) Execute(k *kernels.KernelSpec) (*RunResult, error) {
	req := d.Clocks()
	eff := req
	var exec *silicon.Execution
	for {
		e, err := silicon.Simulate(d.hwd, k, eff)
		if err != nil {
			return nil, err
		}
		p := d.truth.Power(e)
		if p <= d.hwd.TDP {
			exec = e
			break
		}
		next, ok := d.stepCoreDown(eff.CoreMHz)
		if !ok {
			// Already at the floor; the hardware would throttle below any
			// ladder level — run at the floor and report its power.
			exec = e
			break
		}
		eff.CoreMHz = next
	}
	power := d.truth.Power(exec)
	d.mu.Lock()
	d.energyJ += power * exec.Seconds()
	d.mu.Unlock()
	return &RunResult{
		Requested: req,
		Effective: eff,
		Exec:      exec,
		TruePower: power,
	}, nil
}

// TotalEnergyJoules returns the accumulated true energy of every kernel
// launch executed on this device (the quantity behind NVML's total-energy
// counter).
func (d *Device) TotalEnergyJoules() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energyJ
}

func (d *Device) stepCoreDown(fc float64) (float64, bool) {
	ladder := d.hwd.CoreFreqs
	for i := len(ladder) - 1; i >= 0; i-- {
		if ladder[i] < fc {
			return ladder[i], true
		}
	}
	return 0, false
}

// IdlePower returns the true idle power at the current clocks. The sensor
// mixes it into readings that straddle a kernel launch.
func (d *Device) IdlePower() float64 {
	return d.truth.IdlePower(d.Clocks())
}

// SampledAveragePower emulates the paper's measurement loop (Section V-A):
// the kernel is launched repeatedly until at least minWall of wall time has
// elapsed, while the NVML sensor refreshes every HW().SensorRefresh; the
// returned value is the average of all sensor readings, each carrying
// sensor noise. When the total run is shorter than one refresh window the
// reading mixes in pre-launch idle power — the misleading-measurement
// pathology that motivates the ≥1 s repetition rule.
func (d *Device) SampledAveragePower(k *kernels.KernelSpec, minWall time.Duration) (float64, *RunResult, error) {
	run, err := d.Execute(k)
	if err != nil {
		return 0, nil, err
	}
	one := run.Exec.Seconds()
	wall := minWall.Seconds()
	if one > wall {
		wall = one
	}
	refresh := d.hwd.SensorRefresh.Seconds()
	idle := d.truth.IdlePower(run.Effective)
	p := run.TruePower

	nWindows := int(wall / refresh)
	if nWindows == 0 {
		// Single partial window: the sensor accumulated idle power before
		// the launch.
		frac := wall / refresh
		reading := frac*p + (1-frac)*idle
		return d.noisyReading(reading), run, nil
	}
	var sum float64
	for i := 0; i < nWindows; i++ {
		sum += d.noisyReading(p)
	}
	return sum / float64(nWindows), run, nil
}

// noisyReading applies the sensor's noise model: a small absolute term plus
// a relative term, then 1 mW quantization (NVML reports milliwatts).
func (d *Device) noisyReading(p float64) float64 {
	d.mu.Lock()
	r := d.sensorRNG.Normal(p, 0.3+0.004*p)
	d.mu.Unlock()
	if r < 0 {
		r = 0
	}
	return float64(int64(r*1000)) / 1000
}

// SampledIdlePower measures the idle device the same way as a kernel run.
func (d *Device) SampledIdlePower(minWall time.Duration) float64 {
	refresh := d.hwd.SensorRefresh.Seconds()
	idle := d.IdlePower()
	n := int(minWall.Seconds() / refresh)
	if n < 1 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.noisyReading(idle)
	}
	return sum / float64(n)
}

// EventRNG exposes the event-noise stream for the cupti façade.
func (d *Device) EventRNG() *stats.RNG { return d.eventRNG }

// ThirdPartyVoltageReadout plays the role of NVIDIA Inspector / MSI
// Afterburner in the paper's Fig. 6 validation: it reports the true core
// voltage (normalized to the default core clock) for a given frequency.
// It is validation-only; the estimator never calls it.
func (d *Device) ThirdPartyVoltageReadout(coreMHz float64) float64 {
	return d.truth.CoreVNorm(coreMHz)
}

// TrueBreakdown exposes the ground-truth per-component power decomposition
// of an execution, for validation plots (paper Figs. 5B and 10 compare the
// model's decomposition against measured totals; tests compare it against
// the truth as well).
func (d *Device) TrueBreakdown(e *silicon.Execution) *silicon.PowerBreakdown {
	return d.truth.Breakdown(e)
}
