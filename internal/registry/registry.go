// Package registry holds the fitted per-device power models a long-running
// gpowerd process serves from: a concurrency-safe map of entries, each
// pairing one device's measurement stack (backend, profiler) with the
// current fitted *core.Model and its fit metadata.
//
// Entries support atomic model swap: a re-fit installs its new model with
// one pointer store, so readers never observe a half-updated model and
// never block on a fit in progress. Readers snapshot the model once per
// batch of predictions, which makes every batch internally consistent —
// entirely from the old generation or entirely from the new one, never a
// mix (the registry swap tests pin this under the race detector). After a
// swap, the outgoing model's memoized prediction surfaces are invalidated
// (core.Model.InvalidateSurfaces), so the shared surface cache can shed
// them and a stale generation can never answer for the new fit.
package registry

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/fleet"
	"gpupower/internal/hw"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
)

// FitMeta describes how an entry's current model was produced.
type FitMeta struct {
	// Generation mirrors the model's surface-cache generation at install
	// time; a swap always changes it, so clients can detect model turnover.
	Generation uint64
	// Iterations and Converged report how the Section III-D loop ended.
	Iterations int
	Converged  bool
	// FitWall is the wall-clock duration of the fitting phase.
	FitWall time.Duration
	// FittedAt is when the model was installed.
	FittedAt time.Time
	// Source describes where the training data came from
	// ("simulator", "trace", ...).
	Source string
}

// fitted is the atomically-swapped unit: a model and its metadata always
// travel together, so a reader can never pair an old model with new
// metadata.
type fitted struct {
	model *core.Model
	meta  FitMeta
}

// Entry is one registered device: its descriptor, its (optional)
// measurement stack, and the current fitted model behind an atomic pointer.
type Entry struct {
	name string
	dev  *hw.Device

	// bk and prof are the measurement stack the model was fitted over.
	// They are nil for model-only entries (e.g. a model loaded from disk);
	// Refit requires them.
	bk   backend.Backend
	prof *profiler.Profiler

	cur atomic.Pointer[fitted]

	// fitMu serializes re-fits (the measurement pipeline is
	// single-goroutine); readers never take it.
	fitMu sync.Mutex
}

// normalizeMeta forces the fields that must mirror the installed model:
// metadata can never disagree with the model it describes.
func normalizeMeta(meta FitMeta, m *core.Model) FitMeta {
	meta.Generation = m.Generation()
	meta.Iterations = m.Iterations
	meta.Converged = m.Converged
	return meta
}

// NewEntry builds an entry serving model m for the named device. The
// backend and profiler may be nil for model-only entries. meta.Generation,
// meta.Iterations and meta.Converged are forced from the model.
func NewEntry(name string, dev *hw.Device, bk backend.Backend, prof *profiler.Profiler, m *core.Model, meta FitMeta) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: empty entry name")
	}
	if dev == nil || m == nil {
		return nil, fmt.Errorf("registry: entry %q needs a device and a model", name)
	}
	if m.DeviceName != dev.Name {
		return nil, fmt.Errorf("registry: entry %q: model fitted on %q, device is %q",
			name, m.DeviceName, dev.Name)
	}
	e := &Entry{name: name, dev: dev, bk: bk, prof: prof}
	e.cur.Store(&fitted{model: m, meta: normalizeMeta(meta, m)})
	return e, nil
}

// Name returns the entry's registry key (e.g. "GTX Titan X#42").
func (e *Entry) Name() string { return e.name }

// Device returns the entry's device descriptor.
func (e *Entry) Device() *hw.Device { return e.dev }

// Model returns the current fitted model. Callers serving a batch of
// predictions must call this once and use the snapshot for the whole
// batch; that is what makes a batch atomic with respect to Swap.
//
//gpower:noalloc one atomic pointer load
func (e *Entry) Model() *core.Model { return e.cur.Load().model }

// Snapshot returns the current model and its metadata as one consistent
// pair.
//
//gpower:noalloc one atomic pointer load; the meta struct is copied on the stack
func (e *Entry) Snapshot() (*core.Model, FitMeta) {
	f := e.cur.Load()
	return f.model, f.meta
}

// Swap atomically installs a new fitted model and returns the previous
// one. The old model's memoized prediction surfaces are invalidated, so
// the process-wide surface cache drops them on its next eviction scan and
// in-flight readers finish their batches on the old snapshot without ever
// mixing generations.
func (e *Entry) Swap(m *core.Model, meta FitMeta) (*core.Model, error) {
	if m == nil {
		return nil, fmt.Errorf("registry: entry %q: nil model in swap", e.name)
	}
	if m.DeviceName != e.dev.Name {
		return nil, fmt.Errorf("registry: entry %q: model fitted on %q, device is %q",
			e.name, m.DeviceName, e.dev.Name)
	}
	old := e.cur.Swap(&fitted{model: m, meta: normalizeMeta(meta, m)})
	old.model.InvalidateSurfaces()
	return old.model, nil
}

// Refit measures a fresh training dataset through the entry's own
// profiler, fits a new model, and atomically installs it. Concurrent
// Refit calls on one entry serialize (the measurement pipeline is
// single-goroutine); predictions continue on the old model until the
// instant of the swap.
func (e *Entry) Refit(ctx context.Context, opts *core.EstimatorOptions) (*core.Model, error) {
	if e.prof == nil {
		return nil, fmt.Errorf("registry: entry %q is model-only (no profiler); cannot refit", e.name)
	}
	e.fitMu.Lock()
	defer e.fitMu.Unlock()
	d, err := core.BuildDataset(ctx, e.prof, microbench.Suite(), e.dev.DefaultConfig(), e.dev.AllConfigs())
	if err != nil {
		return nil, fmt.Errorf("registry: refit %q: %w", e.name, err)
	}
	start := time.Now()
	m, err := core.Estimate(ctx, d, opts)
	if err != nil {
		return nil, fmt.Errorf("registry: refit %q: %w", e.name, err)
	}
	_, oldMeta := e.Snapshot()
	meta := FitMeta{
		Iterations: m.Iterations,
		Converged:  m.Converged,
		FitWall:    time.Since(start),
		FittedAt:   time.Now(),
		Source:     oldMeta.Source,
	}
	if _, err := e.Swap(m, meta); err != nil {
		return nil, err
	}
	return m, nil
}

// Registry is the concurrency-safe set of entries a gpowerd process
// serves. Lookups take a read lock; entry model access is lock-free.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string // insertion order, for stable listings
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// Add registers an entry under its name. Duplicate names are an error —
// replacing a model goes through Entry.Swap, not re-registration.
func (r *Registry) Add(e *Entry) error {
	if e == nil {
		return fmt.Errorf("registry: nil entry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("registry: duplicate entry %q", e.name)
	}
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	return nil
}

// Lookup returns the named entry.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the registered names in insertion order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Entries returns the entries in insertion order.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	es := make([]*Entry, 0, len(r.order))
	for _, n := range r.order {
		es = append(es, r.entries[n])
	}
	return es
}

// Len returns the number of registered entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Build fits the whole fleet concurrently (fleet.FitAll: per-member
// datasets, per-worker fit workspaces) and registers one entry per spec,
// in spec order. Each entry keeps its member's backend and profiler, so
// the registry can re-fit any device later without reopening anything.
func Build(ctx context.Context, specs []fleet.Spec, opts *core.EstimatorOptions) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("registry: no specs")
	}
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	res, err := fleet.FitAll(ctx, specs, opts)
	if err != nil {
		return nil, err
	}
	r := New()
	now := time.Now()
	perFit := res.Wall / time.Duration(len(res.Fits))
	for _, f := range res.Fits {
		meta := FitMeta{
			Iterations: f.Model.Iterations,
			Converged:  f.Model.Converged,
			FitWall:    perFit,
			FittedAt:   now,
			Source:     "simulator",
		}
		e, err := NewEntry(f.Spec.String(), f.Member.Device, f.Member.Backend, f.Member.Profiler, f.Model, meta)
		if err != nil {
			return nil, err
		}
		if err := r.Add(e); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// validateSpecs rejects duplicate spec names before any measurement work
// starts, so a doomed Build fails fast.
func validateSpecs(specs []fleet.Spec) error {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.String()
	}
	sort.Strings(names)
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			return fmt.Errorf("registry: duplicate spec %q", names[i])
		}
	}
	return nil
}
