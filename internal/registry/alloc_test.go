package registry

import (
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/hw"
)

// TestSnapshotAllocFree pins the dynamic half of the //gpower:noalloc
// contract on Entry.Model and Entry.Snapshot: a reader taking its per-batch
// model snapshot allocates nothing.
func TestSnapshotAllocFree(t *testing.T) {
	dev := hw.TeslaK40c()
	m := testModel(t, dev, 40)
	e, err := NewEntry("k40", dev, nil, nil, m, FitMeta{Source: "test"})
	if err != nil {
		t.Fatal(err)
	}

	var model *core.Model
	allocs := testing.AllocsPerRun(100, func() {
		model = e.Model()
	})
	if allocs != 0 {
		t.Fatalf("Entry.Model allocates %.1f objects per run; want 0", allocs)
	}
	if model != m {
		t.Fatal("Entry.Model returned the wrong model")
	}

	var meta FitMeta
	allocs = testing.AllocsPerRun(100, func() {
		model, meta = e.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("Entry.Snapshot allocates %.1f objects per run; want 0", allocs)
	}
	if model != m || meta.Source != "test" {
		t.Fatal("Entry.Snapshot returned the wrong pair")
	}
}
