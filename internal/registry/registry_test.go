package registry

import (
	"context"
	"math"
	"sync"
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/fleet"
	"gpupower/internal/hw"
)

// testModel builds a synthetic fitted model for dev. beta0 perturbs the
// core static coefficient, so two models built with different beta0 are
// distinguishable in every prediction.
func testModel(t *testing.T, dev *hw.Device, beta0 float64) *core.Model {
	t.Helper()
	m := &core.Model{
		DeviceName: dev.Name,
		Ref:        dev.DefaultConfig(),
		Beta:       [4]float64{beta0, 0.02, 10, 0.002},
		OmegaCore: map[hw.Component]float64{
			hw.Int: 0.011, hw.SP: 0.013, hw.DP: 0.017,
			hw.SF: 0.007, hw.Shared: 0.005, hw.L2: 0.009,
		},
		OmegaMem:        0.004,
		Voltages:        core.NewVoltageTable(dev.CoreFreqs, dev.MemFreqs),
		L2BytesPerCycle: dev.L2BytesPerCycle,
		Iterations:      3,
		Converged:       true,
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("synthetic model invalid: %v", err)
	}
	return m
}

func TestNewEntryValidation(t *testing.T) {
	dev := hw.TeslaK40c()
	m := testModel(t, dev, 40)
	if _, err := NewEntry("", dev, nil, nil, m, FitMeta{}); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if _, err := NewEntry("x", nil, nil, nil, m, FitMeta{}); err == nil {
		t.Fatal("nil device must be rejected")
	}
	if _, err := NewEntry("x", dev, nil, nil, nil, FitMeta{}); err == nil {
		t.Fatal("nil model must be rejected")
	}
	other := hw.GTXTitanX()
	if _, err := NewEntry("x", other, nil, nil, m, FitMeta{}); err == nil {
		t.Fatal("device/model mismatch must be rejected")
	}
	e, err := NewEntry("k40", dev, nil, nil, m, FitMeta{Source: "test"})
	if err != nil {
		t.Fatal(err)
	}
	got, meta := e.Snapshot()
	if got != m {
		t.Fatal("snapshot must return the installed model")
	}
	if meta.Generation != m.Generation() {
		t.Fatalf("meta generation %d, model generation %d", meta.Generation, m.Generation())
	}
	if meta.Source != "test" {
		t.Fatalf("source %q lost", meta.Source)
	}
}

func TestSwapValidatesAndInvalidates(t *testing.T) {
	dev := hw.TeslaK40c()
	a := testModel(t, dev, 40)
	b := testModel(t, dev, 55)
	e, err := NewEntry("k40", dev, nil, nil, a, FitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Swap(nil, FitMeta{}); err == nil {
		t.Fatal("nil model swap must be rejected")
	}
	wrong := testModel(t, hw.GTXTitanX(), 40)
	if _, err := e.Swap(wrong, FitMeta{}); err == nil {
		t.Fatal("mismatched-device swap must be rejected")
	}

	genA := a.Generation()
	old, err := e.Swap(b, FitMeta{Source: "refit"})
	if err != nil {
		t.Fatal(err)
	}
	if old != a {
		t.Fatal("swap must return the previous model")
	}
	if a.Generation() == genA {
		t.Fatal("swap must invalidate the old model's surfaces (generation unchanged)")
	}
	m, meta := e.Snapshot()
	if m != b || meta.Generation != b.Generation() {
		t.Fatal("snapshot must be the new (model, meta) pair")
	}
}

func TestRegistryAddLookupOrder(t *testing.T) {
	dev := hw.TeslaK40c()
	r := New()
	if err := r.Add(nil); err == nil {
		t.Fatal("nil entry must be rejected")
	}
	names := []string{"c", "a", "b"}
	for _, n := range names {
		e, err := NewEntry(n, dev, nil, nil, testModel(t, dev, 40), FitMeta{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	dup, _ := NewEntry("a", dev, nil, nil, testModel(t, dev, 41), FitMeta{})
	if err := r.Add(dup); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Names()
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("Names() = %v, want insertion order %v", got, names)
		}
		e, ok := r.Lookup(n)
		if !ok || e.Name() != n {
			t.Fatalf("Lookup(%q) failed", n)
		}
		if r.Entries()[i] != e {
			t.Fatal("Entries() must mirror Names() order")
		}
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("unknown name must miss")
	}
}

func TestBuildFitsFleetIntoEntries(t *testing.T) {
	ctx := context.Background()
	specs := []fleet.Spec{
		{Device: "Tesla K40c", Seed: 3},
		{Device: "Tesla K40c", Seed: 4},
	}
	r, err := Build(ctx, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(specs) {
		t.Fatalf("registry has %d entries, want %d", r.Len(), len(specs))
	}
	for i, spec := range specs {
		e, ok := r.Lookup(spec.String())
		if !ok {
			t.Fatalf("missing entry %q", spec.String())
		}
		if r.Names()[i] != spec.String() {
			t.Fatal("entries must be registered in spec order")
		}
		m, meta := e.Snapshot()
		if m.DeviceName != spec.Device {
			t.Fatalf("entry %q model fitted on %q", spec.String(), m.DeviceName)
		}
		if meta.Source != "simulator" {
			t.Fatalf("source %q, want simulator", meta.Source)
		}
		if meta.Generation != m.Generation() {
			t.Fatal("meta generation must mirror the model")
		}
		// The entry keeps the measurement stack: refit must work.
		if e.prof == nil || e.bk == nil {
			t.Fatal("fleet-built entries must retain backend and profiler")
		}
	}

	if _, err := Build(ctx, nil, nil); err == nil {
		t.Fatal("empty specs must be rejected")
	}
	dupSpecs := []fleet.Spec{{Device: "Tesla K40c", Seed: 3}, {Device: "Tesla K40c", Seed: 3}}
	if _, err := Build(ctx, dupSpecs, nil); err == nil {
		t.Fatal("duplicate specs must be rejected before measurement")
	}
}

func TestRefitSwapsNewModel(t *testing.T) {
	ctx := context.Background()
	member, err := fleet.OpenMember(fleet.Spec{Device: "Tesla K40c", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := member.BuildDataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Estimate(ctx, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEntry(member.Spec.String(), member.Device, member.Backend, member.Profiler, m0, FitMeta{Source: "simulator"})
	if err != nil {
		t.Fatal(err)
	}
	gen0 := m0.Generation()
	m1, err := e.Refit(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m0 {
		t.Fatal("refit must install a fresh model instance")
	}
	cur, meta := e.Snapshot()
	if cur != m1 {
		t.Fatal("refit must swap the new model in")
	}
	if meta.Generation == gen0 {
		t.Fatal("refit must change the generation")
	}
	if meta.Source != "simulator" {
		t.Fatalf("refit must preserve the source label, got %q", meta.Source)
	}
	if meta.FitWall <= 0 {
		t.Fatal("refit must record the fit wall clock")
	}

	// Model-only entries cannot refit.
	bare, err := NewEntry("bare", member.Device, nil, nil, testModel(t, member.Device, 40), FitMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Refit(ctx, nil); err == nil {
		t.Fatal("model-only entry refit must error")
	}
}

// TestSwapUnderConcurrentReaders is the registry's core serving guarantee
// under the race detector: readers that snapshot the model once per batch
// see batches that are bitwise-identical to the old fit or to the new fit,
// never a mix, while a writer swaps the entry back and forth.
func TestSwapUnderConcurrentReaders(t *testing.T) {
	dev := hw.TeslaK40c()
	a := testModel(t, dev, 40)
	b := testModel(t, dev, 55)
	configs := dev.AllConfigs()
	u := core.Utilization{hw.SP: 0.8, hw.Int: 0.25, hw.L2: 0.4, hw.DRAM: 0.6}

	expect := func(m *core.Model) []float64 {
		out := make([]float64, len(configs))
		if err := m.PredictAll(u, configs, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	expectedA, expectedB := expect(a), expect(b)
	for i := range expectedA {
		if math.Float64bits(expectedA[i]) == math.Float64bits(expectedB[i]) {
			t.Fatalf("config %d: models A and B predict identically; perturbation too weak", i)
		}
	}

	e, err := NewEntry("k40", dev, nil, nil, a, FitMeta{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers        = 4
		swaps          = 300
		batchesPerSwap = 2
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]float64, len(configs))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The serving contract: one snapshot per batch.
				m := e.Model()
				if err := m.PredictAll(u, configs, batch); err != nil {
					errc <- err
					return
				}
				matchA, matchB := true, true
				for i := range batch {
					bits := math.Float64bits(batch[i])
					if bits != math.Float64bits(expectedA[i]) {
						matchA = false
					}
					if bits != math.Float64bits(expectedB[i]) {
						matchB = false
					}
				}
				if !matchA && !matchB {
					errc <- errMixedBatch(batch, expectedA, expectedB)
					return
				}
			}
		}()
	}

	cur, next := a, b
	for i := 0; i < swaps; i++ {
		if _, err := e.Swap(next, FitMeta{}); err != nil {
			t.Fatal(err)
		}
		cur, next = next, cur
		// Let readers run a couple of batches between swaps.
		for j := 0; j < batchesPerSwap; j++ {
			m := e.Model()
			scratch := make([]float64, len(configs))
			if err := m.PredictAll(u, configs, scratch); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	_ = cur
}

// errMixedBatch formats the mixed-generation failure.
type mixedBatchError struct{ got, a, b []float64 }

func errMixedBatch(got, a, b []float64) error {
	g := make([]float64, len(got))
	copy(g, got)
	return &mixedBatchError{got: g, a: a, b: b}
}

func (e *mixedBatchError) Error() string {
	for i := range e.got {
		gb := math.Float64bits(e.got[i])
		if gb != math.Float64bits(e.a[i]) && gb != math.Float64bits(e.b[i]) {
			return "batch matches neither generation (corrupt read)"
		}
	}
	return "batch mixes generations: some points from the old model, some from the new"
}
