// Package autotune implements the multi-kernel auto-tuning use case the
// paper enables (Section V-B use case 3, citing the authors' PDP 2015
// "Multi-kernel Auto-Tuning on GPUs: Performance and Energy-Aware
// Optimization"): choose a per-kernel V-F configuration for a multi-kernel
// application that minimizes total predicted energy subject to a runtime
// budget — without executing anything beyond the single reference-
// configuration profile per kernel.
//
// Per kernel, every ladder configuration is scored with the power model
// (energy) and the roofline companion (time); dominated points are pruned
// to a Pareto frontier; the per-kernel frontiers are then combined under
// the coupling time constraint. Applications have few kernels (1–3 here,
// single digits in practice), so exact search over frontier products is
// affordable; a Lagrangian-style greedy fallback covers larger counts.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/profiler"
)

// Candidate is one V-F operating point for one kernel.
type Candidate struct {
	Config hw.Config
	// RelTime is the predicted T(cfg)/T(ref) for the kernel.
	RelTime float64
	// RelEnergy is the predicted E(cfg)/E(ref) for the kernel.
	RelEnergy float64
}

// Plan is a complete per-kernel assignment.
type Plan struct {
	App *kernels.App
	// Choice[i] is the configuration selected for App.Kernels[i].
	Choice []Candidate
	// RelTime and RelEnergy are application totals vs running everything at
	// the reference configuration (kernel contributions weighted by their
	// reference execution times).
	RelTime   float64
	RelEnergy float64
}

// Tuner plans per-kernel configurations from a fitted model.
type Tuner struct {
	prof  *profiler.Profiler
	model *core.Model
}

// New creates a tuner for a model fitted on the profiler's device.
func New(p *profiler.Profiler, m *core.Model) (*Tuner, error) {
	if p == nil || m == nil {
		return nil, fmt.Errorf("autotune: nil profiler or model")
	}
	if m.DeviceName != p.HW().Name {
		return nil, fmt.Errorf("autotune: model fitted on %q, device is %q",
			m.DeviceName, p.HW().Name)
	}
	return &Tuner{prof: p, model: m}, nil
}

// kernelFrontier profiles one kernel and returns its Pareto frontier
// (ascending RelTime, strictly descending RelEnergy) plus the kernel's
// reference execution time and power.
func (t *Tuner) kernelFrontier(ctx context.Context, k *kernels.KernelSpec) (frontier []Candidate, refSeconds, refPower float64, err error) {
	dev := t.prof.HW()
	ref := t.model.Ref
	prof, err := t.prof.ProfileApp(ctx, kernels.SingleKernelApp(k), ref)
	if err != nil {
		return nil, 0, 0, err
	}
	u, err := core.AppUtilization(dev, prof, t.model.L2BytesPerCycle)
	if err != nil {
		return nil, 0, 0, err
	}
	refSeconds = prof.Kernels[0].Seconds
	// The per-configuration energy/time columns come from the memoized
	// prediction surface, so re-tuning the same kernel (or sharing kernels
	// across plans) evaluates the model ladder once per utilization.
	s, err := core.Surfaces.Get(ctx, t.model, dev, ref, u)
	if err != nil {
		var npe *core.NonPositiveRefPowerError
		if errors.As(err, &npe) {
			return nil, 0, 0, fmt.Errorf("autotune: non-positive reference power for kernel %s", k.Name)
		}
		return nil, 0, 0, err
	}
	refPower = s.RefPower

	var all []Candidate
	for i := 0; i < s.Len(); i++ {
		if s.PowerW[i] > dev.TDP {
			continue
		}
		all = append(all, Candidate{
			Config:    s.Configs[i],
			RelTime:   s.RelTime[i],
			RelEnergy: s.RelEnergy[i],
		})
	}
	if len(all) == 0 {
		return nil, 0, 0, fmt.Errorf("autotune: kernel %s has no TDP-feasible configuration", k.Name)
	}
	sort.Slice(all, func(i, j int) bool {
		//lint:ignore floateq total-order tie-break: only bitwise-equal runtimes fall through to the energy key, keeping the Pareto sort reproducible
		if all[i].RelTime != all[j].RelTime {
			return all[i].RelTime < all[j].RelTime
		}
		return all[i].RelEnergy < all[j].RelEnergy
	})
	bestE := math.Inf(1)
	for _, c := range all {
		if c.RelEnergy < bestE-1e-12 {
			frontier = append(frontier, c)
			bestE = c.RelEnergy
		}
	}
	return frontier, refSeconds, refPower, nil
}

// exhaustiveLimit bounds the exact frontier-product search.
const exhaustiveLimit = 200000

// Tune plans per-kernel configurations minimizing total predicted energy
// subject to TotalTime ≤ (1 + slack) × TotalTime(ref). slack = 0.1 allows a
// 10% slowdown; negative slack demands a speedup (feasible only when a
// faster-than-reference configuration exists). Cancellation is checked at
// kernel granularity while profiling.
func (t *Tuner) Tune(ctx context.Context, app *kernels.App, slack float64) (*Plan, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	n := len(app.Kernels)
	frontiers := make([][]Candidate, n)
	refTimes := make([]float64, n)
	refPowers := make([]float64, n)
	var totalRefT float64
	for i, k := range app.Kernels {
		if err := backend.CheckContext(ctx, "autotune: planning "+app.Name); err != nil {
			return nil, err
		}
		f, rt, rp, err := t.kernelFrontier(ctx, k)
		if err != nil {
			return nil, err
		}
		frontiers[i], refTimes[i], refPowers[i] = f, rt, rp
		totalRefT += rt
	}
	budget := (1 + slack) * totalRefT

	size := 1
	for _, f := range frontiers {
		size *= len(f)
		if size > exhaustiveLimit {
			break
		}
	}
	var choice []Candidate
	var err error
	if size <= exhaustiveLimit {
		choice, err = exactSearch(frontiers, refTimes, refPowers, budget)
	} else {
		choice, err = greedySearch(frontiers, refTimes, refPowers, budget)
	}
	if err != nil {
		return nil, err
	}

	plan := &Plan{App: app, Choice: choice}
	var tTot, eTot, eRef float64
	for i, c := range choice {
		tTot += refTimes[i] * c.RelTime
		eTot += refTimes[i] * refPowers[i] * c.RelEnergy
		eRef += refTimes[i] * refPowers[i]
	}
	plan.RelTime = tTot / totalRefT
	plan.RelEnergy = eTot / eRef
	return plan, nil
}

// exactSearch enumerates the frontier product.
func exactSearch(frontiers [][]Candidate, refT, refP []float64, budget float64) ([]Candidate, error) {
	n := len(frontiers)
	idx := make([]int, n)
	best := math.Inf(1)
	var bestChoice []Candidate
	for {
		var tTot, eTot float64
		for i := range frontiers {
			c := frontiers[i][idx[i]]
			tTot += refT[i] * c.RelTime
			eTot += refT[i] * refP[i] * c.RelEnergy
		}
		if tTot <= budget && eTot < best {
			best = eTot
			bestChoice = make([]Candidate, n)
			for i := range frontiers {
				bestChoice[i] = frontiers[i][idx[i]]
			}
		}
		// Advance the odometer.
		k := 0
		for k < n {
			idx[k]++
			if idx[k] < len(frontiers[k]) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == n {
			break
		}
	}
	if bestChoice == nil {
		return nil, fmt.Errorf("autotune: no plan satisfies the time budget")
	}
	return bestChoice, nil
}

// greedySearch starts from each kernel's fastest point and repeatedly takes
// the frontier step with the best energy-saving per unit of added time
// while the budget allows.
func greedySearch(frontiers [][]Candidate, refT, refP []float64, budget float64) ([]Candidate, error) {
	n := len(frontiers)
	idx := make([]int, n) // frontier index per kernel; 0 = fastest
	var tTot float64
	for i := range frontiers {
		tTot += refT[i] * frontiers[i][0].RelTime
	}
	if tTot > budget {
		return nil, fmt.Errorf("autotune: no plan satisfies the time budget")
	}
	for {
		bestI, bestGain := -1, 0.0
		var bestDT float64
		for i := range frontiers {
			if idx[i]+1 >= len(frontiers[i]) {
				continue
			}
			cur, next := frontiers[i][idx[i]], frontiers[i][idx[i]+1]
			dt := refT[i] * (next.RelTime - cur.RelTime)
			de := refT[i] * refP[i] * (cur.RelEnergy - next.RelEnergy)
			if de <= 0 || tTot+dt > budget {
				continue
			}
			gain := de / math.Max(dt, 1e-12)
			if gain > bestGain {
				bestI, bestGain, bestDT = i, gain, dt
			}
		}
		if bestI < 0 {
			break
		}
		idx[bestI]++
		tTot += bestDT
	}
	out := make([]Candidate, n)
	for i := range frontiers {
		out[i] = frontiers[i][idx[i]]
	}
	return out, nil
}
