package autotune

import (
	"context"
	"math"
	"sync"
	"testing"

	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
	"gpupower/internal/suites"
)

var (
	rigOnce sync.Once
	rigProf *profiler.Profiler
	rigMod  *core.Model
	rigErr  error
)

func tuner(t *testing.T) *Tuner {
	t.Helper()
	rigOnce.Do(func() {
		ctx := context.Background()
		b, err := simbk.Open("GTX Titan X", 42)
		if err != nil {
			rigErr = err
			return
		}
		dev := b.Device()
		rigProf, rigErr = profiler.New(b)
		if rigErr != nil {
			return
		}
		var d *core.Dataset
		d, rigErr = core.BuildDataset(ctx, rigProf, microbench.Suite(), dev.DefaultConfig(), dev.AllConfigs())
		if rigErr != nil {
			return
		}
		rigMod, rigErr = core.Estimate(ctx, d, nil)
	})
	if rigErr != nil {
		t.Fatal(rigErr)
	}
	tn, err := New(rigProf, rigMod)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestNewValidation(t *testing.T) {
	tn := tuner(t)
	if _, err := New(nil, rigMod); err == nil {
		t.Fatal("nil profiler accepted")
	}
	if _, err := New(rigProf, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	other := *rigMod
	other.DeviceName = "Tesla K40c"
	if _, err := New(rigProf, &other); err == nil {
		t.Fatal("device mismatch accepted")
	}
	_ = tn
}

func app(t *testing.T, short string) *suites.Application {
	t.Helper()
	a, err := suites.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	return &a
}

func TestTuneRespectsBudgetAndSavesEnergy(t *testing.T) {
	tn := tuner(t)
	km := app(t, "K-M") // two kernels
	for _, slack := range []float64{0.05, 0.15, 0.30} {
		plan, err := tn.Tune(context.Background(), km.App, slack)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Choice) != len(km.App.Kernels) {
			t.Fatalf("slack %.2f: %d choices for %d kernels", slack, len(plan.Choice), len(km.App.Kernels))
		}
		if plan.RelTime > 1+slack+1e-9 {
			t.Errorf("slack %.2f: plan time x%.3f exceeds budget", slack, plan.RelTime)
		}
		if plan.RelEnergy > 1+1e-9 {
			t.Errorf("slack %.2f: plan wastes energy (x%.3f)", slack, plan.RelEnergy)
		}
	}
}

func TestMoreSlackNeverHurts(t *testing.T) {
	tn := tuner(t)
	a := app(t, "SRAD_1")
	tight, err := tn.Tune(context.Background(), a.App, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := tn.Tune(context.Background(), a.App, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	// Each Tune call re-profiles the kernels, so the frontiers carry fresh
	// counter read noise (~0.3%); compare with a matching tolerance.
	if loose.RelEnergy > tight.RelEnergy+0.01 {
		t.Fatalf("more slack produced worse energy: %.3f vs %.3f", loose.RelEnergy, tight.RelEnergy)
	}
}

func TestTuneMemoryBoundPrefersLowCore(t *testing.T) {
	tn := tuner(t)
	a := app(t, "LBM")
	plan, err := tn.Tune(context.Background(), a.App, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Choice[0].Config.CoreMHz >= rigMod.Ref.CoreMHz {
		t.Errorf("memory-bound kernel assigned core clock %g >= reference", plan.Choice[0].Config.CoreMHz)
	}
	if plan.RelEnergy > 0.97 {
		t.Errorf("memory-bound app should save energy (got x%.3f)", plan.RelEnergy)
	}
}

func TestTuneValidation(t *testing.T) {
	tn := tuner(t)
	bad := &struct{}{}
	_ = bad
	if _, err := tn.Tune(context.Background(), nil, 0.1); err == nil {
		t.Fatal("nil app accepted")
	}
}

func TestGreedyMatchesExactOnSmallProblem(t *testing.T) {
	// Build a tiny synthetic frontier problem where both solvers apply.
	frontiers := [][]Candidate{
		{
			{RelTime: 1.0, RelEnergy: 1.0},
			{RelTime: 1.2, RelEnergy: 0.8},
			{RelTime: 1.5, RelEnergy: 0.7},
		},
		{
			{RelTime: 1.0, RelEnergy: 1.0},
			{RelTime: 1.3, RelEnergy: 0.6},
		},
	}
	refT := []float64{1, 1}
	refP := []float64{100, 100}
	budget := 2.5
	exact, err := exactSearch(frontiers, refT, refP, budget)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := greedySearch(frontiers, refT, refP, budget)
	if err != nil {
		t.Fatal(err)
	}
	energy := func(choice []Candidate) float64 {
		var e float64
		for i, c := range choice {
			e += refT[i] * refP[i] * c.RelEnergy
		}
		return e
	}
	if math.Abs(energy(exact)-energy(greedy)) > 1e-9 {
		t.Fatalf("greedy %.1f != exact %.1f on a greedy-friendly instance",
			energy(greedy), energy(exact))
	}
	// Budget feasibility.
	var tt float64
	for i, c := range exact {
		tt += refT[i] * c.RelTime
	}
	if tt > budget {
		t.Fatal("exact solution violates the budget")
	}
}

func TestExactSearchInfeasible(t *testing.T) {
	frontiers := [][]Candidate{{{RelTime: 2, RelEnergy: 1}}}
	if _, err := exactSearch(frontiers, []float64{1}, []float64{100}, 1.0); err == nil {
		t.Fatal("infeasible budget accepted")
	}
	if _, err := greedySearch(frontiers, []float64{1}, []float64{100}, 1.0); err == nil {
		t.Fatal("greedy accepted infeasible budget")
	}
}
