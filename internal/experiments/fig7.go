package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
	"gpupower/internal/stats"
	"gpupower/internal/suites"
)

// Fig7Point is one (application, configuration) prediction vs measurement.
type Fig7Point struct {
	App       string
	Config    hw.Config
	Measured  float64
	Predicted float64
}

// Fig7DeviceResult is the paper's Fig. 7 panel for one device: predicted vs
// measured power for the whole validation set across every V-F
// configuration, with the mean absolute (percentage) error.
type Fig7DeviceResult struct {
	Device     string
	MemLevels  int
	CoreLevels int
	Points     []Fig7Point
	MAE        float64 // percent
}

// Fig7Result aggregates the three device panels.
type Fig7Result struct {
	Devices []Fig7DeviceResult
}

// predictAppEverywhere profiles an application once at the reference
// configuration and predicts + measures its power at every configuration.
func predictAppEverywhere(ctx context.Context, r *Rig, m *core.Model, app suites.Application, configs []hw.Config) ([]Fig7Point, error) {
	prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
	if err != nil {
		return nil, err
	}
	util, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
	if err != nil {
		return nil, err
	}
	pts := make([]Fig7Point, 0, len(configs))
	for _, cfg := range configs {
		pred, err := m.Predict(util, cfg)
		if err != nil {
			return nil, err
		}
		meas, err := r.Profiler.MeasureAppPower(ctx, app.App, cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, Fig7Point{App: app.Short, Config: cfg, Measured: meas, Predicted: pred})
	}
	return pts, nil
}

// RunFig7Device runs the Fig. 7 validation for one device.
func RunFig7Device(ctx context.Context, deviceName string, seed uint64) (*Fig7DeviceResult, error) {
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	res := &Fig7DeviceResult{
		Device:     deviceName,
		MemLevels:  len(r.Device.MemFreqs),
		CoreLevels: len(r.Device.CoreFreqs),
	}
	configs := r.Device.AllConfigs()
	for _, app := range suites.ValidationSet() {
		pts, err := predictAppEverywhere(ctx, r, m, app, configs)
		if err != nil {
			return nil, fmt.Errorf("fig7: %s on %s: %w", app.Short, deviceName, err)
		}
		res.Points = append(res.Points, pts...)
	}
	pred := make([]float64, len(res.Points))
	meas := make([]float64, len(res.Points))
	for i, p := range res.Points {
		pred[i], meas[i] = p.Predicted, p.Measured
	}
	res.MAE, err = stats.MAPE(pred, meas)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunFig7 runs the full Fig. 7 experiment on the paper's three devices.
// The per-device pipelines (fit + validate) are independent, so they run
// concurrently; the result keeps the canonical device order.
func RunFig7(ctx context.Context, seed uint64) (*Fig7Result, error) {
	devs := hw.AllDevices()
	panels, err := parallel.Map(len(devs), func(i int) (*Fig7DeviceResult, error) {
		return RunFig7Device(ctx, devs[i].Name, seed)
	})
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{Devices: make([]Fig7DeviceResult, len(panels))}
	for i, p := range panels {
		out.Devices[i] = *p
	}
	return out, nil
}

// String renders the Fig. 7 summary rows (paper values: 6.9 %, 6.0 %,
// 12.4 % for Titan Xp, GTX Titan X, Tesla K40c).
func (r *Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 7 — power prediction for all V-F configurations (validation set)\n")
	for _, d := range r.Devices {
		mn, mx := minMaxMeasured(d.Points)
		fmt.Fprintf(&sb, "  %-12s  mem levels: %d  core levels: %d  points: %4d  power range: [%.0f, %.0f] W  MAE: %.1f%%\n",
			d.Device, d.MemLevels, d.CoreLevels, len(d.Points), mn, mx, d.MAE)
	}
	return sb.String()
}

func minMaxMeasured(pts []Fig7Point) (mn, mx float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	mn, mx = pts[0].Measured, pts[0].Measured
	for _, p := range pts[1:] {
		if p.Measured < mn {
			mn = p.Measured
		}
		if p.Measured > mx {
			mx = p.Measured
		}
	}
	return mn, mx
}
