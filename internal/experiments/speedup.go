package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/suites"
)

// SpeedupRow is one before/after wall-clock comparison. Factor is
// BaseNsOp/OptNsOp: how many times faster the optimized path is than the
// baseline it replaced.
type SpeedupRow struct {
	Name      string
	BaseLabel string
	OptLabel  string
	BaseNsOp  float64
	OptNsOp   float64
	Factor    float64
}

// SpeedupResult is the perf-optimization companion experiment: it times the
// hot paths this codebase memoizes (prediction surfaces) and de-allocates
// (workspace-reuse fitting) against their recompute-everything baselines.
// Wall-clock numbers vary machine to machine; the structure and the
// measured operations are fixed, and `make bench-json` serializes the rows
// into BENCH_results.json next to the raw Go benchmark output.
type SpeedupResult struct {
	Device string
	Seed   uint64
	Rows   []SpeedupRow
}

// timeOp reports the mean ns/op of iters calls to f. Cancellation is
// checked once per timing block by the caller, not per call, so the timer
// measures only the operation under study.
func timeOp(iters int, f func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

func speedupRow(ctx context.Context, name, baseLabel, optLabel string, baseIters, optIters int, base, opt func() error) (SpeedupRow, error) {
	if err := backend.CheckContext(ctx, "speedup: "+name); err != nil {
		return SpeedupRow{}, err
	}
	bn, err := timeOp(baseIters, base)
	if err != nil {
		return SpeedupRow{}, err
	}
	on, err := timeOp(optIters, opt)
	if err != nil {
		return SpeedupRow{}, err
	}
	row := SpeedupRow{Name: name, BaseLabel: baseLabel, OptLabel: optLabel, BaseNsOp: bn, OptNsOp: on}
	if on > 0 {
		row.Factor = bn / on
	}
	return row, nil
}

// RunSpeedup measures the optimized hot paths against their baselines on
// one device:
//
//   - dvfs-search: a governor decision over the full V-F ladder, cold
//     (surface recomputed per call, the historical per-call cost) vs warm
//     (served from the memoized prediction surface).
//   - single-predict: one model evaluation through the allocation-free
//     direct Model.Predict vs the single-point surface-cache lookup it
//     replaced for single-config requests (the two are pinned bitwise
//     against each other by the surface tests).
//   - estimate-fit (per device): the Section III-D alternation through the
//     restructured engine (per-worker workspaces, blocked QR, compiled
//     quartic step-2 objectives) vs the preserved reference engine it
//     replaced (core.EstimateReference). Measured per catalog device so the
//     factor covers the full ladder-size range.
func RunSpeedup(ctx context.Context, seed uint64) (*SpeedupResult, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &SpeedupResult{Device: deviceName, Seed: seed}

	// Utilization for a real workload, profiled once at the reference.
	wl, err := suites.ByShort("LBM")
	if err != nil {
		return nil, err
	}
	prof, err := r.Profiler.ProfileApp(ctx, wl.App, m.Ref)
	if err != nil {
		return nil, err
	}
	u, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
	if err != nil {
		return nil, err
	}

	// Row 1: full-ladder DVFS decision, cold vs warm surface.
	g, err := governor.New(r.Profiler, m, governor.MinEnergy)
	if err != nil {
		return nil, err
	}
	row, err := speedupRow(ctx, "dvfs-search", "cold surface", "warm surface", 50, 5000,
		func() error {
			m.InvalidateSurfaces() // force a full ladder recompute per call
			_, err := g.DecideContext(ctx, u)
			return err
		},
		func() error {
			_, err := g.DecideContext(ctx, u)
			return err
		})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	// Row 2: single-point prediction. PR 7's allocation-free warm
	// Model.Predict (~72 ns) now beats a single-point SurfaceCache lookup
	// (~468 ns: the shard read-lock and map probe dominate one flattened
	// evaluation), so the direct path is the optimized side and the cache
	// lookup is the baseline it replaces — the row used to be written the
	// other way round and reported an inverted 0.15x "speedup". The cache
	// still wins wherever a whole ladder is consumed per decision (the
	// dvfs-search row above); single-config requests in internal/serve
	// already route through the direct PredictAll path for the same reason.
	cfg := r.Device.Ladder()[0]
	row, err = speedupRow(ctx, "single-predict", "surface-cache point lookup", "warm Model.Predict", 20000, 20000,
		func() error {
			_, err := core.Surfaces.Predict(ctx, m, r.Device, m.Ref, u, cfg)
			return err
		},
		func() error {
			_, err := m.Predict(u, cfg)
			return err
		})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	// Rows 3-5: the Section III-D alternation per catalog device, reference
	// engine (row-by-row assembly, Hypot-chain QR, O(nb) objective closures;
	// core.EstimateReference) vs the restructured engine (per-worker
	// workspaces, blocked QR, compiled quartic objectives; core.Estimate).
	// Both engines walk the same iteration trajectory, so the factor is the
	// per-fit algorithmic speedup, valid on any core count. Iteration counts
	// stay low because the reference engine is the slow side by design.
	fitRows := []struct {
		device              string
		baseIters, optIters int
	}{
		{"Titan Xp", 2, 3},
		{"GTX Titan X", 2, 3},
		{"Tesla K40c", 3, 3},
	}
	fw := core.NewFitWorkspace()
	for _, fr := range fitRows {
		dr, err := SharedRig(fr.device, seed)
		if err != nil {
			return nil, err
		}
		d, err := dr.Dataset(ctx)
		if err != nil {
			return nil, err
		}
		row, err = speedupRow(ctx, "estimate-fit ("+fr.device+")",
			"reference engine", "restructured", fr.baseIters, fr.optIters,
			func() error {
				_, err := core.EstimateReference(ctx, d, nil)
				return err
			},
			func() error {
				_, err := core.EstimateWith(ctx, d, nil, fw)
				return err
			})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (r *SpeedupResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hot-path speedups (%s, seed %d)\n", r.Device, r.Seed)
	fmt.Fprintf(&sb, "  %-26s %-16s %12s %-14s %12s %8s\n",
		"path", "baseline", "ns/op", "optimized", "ns/op", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-26s %-16s %12.0f %-14s %12.0f %7.1fx\n",
			row.Name, row.BaseLabel, row.BaseNsOp, row.OptLabel, row.OptNsOp, row.Factor)
	}
	return sb.String()
}
