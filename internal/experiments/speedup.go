package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/parallel"
	"gpupower/internal/suites"
)

// SpeedupRow is one before/after wall-clock comparison. Factor is
// BaseNsOp/OptNsOp: how many times faster the optimized path is than the
// baseline it replaced.
type SpeedupRow struct {
	Name      string
	BaseLabel string
	OptLabel  string
	BaseNsOp  float64
	OptNsOp   float64
	Factor    float64
}

// SpeedupResult is the perf-optimization companion experiment: it times the
// hot paths this codebase memoizes (prediction surfaces) and de-allocates
// (workspace-reuse fitting) against their recompute-everything baselines.
// Wall-clock numbers vary machine to machine; the structure and the
// measured operations are fixed, and `make bench-json` serializes the rows
// into BENCH_results.json next to the raw Go benchmark output.
type SpeedupResult struct {
	Device string
	Seed   uint64
	Rows   []SpeedupRow
}

// timeOp reports the mean ns/op of iters calls to f. Cancellation is
// checked once per timing block by the caller, not per call, so the timer
// measures only the operation under study.
func timeOp(iters int, f func() error) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}

func speedupRow(ctx context.Context, name, baseLabel, optLabel string, baseIters, optIters int, base, opt func() error) (SpeedupRow, error) {
	if err := backend.CheckContext(ctx, "speedup: "+name); err != nil {
		return SpeedupRow{}, err
	}
	bn, err := timeOp(baseIters, base)
	if err != nil {
		return SpeedupRow{}, err
	}
	on, err := timeOp(optIters, opt)
	if err != nil {
		return SpeedupRow{}, err
	}
	row := SpeedupRow{Name: name, BaseLabel: baseLabel, OptLabel: optLabel, BaseNsOp: bn, OptNsOp: on}
	if on > 0 {
		row.Factor = bn / on
	}
	return row, nil
}

// RunSpeedup measures the optimized hot paths against their baselines on
// one device:
//
//   - dvfs-search: a governor decision over the full V-F ladder, cold
//     (surface recomputed per call, the historical per-call cost) vs warm
//     (served from the memoized prediction surface).
//   - cached-predict: one model evaluation through the surface cache vs the
//     map-walking Model.Predict it is pinned bitwise against.
//   - estimate-fit: the Section III-D alternation on the smallest device,
//     worker-pool path vs the sequential oracle (the historical speedup
//     experiment, kept so `make speedup` numbers stay reproducible here).
func RunSpeedup(ctx context.Context, seed uint64) (*SpeedupResult, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &SpeedupResult{Device: deviceName, Seed: seed}

	// Utilization for a real workload, profiled once at the reference.
	wl, err := suites.ByShort("LBM")
	if err != nil {
		return nil, err
	}
	prof, err := r.Profiler.ProfileApp(ctx, wl.App, m.Ref)
	if err != nil {
		return nil, err
	}
	u, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
	if err != nil {
		return nil, err
	}

	// Row 1: full-ladder DVFS decision, cold vs warm surface.
	g, err := governor.New(r.Profiler, m, governor.MinEnergy)
	if err != nil {
		return nil, err
	}
	row, err := speedupRow(ctx, "dvfs-search", "cold surface", "warm surface", 50, 5000,
		func() error {
			m.InvalidateSurfaces() // force a full ladder recompute per call
			_, err := g.DecideContext(ctx, u)
			return err
		},
		func() error {
			_, err := g.DecideContext(ctx, u)
			return err
		})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	// Row 2: single-point prediction, direct model walk vs cached surface.
	cfg := r.Device.AllConfigs()[0]
	row, err = speedupRow(ctx, "cached-predict", "Model.Predict", "surface cache", 20000, 20000,
		func() error {
			_, err := m.Predict(u, cfg)
			return err
		},
		func() error {
			_, err := core.Surfaces.Predict(ctx, m, r.Device, m.Ref, u, cfg)
			return err
		})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	// Row 3: the historical serial-vs-parallel fit, on the smallest device
	// so the experiment stays cheap enough for the CI smoke job.
	kr, err := SharedRig("Tesla K40c", seed)
	if err != nil {
		return nil, err
	}
	d, err := kr.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	row, err = speedupRow(ctx, "estimate-fit", "sequential", "worker pool", 3, 3,
		func() error {
			prev := parallel.SetSequential(true)
			defer parallel.SetSequential(prev)
			_, err := core.Estimate(ctx, d, nil)
			return err
		},
		func() error {
			_, err := core.Estimate(ctx, d, nil)
			return err
		})
	if err != nil {
		return nil, err
	}
	row.Name = "estimate-fit (Tesla K40c)"
	out.Rows = append(out.Rows, row)
	return out, nil
}

func (r *SpeedupResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hot-path speedups (%s, seed %d)\n", r.Device, r.Seed)
	fmt.Fprintf(&sb, "  %-26s %-14s %12s %-14s %12s %8s\n",
		"path", "baseline", "ns/op", "optimized", "ns/op", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-26s %-14s %12.0f %-14s %12.0f %7.1fx\n",
			row.Name, row.BaseLabel, row.BaseNsOp, row.OptLabel, row.OptNsOp, row.Factor)
	}
	return sb.String()
}
