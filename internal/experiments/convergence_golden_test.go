package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestConvergenceResultJSONDeterministic locks the satellite invariant
// behind golden-file comparisons: serializing a convergence result must be
// byte-for-byte reproducible across runs, which means the wall-clock FitTime
// must not leak into the JSON (the iteration trace itself is deterministic).
func TestConvergenceResultJSONDeterministic(t *testing.T) {
	ctx := context.Background()
	const device = "Tesla K40c"
	a, err := RunConvergenceDevice(ctx, device, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConvergenceDevice(ctx, device, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.FitTime == 0 && b.FitTime == 0 {
		t.Log("both fits reported zero wall time; timer resolution too coarse to distinguish")
	}

	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("two identical-seed convergence runs serialized differently:\n%s\n%s", aj, bj)
	}
	if bytes.Contains(aj, []byte("FitTime")) {
		t.Errorf("FitTime leaked into serialized output: %s", aj)
	}
	// The deterministic fields must still round-trip.
	var back ConvergenceResult
	if err := json.Unmarshal(aj, &back); err != nil {
		t.Fatal(err)
	}
	if back.Device != a.Device || back.Iterations != a.Iterations ||
		back.Converged != a.Converged || len(back.Steps) != len(a.Steps) {
		t.Errorf("round-trip mismatch: got %+v want %+v", back, *a)
	}
}
