package experiments

import (
	"fmt"
	"strings"

	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/suites"
)

// RenderTable1 reproduces the paper's Table I: the performance events
// required to compute the model metrics, per device.
func RenderTable1() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table I — performance events per device\n")
	for _, dev := range hw.AllDevices() {
		s, err := cupti.FormatTable(dev)
		if err != nil {
			return "", err
		}
		sb.WriteString(s)
	}
	return sb.String(), nil
}

// RenderTable2 reproduces the paper's Table II: the device descriptions.
func RenderTable2() string {
	var sb strings.Builder
	sb.WriteString("Table II — summarized description of the used GPUs\n")
	fmt.Fprintf(&sb, "  %-22s %-10s %-12s %-10s\n", "", "Titan Xp", "GTX Titan X", "Tesla K40c")
	devs := hw.AllDevices()
	row := func(label string, f func(d *hw.Device) string) {
		fmt.Fprintf(&sb, "  %-22s %-10s %-12s %-10s\n", label, f(devs[0]), f(devs[1]), f(devs[2]))
	}
	row("Base architecture", func(d *hw.Device) string { return string(d.Arch) })
	row("Compute capability", func(d *hw.Device) string { return d.ComputeCapability })
	row("Memory freqs (MHz)", func(d *hw.Device) string {
		parts := make([]string, len(d.MemFreqs))
		for i := range d.MemFreqs {
			parts[len(d.MemFreqs)-1-i] = fmt.Sprintf("%.0f", d.MemFreqs[i])
		}
		return strings.Join(parts, ",")
	})
	row("Core freq range (MHz)", func(d *hw.Device) string {
		return fmt.Sprintf("[%.0f:%.0f]", d.CoreFreqs[len(d.CoreFreqs)-1], d.CoreFreqs[0])
	})
	row("Core freq levels", func(d *hw.Device) string { return fmt.Sprintf("%d", len(d.CoreFreqs)) })
	row("Default mem freq", func(d *hw.Device) string { return fmt.Sprintf("%.0f", d.DefaultMem) })
	row("Default core freq", func(d *hw.Device) string { return fmt.Sprintf("%.0f", d.DefaultCore) })
	row("Threads per warp", func(d *hw.Device) string { return fmt.Sprintf("%d", d.WarpSize) })
	row("Number of SMs", func(d *hw.Device) string { return fmt.Sprintf("%d", d.NumSMs) })
	row("Memory bus width", func(d *hw.Device) string { return fmt.Sprintf("%dB", d.MemBusBytes) })
	row("Shared mem banks", func(d *hw.Device) string { return fmt.Sprintf("%d", d.SharedBanks) })
	row("SP/INT units/SM", func(d *hw.Device) string { return fmt.Sprintf("%d", d.UnitsPerSM[hw.SP]) })
	row("DP units/SM", func(d *hw.Device) string { return fmt.Sprintf("%d", d.UnitsPerSM[hw.DP]) })
	row("SF units/SM", func(d *hw.Device) string { return fmt.Sprintf("%d", d.UnitsPerSM[hw.SF]) })
	row("TDP (W)", func(d *hw.Device) string { return fmt.Sprintf("%.0f", d.TDP) })
	return sb.String()
}

// RenderTable3 reproduces the paper's Table III: the validation benchmarks
// grouped by suite.
func RenderTable3() string {
	var sb strings.Builder
	sb.WriteString("Table III — standard benchmarks used to validate the power model\n")
	groups := map[suites.SuiteName][]string{}
	order := []suites.SuiteName{suites.Rodinia, suites.Parboil, suites.Poly, suites.CUDASDK}
	apps := append(suites.ValidationSet(), suites.CUBLASApp())
	for _, a := range apps {
		groups[a.Suite] = append(groups[a.Suite], a.Full)
	}
	for _, g := range order {
		fmt.Fprintf(&sb, "  %-10s %s\n", g, strings.Join(groups[g], ", "))
	}
	fmt.Fprintf(&sb, "  total applications: %d\n", len(apps))
	return sb.String()
}
