package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"gpupower/internal/fleet"
)

// fleetSize is the fleet the throughput experiment fits: nine members, three
// silicon instances of each catalog architecture. Nine (not eight) keeps the
// fleet a whole number of round-robin passes while still clearing the ≥8
// concurrent-fits bar the experiment certifies.
const fleetSize = 9

// FleetFitResult is the fleet-scale fitting throughput measurement: a
// heterogeneous registry of devices fitted concurrently, with per-worker
// workspace reuse, reported as models fitted per minute.
type FleetFitResult struct {
	Seed    uint64
	Members []string // member labels, spec order
	Workers int      // pool width the fits ran under
	WallNs  float64  // wall-clock of the fitting phase only
	// ModelsPerMinute is the headline throughput: len(Members) normalized
	// by the fitting-phase wall clock.
	ModelsPerMinute float64
	Converged       int // members whose alternation converged
}

// RunFleetFit measures fleet-fitting throughput on a fleetSize-member
// registry drawn round-robin from the device catalog. Dataset measurement is
// excluded from the timed phase (in production the samples come from the
// devices themselves); only the concurrent fitting is on the clock. The
// scheduler width is pinned to the fleet size for the duration so all
// members' fits are genuinely in flight at once even on narrow CI hosts —
// the same device-level models are produced at any width (fleet fits are
// bitwise-identical to sequential Estimate calls; internal/fleet pins this).
func RunFleetFit(ctx context.Context, seed uint64) (*FleetFitResult, error) {
	specs := fleet.Registry(fleetSize, seed)

	prev := runtime.GOMAXPROCS(0)
	if prev < fleetSize {
		runtime.GOMAXPROCS(fleetSize)
		defer runtime.GOMAXPROCS(prev)
	}

	res, err := fleet.FitAll(ctx, specs, nil)
	if err != nil {
		return nil, err
	}

	out := &FleetFitResult{
		Seed:            seed,
		Members:         make([]string, len(res.Fits)),
		Workers:         res.Workers,
		WallNs:          float64(res.Wall.Nanoseconds()),
		ModelsPerMinute: res.ModelsPerMinute,
	}
	for i, f := range res.Fits {
		out.Members[i] = f.Spec.String()
		if f.Model.Converged {
			out.Converged++
		}
	}
	return out, nil
}

func (r *FleetFitResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet fit throughput (%d members, seed %d)\n", len(r.Members), r.Seed)
	fmt.Fprintf(&sb, "  members:    %s\n", strings.Join(r.Members, ", "))
	fmt.Fprintf(&sb, "  workers:    %d\n", r.Workers)
	fmt.Fprintf(&sb, "  fit wall:   %.1f ms\n", r.WallNs/1e6)
	fmt.Fprintf(&sb, "  throughput: %.1f models/min (%d/%d converged)\n",
		r.ModelsPerMinute, r.Converged, len(r.Members))
	return sb.String()
}
