package experiments

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// parseCSV reads back an emitted CSV and checks rectangularity.
func parseCSV(t *testing.T, data []byte) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV has no data rows")
	}
	for i, r := range rows {
		if len(r) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(r), len(rows[0]))
		}
	}
	return rows
}

func TestFig7CSV(t *testing.T) {
	r, err := RunFig7(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	wantPoints := 0
	for _, d := range r.Devices {
		wantPoints += len(d.Points)
	}
	if len(rows)-1 != wantPoints {
		t.Fatalf("CSV rows = %d, want %d", len(rows)-1, wantPoints)
	}
	// Values must be numeric.
	for _, row := range rows[1:] {
		for _, col := range []int{2, 3, 4, 5} {
			if _, err := strconv.ParseFloat(row[col], 64); err != nil {
				t.Fatalf("non-numeric field %q", row[col])
			}
		}
	}
}

func TestFig6CSV(t *testing.T) {
	r, err := RunFig6(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows)-1 != 16+22 { // Titan X + Titan Xp ladders
		t.Fatalf("CSV rows = %d, want 38", len(rows)-1)
	}
}

func TestFig9CSV(t *testing.T) {
	r, err := RunFig9(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, buf.Bytes())
	if len(rows)-1 != 3*16 {
		t.Fatalf("CSV rows = %d, want 48", len(rows)-1)
	}
}

func TestExportAllCSVs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	paths, err := ExportAllCSVs(context.Background(), dir, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 {
		t.Fatalf("exported %d files, want 10", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		parseCSV(t, data)
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 16 {
		t.Fatalf("registry has %d experiments, want >= 16", len(names))
	}
	// Paper order first.
	if names[0] != "table1" || names[3] != "fig2" {
		t.Fatalf("unexpected ordering: %v", names[:4])
	}
	all := AllNames()
	for _, n := range all {
		if n == "robustness" || n == "sources" {
			t.Fatalf("AllNames must exclude %q", n)
		}
	}
	var buf bytes.Buffer
	if err := RunByName(context.Background(), "table2", &buf, DefaultSeed, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("Maxwell")) {
		t.Fatal("table2 output missing content")
	}
	if err := RunByName(context.Background(), "nope", &buf, DefaultSeed, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunByNameWithPlot(t *testing.T) {
	var buf bytes.Buffer
	if err := RunByName(context.Background(), "fig6", &buf, DefaultSeed, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("legend:")) {
		t.Fatalf("plot missing from output:\n%s", out[:200])
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(context.Background(), &buf, DefaultSeed); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# gpupower evaluation report",
		"## Validation accuracy (paper Fig. 7)",
		"Titan Xp", "GTX Titan X", "Tesla K40c",
		"## Baseline comparison",
		"## Ablations",
		"## Real-time governor",
		"## Estimator convergence",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestPlots(t *testing.T) {
	fig2, err := RunFig2(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := fig2.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "fmem=3505") || !strings.Contains(s, "fmem=810") {
		t.Error("fig2 plot missing series legend")
	}
	fig7, err := RunFig7(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	s, err = fig7.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "MAE") || !strings.Contains(s, "ideal") {
		t.Error("fig7 plot missing annotations")
	}
	fig9, err := RunFig9(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	s, err = fig9.Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "4096x4096") {
		t.Error("fig9 plot missing size legend")
	}
}
