package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"gpupower/internal/microbench"
)

// Plotter is implemented by results that can render an ASCII chart.
type Plotter interface {
	Plot() (string, error)
}

// Runner executes one named experiment and writes its textual result.
// When plot is true and the result supports charts, the chart follows the
// text. Cancellation of ctx aborts the experiment at its next measurement
// or fitting checkpoint with an error wrapping ctx.Err().
type Runner func(ctx context.Context, w io.Writer, seed uint64, plot bool) error

// registry maps experiment names to runners; the CLI and tests share it.
var registry = map[string]Runner{
	"table1": func(_ context.Context, w io.Writer, _ uint64, _ bool) error {
		s, err := RenderTable1()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	},
	"table2": func(_ context.Context, w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, RenderTable2())
		return err
	},
	"table3": func(_ context.Context, w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, RenderTable3())
		return err
	},
	"sources": func(_ context.Context, w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, microbench.RenderSources())
		return err
	},
	"fig2": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig2(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig5": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig5(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig6": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig6(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig7": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig7(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig8": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig8(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig9": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig9(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig10": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig10(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"convergence": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunConvergence(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"baselines": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunBaselines(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"ablation": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunAblation(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"governor": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunGovernorStudy(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"breakdown": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		for _, dev := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
			r, err := RunBreakdownTruth(ctx, dev, seed)
			if err != nil {
				return err
			}
			if err := emit(w, r, plot); err != nil {
				return err
			}
		}
		return nil
	},
	"timemodel": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunTimeModel(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"speedup": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunSpeedup(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fleet": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunFleetFit(ctx, seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"serve": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunServeLoad(ctx, seed, 2*time.Second, 4)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"cluster": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunCluster(ctx, seed, 500, 20)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"robustness": func(ctx context.Context, w io.Writer, seed uint64, plot bool) error {
		r, err := RunRobustness(ctx, []uint64{seed, seed + 1, seed + 2, seed + 3, seed + 4})
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
}

// emit writes a result's text and, when requested and supported, its chart.
func emit(w io.Writer, r fmt.Stringer, plot bool) error {
	if _, err := io.WriteString(w, r.String()); err != nil {
		return err
	}
	if plot {
		if p, ok := r.(Plotter); ok {
			s, err := p.Plot()
			if err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Names lists all registered experiments, sorted, in the order the CLI's
// "all" mode uses (paper order first, extensions after).
func Names() []string {
	paper := []string{
		"table1", "table2", "table3",
		"fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"convergence", "baselines", "ablation",
	}
	extra := []string{}
	seen := map[string]bool{}
	for _, n := range paper {
		seen[n] = true
	}
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(paper, extra...)
}

// AllNames is the set run by "-exp all" (excludes the expensive seed sweep,
// the verbose source listing, and the wall-clock-dependent speedup,
// fleet-throughput, serving and cluster-simulation timings).
func AllNames() []string {
	var out []string
	for _, n := range Names() {
		if n == "robustness" || n == "sources" || n == "speedup" || n == "fleet" || n == "serve" || n == "cluster" {
			continue
		}
		out = append(out, n)
	}
	return out
}

// RunByName executes one named experiment, writing its result to w.
func RunByName(ctx context.Context, name string, w io.Writer, seed uint64, plot bool) error {
	runner, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return runner(ctx, w, seed, plot)
}
