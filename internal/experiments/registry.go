package experiments

import (
	"fmt"
	"io"
	"sort"

	"gpupower/internal/microbench"
)

// Plotter is implemented by results that can render an ASCII chart.
type Plotter interface {
	Plot() (string, error)
}

// Runner executes one named experiment and writes its textual result.
// When plot is true and the result supports charts, the chart follows the
// text.
type Runner func(w io.Writer, seed uint64, plot bool) error

// registry maps experiment names to runners; the CLI and tests share it.
var registry = map[string]Runner{
	"table1": func(w io.Writer, _ uint64, _ bool) error {
		s, err := RenderTable1()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	},
	"table2": func(w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, RenderTable2())
		return err
	},
	"table3": func(w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, RenderTable3())
		return err
	},
	"sources": func(w io.Writer, _ uint64, _ bool) error {
		_, err := io.WriteString(w, microbench.RenderSources())
		return err
	},
	"fig2": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig2(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig5": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig5(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig6": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig6(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig7": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig7(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig8": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig8(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig9": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig9(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"fig10": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunFig10(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"convergence": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunConvergence(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"baselines": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunBaselines(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"ablation": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunAblation(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"governor": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunGovernorStudy(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"breakdown": func(w io.Writer, seed uint64, plot bool) error {
		for _, dev := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
			r, err := RunBreakdownTruth(dev, seed)
			if err != nil {
				return err
			}
			if err := emit(w, r, plot); err != nil {
				return err
			}
		}
		return nil
	},
	"timemodel": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunTimeModel(seed)
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
	"robustness": func(w io.Writer, seed uint64, plot bool) error {
		r, err := RunRobustness([]uint64{seed, seed + 1, seed + 2, seed + 3, seed + 4})
		if err != nil {
			return err
		}
		return emit(w, r, plot)
	},
}

// emit writes a result's text and, when requested and supported, its chart.
func emit(w io.Writer, r fmt.Stringer, plot bool) error {
	if _, err := io.WriteString(w, r.String()); err != nil {
		return err
	}
	if plot {
		if p, ok := r.(Plotter); ok {
			s, err := p.Plot()
			if err != nil {
				return err
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Names lists all registered experiments, sorted, in the order the CLI's
// "all" mode uses (paper order first, extensions after).
func Names() []string {
	paper := []string{
		"table1", "table2", "table3",
		"fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"convergence", "baselines", "ablation",
	}
	extra := []string{}
	seen := map[string]bool{}
	for _, n := range paper {
		seen[n] = true
	}
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	return append(paper, extra...)
}

// AllNames is the set run by "-exp all" (excludes the expensive seed sweep
// and the verbose source listing).
func AllNames() []string {
	var out []string
	for _, n := range Names() {
		if n == "robustness" || n == "sources" {
			continue
		}
		out = append(out, n)
	}
	return out
}

// RunByName executes one named experiment, writing its result to w.
func RunByName(name string, w io.Writer, seed uint64, plot bool) error {
	runner, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return runner(w, seed, plot)
}
