package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
	"gpupower/internal/suites"
)

// Fig10Entry is one application at one configuration: measured power and
// the model's decomposition.
type Fig10Entry struct {
	App       string
	Util      core.Utilization
	Measured  float64
	Breakdown *core.Breakdown
}

// Fig10Panel is one V-F configuration's panel.
type Fig10Panel struct {
	Config  hw.Config
	Entries []Fig10Entry
	MAE     float64
	// MeanConstantW is the average constant (non-utilization) power share,
	// ≈80 W at the reference configuration and ≈50 W at the low-memory one
	// in the paper.
	MeanConstantW float64
}

// Fig10Result reproduces paper Fig. 10: utilization and power breakdown of
// the validation set at two V-F configurations on the GTX Titan X.
type Fig10Result struct {
	Device string
	Panels []Fig10Panel
}

// RunFig10 reproduces Fig. 10.
func RunFig10(ctx context.Context, seed uint64) (*Fig10Result, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &Fig10Result{Device: deviceName}

	apps := append(suites.ValidationSet(), suites.CUBLASApp())
	configs := []hw.Config{
		{CoreMHz: 975, MemMHz: 3505},
		{CoreMHz: 975, MemMHz: 810},
	}
	for _, cfg := range configs {
		panel := Fig10Panel{Config: cfg}
		var pred, meas []float64
		var constSum float64
		for _, app := range apps {
			prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
			if err != nil {
				return nil, err
			}
			util, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
			if err != nil {
				return nil, err
			}
			bd, err := m.Decompose(util, cfg)
			if err != nil {
				return nil, err
			}
			p, err := r.Profiler.MeasureAppPower(ctx, app.App, cfg)
			if err != nil {
				return nil, err
			}
			panel.Entries = append(panel.Entries, Fig10Entry{
				App: app.Short, Util: util, Measured: p, Breakdown: bd,
			})
			pred = append(pred, bd.Total())
			meas = append(meas, p)
			constSum += bd.Constant
		}
		panel.MAE, err = stats.MAPE(pred, meas)
		if err != nil {
			return nil, err
		}
		panel.MeanConstantW = constSum / float64(len(apps))
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// String renders the Fig. 10 panels.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10 — power breakdown of the validation set (%s)\n", r.Device)
	for _, p := range r.Panels {
		fmt.Fprintf(&sb, "  %v: MAE = %.1f%%, constant share ≈ %.0f W\n", p.Config, p.MAE, p.MeanConstantW)
		for _, e := range p.Entries {
			fmt.Fprintf(&sb, "    %-8s meas=%6.1fW pred=%6.1fW const=%5.1fW", e.App, e.Measured, e.Breakdown.Total(), e.Breakdown.Constant)
			for _, c := range hw.Components {
				if v := e.Breakdown.Component[c]; v >= 1 {
					fmt.Fprintf(&sb, " %s=%.0fW", c, v)
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
