package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/stats"
)

// Fig5Entry is one microbenchmark's row: utilizations, measured power and
// the model's per-component power breakdown at the default configuration.
type Fig5Entry struct {
	Name       string
	Collection microbench.Collection
	Util       core.Utilization
	Measured   float64
	Breakdown  *core.Breakdown
}

// Fig5Result reproduces paper Fig. 5: per-component utilization rates and
// power breakdown of the 83-microbenchmark suite on the GTX Titan X at the
// default configuration.
type Fig5Result struct {
	Device  string
	Entries []Fig5Entry
	// ConstantShareW is the model's configuration-constant power at the
	// default configuration (the paper reports ≈84 W).
	ConstantShareW float64
	// MaxDynamicSharePct is the largest dynamic share of total power across
	// the suite (the paper reports ≈49 %, on a Mix microbenchmark).
	MaxDynamicSharePct float64
	MaxDynamicShareOn  string
	// MAE is the model-vs-measured error over the suite at this config.
	MAE float64
}

// RunFig5 reproduces Fig. 5 on the GTX Titan X.
func RunFig5(ctx context.Context, seed uint64) (*Fig5Result, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	ref := r.Device.DefaultConfig()
	out := &Fig5Result{Device: deviceName}

	var preds, meas []float64
	for _, b := range microbench.Suite() {
		prof, err := r.Profiler.ProfileApp(ctx, kernels.SingleKernelApp(b.Kernel), ref)
		if err != nil {
			return nil, err
		}
		util, err := core.UtilizationFromMetrics(r.Device, ref, prof.Kernels[0].Metrics, m.L2BytesPerCycle)
		if err != nil {
			return nil, err
		}
		bd, err := m.Decompose(util, ref)
		if err != nil {
			return nil, err
		}
		p, _, err := r.Profiler.MeasureKernelPower(ctx, b.Kernel, ref)
		if err != nil {
			return nil, err
		}
		out.Entries = append(out.Entries, Fig5Entry{
			Name:       b.Kernel.Name,
			Collection: b.Collection,
			Util:       util,
			Measured:   p,
			Breakdown:  bd,
		})
		preds = append(preds, bd.Total())
		meas = append(meas, p)

		if dyn := bd.Total() - bd.Constant; bd.Total() > 0 {
			if share := 100 * dyn / bd.Total(); share > out.MaxDynamicSharePct {
				out.MaxDynamicSharePct = share
				out.MaxDynamicShareOn = b.Kernel.Name
			}
		}
		out.ConstantShareW = bd.Constant
	}
	out.MAE, err = stats.MAPE(preds, meas)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the Fig. 5 summary and per-collection gradients.
func (r *Fig5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — microbenchmark suite on %s at the default configuration\n", r.Device)
	fmt.Fprintf(&sb, "  suite size: %d  constant power share: %.0f W  max dynamic share: %.0f%% (%s)  MAE: %.1f%%\n",
		len(r.Entries), r.ConstantShareW, r.MaxDynamicSharePct, r.MaxDynamicShareOn, r.MAE)
	for _, coll := range microbench.Collections {
		var names []string
		for _, e := range r.Entries {
			if e.Collection == coll {
				names = append(names, e.Name)
			}
		}
		if len(names) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-7s (x%d):\n", coll, len(names))
		for _, e := range r.Entries {
			if e.Collection != coll {
				continue
			}
			fmt.Fprintf(&sb, "    %-14s meas=%6.1fW pred=%6.1fW  U:", e.Name, e.Measured, e.Breakdown.Total())
			for _, c := range hw.Components {
				if u := e.Util[c]; u >= 0.05 {
					fmt.Fprintf(&sb, " %s=%.2f", c, u)
				}
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
