package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/scaling"
	"gpupower/internal/suites"
)

// TimeModelResult validates the execution-time half of energy-aware DVFS
// (the paper's reference [9]): the learned scaling classifier and the
// analytic roofline, both driven by reference-configuration utilizations,
// against the simulator's true execution times on the validation set.
type TimeModelResult struct {
	Device string
	// Classes is the number of scaling classes the classifier learned.
	Classes int
	// LearnedMAPE/AnalyticMAPE are percentage errors of T(cfg)/T(ref) over
	// all validation apps × configurations.
	LearnedMAPE  float64
	AnalyticMAPE float64
	Points       int
}

// RunTimeModel trains the [9]-style classifier on the microbenchmarks and
// evaluates both time predictors on the validation set (GTX Titan X).
func RunTimeModel(ctx context.Context, seed uint64) (*TimeModelResult, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	cls, err := scaling.Train(ctx, r.Profiler, microbench.Suite(), 6, seed)
	if err != nil {
		return nil, err
	}
	dev := r.Device
	ref := dev.DefaultConfig()
	l2bpc, err := core.CalibrateL2BytesPerCycle(ctx, r.Profiler, ref)
	if err != nil {
		return nil, err
	}

	runSeconds := func(k *kernels.KernelSpec, cfg hw.Config) (float64, error) {
		if err := r.Sim.SetClocks(cfg.MemMHz, cfg.CoreMHz); err != nil {
			return 0, err
		}
		run, err := r.Sim.Execute(k)
		if err != nil {
			return 0, err
		}
		return run.Exec.Seconds(), nil
	}

	res := &TimeModelResult{Device: deviceName, Classes: cls.K()}
	var learnedErr, analyticErr float64
	for _, app := range suites.ValidationSet() {
		k := app.App.Kernels[0]
		refT, err := runSeconds(k, ref)
		if err != nil {
			return nil, err
		}
		prof, err := r.Profiler.ProfileApp(ctx, kernels.SingleKernelApp(k), ref)
		if err != nil {
			return nil, err
		}
		u, err := core.AppUtilization(dev, prof, l2bpc)
		if err != nil {
			return nil, err
		}
		for _, cfg := range dev.AllConfigs() {
			trueT, err := runSeconds(k, cfg)
			if err != nil {
				return nil, err
			}
			want := trueT / refT
			learned, err := cls.PredictTimeRatio(u, cfg)
			if err != nil {
				return nil, err
			}
			analytic := scaling.AnalyticTimeRatio(u, ref, cfg)
			learnedErr += math.Abs(learned-want) / want
			analyticErr += math.Abs(analytic-want) / want
			res.Points++
		}
	}
	res.LearnedMAPE = 100 * learnedErr / float64(res.Points)
	res.AnalyticMAPE = 100 * analyticErr / float64(res.Points)
	return res, nil
}

// String renders the time-model validation.
func (r *TimeModelResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Time-scaling validation (%s, companion to the power model — paper ref. [9])\n", r.Device)
	fmt.Fprintf(&sb, "  %d scaling classes, %d (app, config) points\n", r.Classes, r.Points)
	fmt.Fprintf(&sb, "  learned classifier MAPE:  %5.1f%%\n", r.LearnedMAPE)
	fmt.Fprintf(&sb, "  analytic roofline MAPE:   %5.1f%%\n", r.AnalyticMAPE)
	sb.WriteString("  (the analytic model wins in-simulator because the substrate's timing IS a\n")
	sb.WriteString("   roofline; on real silicon the learned classifier is the robust choice)\n")
	return sb.String()
}
