package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/baselines"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
	"gpupower/internal/suites"
)

// predictFn is any model evaluated by the shared validation loop.
type predictFn func(in baselines.Input, cfg hw.Config) (float64, error)

// evaluateOnValidation computes the MAPE of a predictor over the full
// validation set × configuration space of a rig.
func evaluateOnValidation(ctx context.Context, r *Rig, ref hw.Config, l2bpc float64, f predictFn) (float64, error) {
	var pred, meas []float64
	for _, app := range suites.ValidationSet() {
		prof, err := r.Profiler.ProfileApp(ctx, app.App, ref)
		if err != nil {
			return 0, err
		}
		util, err := core.AppUtilization(r.Device, prof, l2bpc)
		if err != nil {
			return 0, err
		}
		refPower, err := r.Profiler.MeasureAppPower(ctx, app.App, ref)
		if err != nil {
			return 0, err
		}
		in := baselines.Input{Util: util, RefPower: refPower}
		for _, cfg := range r.Device.AllConfigs() {
			p, err := f(in, cfg)
			if err != nil {
				return 0, err
			}
			q, err := r.Profiler.MeasureAppPower(ctx, app.App, cfg)
			if err != nil {
				return 0, err
			}
			pred = append(pred, p)
			meas = append(meas, q)
		}
	}
	return stats.MAPE(pred, meas)
}

// BaselineRow is one model's MAE on one device.
type BaselineRow struct {
	Model string
	MAE   float64
}

// BaselineDeviceResult compares the proposed model against the baselines on
// one device.
type BaselineDeviceResult struct {
	Device string
	Rows   []BaselineRow
}

// BaselineResult aggregates all devices.
type BaselineResult struct {
	Devices []BaselineDeviceResult
}

// RunBaselinesDevice fits and evaluates every comparator on one device.
func RunBaselinesDevice(ctx context.Context, deviceName string, seed uint64) (*BaselineDeviceResult, error) {
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	d, err := r.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	proposed, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}

	res := &BaselineDeviceResult{Device: deviceName}
	add := func(name string, f predictFn) error {
		mae, err := evaluateOnValidation(ctx, r, d.Ref, d.L2BytesPerCycle, f)
		if err != nil {
			return fmt.Errorf("baselines: %s on %s: %w", name, deviceName, err)
		}
		res.Rows = append(res.Rows, BaselineRow{Model: name, MAE: mae})
		return nil
	}

	if err := add("Proposed (DVFS-aware, voltage-estimating)", func(in baselines.Input, cfg hw.Config) (float64, error) {
		return proposed.Predict(in.Util, cfg)
	}); err != nil {
		return nil, err
	}

	abe, err := baselines.FitAbe(d)
	if err != nil {
		return nil, err
	}
	if err := add(abe.Name(), abe.Predict); err != nil {
		return nil, err
	}

	lf, err := baselines.FitLinearFreq(ctx, d)
	if err != nil {
		return nil, err
	}
	if err := add(lf.Name(), lf.Predict); err != nil {
		return nil, err
	}

	fx, err := baselines.FitFixedConfig(d)
	if err != nil {
		return nil, err
	}
	if err := add(fx.Name(), fx.Predict); err != nil {
		return nil, err
	}

	wu, err := baselines.FitWu(d, 5, seed)
	if err != nil {
		return nil, err
	}
	if err := add(wu.Name(), wu.Predict); err != nil {
		return nil, err
	}
	return res, nil
}

// RunBaselines runs the baseline comparison on all three devices.
func RunBaselines(ctx context.Context, seed uint64) (*BaselineResult, error) {
	out := &BaselineResult{}
	for _, name := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
		r, err := RunBaselinesDevice(ctx, name, seed)
		if err != nil {
			return nil, err
		}
		out.Devices = append(out.Devices, *r)
	}
	return out, nil
}

// String renders the comparison table.
func (r *BaselineResult) String() string {
	var sb strings.Builder
	sb.WriteString("Baseline comparison — validation-set MAE over all V-F configurations\n")
	sb.WriteString("(paper context: Abe et al. report 15/14/23.5% on Tesla/Fermi/Kepler;\n")
	sb.WriteString(" the proposed model reports 7/6/12% on Pascal/Maxwell/Kepler)\n")
	for _, d := range r.Devices {
		fmt.Fprintf(&sb, "  %s:\n", d.Device)
		for _, row := range d.Rows {
			fmt.Fprintf(&sb, "    %-48s %6.1f%%\n", row.Model, row.MAE)
		}
	}
	return sb.String()
}
