package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
	"gpupower/internal/suites"
)

// Fig8BenchError is one benchmark's signed mean error over all core
// frequencies at one memory frequency.
type Fig8BenchError struct {
	App          string
	MeanErrorPct float64
}

// Fig8MemPanel is one panel of paper Fig. 8: per-benchmark mean error over
// the 16 core frequencies at a fixed memory frequency, plus the panel MAE.
type Fig8MemPanel struct {
	MemMHz float64
	Errors []Fig8BenchError
	MAE    float64 // percent
}

// Fig8Result reproduces paper Fig. 8 on the GTX Titan X: one panel per
// memory frequency, plus the overall MAE across all V-F configurations.
type Fig8Result struct {
	Device     string
	Panels     []Fig8MemPanel
	OverallMAE float64
}

// RunFig8 reproduces Fig. 8.
func RunFig8(ctx context.Context, seed uint64) (*Fig8Result, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{Device: deviceName}

	apps := suites.ValidationSet()
	type appData struct {
		util core.Utilization
	}
	data := make(map[string]appData, len(apps))
	for _, app := range apps {
		prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
		if err != nil {
			return nil, err
		}
		util, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
		if err != nil {
			return nil, err
		}
		data[app.Short] = appData{util: util}
	}

	var allPred, allMeas []float64
	// Panels in the paper's order: descending memory frequency.
	for mi := len(r.Device.MemFreqs) - 1; mi >= 0; mi-- {
		fm := r.Device.MemFreqs[mi]
		panel := Fig8MemPanel{MemMHz: fm}
		var panelPred, panelMeas []float64
		for _, app := range apps {
			var pred, meas []float64
			for _, fc := range r.Device.CoreFreqs {
				cfg := hw.Config{CoreMHz: fc, MemMHz: fm}
				p, err := m.Predict(data[app.Short].util, cfg)
				if err != nil {
					return nil, err
				}
				q, err := r.Profiler.MeasureAppPower(ctx, app.App, cfg)
				if err != nil {
					return nil, err
				}
				pred = append(pred, p)
				meas = append(meas, q)
			}
			me, err := stats.MeanPercentError(pred, meas)
			if err != nil {
				return nil, err
			}
			panel.Errors = append(panel.Errors, Fig8BenchError{App: app.Short, MeanErrorPct: me})
			panelPred = append(panelPred, pred...)
			panelMeas = append(panelMeas, meas...)
		}
		panel.MAE, err = stats.MAPE(panelPred, panelMeas)
		if err != nil {
			return nil, err
		}
		allPred = append(allPred, panelPred...)
		allMeas = append(allMeas, panelMeas...)
		out.Panels = append(out.Panels, panel)
	}
	out.OverallMAE, err = stats.MAPE(allPred, allMeas)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the Fig. 8 panels as text.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8 — prediction error per memory frequency (%s); overall MAE %.1f%%\n",
		r.Device, r.OverallMAE)
	for _, p := range r.Panels {
		fmt.Fprintf(&sb, "  fmem = %4.0f MHz  MAE = %.1f%%\n", p.MemMHz, p.MAE)
		for _, e := range p.Errors {
			fmt.Fprintf(&sb, "    %-8s %+6.1f%%\n", e.App, e.MeanErrorPct)
		}
	}
	return sb.String()
}
