package experiments

import (
	"context"
	"strings"
	"testing"

	"gpupower/internal/hw"
)

// The experiment tests assert the paper's qualitative claims (the "shape"
// of every figure) on the simulated devices at the default seed. All rigs
// are shared through SharedRig, so the three models are fitted once per
// test binary.

func TestFig2Shape(t *testing.T) {
	r, err := RunFig2(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 2 {
		t.Fatalf("want 2 application panels, got %d", len(r.Apps))
	}
	blck, cutcp := r.Apps[0], r.Apps[1]
	if blck.App != "BLCKSC" || cutcp.App != "CUTCP" {
		t.Fatalf("unexpected panel order: %s, %s", blck.App, cutcp.App)
	}

	// Paper: 181 W vs 135 W at the default configuration.
	if blck.DefaultPower < 160 || blck.DefaultPower > 200 {
		t.Errorf("BlackScholes default power %.0f W, want ~181", blck.DefaultPower)
	}
	if cutcp.DefaultPower < 120 || cutcp.DefaultPower > 155 {
		t.Errorf("CUTCP default power %.0f W, want ~135", cutcp.DefaultPower)
	}

	// Paper: the memory-bound app drops 52%, the compute-bound one 24%.
	if blck.MemDropPercent < cutcp.MemDropPercent+10 {
		t.Errorf("memory-frequency sensitivity not contrasted: %.0f%% vs %.0f%%",
			blck.MemDropPercent, cutcp.MemDropPercent)
	}
	if blck.MemDropPercent < 35 || blck.MemDropPercent > 60 {
		t.Errorf("BlackScholes drop %.0f%%, want ~52%%", blck.MemDropPercent)
	}
	if cutcp.MemDropPercent < 12 || cutcp.MemDropPercent > 35 {
		t.Errorf("CUTCP drop %.0f%%, want ~24%%", cutcp.MemDropPercent)
	}

	for _, app := range r.Apps {
		for _, curve := range app.Curves {
			// Power rises with the core frequency (non-linearly, but
			// monotonically on these devices).
			for i := 1; i < len(curve.PowerW); i++ {
				if curve.PowerW[i] < curve.PowerW[i-1]-1.5 {
					t.Errorf("%s at fmem=%.0f: power drops along the core ladder", app.App, curve.MemMHz)
				}
			}
		}
		// The high-memory curve dominates the low-memory one.
		hi, lo := app.Curves[0], app.Curves[1]
		for i := range hi.PowerW {
			if hi.PowerW[i] <= lo.PowerW[i] {
				t.Errorf("%s: fmem=%.0f not above fmem=%.0f at %g MHz",
					app.App, hi.MemMHz, lo.MemMHz, hi.CoreMHz[i])
			}
		}
	}
	if !strings.Contains(r.String(), "Figure 2") {
		t.Fatal("String() missing header")
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := RunFig5(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 83 {
		t.Fatalf("entries = %d, want 83", len(r.Entries))
	}
	// Paper: constant share ≈ 84 W at the default configuration.
	if r.ConstantShareW < 70 || r.ConstantShareW > 95 {
		t.Errorf("constant share %.0f W, want ~84", r.ConstantShareW)
	}
	// Paper: maximum dynamic share ≈ 49%, achieved on a Mix benchmark.
	if r.MaxDynamicSharePct < 35 || r.MaxDynamicSharePct > 62 {
		t.Errorf("max dynamic share %.0f%%, want ~49%%", r.MaxDynamicSharePct)
	}
	if !strings.HasPrefix(r.MaxDynamicShareOn, "ub_mix") {
		t.Errorf("max dynamic share on %s, want a Mix benchmark", r.MaxDynamicShareOn)
	}
	if r.MAE > 10 {
		t.Errorf("training-suite MAE %.1f%%, want < 10%%", r.MAE)
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := RunFig6(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 2 {
		t.Fatalf("want 2 panels, got %d", len(r.Devices))
	}
	for _, d := range r.Devices {
		// Predicted curve must be monotone non-decreasing...
		for i := 1; i < len(d.Predicted); i++ {
			if d.Predicted[i] < d.Predicted[i-1]-1e-9 {
				t.Errorf("%s: predicted voltage not monotone", d.Device)
			}
		}
		// ...show both regions (plateau then rise)...
		if d.Predicted[len(d.Predicted)-1] < d.Predicted[0]+0.1 {
			t.Errorf("%s: no voltage rise across the ladder", d.Device)
		}
	}
	// ...and track the measured curve. The Titan X panel is the
	// best-identified one (4 memory levels).
	tx := r.Devices[0]
	if tx.Device != "GTX Titan X" {
		t.Fatalf("first panel is %s", tx.Device)
	}
	if tx.MaxAbsErr > 0.08 {
		t.Errorf("Titan X voltage error %.3f, want < 0.08", tx.MaxAbsErr)
	}
	// Breakpoint identification within three ladder steps (paper: "accurate
	// in identifying the breaking point"; our estimate rounds the plateau
	// knee to the nearest ladder levels).
	if diff := tx.BreakpointPredicted - tx.BreakpointMeasured; diff < -120 || diff > 120 {
		t.Errorf("Titan X breakpoint %.0f vs measured %.0f", tx.BreakpointPredicted, tx.BreakpointMeasured)
	}
	xp := r.Devices[1]
	if xp.MaxAbsErr > 0.20 {
		t.Errorf("Titan Xp voltage error %.3f, want < 0.20", xp.MaxAbsErr)
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := RunFig7(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("want 3 devices, got %d", len(r.Devices))
	}
	byName := map[string]Fig7DeviceResult{}
	for _, d := range r.Devices {
		byName[d.Device] = d
	}
	xp, tx, k40 := byName["Titan Xp"], byName["GTX Titan X"], byName["Tesla K40c"]

	// Paper: 6.9 / 6.0 / 12.4 %. Shape: Pascal and Maxwell accurate and
	// similar; Kepler clearly worse but still far below the baselines.
	if xp.MAE > 9 {
		t.Errorf("Titan Xp MAE %.1f%%, want < 9%% (paper 6.9%%)", xp.MAE)
	}
	if tx.MAE > 9 {
		t.Errorf("GTX Titan X MAE %.1f%%, want < 9%% (paper 6.0%%)", tx.MAE)
	}
	if k40.MAE > 16 {
		t.Errorf("Tesla K40c MAE %.1f%%, want < 16%% (paper 12.4%%)", k40.MAE)
	}
	if k40.MAE < tx.MAE || k40.MAE < xp.MAE {
		t.Errorf("Kepler (%.1f%%) must be the least accurate (Xp %.1f%%, TX %.1f%%)",
			k40.MAE, xp.MAE, tx.MAE)
	}
	// Point counts: |validation set| × |configs|.
	if want := 26 * 22 * 2; len(xp.Points) != want {
		t.Errorf("Titan Xp points = %d, want %d", len(xp.Points), want)
	}
	if want := 26 * 16 * 4; len(tx.Points) != want {
		t.Errorf("Titan X points = %d, want %d", len(tx.Points), want)
	}
	// Paper: the Titan X spans a large power range (40 W to 248 W there).
	mn, mx := minMaxMeasured(tx.Points)
	if mn > 80 || mx < 220 {
		t.Errorf("Titan X power range [%.0f, %.0f] too narrow", mn, mx)
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := RunFig8(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 4 {
		t.Fatalf("want 4 memory panels, got %d", len(r.Panels))
	}
	// Panels are ordered by descending memory frequency: 4005 first, 810 last.
	if r.Panels[0].MemMHz != 4005 || r.Panels[3].MemMHz != 810 {
		t.Fatalf("panel order wrong: %g ... %g", r.Panels[0].MemMHz, r.Panels[3].MemMHz)
	}
	for _, p := range r.Panels {
		if len(p.Errors) != 26 {
			t.Fatalf("panel %g has %d benchmarks, want 26", p.MemMHz, len(p.Errors))
		}
	}
	// Paper: error grows with distance from the reference memory frequency
	// (4.9% at 3505 MHz vs 8.7% at 810 MHz).
	var ref, far Fig8MemPanel
	for _, p := range r.Panels {
		if p.MemMHz == 3505 {
			ref = p
		}
		if p.MemMHz == 810 {
			far = p
		}
	}
	if far.MAE <= ref.MAE {
		t.Errorf("error at 810 MHz (%.1f%%) should exceed the reference panel (%.1f%%)",
			far.MAE, ref.MAE)
	}
	if r.OverallMAE > 9 {
		t.Errorf("overall MAE %.1f%%, want < 9%% (paper 6.0%%)", r.OverallMAE)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := RunFig9(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 3 {
		t.Fatalf("want 3 sizes, got %d", len(r.Sizes))
	}
	// Larger inputs give higher utilization and power at every frequency.
	for i := 1; i < 3; i++ {
		prev, cur := r.Sizes[i-1], r.Sizes[i]
		if cur.Util[hw.SP] < prev.Util[hw.SP] {
			t.Errorf("U(SP) decreased from size %d to %d", prev.Size, cur.Size)
		}
		for j := range cur.Measured {
			if cur.Measured[j] < prev.Measured[j] {
				t.Errorf("measured power decreased with input size at %g MHz", cur.CoreMHz[j])
			}
		}
	}
	if r.MAE > 10 {
		t.Errorf("Fig. 9 MAE %.1f%%, want < 10%% (paper 6.8%%)", r.MAE)
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := RunFig10(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 2 {
		t.Fatalf("want 2 panels, got %d", len(r.Panels))
	}
	refPanel, lowPanel := r.Panels[0], r.Panels[1]
	if refPanel.Config.MemMHz != 3505 || lowPanel.Config.MemMHz != 810 {
		t.Fatal("panel configurations wrong")
	}
	// 26 validation apps + matrixMulCUBLAS.
	if len(refPanel.Entries) != 27 {
		t.Fatalf("entries = %d, want 27", len(refPanel.Entries))
	}
	// Paper: constant share ≈ 80 W at the reference, ≈ 50 W at low memory.
	if refPanel.MeanConstantW < 70 || refPanel.MeanConstantW > 95 {
		t.Errorf("reference constant share %.0f W, want ~80", refPanel.MeanConstantW)
	}
	// The absolute split between "constant" and DRAM-dynamic power at the
	// off-reference configuration is weakly identifiable (the estimator may
	// trade β3 against the free V̄mem ladder), so the band is generous; the
	// qualitative claim is the drop itself.
	if lowPanel.MeanConstantW < 40 || lowPanel.MeanConstantW > 75 {
		t.Errorf("low-memory constant share %.0f W, want ~50-70", lowPanel.MeanConstantW)
	}
	if lowPanel.MeanConstantW >= refPanel.MeanConstantW {
		t.Error("constant share must drop with the memory frequency")
	}
	// Paper: 5.2% and 8.8% MAE.
	if refPanel.MAE > 9 || lowPanel.MAE > 13 {
		t.Errorf("panel MAEs %.1f%%/%.1f%%, want <9/<13", refPanel.MAE, lowPanel.MAE)
	}
	// DRAM power varies strongly between panels while core components stay
	// roughly constant (paper's observation).
	for i := range refPanel.Entries {
		hiDRAM := refPanel.Entries[i].Breakdown.Component[hw.DRAM]
		loDRAM := lowPanel.Entries[i].Breakdown.Component[hw.DRAM]
		if hiDRAM > 5 && loDRAM >= hiDRAM {
			t.Errorf("%s: DRAM power did not drop with memory frequency", refPanel.Entries[i].App)
		}
	}
}

func TestConvergenceShape(t *testing.T) {
	r, err := RunConvergence(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("want 3 devices, got %d", len(r.Devices))
	}
	for _, d := range r.Devices {
		if d.Iterations > 50 {
			t.Errorf("%s: %d iterations, paper reports < 50", d.Device, d.Iterations)
		}
		if len(d.Steps) != d.Iterations {
			t.Errorf("%s: %d trace steps for %d iterations", d.Device, len(d.Steps), d.Iterations)
		}
		// SSE must be non-increasing to within noise over the alternation.
		first, last := d.Steps[0].SSE, d.Steps[len(d.Steps)-1].SSE
		if last > first*1.05 {
			t.Errorf("%s: SSE grew from %g to %g", d.Device, first, last)
		}
	}
}

func TestBaselinesShape(t *testing.T) {
	r, err := RunBaselines(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Devices) != 3 {
		t.Fatalf("want 3 devices, got %d", len(r.Devices))
	}
	for _, d := range r.Devices {
		if len(d.Rows) != 5 {
			t.Fatalf("%s: %d models, want 5", d.Device, len(d.Rows))
		}
		proposed := d.Rows[0]
		if !strings.HasPrefix(proposed.Model, "Proposed") {
			t.Fatalf("%s: first row is %q", d.Device, proposed.Model)
		}
		for _, row := range d.Rows[1:] {
			// The paper's quantitative comparison: the proposed model beats
			// the event-based regression baselines (Abe et al., the
			// linear-frequency family, and the no-DVFS model) on every
			// device. The Wu-style comparator is excluded from this claim:
			// it consumes extra runtime information (the application's
			// measured power at the reference configuration), which the
			// event-only models never see.
			if strings.HasPrefix(row.Model, "Wu") {
				if row.MAE > 25 {
					t.Errorf("%s: Wu-style baseline imploded (%.1f%%)", d.Device, row.MAE)
				}
				continue
			}
			if proposed.MAE >= row.MAE {
				t.Errorf("%s: proposed (%.1f%%) does not beat %s (%.1f%%)",
					d.Device, proposed.MAE, row.Model, row.MAE)
			}
		}
		// On devices with a wide V-F space, the no-DVFS model must be far
		// worse than the DVFS-aware ones. (The K40c exposes a single memory
		// level and a 1.3x core range, so even a constant prediction stays
		// within ~15%.)
		if d.Device != "Tesla K40c" {
			for _, row := range d.Rows {
				if strings.HasPrefix(row.Model, "Fixed-configuration") && row.MAE < 2*proposed.MAE {
					t.Errorf("%s: fixed-config model suspiciously good (%.1f%%)", d.Device, row.MAE)
				}
			}
		}
	}
}

func TestAblationShape(t *testing.T) {
	r, err := RunAblation(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(r.Rows))
	}
	full := r.Rows[0].MAE
	for _, row := range r.Rows[1:] {
		if full > row.MAE+0.3 {
			t.Errorf("full algorithm (%.1f%%) worse than ablation %q (%.1f%%)",
				full, row.Variant, row.MAE)
		}
	}
	// Removing voltage awareness must hurt on a voltage-scaling device.
	noVolt := r.Rows[1].MAE
	if noVolt < full+0.5 {
		t.Errorf("no-voltage ablation (%.1f%%) should clearly trail the full algorithm (%.1f%%)",
			noVolt, full)
	}
}

func TestTables(t *testing.T) {
	s1, err := RenderTable1()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"352321", "335544", "318767", "active_cycles", "fb_subp0_read_sectors"} {
		if !strings.Contains(s1, frag) {
			t.Errorf("Table I missing %q", frag)
		}
	}
	s2 := RenderTable2()
	for _, frag := range []string{"Pascal", "Maxwell", "Kepler", "1404", "975", "875", "250", "235"} {
		if !strings.Contains(s2, frag) {
			t.Errorf("Table II missing %q", frag)
		}
	}
	s3 := RenderTable3()
	for _, frag := range []string{"Rodinia", "Parboil", "Polybench", "CUDA SDK", "BlackScholes", "CUTCP", "total applications: 27"} {
		if !strings.Contains(s3, frag) {
			t.Errorf("Table III missing %q", frag)
		}
	}
}

func TestRigErrors(t *testing.T) {
	if _, err := NewRig("GTX 480", 1); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := SharedRig("GTX 480", 1); err == nil {
		t.Fatal("unknown device accepted by SharedRig")
	}
}

func TestSharedRigCaching(t *testing.T) {
	a, err := SharedRig("Tesla K40c", 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedRig("Tesla K40c", 12345)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SharedRig did not cache")
	}
	c, err := SharedRig("Tesla K40c", 54321)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds share a rig")
	}
}
