package experiments

import (
	"fmt"
	"strings"

	"gpupower/internal/textplot"
)

// Terminal renderings of the paper's figures, used by `gpowerbench -plot`.

// Plot renders the Fig. 2 power-vs-core-frequency curves.
func (r *Fig2Result) Plot() (string, error) {
	var sb strings.Builder
	for _, app := range r.Apps {
		chart := &textplot.Chart{
			Title:  fmt.Sprintf("Fig. 2 — %s on %s (power vs core frequency)", app.App, r.Device),
			XLabel: "fcore [MHz]",
			YLabel: "power [W]",
		}
		for _, curve := range app.Curves {
			chart.Series = append(chart.Series, textplot.Series{
				Name: fmt.Sprintf("fmem=%.0f", curve.MemMHz),
				X:    curve.CoreMHz,
				Y:    curve.PowerW,
			})
		}
		s, err := chart.Render()
		if err != nil {
			return "", err
		}
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Plot renders the Fig. 6 measured-vs-predicted voltage curves.
func (r *Fig6Result) Plot() (string, error) {
	var sb strings.Builder
	for _, d := range r.Devices {
		chart := &textplot.Chart{
			Title:  fmt.Sprintf("Fig. 6 — %s core voltage (V/Vref vs fcore)", d.Device),
			XLabel: "fcore [MHz]",
			YLabel: "V/Vref",
			Series: []textplot.Series{
				{Name: "predicted", X: d.CoreMHz, Y: d.Predicted, Marker: '*'},
				{Name: "measured", X: d.CoreMHz, Y: d.Measured, Marker: 'o'},
			},
		}
		s, err := chart.Render()
		if err != nil {
			return "", err
		}
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Plot renders the Fig. 7 predicted-vs-measured scatter per device (the
// identity line is where perfect predictions land).
func (r *Fig7Result) Plot() (string, error) {
	var sb strings.Builder
	for _, d := range r.Devices {
		meas := make([]float64, len(d.Points))
		pred := make([]float64, len(d.Points))
		for i, p := range d.Points {
			meas[i], pred[i] = p.Measured, p.Predicted
		}
		// Identity reference.
		mn, mx := minMaxMeasured(d.Points)
		ident := textplot.Series{Name: "ideal", X: []float64{mn, mx}, Y: []float64{mn, mx}, Marker: '.'}
		chart := &textplot.Chart{
			Title:  fmt.Sprintf("Fig. 7 — %s (predicted vs measured power, MAE %.1f%%)", d.Device, d.MAE),
			XLabel: "measured [W]",
			YLabel: "predicted [W]",
			Series: []textplot.Series{
				{Name: "apps", X: meas, Y: pred, Marker: '*'},
				ident,
			},
		}
		s, err := chart.Render()
		if err != nil {
			return "", err
		}
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// Plot renders the Fig. 9 measured power per input size.
func (r *Fig9Result) Plot() (string, error) {
	chart := &textplot.Chart{
		Title:  fmt.Sprintf("Fig. 9 — matrixMulCUBLAS on %s (power vs core frequency)", r.Device),
		XLabel: "fcore [MHz]",
		YLabel: "power [W]",
	}
	for _, s := range r.Sizes {
		chart.Series = append(chart.Series, textplot.Series{
			Name: fmt.Sprintf("%dx%d", s.Size, s.Size),
			X:    s.CoreMHz,
			Y:    s.Measured,
		})
	}
	return chart.Render()
}
