package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/suites"
)

// BreakdownTruthResult is an analysis the paper could not run on real
// silicon: the model's per-component power decomposition (Fig. 10) compared
// against the simulator's ground-truth decomposition. On hardware only the
// total is measurable; the simulator makes the component-level claim
// testable.
type BreakdownTruthResult struct {
	Device string
	Config hw.Config
	// MeanAbsErrW[c] is the mean |model − truth| of component c's power
	// over the validation set, W.
	MeanAbsErrW map[hw.Component]float64
	// MeanTruthW[c] is the mean true power of component c, W.
	MeanTruthW map[hw.Component]float64
	// ConstantErrW is the mean absolute error of the constant share, where
	// the truth's constant includes its unmodelled activity term (which the
	// model has no counters for, as the paper notes).
	ConstantErrW float64
	// ConstantTruthW is the mean true constant share (incl. unmodelled), W.
	ConstantTruthW float64
	Apps           int
}

// RunBreakdownTruth compares the model's decomposition against the hidden
// truth for all validation applications at the device's default
// configuration.
func RunBreakdownTruth(ctx context.Context, deviceName string, seed uint64) (*BreakdownTruthResult, error) {
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	cfg := r.Device.DefaultConfig()
	res := &BreakdownTruthResult{
		Device:      deviceName,
		Config:      cfg,
		MeanAbsErrW: map[hw.Component]float64{},
		MeanTruthW:  map[hw.Component]float64{},
	}
	for _, app := range suites.ValidationSet() {
		prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
		if err != nil {
			return nil, err
		}
		util, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
		if err != nil {
			return nil, err
		}
		bd, err := m.Decompose(util, cfg)
		if err != nil {
			return nil, err
		}
		// Ground truth for the first (dominant) kernel.
		if err := r.Sim.SetClocks(cfg.MemMHz, cfg.CoreMHz); err != nil {
			return nil, err
		}
		run, err := r.Sim.Execute(app.App.Kernels[0])
		if err != nil {
			return nil, err
		}
		truth := r.Sim.TrueBreakdown(run.Exec)
		for _, c := range hw.Components {
			res.MeanAbsErrW[c] += math.Abs(bd.Component[c] - truth.Component[c])
			res.MeanTruthW[c] += truth.Component[c]
		}
		res.ConstantErrW += math.Abs(bd.Constant - (truth.Constant + truth.Unmodelled))
		res.ConstantTruthW += truth.Constant + truth.Unmodelled
		res.Apps++
	}
	inv := 1 / float64(res.Apps)
	for _, c := range hw.Components {
		res.MeanAbsErrW[c] *= inv
		res.MeanTruthW[c] *= inv
	}
	res.ConstantErrW *= inv
	res.ConstantTruthW *= inv
	return res, nil
}

// String renders the component-level validation table.
func (r *BreakdownTruthResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Decomposition vs hidden truth — %s at %v (%d validation apps)\n",
		r.Device, r.Config, r.Apps)
	fmt.Fprintf(&sb, "  %-8s  mean |model-truth|  mean truth\n", "part")
	fmt.Fprintf(&sb, "  %-8s  %13.1f W  %8.1f W (incl. unmodelled activity)\n", "constant", r.ConstantErrW, r.ConstantTruthW)
	for _, c := range hw.Components {
		fmt.Fprintf(&sb, "  %-8s  %13.1f W  %8.1f W\n", c, r.MeanAbsErrW[c], r.MeanTruthW[c])
	}
	return sb.String()
}
