package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"gpupower/internal/hw"
)

// CSV export: every figure's data series in a machine-readable form, so the
// plots can be regenerated with any plotting tool. One file per artifact.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits the Fig. 2 power curves and utilizations.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, app := range r.Apps {
		for _, curve := range app.Curves {
			for i := range curve.CoreMHz {
				rows = append(rows, []string{
					app.App, f(curve.MemMHz), f(curve.CoreMHz[i]), f(curve.PowerW[i]),
				})
			}
		}
		for _, c := range hw.Components {
			rows = append(rows, []string{
				app.App, "utilization", c.String(), f(app.Utilization[c]),
			})
		}
	}
	return writeCSV(w, []string{"app", "fmem_mhz", "fcore_mhz", "power_w"}, rows)
}

// WriteCSV emits the Fig. 5 per-microbenchmark utilizations and breakdown.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	header := []string{"benchmark", "collection", "measured_w", "predicted_w", "constant_w"}
	for _, c := range hw.Components {
		header = append(header, "u_"+c.String(), "p_"+c.String()+"_w")
	}
	rows := [][]string{}
	for _, e := range r.Entries {
		row := []string{
			e.Name, string(e.Collection), f(e.Measured), f(e.Breakdown.Total()), f(e.Breakdown.Constant),
		}
		for _, c := range hw.Components {
			row = append(row, f(e.Util[c]), f(e.Breakdown.Component[c]))
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the Fig. 6 voltage series.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, d := range r.Devices {
		for i := range d.CoreMHz {
			rows = append(rows, []string{
				d.Device, f(d.CoreMHz[i]), f(d.Predicted[i]), f(d.Measured[i]),
			})
		}
	}
	return writeCSV(w, []string{"device", "fcore_mhz", "vbar_predicted", "vbar_measured"}, rows)
}

// WriteCSV emits the Fig. 7 scatter points.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, d := range r.Devices {
		for _, p := range d.Points {
			rows = append(rows, []string{
				d.Device, p.App, f(p.Config.CoreMHz), f(p.Config.MemMHz),
				f(p.Measured), f(p.Predicted),
			})
		}
	}
	return writeCSV(w, []string{"device", "app", "fcore_mhz", "fmem_mhz", "measured_w", "predicted_w"}, rows)
}

// WriteCSV emits the Fig. 8 per-benchmark signed errors.
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, p := range r.Panels {
		for _, e := range p.Errors {
			rows = append(rows, []string{f(p.MemMHz), e.App, f(e.MeanErrorPct)})
		}
		rows = append(rows, []string{f(p.MemMHz), "_panel_mae", f(p.MAE)})
	}
	return writeCSV(w, []string{"fmem_mhz", "app", "mean_error_pct"}, rows)
}

// WriteCSV emits the Fig. 9 series.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, s := range r.Sizes {
		for i := range s.CoreMHz {
			rows = append(rows, []string{
				strconv.Itoa(s.Size), f(s.CoreMHz[i]), f(s.Measured[i]), f(s.Predicted[i]),
				strconv.FormatBool(s.TDPCapped[i]),
			})
		}
	}
	return writeCSV(w, []string{"size", "fcore_mhz", "measured_w", "predicted_w", "tdp_capped"}, rows)
}

// WriteCSV emits the Fig. 10 breakdown panels.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	header := []string{"fcore_mhz", "fmem_mhz", "app", "measured_w", "predicted_w", "constant_w"}
	for _, c := range hw.Components {
		header = append(header, "p_"+c.String()+"_w")
	}
	rows := [][]string{}
	for _, p := range r.Panels {
		for _, e := range p.Entries {
			row := []string{
				f(p.Config.CoreMHz), f(p.Config.MemMHz), e.App,
				f(e.Measured), f(e.Breakdown.Total()), f(e.Breakdown.Constant),
			}
			for _, c := range hw.Components {
				row = append(row, f(e.Breakdown.Component[c]))
			}
			rows = append(rows, row)
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the convergence traces.
func (r *ConvergenceAllResult) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, d := range r.Devices {
		for _, s := range d.Steps {
			rows = append(rows, []string{
				d.Device, strconv.Itoa(s.Iteration), f(s.VoltDelta), f(s.ParamDelta), f(s.SSE),
			})
		}
	}
	return writeCSV(w, []string{"device", "iteration", "volt_delta", "param_delta", "sse"}, rows)
}

// WriteCSV emits the baseline comparison table.
func (r *BaselineResult) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, d := range r.Devices {
		for _, row := range d.Rows {
			rows = append(rows, []string{d.Device, row.Model, f(row.MAE)})
		}
	}
	return writeCSV(w, []string{"device", "model", "mae_pct"}, rows)
}

// WriteCSV emits the ablation table.
func (r *AblationResult) WriteCSV(w io.Writer) error {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{r.Device, row.Variant, f(row.MAE)})
	}
	return writeCSV(w, []string{"device", "variant", "mae_pct"}, rows)
}

// ExportAllCSVs runs every experiment and writes one CSV per artifact into
// dir (created if needed). Returns the file paths written.
func ExportAllCSVs(ctx context.Context, dir string, seed uint64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, fn func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		file, err := os.Create(path)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := fn(file); err != nil {
			return fmt.Errorf("experiments: exporting %s: %w", name, err)
		}
		written = append(written, path)
		return nil
	}

	fig2, err := RunFig2(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig2.csv", fig2.WriteCSV); err != nil {
		return nil, err
	}
	fig5, err := RunFig5(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig5.csv", fig5.WriteCSV); err != nil {
		return nil, err
	}
	fig6, err := RunFig6(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig6.csv", fig6.WriteCSV); err != nil {
		return nil, err
	}
	fig7, err := RunFig7(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig7.csv", fig7.WriteCSV); err != nil {
		return nil, err
	}
	fig8, err := RunFig8(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig8.csv", fig8.WriteCSV); err != nil {
		return nil, err
	}
	fig9, err := RunFig9(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig9.csv", fig9.WriteCSV); err != nil {
		return nil, err
	}
	fig10, err := RunFig10(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("fig10.csv", fig10.WriteCSV); err != nil {
		return nil, err
	}
	conv, err := RunConvergence(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("convergence.csv", conv.WriteCSV); err != nil {
		return nil, err
	}
	base, err := RunBaselines(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("baselines.csv", base.WriteCSV); err != nil {
		return nil, err
	}
	abl, err := RunAblation(ctx, seed)
	if err != nil {
		return nil, err
	}
	if err := write("ablation.csv", abl.WriteCSV); err != nil {
		return nil, err
	}
	return written, nil
}
