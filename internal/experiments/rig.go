// Package experiments contains one driver per table/figure of the paper's
// evaluation (Section V), plus baseline comparisons and ablations. Each
// driver returns a machine-readable result and can render the paper-style
// rows/series as text. All drivers are deterministic for a given seed.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"gpupower/internal/backend"
	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/microbench"
	"gpupower/internal/parallel"
	"gpupower/internal/profiler"
	"gpupower/internal/sim"
)

// DefaultSeed is the seed used by the command-line harness and the Go
// benchmarks; every published number in EXPERIMENTS.md comes from it.
const DefaultSeed uint64 = 42

// Rig bundles everything an experiment needs on one device: the simulated
// GPU (ground truth for validation-only paths), its measurement backend and
// profiler, and (lazily) a fitted model with its training dataset.
//
// The measurement pipeline runs entirely through Backend — the rig keeps
// Sim only for ground-truth comparisons (true breakdowns, third-party
// voltage readouts) that a real device would not expose either.
//
// Concurrency invariant: Dataset and Model are safe for concurrent use
// (mutex-guarded, and fitting only reads the dataset), but the profiler
// drives the simulated device's clock state, so *measurements* on one rig
// must not be issued from two goroutines at once. Experiments therefore
// fan out across rigs — per device and per seed — never within one.
type Rig struct {
	Device   *hw.Device
	Sim      *sim.Device
	Backend  backend.Backend
	Profiler *profiler.Profiler

	mu      sync.Mutex
	dataset *core.Dataset
	model   *core.Model
}

// NewRig builds a rig for a catalog device.
func NewRig(deviceName string, seed uint64) (*Rig, error) {
	dev, err := hw.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(dev, seed)
	if err != nil {
		return nil, err
	}
	b, err := simbk.New(s)
	if err != nil {
		return nil, err
	}
	p, err := profiler.New(b)
	if err != nil {
		return nil, err
	}
	return &Rig{Device: dev, Sim: s, Backend: b, Profiler: p}, nil
}

// Dataset measures (or returns the cached) full training dataset: the 83
// microbenchmarks profiled at the reference configuration and measured at
// every V-F configuration.
func (r *Rig) Dataset(ctx context.Context) (*core.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dataset != nil {
		return r.dataset, nil
	}
	d, err := core.BuildDataset(ctx, r.Profiler, microbench.Suite(), r.Device.DefaultConfig(), r.Device.AllConfigs())
	if err != nil {
		return nil, fmt.Errorf("experiments: building dataset on %s: %w", r.Device.Name, err)
	}
	r.dataset = d
	return d, nil
}

// Model fits (or returns the cached) DVFS-aware power model.
func (r *Rig) Model(ctx context.Context) (*core.Model, error) {
	d, err := r.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.model != nil {
		return r.model, nil
	}
	m, err := core.Estimate(ctx, d, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting model on %s: %w", r.Device.Name, err)
	}
	r.model = m
	return m, nil
}

// rigCache shares fitted rigs across experiments within one process (the
// benchmark harness regenerates many figures from the same three models).
var (
	rigCacheMu sync.Mutex
	rigCache   = map[string]*Rig{}
)

// SharedRig returns a process-wide cached rig for (deviceName, seed).
func SharedRig(deviceName string, seed uint64) (*Rig, error) {
	key := fmt.Sprintf("%s/%d", deviceName, seed)
	rigCacheMu.Lock()
	defer rigCacheMu.Unlock()
	if r, ok := rigCache[key]; ok {
		return r, nil
	}
	r, err := NewRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	rigCache[key] = r
	return r, nil
}

// ResetSharedRigs clears the process-wide rig cache (tests use it to ensure
// independence).
func ResetSharedRigs() {
	rigCacheMu.Lock()
	defer rigCacheMu.Unlock()
	rigCache = map[string]*Rig{}
}

// SharedRigs resolves (and warms) one shared rig per device name, fitting
// the models in parallel. Each rig owns its simulator, profiler, dataset
// and model, so the per-device pipelines are independent; result slot i
// always belongs to deviceNames[i]. This is the fan-out every multi-device
// experiment (fig5–fig10, robustness) rides on.
func SharedRigs(ctx context.Context, deviceNames []string, seed uint64) ([]*Rig, error) {
	return parallel.Map(len(deviceNames), func(i int) (*Rig, error) {
		r, err := SharedRig(deviceNames[i], seed)
		if err != nil {
			return nil, err
		}
		if _, err := r.Model(ctx); err != nil {
			return nil, err
		}
		return r, nil
	})
}

// AllDeviceNames lists the catalog devices in their canonical order.
func AllDeviceNames() []string {
	devs := hw.AllDevices()
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.Name
	}
	return names
}
