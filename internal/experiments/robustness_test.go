package experiments

import (
	"context"
	"strings"
	"testing"

	"gpupower/internal/hw"
)

func TestRobustnessTwoSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness fits multiple dies; skipped in -short mode")
	}
	r, err := RunRobustness(context.Background(), []uint64{DefaultSeed, DefaultSeed + 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seeds) != 2 {
		t.Fatalf("seed count = %d", len(r.Seeds))
	}
	for _, name := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
		mean, _, mn, mx, err := r.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if mean <= 0 || mean > 20 {
			t.Errorf("%s: mean MAE %.1f%% out of band", name, mean)
		}
		if mn > mx {
			t.Errorf("%s: min %.1f > max %.1f", name, mn, mx)
		}
	}
	if !r.OrderingStable() {
		t.Error("Kepler-worst ordering not stable across seeds")
	}
	if !strings.Contains(r.String(), "robustness") {
		t.Error("String() missing header")
	}
}

func TestRobustnessValidation(t *testing.T) {
	if _, err := RunRobustness(context.Background(), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, _, _, _, err := (&RobustnessResult{MAE: map[string][]float64{}}).Stats("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestBreakdownTruth(t *testing.T) {
	// The simulator-only component-level validation: on the accurate-counter
	// devices the model's decomposition must track the hidden truth closely;
	// on Kepler the attribution degrades (the counter-quality story).
	tx, err := RunBreakdownTruth(context.Background(), "GTX Titan X", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Apps != 26 {
		t.Fatalf("apps = %d, want 26", tx.Apps)
	}
	// Constant share attribution within ~10 W of the true ~89 W.
	if tx.ConstantErrW > 12 {
		t.Errorf("Titan X constant attribution error %.1f W", tx.ConstantErrW)
	}
	// Per-component dynamic attribution: the dominant component (DRAM) must
	// be attributed within ~20% of its mean true power on a good-counter
	// device.
	if dram := tx.MeanTruthW[hw.DRAM]; dram > 0 {
		if tx.MeanAbsErrW[hw.DRAM] > 0.2*dram {
			t.Errorf("Titan X DRAM attribution error %.1f W on a %.1f W mean",
				tx.MeanAbsErrW[hw.DRAM], dram)
		}
	}
	k40, err := RunBreakdownTruth(context.Background(), "Tesla K40c", DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if k40.ConstantErrW < tx.ConstantErrW {
		t.Errorf("Kepler attribution (%.1f W) should be worse than Maxwell's (%.1f W)",
			k40.ConstantErrW, tx.ConstantErrW)
	}
	if !strings.Contains(tx.String(), "Decomposition vs hidden truth") {
		t.Error("String() missing header")
	}
}

func TestBreakdownTruthUnknownDevice(t *testing.T) {
	if _, err := RunBreakdownTruth(context.Background(), "GTX 480", DefaultSeed); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestGovernorStudy(t *testing.T) {
	r, err := RunGovernorStudy(context.Background(), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 apps x 3 policies)", len(r.Rows))
	}
	for _, row := range r.Rows {
		// min-energy and min-EDP must never waste energy vs the baseline.
		if row.Policy.String() == "min-energy" && row.EnergySavePct < 0 {
			t.Errorf("%s: min-energy governor wasted energy (%.1f%%)", row.App, row.EnergySavePct)
		}
	}
	if !strings.Contains(r.String(), "governor study") {
		t.Error("String() missing header")
	}
}
