package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/baselines"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/microbench"
)

// AblationRow is one design variant's validation MAE.
type AblationRow struct {
	Variant string
	MAE     float64
}

// AblationResult quantifies the design choices DESIGN.md calls out, on the
// GTX Titan X: the full algorithm vs (1) no voltage modelling, (2) the
// linear V(f) assumption, (3) no monotonicity constraint, (4) a reduced
// microbenchmark suite.
type AblationResult struct {
	Device string
	Rows   []AblationRow
}

// fitVariant fits the model with modified estimator options.
func fitVariant(ctx context.Context, d *core.Dataset, mod func(o *core.EstimatorOptions)) (*core.Model, error) {
	opts := core.DefaultEstimatorOptions()
	if mod != nil {
		mod(opts)
	}
	return core.Estimate(ctx, d, opts)
}

// reducedDataset keeps only every stride-th benchmark of each collection
// (always keeping Idle), emulating a suite too small to decorrelate the
// components.
func reducedDataset(d *core.Dataset, stride int) *core.Dataset {
	out := &core.Dataset{
		Device:          d.Device,
		Ref:             d.Ref,
		Configs:         d.Configs,
		L2BytesPerCycle: d.L2BytesPerCycle,
	}
	for bi, b := range d.Benchmarks {
		if bi%stride != 0 && b.Name != "ub_idle" {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, b)
		out.Power = append(out.Power, d.Power[bi])
	}
	return out
}

// RunAblation runs the ablation study.
func RunAblation(ctx context.Context, seed uint64) (*AblationResult, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	d, err := r.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Device: deviceName}

	eval := func(variant string, m *core.Model) error {
		mae, err := evaluateOnValidation(ctx, r, d.Ref, d.L2BytesPerCycle,
			func(in baselines.Input, cfg hw.Config) (float64, error) {
				return m.Predict(in.Util, cfg)
			})
		if err != nil {
			return fmt.Errorf("ablation %q: %w", variant, err)
		}
		res.Rows = append(res.Rows, AblationRow{Variant: variant, MAE: mae})
		return nil
	}

	full, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	if err := eval("full algorithm (voltage-estimating, monotonic)", full); err != nil {
		return nil, err
	}

	noVolt, err := fitVariant(ctx, d, func(o *core.EstimatorOptions) { o.DisableVoltage = true })
	if err != nil {
		return nil, err
	}
	if err := eval("(1) no voltage modelling (V̄ ≡ 1)", noVolt); err != nil {
		return nil, err
	}

	linV, err := fitVariant(ctx, d, func(o *core.EstimatorOptions) { o.LinearVoltage = true })
	if err != nil {
		return nil, err
	}
	if err := eval("(2) linear V(f) assumption (V̄ = f/f_ref)", linV); err != nil {
		return nil, err
	}

	noMono, err := fitVariant(ctx, d, func(o *core.EstimatorOptions) { o.DisableMonotonic = true })
	if err != nil {
		return nil, err
	}
	if err := eval("(3) no monotonicity constraint on V̄", noMono); err != nil {
		return nil, err
	}

	small := reducedDataset(d, 6)
	smallModel, err := fitVariant(ctx, small, nil)
	if err != nil {
		return nil, err
	}
	if err := eval(fmt.Sprintf("(4) reduced suite (%d of %d microbenchmarks)",
		len(small.Benchmarks), microbench.SuiteSize), smallModel); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation study (%s) — validation-set MAE over all V-F configurations\n", r.Device)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-52s %6.1f%%\n", row.Variant, row.MAE)
	}
	return sb.String()
}
