package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/parallel"
	modelreg "gpupower/internal/registry"
	"gpupower/internal/serve"
	"gpupower/internal/stats"
)

// Serve-load harness parameters. 256 full-ladder items per request on the
// GTX Titan X (16×4 ladder) is 16384 predictions per round trip — batchy
// enough that HTTP overhead doesn't dominate, small enough that a request
// finishes in single-digit milliseconds on one core.
const (
	serveItemsPerRequest = 256
	serveDistinctUtils   = 64
)

// ServeLoadResult is the gpowerd serving-throughput measurement: a real
// HTTP server on a loopback listener, hammered by concurrent keep-alive
// clients with batch /v1/predict requests, after a pre-flight pass that
// verifies every served prediction bitwise against direct Model.Predict.
type ServeLoadResult struct {
	Seed   uint64
	Device string
	// Conns is the number of concurrent client connections.
	Conns int
	// ItemsPerRequest × ConfigsPerItem is the predictions per round trip.
	ItemsPerRequest int
	ConfigsPerItem  int
	// Verified reports the pre-flight bitwise check passed (it is an error
	// for it to fail, so a returned result always has true here).
	Verified bool

	DurationNs  float64
	Requests    int64
	Predictions int64
	// PredictionsPerSec is the headline number (the ISSUE gate wants ≥1M/s).
	PredictionsPerSec float64
	RequestsPerSec    float64
}

// predictWireResponse mirrors serve's /v1/predict response for decoding.
type predictWireResponse struct {
	Device     string `json:"device"`
	Generation uint64 `json:"generation"`
	Results    []struct {
		Watts []float64 `json:"watts"`
	} `json:"results"`
	Predictions int `json:"predictions"`
}

// serveLoadUtils derives the rotating utilization vectors deterministically
// from seed. Warm-path realism: the vectors repeat across requests, so
// full-ladder items hit the prediction-surface cache the way a governor's
// steady state does.
func serveLoadUtils(seed uint64) []core.Utilization {
	rng := stats.NewRNG(seed ^ 0x5e12e10ad)
	utils := make([]core.Utilization, serveDistinctUtils)
	for i := range utils {
		u := core.Utilization{}
		for _, c := range hw.Components {
			u[c] = rng.Float64()
		}
		utils[i] = u
	}
	return utils
}

// RunServeLoad measures gpowerd serving throughput end to end. It fits the
// GTX Titan X (shared rig), registers it, serves it over a real loopback
// HTTP listener, verifies every distinct request body's predictions are
// bitwise-identical to direct Model.Predict (Go's JSON float encoding is
// shortest-round-trip, so bit equality survives the wire), then drives the
// load phase with conns keep-alive clients for the given duration.
func RunServeLoad(ctx context.Context, seed uint64, duration time.Duration, conns int) (*ServeLoadResult, error) {
	if conns < 1 {
		conns = 1
	}
	rig, err := SharedRig("GTX Titan X", seed)
	if err != nil {
		return nil, err
	}
	m, err := rig.Model(ctx)
	if err != nil {
		return nil, err
	}
	meta := modelreg.FitMeta{
		Iterations: m.Iterations, Converged: m.Converged,
		FittedAt: time.Now(), Source: "simulator",
	}
	entry, err := modelreg.NewEntry(rig.Device.Name, rig.Device, rig.Backend, rig.Profiler, m, meta)
	if err != nil {
		return nil, err
	}
	reg := modelreg.New()
	if err := reg.Add(entry); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.New(reg, nil)}
	serveErr := make(chan error, 1)
	//lint:ignore gonosync HTTP accept loop: net/http owns the connection goroutines; joined via srv.Close + serveErr before return
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveErr
	}()
	base := "http://" + ln.Addr().String()

	// Pre-build the rotating request bodies once; the load loop only writes
	// them to sockets.
	utils := serveLoadUtils(seed)
	bodies, expected, err := buildServeBodies(rig.Device, utils)
	if err != nil {
		return nil, err
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: conns + 2,
	}}
	defer client.CloseIdleConnections()

	// Pre-flight: every distinct body round-trips bitwise.
	for bi, body := range bodies {
		resp, err := postPredict(ctx, client, base, body)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve preflight: %w", err)
		}
		if err := verifyServeResponse(m, resp, expected[bi]); err != nil {
			return nil, fmt.Errorf("experiments: serve preflight body %d: %w", bi, err)
		}
	}

	// Load phase: conns clients rotate through the bodies until deadline.
	var requests, predictions atomic.Int64
	deadline := time.Now().Add(duration)
	start := time.Now()
	err = parallel.NewPool(conns).ForEach(conns, func(worker int) error {
		bi := worker % len(bodies)
		for time.Now().Before(deadline) {
			if err := ctx.Err(); err != nil {
				return err
			}
			resp, err := postPredict(ctx, client, base, bodies[bi])
			if err != nil {
				return err
			}
			requests.Add(1)
			predictions.Add(int64(resp.Predictions))
			bi = (bi + 1) % len(bodies)
		}
		return nil
	})
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}

	out := &ServeLoadResult{
		Seed:            seed,
		Device:          rig.Device.Name,
		Conns:           conns,
		ItemsPerRequest: serveItemsPerRequest,
		ConfigsPerItem:  rig.Device.NumConfigs(),
		Verified:        true,
		DurationNs:      float64(wall.Nanoseconds()),
		Requests:        requests.Load(),
		Predictions:     predictions.Load(),
	}
	if wall > 0 {
		out.PredictionsPerSec = float64(out.Predictions) / wall.Seconds()
		out.RequestsPerSec = float64(out.Requests) / wall.Seconds()
	}
	return out, nil
}

// buildServeBodies renders the rotating /v1/predict request bodies (each
// serveItemsPerRequest full-ladder items cycling through utils) and the
// per-body expected prediction matrix from direct Model evaluation order.
func buildServeBodies(dev *hw.Device, utils []core.Utilization) (bodies [][]byte, expected [][]core.Utilization, err error) {
	// Four bodies with different phase shifts through the utilization set
	// keep concurrent workers from lock-stepping on one byte slice.
	const nBodies = 4
	for b := 0; b < nBodies; b++ {
		type wireItem struct {
			Utilization map[string]float64 `json:"utilization"`
		}
		items := make([]wireItem, serveItemsPerRequest)
		order := make([]core.Utilization, serveItemsPerRequest)
		for i := range items {
			u := utils[(b*serveItemsPerRequest/nBodies+i)%len(utils)]
			order[i] = u
			wire := make(map[string]float64, len(u))
			for _, c := range hw.Components {
				wire[c.String()] = u[c]
			}
			items[i] = wireItem{Utilization: wire}
		}
		body, err := json.Marshal(map[string]any{
			"device": dev.Name,
			"items":  items,
		})
		if err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, body)
		expected = append(expected, order)
	}
	return bodies, expected, nil
}

// postPredict posts one prebuilt body and decodes the response.
func postPredict(ctx context.Context, client *http.Client, base string, body []byte) (*predictWireResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return nil, fmt.Errorf("predict: HTTP %d: %s", httpResp.StatusCode, msg)
	}
	var resp predictWireResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// verifyServeResponse checks a served batch bitwise against direct
// Model.Predict over the full ladder, item by item.
func verifyServeResponse(m *core.Model, resp *predictWireResponse, order []core.Utilization) error {
	if len(resp.Results) != len(order) {
		return fmt.Errorf("got %d results, want %d", len(resp.Results), len(order))
	}
	dev, err := hw.DeviceByName(m.DeviceName)
	if err != nil {
		return err
	}
	configs := dev.AllConfigs()
	for i, r := range resp.Results {
		if len(r.Watts) != len(configs) {
			return fmt.Errorf("item %d: got %d watts, want %d", i, len(r.Watts), len(configs))
		}
		for j, cfg := range configs {
			want, err := m.Predict(order[i], cfg)
			if err != nil {
				return err
			}
			if math.Float64bits(r.Watts[j]) != math.Float64bits(want) {
				return fmt.Errorf("item %d config %v: served %x, direct Predict %x (not bitwise equal)",
					i, cfg, r.Watts[j], want)
			}
		}
	}
	return nil
}

func (r *ServeLoadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "gpowerd serving throughput (%s, seed %d)\n", r.Device, r.Seed)
	fmt.Fprintf(&sb, "  clients:     %d keep-alive connections\n", r.Conns)
	fmt.Fprintf(&sb, "  batch:       %d items x %d configs = %d predictions/request\n",
		r.ItemsPerRequest, r.ConfigsPerItem, r.ItemsPerRequest*r.ConfigsPerItem)
	fmt.Fprintf(&sb, "  verified:    bitwise vs direct Model.Predict\n")
	fmt.Fprintf(&sb, "  duration:    %.2f s, %d requests (%.0f req/s)\n",
		r.DurationNs/1e9, r.Requests, r.RequestsPerSec)
	fmt.Fprintf(&sb, "  throughput:  %.2fM predictions/s\n", r.PredictionsPerSec/1e6)
	return sb.String()
}
