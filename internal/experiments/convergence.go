package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gpupower/internal/core"
)

// ConvergenceStep is one iteration of the Section III-D alternation.
type ConvergenceStep struct {
	Iteration  int
	VoltDelta  float64
	ParamDelta float64
	SSE        float64
}

// ConvergenceResult records how the estimator converged on one device
// (paper Section V-A: "converged in less than 50 iterations, corresponding
// to about 30 seconds").
//
// FitTime is excluded from JSON so serialized results are byte-for-byte
// reproducible across runs (golden-file comparisons): the iteration trace is
// deterministic, the wall clock is not. Human-facing output (String, the
// markdown report) still shows it.
type ConvergenceResult struct {
	Device     string
	Iterations int
	Converged  bool
	FitTime    time.Duration `json:"-"`
	Steps      []ConvergenceStep
}

// RunConvergenceDevice refits the model on a device with tracing enabled
// and times the fit (dataset collection excluded, as in the paper, which
// times only the estimation algorithm).
func RunConvergenceDevice(ctx context.Context, deviceName string, seed uint64) (*ConvergenceResult, error) {
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	d, err := r.Dataset(ctx)
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{Device: deviceName}
	opts := core.DefaultEstimatorOptions()
	opts.Trace = func(iter int, dv, dx, sse float64) {
		res.Steps = append(res.Steps, ConvergenceStep{Iteration: iter, VoltDelta: dv, ParamDelta: dx, SSE: sse})
	}
	start := time.Now()
	m, err := core.Estimate(ctx, d, opts)
	if err != nil {
		return nil, err
	}
	res.FitTime = time.Since(start)
	res.Iterations = m.Iterations
	res.Converged = m.Converged
	return res, nil
}

// ConvergenceAllResult aggregates the three devices.
type ConvergenceAllResult struct {
	Devices []ConvergenceResult
}

// RunConvergence runs the convergence experiment on all three devices.
func RunConvergence(ctx context.Context, seed uint64) (*ConvergenceAllResult, error) {
	out := &ConvergenceAllResult{}
	for _, name := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
		r, err := RunConvergenceDevice(ctx, name, seed)
		if err != nil {
			return nil, err
		}
		out.Devices = append(out.Devices, *r)
	}
	return out, nil
}

// String renders the convergence summary.
func (r *ConvergenceAllResult) String() string {
	var sb strings.Builder
	sb.WriteString("Convergence of the Section III-D estimator (paper: < 50 iterations, ~30 s)\n")
	for _, d := range r.Devices {
		fmt.Fprintf(&sb, "  %-12s iterations: %2d  converged: %-5v  fit time: %s\n",
			d.Device, d.Iterations, d.Converged, d.FitTime.Round(time.Millisecond))
		for _, s := range d.Steps {
			if s.Iteration <= 5 || s.Iteration == d.Iterations {
				fmt.Fprintf(&sb, "    iter %2d  Δvolt=%.5f  Δparam=%.5f  SSE=%.0f\n",
					s.Iteration, s.VoltDelta, s.ParamDelta, s.SSE)
			}
		}
	}
	return sb.String()
}
