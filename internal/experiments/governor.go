package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/governor"
	"gpupower/internal/suites"
)

// GovernorRow is one (application, policy) governed run.
type GovernorRow struct {
	App            string
	Policy         governor.Policy
	EnergySavePct  float64
	RuntimeDiffPct float64
	Iterations     int
}

// GovernorResult exercises the paper's future-work scenario (Section VII):
// a real-time governor profiles each kernel's first call, predicts power
// across the V-F space, and pins the policy-optimal configuration.
type GovernorResult struct {
	Device string
	Rows   []GovernorRow
}

// RunGovernorStudy runs three representative applications under the three
// policies on the GTX Titan X.
func RunGovernorStudy(ctx context.Context, seed uint64) (*GovernorResult, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &GovernorResult{Device: deviceName}
	const iterations = 30
	for _, short := range []string{"LBM", "CUTCP", "BCKP"} {
		app, err := suites.ByShort(short)
		if err != nil {
			return nil, err
		}
		for _, pol := range []governor.Policy{governor.MinEnergy, governor.MinEDP, governor.MaxPerfUnderCap} {
			g, err := governor.New(r.Profiler, m, pol)
			if err != nil {
				return nil, err
			}
			if pol == governor.MaxPerfUnderCap {
				g.PowerCap = 150
			}
			rep, err := g.RunApp(ctx, app.App, iterations)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, GovernorRow{
				App:            short,
				Policy:         pol,
				EnergySavePct:  rep.EnergySavingsPercent(),
				RuntimeDiffPct: rep.SlowdownPercent(),
				Iterations:     iterations,
			})
		}
	}
	return out, nil
}

// String renders the governor study.
func (r *GovernorResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Real-time DVFS governor study (%s, paper Section VII future work)\n", r.Device)
	fmt.Fprintf(&sb, "  %-8s %-20s %14s %15s\n", "app", "policy", "energy saving", "runtime change")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8s %-20s %13.1f%% %+14.1f%%\n",
			row.App, row.Policy, row.EnergySavePct, row.RuntimeDiffPct)
	}
	return sb.String()
}
