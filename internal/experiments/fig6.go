package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
)

// Fig6DeviceResult reproduces one panel of paper Fig. 6: measured (third-
// party tool) vs model-predicted normalized core voltage across the core
// ladder at the default memory frequency.
type Fig6DeviceResult struct {
	Device    string
	CoreMHz   []float64
	Predicted []float64
	Measured  []float64
	// MaxAbsErr is the largest |predicted − measured| over the ladder.
	MaxAbsErr float64
	// BreakpointPredicted/Measured are the frequencies where each curve
	// leaves its low-frequency plateau (paper: "two distinct regions").
	BreakpointPredicted float64
	BreakpointMeasured  float64
}

// Fig6Result holds the GTX Titan X and Titan Xp panels.
type Fig6Result struct {
	Devices []Fig6DeviceResult
}

// breakpoint returns the first ladder frequency at which the curve rises
// more than 1.5% above its plateau (the minimum of the curve).
func breakpoint(freqs, v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	plateau := v[0]
	for _, x := range v {
		if x < plateau {
			plateau = x
		}
	}
	for i, x := range v {
		if x > plateau*1.015 {
			return freqs[i]
		}
	}
	return freqs[len(freqs)-1]
}

// RunFig6Device runs the voltage-prediction validation for one device.
func RunFig6Device(ctx context.Context, deviceName string, seed uint64) (*Fig6DeviceResult, error) {
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	freqs, pred, err := m.PredictedCoreVoltage(r.Device.DefaultMem)
	if err != nil {
		return nil, err
	}
	res := &Fig6DeviceResult{Device: deviceName, CoreMHz: freqs, Predicted: pred}
	for _, f := range freqs {
		res.Measured = append(res.Measured, r.Sim.ThirdPartyVoltageReadout(f))
	}
	for i := range pred {
		if d := math.Abs(pred[i] - res.Measured[i]); d > res.MaxAbsErr {
			res.MaxAbsErr = d
		}
	}
	res.BreakpointPredicted = breakpoint(freqs, pred)
	res.BreakpointMeasured = breakpoint(freqs, res.Measured)
	return res, nil
}

// RunFig6 reproduces Fig. 6 on the two devices whose voltages the paper
// could measure (GTX Titan X and Titan Xp).
func RunFig6(ctx context.Context, seed uint64) (*Fig6Result, error) {
	out := &Fig6Result{}
	for _, name := range []string{"GTX Titan X", "Titan Xp"} {
		r, err := RunFig6Device(ctx, name, seed)
		if err != nil {
			return nil, err
		}
		out.Devices = append(out.Devices, *r)
	}
	return out, nil
}

// String renders the Fig. 6 panels as text.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — measured vs predicted core voltage (V/Vref)\n")
	for _, d := range r.Devices {
		fmt.Fprintf(&sb, "  %s: max |err| = %.3f, plateau breakpoint predicted %.0f MHz vs measured %.0f MHz\n",
			d.Device, d.MaxAbsErr, d.BreakpointPredicted, d.BreakpointMeasured)
		for i := range d.CoreMHz {
			fmt.Fprintf(&sb, "    f=%5.0f MHz  predicted=%.3f  measured=%.3f\n",
				d.CoreMHz[i], d.Predicted[i], d.Measured[i])
		}
	}
	return sb.String()
}
