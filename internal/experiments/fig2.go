package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/hw"
	"gpupower/internal/suites"
)

// Fig2Curve is one measured power-vs-core-frequency series at a fixed
// memory frequency.
type Fig2Curve struct {
	MemMHz  float64
	CoreMHz []float64
	PowerW  []float64
}

// Fig2AppResult reproduces one panel of paper Fig. 2 for one application on
// the GTX Titan X: the DVFS power curves at the highest and lowest memory
// frequencies plus the per-component utilizations at the default
// configuration.
type Fig2AppResult struct {
	App          string
	Curves       []Fig2Curve
	Utilization  map[hw.Component]float64
	DefaultPower float64
	// MemDropPercent is the power drop when the memory frequency falls from
	// the default (3505 MHz) to the lowest level (810 MHz) at the default
	// core clock — 52 % for BlackScholes, 24 % for CUTCP in the paper.
	MemDropPercent float64
}

// Fig2Result holds both application panels.
type Fig2Result struct {
	Device string
	Apps   []Fig2AppResult
}

// RunFig2 reproduces Fig. 2 (BlackScholes and CUTCP on the GTX Titan X).
func RunFig2(ctx context.Context, seed uint64) (*Fig2Result, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	ref := r.Device.DefaultConfig()
	memLevels := []float64{ref.MemMHz, r.Device.MemFreqs[0]} // 3505 and 810 MHz

	out := &Fig2Result{Device: deviceName}
	for _, short := range []string{"BLCKSC", "CUTCP"} {
		app, err := suites.ByShort(short)
		if err != nil {
			return nil, err
		}
		res := Fig2AppResult{App: short}
		for _, fm := range memLevels {
			curve := Fig2Curve{MemMHz: fm}
			for _, fc := range r.Device.CoreFreqs {
				p, err := r.Profiler.MeasureAppPower(ctx, app.App, hw.Config{CoreMHz: fc, MemMHz: fm})
				if err != nil {
					return nil, err
				}
				curve.CoreMHz = append(curve.CoreMHz, fc)
				curve.PowerW = append(curve.PowerW, p)
			}
			res.Curves = append(res.Curves, curve)
		}
		// Per-component utilization at the default configuration, from the
		// ground-truth execution (the paper plots achieved/peak throughput).
		if err := r.Sim.SetClocks(ref.MemMHz, ref.CoreMHz); err != nil {
			return nil, err
		}
		run, err := r.Sim.Execute(app.App.Kernels[0])
		if err != nil {
			return nil, err
		}
		res.Utilization = run.Exec.Utilization

		hi, err := r.Profiler.MeasureAppPower(ctx, app.App, ref)
		if err != nil {
			return nil, err
		}
		lo, err := r.Profiler.MeasureAppPower(ctx, app.App, hw.Config{CoreMHz: ref.CoreMHz, MemMHz: r.Device.MemFreqs[0]})
		if err != nil {
			return nil, err
		}
		res.DefaultPower = hi
		res.MemDropPercent = 100 * (hi - lo) / hi
		out.Apps = append(out.Apps, res)
	}
	return out, nil
}

// String renders the Fig. 2 series as text.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 — DVFS impact on power (%s)\n", r.Device)
	for _, app := range r.Apps {
		fmt.Fprintf(&sb, "  %s: %.0f W at default config; memory 3505→810 MHz drop: %.0f%%\n",
			app.App, app.DefaultPower, app.MemDropPercent)
		for _, c := range []hw.Component{hw.SP, hw.Int, hw.DP, hw.SF, hw.Shared, hw.L2, hw.DRAM} {
			if u := app.Utilization[c]; u >= 0.005 {
				fmt.Fprintf(&sb, "    U(%-6s) = %.2f\n", c, u)
			}
		}
		for _, curve := range app.Curves {
			fmt.Fprintf(&sb, "    fmem=%4.0f MHz:", curve.MemMHz)
			for i := range curve.CoreMHz {
				fmt.Fprintf(&sb, " %0.f:%.0fW", curve.CoreMHz[i], curve.PowerW[i])
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
