package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/parallel"
	"gpupower/internal/stats"
)

// RobustnessResult extends the paper's single-testbed evaluation: the whole
// pipeline (die instantiation → microbenchmarking → fitting → validation)
// is repeated across several independent die instances (seeds), reporting
// the spread of the headline Fig. 7 accuracy. A reproduction whose
// conclusions hinge on one lucky seed would show here.
type RobustnessResult struct {
	Seeds []uint64
	// MAE[device][i] is the Fig. 7 MAE of the device on Seeds[i].
	MAE map[string][]float64
}

// RunRobustness evaluates the Fig. 7 accuracy across the given seeds.
// Every (seed, device) cell is an independent pipeline on its own rig
// (distinct (device, seed) cache keys), so the full grid fans out across
// the worker pool at once; cell (si, di) writes only MAE[device][si], so
// the result layout is identical to the serial nested loops.
func RunRobustness(ctx context.Context, seeds []uint64) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: robustness needs at least one seed")
	}
	devices := []string{"Titan Xp", "GTX Titan X", "Tesla K40c"}
	out := &RobustnessResult{Seeds: append([]uint64(nil), seeds...), MAE: map[string][]float64{}}
	for _, name := range devices {
		out.MAE[name] = make([]float64, len(seeds))
	}
	err := parallel.ForEach(len(seeds)*len(devices), func(i int) error {
		si, di := i/len(devices), i%len(devices)
		seed, name := seeds[si], devices[di]
		res, err := RunFig7Device(ctx, name, seed)
		if err != nil {
			return fmt.Errorf("robustness: seed %d on %s: %w", seed, name, err)
		}
		out.MAE[name][si] = res.MAE
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats returns (mean, sample stddev, min, max) of a device's MAE series.
func (r *RobustnessResult) Stats(device string) (mean, std, min, max float64, err error) {
	series := r.MAE[device]
	if len(series) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("experiments: no robustness data for %q", device)
	}
	return stats.Mean(series), stats.StdDev(series), stats.Min(series), stats.Max(series), nil
}

// OrderingStable reports whether the Kepler-worst ordering holds on every
// seed (the paper's qualitative cross-device claim).
func (r *RobustnessResult) OrderingStable() bool {
	xp, tx, k40 := r.MAE["Titan Xp"], r.MAE["GTX Titan X"], r.MAE["Tesla K40c"]
	for i := range r.Seeds {
		if k40[i] < xp[i] || k40[i] < tx[i] {
			return false
		}
	}
	return true
}

// String renders the robustness table.
func (r *RobustnessResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Seed robustness of the Fig. 7 accuracy (%d die instances)\n", len(r.Seeds))
	for _, name := range []string{"Titan Xp", "GTX Titan X", "Tesla K40c"} {
		mean, std, mn, mx, err := r.Stats(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(&sb, "  %-12s MAE %.1f%% ± %.1f (range [%.1f, %.1f]) over seeds %v\n",
			name, mean, std, mn, mx, r.Seeds)
	}
	fmt.Fprintf(&sb, "  Kepler-worst ordering stable on every seed: %v\n", r.OrderingStable())
	return sb.String()
}
