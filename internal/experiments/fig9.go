package experiments

import (
	"context"
	"fmt"
	"strings"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
	"gpupower/internal/suites"
)

// Fig9SizeResult is one matrixMulCUBLAS input size: the measured and
// predicted power across the core ladder at the default memory frequency,
// and the utilization vector at the reference configuration.
type Fig9SizeResult struct {
	Size      int
	Util      core.Utilization
	CoreMHz   []float64
	Measured  []float64
	Predicted []float64
	// TDPCapped marks core frequencies where the model predicted a
	// TDP violation, so the prediction was re-issued at the next lower
	// ladder level (the paper's Fig. 9 footnote behaviour).
	TDPCapped []bool
}

// Fig9Result reproduces paper Fig. 9: the effect of the input-matrix size
// on matrixMulCUBLAS power, on the GTX Titan X.
type Fig9Result struct {
	Device  string
	Sizes   []Fig9SizeResult
	MAE     float64
	TDPNote string
}

// RunFig9 reproduces Fig. 9.
func RunFig9(ctx context.Context, seed uint64) (*Fig9Result, error) {
	const deviceName = "GTX Titan X"
	r, err := SharedRig(deviceName, seed)
	if err != nil {
		return nil, err
	}
	m, err := r.Model(ctx)
	if err != nil {
		return nil, err
	}
	out := &Fig9Result{Device: deviceName}
	fm := r.Device.DefaultMem

	var allPred, allMeas []float64
	for _, size := range []int{64, 512, 4096} {
		app, err := suites.MatrixMulCUBLAS(size)
		if err != nil {
			return nil, err
		}
		prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
		if err != nil {
			return nil, err
		}
		util, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
		if err != nil {
			return nil, err
		}
		sr := Fig9SizeResult{Size: size, Util: util}
		for _, fc := range r.Device.CoreFreqs {
			cfg := hw.Config{CoreMHz: fc, MemMHz: fm}
			pred, err := m.Predict(util, cfg)
			if err != nil {
				return nil, err
			}
			capped := false
			// Fig. 9 footnote: when the prediction at a frequency surpasses
			// TDP, the hardware would auto-decrease the clock; predict at the
			// closest lower level that does not violate TDP.
			for pred > r.Device.TDP {
				lower, ok := stepDown(r.Device.CoreFreqs, cfg.CoreMHz)
				if !ok {
					break
				}
				capped = true
				cfg.CoreMHz = lower
				pred, err = m.Predict(util, cfg)
				if err != nil {
					return nil, err
				}
			}
			meas, err := r.Profiler.MeasureAppPower(ctx, app.App, hw.Config{CoreMHz: fc, MemMHz: fm})
			if err != nil {
				return nil, err
			}
			sr.CoreMHz = append(sr.CoreMHz, fc)
			sr.Predicted = append(sr.Predicted, pred)
			sr.Measured = append(sr.Measured, meas)
			sr.TDPCapped = append(sr.TDPCapped, capped)
			if capped {
				out.TDPNote = fmt.Sprintf(
					"size %d at fcore=%.0f MHz predicted above TDP (%.0f W); prediction capped to fcore=%.0f MHz",
					size, fc, r.Device.TDP, cfg.CoreMHz)
			}
			allPred = append(allPred, pred)
			allMeas = append(allMeas, meas)
		}
		out.Sizes = append(out.Sizes, sr)
	}
	out.MAE, err = stats.MAPE(allPred, allMeas)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func stepDown(ladder []float64, f float64) (float64, bool) {
	for i := len(ladder) - 1; i >= 0; i-- {
		if ladder[i] < f {
			return ladder[i], true
		}
	}
	return 0, false
}

// String renders the Fig. 9 series.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9 — matrixMulCUBLAS input-size sweep (%s), MAE %.1f%%\n", r.Device, r.MAE)
	if r.TDPNote != "" {
		fmt.Fprintf(&sb, "  note: %s\n", r.TDPNote)
	}
	for _, s := range r.Sizes {
		fmt.Fprintf(&sb, "  %dx%d  U(SP)=%.2f U(Shared)=%.2f U(L2)=%.2f U(DRAM)=%.2f\n",
			s.Size, s.Size, s.Util[hw.SP], s.Util[hw.Shared], s.Util[hw.L2], s.Util[hw.DRAM])
		fmt.Fprintf(&sb, "    fcore:")
		for i := range s.CoreMHz {
			mark := ""
			if s.TDPCapped[i] {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %.0f:%.0f/%.0fW%s", s.CoreMHz[i], s.Measured[i], s.Predicted[i], mark)
		}
		sb.WriteString("  (measured/predicted, * = TDP-capped prediction)\n")
	}
	return sb.String()
}
