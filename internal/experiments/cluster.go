package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"gpupower/internal/cluster"
	"gpupower/internal/core"
	"gpupower/internal/governor"
	"gpupower/internal/parallel"
	"gpupower/internal/suites"
)

// clusterClasses is the fleet's job mix: validation applications spanning
// the paper's workload spectrum — compute-bound (CUTCP, BLCKSC), DRAM-bound
// (LBM) and balanced (GEMM) — weighted toward the compute-heavy end.
var clusterClasses = []struct {
	short  string
	weight float64
}{
	{"BLCKSC", 4},
	{"LBM", 3},
	{"CUTCP", 2},
	{"GEMM", 1},
}

// ClusterRow is one policy's fleet outcome on the common traffic trace.
type ClusterRow struct {
	Policy         string
	Jobs           int64
	MissPct        float64
	EnergyJ        float64
	AvgPowerW      float64
	P50Ms          float64
	P99Ms          float64
	EnergySavedPct float64 // vs the static-clock baseline row
	TraceHash      uint64
}

// ClusterResult is the fleet-simulation experiment: the same seeded job
// streams served under static clocks, the model-driven governor and the
// clairvoyant per-job oracle, plus the engine's raw event throughput
// (single core, sequential mode — the cluster_sim row of
// BENCH_results.json).
type ClusterResult struct {
	Devices        []string
	Classes        []string
	GPUs           int
	HorizonSeconds float64
	RatePerGPU     float64
	Seed           uint64

	Rows []ClusterRow

	// Events is the event count of one run (identical across policies:
	// every arrival is served, so runs differ in timing, not cardinality).
	Events int64
	// EventsPerSec is the sequential-mode engine throughput measured over
	// ThroughputRuns full fleet runs.
	EventsPerSec   float64
	ThroughputRuns int
}

// clusterFleet profiles the job-mix applications on every catalog device
// and assembles the fleet description: per (device, class), the utilization
// vector the power model consumes and the reference-clock service time.
// Profiling happens once per rig; the simulator reuses the shared fitted
// models.
func clusterFleet(ctx context.Context, seed uint64) ([]cluster.DeviceModel, []cluster.KernelClass, []string, error) {
	devices := AllDeviceNames()
	rigs, err := SharedRigs(ctx, devices, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	classes := make([]cluster.KernelClass, len(clusterClasses))
	names := make([]string, len(clusterClasses))
	for i, c := range clusterClasses {
		classes[i] = cluster.KernelClass{Name: c.short, Weight: c.weight}
		names[i] = c.short
	}
	fleet := make([]cluster.DeviceModel, len(rigs))
	for i, r := range rigs {
		m, err := r.Model(ctx)
		if err != nil {
			return nil, nil, nil, err
		}
		dcs := make([]cluster.DeviceClass, len(clusterClasses))
		for j, c := range clusterClasses {
			app, err := suites.ByShort(c.short)
			if err != nil {
				return nil, nil, nil, err
			}
			prof, err := r.Profiler.ProfileApp(ctx, app.App, m.Ref)
			if err != nil {
				return nil, nil, nil, err
			}
			u, err := core.AppUtilization(r.Device, prof, m.L2BytesPerCycle)
			if err != nil {
				return nil, nil, nil, err
			}
			var refSec float64
			for _, k := range prof.Kernels {
				refSec += k.Seconds
			}
			dcs[j] = cluster.DeviceClass{Util: u, RefSeconds: refSec}
		}
		fleet[i] = cluster.DeviceModel{Device: r.Device, Model: m, Classes: dcs}
	}
	return fleet, classes, devices, nil
}

// RunCluster simulates a fleet of gpus GPUs (split round-robin across the
// three catalog device models) serving horizonSeconds of Poisson traffic
// under each policy, then times the sequential engine for the events/sec
// row. All fleet metrics are deterministic for a given seed; only
// EventsPerSec is wall-clock.
func RunCluster(ctx context.Context, seed uint64, gpus int, horizonSeconds float64) (*ClusterResult, error) {
	fleet, classes, devices, err := clusterFleet(ctx, seed)
	if err != nil {
		return nil, err
	}
	opts := &cluster.Options{
		GPUs:           gpus,
		HorizonSeconds: horizonSeconds,
		Seed:           seed,
		Fleet:          fleet,
		Classes:        classes,
		Workload: cluster.Workload{
			Process:    cluster.Poisson,
			RatePerGPU: 60, // ~0.3-0.6 server utilization across the mix
			SlackMin:   2,
			SlackMax:   6,
		},
		Governor:   governor.MinEnergy,
		MaxStretch: 2, // never plan past half the tightest slack
	}
	out := &ClusterResult{
		Devices:        devices,
		GPUs:           gpus,
		HorizonSeconds: horizonSeconds,
		RatePerGPU:     opts.Workload.RatePerGPU,
		Seed:           seed,
	}
	for _, c := range classes {
		out.Classes = append(out.Classes, c.Name)
	}

	var staticEnergy float64
	var dvfsSim *cluster.Simulator
	for _, policy := range []cluster.Policy{cluster.Static, cluster.ModelDVFS, cluster.Oracle} {
		o := *opts
		o.Policy = policy
		sim, err := cluster.NewSimulator(ctx, &o)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster %v run: %w", policy, err)
		}
		row := ClusterRow{
			Policy:    policy.String(),
			Jobs:      m.Jobs,
			MissPct:   100 * m.MissRate,
			EnergyJ:   m.EnergyJ,
			AvgPowerW: m.AvgPowerW,
			P50Ms:     1e3 * m.P50Seconds,
			P99Ms:     1e3 * m.P99Seconds,
			TraceHash: m.TraceHash,
		}
		if policy == cluster.Static {
			staticEnergy = m.EnergyJ
		} else if staticEnergy > 0 {
			row.EnergySavedPct = 100 * (staticEnergy - m.EnergyJ) / staticEnergy
		}
		out.Rows = append(out.Rows, row)
		out.Events = m.Events
		if policy == cluster.ModelDVFS {
			dvfsSim = sim
		}
	}

	// Raw engine throughput: re-run the warm ModelDVFS simulator on one
	// core (sequential mode, the serial oracle path) until ~300 ms of wall
	// time has accumulated, so short CI horizons still time more than noise.
	prev := parallel.SetSequential(true)
	defer parallel.SetSequential(prev)
	var metrics cluster.Metrics
	var elapsed time.Duration
	var events int64
	for elapsed < 300*time.Millisecond {
		start := time.Now()
		if err := dvfsSim.RunInto(ctx, &metrics); err != nil {
			return nil, err
		}
		elapsed += time.Since(start)
		events += metrics.Events
		out.ThroughputRuns++
	}
	out.EventsPerSec = float64(events) / elapsed.Seconds()
	return out, nil
}

func (r *ClusterResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet DVFS simulation: %d GPUs (%s), %.0f s horizon, %.0f jobs/s/GPU, classes %s (seed %d)\n",
		r.GPUs, strings.Join(r.Devices, " / "), r.HorizonSeconds, r.RatePerGPU,
		strings.Join(r.Classes, ","), r.Seed)
	fmt.Fprintf(&sb, "  %-11s %10s %8s %14s %9s %9s %9s %10s\n",
		"policy", "jobs", "miss%", "energy kJ", "avg W", "p50 ms", "p99 ms", "saved%")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-11s %10d %8.2f %14.1f %9.1f %9.2f %9.2f %10.1f\n",
			row.Policy, row.Jobs, row.MissPct, row.EnergyJ/1e3, row.AvgPowerW,
			row.P50Ms, row.P99Ms, row.EnergySavedPct)
	}
	fmt.Fprintf(&sb, "  engine: %d events/run, %.2fM events/sec single-core (%d timed runs)\n",
		r.Events, r.EventsPerSec/1e6, r.ThroughputRuns)
	return sb.String()
}
