// Package baselines implements the comparator models the paper discusses in
// Sections II and VI, fitted on exactly the same training data as the
// proposed model so the comparison isolates the modelling assumptions:
//
//   - Abe et al. (IPDPS'14): per-domain frequency-linear regression trained
//     at 3 core × 3 memory frequencies, no voltage term. The paper reports
//     15 / 14 / 23.5 % errors for this family and argues its linear-in-f
//     assumption breaks on modern devices.
//   - GPUWattch-style (ISCA'13): the domain power always scales linearly
//     with its frequency (constant voltage) — equivalent to the proposed
//     model with V̄ ≡ 1.
//   - Fixed-configuration statistical model (Nagasaka et al., IGCC'10):
//     utilization regression at the reference configuration with no
//     DVFS awareness at all.
//   - Wu et al. (HPCA'15)-style: k-means clustering of power-scaling
//     curves plus a nearest-centroid classifier on utilization features.
package baselines

import (
	"context"
	"fmt"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/linalg"
)

// Input is what a baseline may know about an application: its utilization
// vector from reference-configuration events and (for the scaling-curve
// family) its measured power at the reference configuration.
type Input struct {
	Util     core.Utilization
	RefPower float64
}

// Model is a fitted baseline power model.
type Model interface {
	Name() string
	Predict(in Input, cfg hw.Config) (float64, error)
}

// abeComponents fixes the component order of the Abe regression.
var abeComponents = []hw.Component{hw.Int, hw.SP, hw.DP, hw.SF, hw.Shared, hw.L2}

// AbeModel is the frequency-linear two-domain regression:
//
//	P = c0 + (a0 + Σ a_i·U_i)·f_core + (b0 + b_1·U_dram)·f_mem
//
// estimated by ordinary least squares at 3 core × 3 memory frequencies
// (or as many as the device exposes).
type AbeModel struct {
	C0    float64
	A     []float64 // a0 then one per abeComponents
	B     []float64 // b0, b1
	Train []hw.Config
}

// Name implements Model.
func (m *AbeModel) Name() string { return "Abe et al. (linear-f regression)" }

func abeRow(u core.Utilization, cfg hw.Config) []float64 {
	row := make([]float64, 1+1+len(abeComponents)+2)
	row[0] = 1
	row[1] = cfg.CoreMHz
	for i, c := range abeComponents {
		row[2+i] = cfg.CoreMHz * u[c]
	}
	row[2+len(abeComponents)] = cfg.MemMHz
	row[3+len(abeComponents)] = cfg.MemMHz * u[hw.DRAM]
	return row
}

// Predict implements Model.
func (m *AbeModel) Predict(in Input, cfg hw.Config) (float64, error) {
	row := abeRow(in.Util, cfg)
	x := append([]float64{m.C0}, m.A...)
	x = append(x, m.B...)
	if len(row) != len(x) {
		return 0, fmt.Errorf("baselines: abe coefficient mismatch %d vs %d", len(row), len(x))
	}
	return linalg.Dot(row, x), nil
}

// pick3 selects low/mid/high entries of an ascending ladder (fewer when the
// ladder is shorter).
func pick3(ladder []float64) []float64 {
	switch len(ladder) {
	case 0:
		return nil
	case 1, 2, 3:
		return append([]float64(nil), ladder...)
	default:
		return []float64{ladder[0], ladder[len(ladder)/2], ladder[len(ladder)-1]}
	}
}

// FitAbe estimates the Abe regression from the training dataset, using only
// the 3×3 frequency grid the original method prescribes.
func FitAbe(d *core.Dataset) (*AbeModel, error) {
	cores := pick3(d.Device.CoreFreqs)
	mems := pick3(d.Device.MemFreqs)
	var train []hw.Config
	var rows [][]float64
	var rhs []float64
	for fi, cfg := range d.Configs {
		if !containsF(cores, cfg.CoreMHz) || !containsF(mems, cfg.MemMHz) {
			continue
		}
		train = append(train, cfg)
		for bi, bench := range d.Benchmarks {
			rows = append(rows, abeRow(bench.Util, cfg))
			rhs = append(rhs, d.Power[bi][fi])
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("baselines: no training configurations for Abe model")
	}
	a, err := linalg.NewMatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	// Original method: plain linear regression (coefficients may go
	// negative — one of its documented weaknesses). Ridge fallback keeps the
	// single-memory-frequency device solvable (f_mem column is constant and
	// collinear with the intercept there).
	x, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		x, err = linalg.RidgeLeastSquares(a, rhs, 1e-6)
		if err != nil {
			return nil, err
		}
	}
	nc := len(abeComponents)
	return &AbeModel{
		C0:    x[0],
		A:     append([]float64(nil), x[1:2+nc]...),
		B:     append([]float64(nil), x[2+nc:4+nc]...),
		Train: train,
	}, nil
}

func containsF(v []float64, x float64) bool {
	for _, y := range v {
		if y == x { //lint:ignore floateq ladder membership: training splits select exact catalog frequencies, not computed values
			return true
		}
	}
	return false
}

// LinearFreqModel is the GPUWattch-style comparator: the proposed model
// family with the voltage pinned to 1 everywhere, so each domain's power is
// strictly linear in its frequency.
type LinearFreqModel struct {
	inner *core.Model
}

// Name implements Model.
func (m *LinearFreqModel) Name() string { return "GPUWattch-style (linear-f, no voltage)" }

// Predict implements Model.
func (m *LinearFreqModel) Predict(in Input, cfg hw.Config) (float64, error) {
	return m.inner.Predict(in.Util, cfg)
}

// FitLinearFreq fits the linear-frequency comparator on the full dataset.
func FitLinearFreq(ctx context.Context, d *core.Dataset) (*LinearFreqModel, error) {
	opts := core.DefaultEstimatorOptions()
	opts.DisableVoltage = true
	inner, err := core.Estimate(ctx, d, opts)
	if err != nil {
		return nil, err
	}
	return &LinearFreqModel{inner: inner}, nil
}

// FixedConfigModel is the no-DVFS statistical comparator: a utilization
// regression fitted at the reference configuration; its prediction ignores
// the target configuration entirely.
type FixedConfigModel struct {
	coef []float64 // intercept + one per hw.Components
}

// Name implements Model.
func (m *FixedConfigModel) Name() string { return "Fixed-configuration regression (no DVFS)" }

func fixedRow(u core.Utilization) []float64 {
	row := make([]float64, 1+len(hw.Components))
	row[0] = 1
	for i, c := range hw.Components {
		row[1+i] = u[c]
	}
	return row
}

// Predict implements Model.
func (m *FixedConfigModel) Predict(in Input, _ hw.Config) (float64, error) {
	return linalg.Dot(fixedRow(in.Util), m.coef), nil
}

// FitFixedConfig fits the reference-configuration regression.
func FitFixedConfig(d *core.Dataset) (*FixedConfigModel, error) {
	refIdx := -1
	for i, cfg := range d.Configs {
		if cfg == d.Ref {
			refIdx = i
			break
		}
	}
	if refIdx < 0 {
		return nil, fmt.Errorf("baselines: reference configuration not in dataset")
	}
	var rows [][]float64
	var rhs []float64
	for bi, bench := range d.Benchmarks {
		rows = append(rows, fixedRow(bench.Util))
		rhs = append(rhs, d.Power[bi][refIdx])
	}
	a, err := linalg.NewMatrixFromRows(rows)
	if err != nil {
		return nil, err
	}
	x, err := linalg.LeastSquares(a, rhs)
	if err != nil {
		return nil, err
	}
	return &FixedConfigModel{coef: x}, nil
}
