package baselines

import (
	"context"
	"math"
	"testing"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
)

// linearDataset generates data from an exactly frequency-linear truth, the
// family the Abe regression assumes.
func linearDataset(seed uint64) *core.Dataset {
	dev := hw.GTXTitanX()
	rng := stats.NewRNG(seed)
	d := &core.Dataset{
		Device:          dev,
		Ref:             dev.DefaultConfig(),
		Configs:         dev.AllConfigs(),
		L2BytesPerCycle: dev.L2BytesPerCycle,
	}
	truth := func(u core.Utilization, cfg hw.Config) float64 {
		p := 20 + 0.02*cfg.CoreMHz + 0.01*cfg.MemMHz
		p += cfg.CoreMHz * (0.03*u[hw.SP] + 0.02*u[hw.Int] + 0.04*u[hw.SF] +
			0.02*u[hw.DP] + 0.02*u[hw.Shared] + 0.03*u[hw.L2])
		p += cfg.MemMHz * 0.03 * u[hw.DRAM]
		return p
	}
	for b := 0; b < 40; b++ {
		u := core.Utilization{}
		for _, c := range hw.Components {
			if rng.Float64() < 0.6 {
				u[c] = rng.Float64()
			}
		}
		d.Benchmarks = append(d.Benchmarks, core.TrainingSample{Name: "lin", Util: u})
		row := make([]float64, len(d.Configs))
		for fi, cfg := range d.Configs {
			row[fi] = truth(u, cfg)
		}
		d.Power = append(d.Power, row)
	}
	return d
}

func TestAbeRecoversLinearTruth(t *testing.T) {
	d := linearDataset(1)
	m, err := FitAbe(d)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation across every configuration.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		u := core.Utilization{}
		for _, c := range hw.Components {
			u[c] = rng.Float64()
		}
		in := Input{Util: u}
		for _, cfg := range d.Configs {
			want := 20 + 0.02*cfg.CoreMHz + 0.01*cfg.MemMHz +
				cfg.CoreMHz*(0.03*u[hw.SP]+0.02*u[hw.Int]+0.04*u[hw.SF]+
					0.02*u[hw.DP]+0.02*u[hw.Shared]+0.03*u[hw.L2]) +
				cfg.MemMHz*0.03*u[hw.DRAM]
			got, err := m.Predict(in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want)/want > 0.01 {
				t.Fatalf("Abe on linear truth: %g vs %g at %v", got, want, cfg)
			}
		}
	}
}

func TestAbeTrainsOn3x3Grid(t *testing.T) {
	d := linearDataset(2)
	m, err := FitAbe(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Train) != 9 {
		t.Fatalf("Abe trained on %d configs, want 3x3 = 9", len(m.Train))
	}
}

func TestFitLinearFreqPinsVoltage(t *testing.T) {
	d := linearDataset(3)
	m, err := FitLinearFreq(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() == "" {
		t.Fatal("empty name")
	}
	// On frequency-linear data it must be near-exact.
	u := core.Utilization{hw.SP: 0.5, hw.DRAM: 0.5}
	in := Input{Util: u}
	for _, cfg := range []hw.Config{{CoreMHz: 595, MemMHz: 810}, {CoreMHz: 1164, MemMHz: 4005}} {
		want := 20 + 0.02*cfg.CoreMHz + 0.01*cfg.MemMHz + cfg.CoreMHz*0.03*0.5 + cfg.MemMHz*0.03*0.5
		got, err := m.Predict(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("linear-freq on linear truth: %g vs %g", got, want)
		}
	}
}

func TestFixedConfigIgnoresConfiguration(t *testing.T) {
	d := linearDataset(4)
	m, err := FitFixedConfig(d)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Util: core.Utilization{hw.SP: 0.7, hw.DRAM: 0.2}}
	p1, err := m.Predict(in, hw.Config{CoreMHz: 595, MemMHz: 810})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Predict(in, hw.Config{CoreMHz: 1164, MemMHz: 4005})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("fixed-config model should ignore the configuration")
	}
	// At the reference configuration it must be accurate on training-like data.
	ref := d.Ref
	want := 20 + 0.02*ref.CoreMHz + 0.01*ref.MemMHz + ref.CoreMHz*0.03*0.7 + ref.MemMHz*0.03*0.2
	if math.Abs(p1-want)/want > 0.05 {
		t.Fatalf("fixed-config at ref: %g vs %g", p1, want)
	}
}

func TestWuModelScalesFromRefPower(t *testing.T) {
	d := linearDataset(5)
	m, err := FitWu(d, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Util: core.Utilization{hw.SP: 0.9, hw.L2: 0.3}, RefPower: 150}
	pRef, err := m.Predict(in, d.Ref)
	if err != nil {
		t.Fatal(err)
	}
	// At the reference configuration every scaling curve is 1.
	if math.Abs(pRef-150) > 1e-9 {
		t.Fatalf("Wu at ref = %g, want RefPower 150", pRef)
	}
	pLow, err := m.Predict(in, hw.Config{CoreMHz: 595, MemMHz: 810})
	if err != nil {
		t.Fatal(err)
	}
	if pLow >= pRef {
		t.Fatal("Wu prediction should drop at lower clocks")
	}
	if _, err := m.Predict(in, hw.Config{CoreMHz: 596, MemMHz: 810}); err == nil {
		t.Fatal("off-grid config accepted")
	}
}

func TestWuDeterministic(t *testing.T) {
	d := linearDataset(6)
	m1, err := FitWu(d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitWu(d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{Util: core.Utilization{hw.SP: 0.4}, RefPower: 100}
	for _, cfg := range d.Configs {
		p1, _ := m1.Predict(in, cfg)
		p2, _ := m2.Predict(in, cfg)
		if p1 != p2 {
			t.Fatal("Wu fitting is not deterministic")
		}
	}
}

func TestWuRejectsBadK(t *testing.T) {
	d := linearDataset(7)
	if _, err := FitWu(d, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k larger than the benchmark count is clamped, not an error.
	m, err := FitWu(d, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.K > len(d.Benchmarks) {
		t.Fatalf("k = %d exceeds benchmark count", m.K)
	}
}

func TestBaselineNames(t *testing.T) {
	d := linearDataset(8)
	abe, _ := FitAbe(d)
	fx, _ := FitFixedConfig(d)
	wu, _ := FitWu(d, 3, 1)
	for _, m := range []Model{abe, fx, wu} {
		if m.Name() == "" {
			t.Fatal("baseline with empty name")
		}
	}
}
