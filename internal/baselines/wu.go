package baselines

import (
	"fmt"
	"math"

	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/stats"
)

// WuModel is the Wu et al. (HPCA'15)-style comparator: training kernels are
// clustered by how their power scales across V-F configurations (k-means on
// normalized power-scaling curves), and a nearest-centroid classifier on
// utilization features assigns new applications to a cluster. The predicted
// power at a configuration is the application's measured reference power
// multiplied by the cluster's average scaling factor for that configuration.
type WuModel struct {
	K        int
	Configs  []hw.Config
	RefIndex int
	// scaling[c][f] is cluster c's mean power-scaling factor at Configs[f].
	scaling [][]float64
	// centroidUtil[c] is the mean utilization feature vector of cluster c.
	centroidUtil [][]float64
}

// Name implements Model.
func (m *WuModel) Name() string { return "Wu et al.-style (scaling clusters + classifier)" }

// utilFeatures flattens a utilization vector in canonical component order.
func utilFeatures(u core.Utilization) []float64 {
	f := make([]float64, len(hw.Components))
	for i, c := range hw.Components {
		f[i] = u[c]
	}
	return f
}

// Predict implements Model.
func (m *WuModel) Predict(in Input, cfg hw.Config) (float64, error) {
	fi := -1
	for i, c := range m.Configs {
		if c == cfg {
			fi = i
			break
		}
	}
	if fi < 0 {
		return 0, fmt.Errorf("baselines: configuration %v unknown to Wu model", cfg)
	}
	feat := utilFeatures(in.Util)
	best, bestD := -1, math.Inf(1)
	for c := range m.centroidUtil {
		if d := stats.SqDist(feat, m.centroidUtil[c]); d < bestD {
			best, bestD = c, d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("baselines: Wu model has no clusters")
	}
	return in.RefPower * m.scaling[best][fi], nil
}

// FitWu clusters the training benchmarks into k scaling groups. Benchmarks
// whose reference power is zero are skipped (no scaling curve exists).
func FitWu(d *core.Dataset, k int, seed uint64) (*WuModel, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: Wu cluster count %d must be >= 1", k)
	}
	refIdx := -1
	for i, cfg := range d.Configs {
		if cfg == d.Ref {
			refIdx = i
			break
		}
	}
	if refIdx < 0 {
		return nil, fmt.Errorf("baselines: reference configuration not in dataset")
	}
	// Scaling curve per benchmark.
	var curves [][]float64
	var feats [][]float64
	for bi := range d.Benchmarks {
		ref := d.Power[bi][refIdx]
		if ref <= 0 {
			continue
		}
		curve := make([]float64, len(d.Configs))
		for fi := range d.Configs {
			curve[fi] = d.Power[bi][fi] / ref
		}
		curves = append(curves, curve)
		feats = append(feats, utilFeatures(d.Benchmarks[bi].Util))
	}
	if len(curves) == 0 {
		return nil, fmt.Errorf("baselines: no usable training curves for Wu model")
	}
	if k > len(curves) {
		k = len(curves)
	}
	assign, _ := stats.KMeans(curves, k, seed)

	m := &WuModel{K: k, Configs: append([]hw.Config(nil), d.Configs...), RefIndex: refIdx}
	for c := 0; c < k; c++ {
		var members []int
		for i, a := range assign {
			if a == c {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		sc := make([]float64, len(d.Configs))
		cu := make([]float64, len(hw.Components))
		for _, i := range members {
			for fi := range sc {
				sc[fi] += curves[i][fi]
			}
			for j := range cu {
				cu[j] += feats[i][j]
			}
		}
		inv := 1 / float64(len(members))
		for fi := range sc {
			sc[fi] *= inv
		}
		for j := range cu {
			cu[j] *= inv
		}
		m.scaling = append(m.scaling, sc)
		m.centroidUtil = append(m.centroidUtil, cu)
	}
	if len(m.scaling) == 0 {
		return nil, fmt.Errorf("baselines: Wu clustering produced no clusters")
	}
	return m, nil
}
