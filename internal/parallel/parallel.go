// Package parallel is the concurrency substrate of the estimation engine:
// a bounded, GOMAXPROCS-aware worker pool with deterministic semantics.
//
// Design rules (see DESIGN.md §"Concurrency architecture"):
//
//   - Disjoint writes. Every parallel loop in this repository writes result
//     i (and only result i) to slot i of a pre-sized output; no two
//     goroutines ever write the same memory. Combined with per-item
//     arithmetic that is identical to the serial loop body, parallel
//     execution is bitwise-identical to serial execution.
//   - Ordered reductions. When a loop reduces to a scalar (e.g. a training
//     SSE), workers fill per-item partials and the caller folds them in
//     index order, so the floating-point association is fixed and
//     independent of scheduling.
//   - Deterministic errors. Per-item errors land in slot i and are joined
//     in index order, so the reported error does not depend on which
//     goroutine lost the race.
//   - Sequential mode. SetSequential(true) (or GPUPOWER_SEQUENTIAL=1)
//     forces every loop through the inline serial path — the
//     reproducibility oracle the equivalence tests compare against.
//
// Loops fall back to the inline path automatically when the pool would
// have a single worker or the trip count is 1, so single-core machines
// (GOMAXPROCS=1) pay zero goroutine overhead.
package parallel

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

// sequential forces the inline serial path when non-zero. It is a process
// global (not per-pool) so reproducibility tests can pin the whole engine.
var sequential atomic.Bool

// maxWorkers, when > 0, caps pool sizing below GOMAXPROCS.
var maxWorkers atomic.Int64

func init() {
	if v := os.Getenv("GPUPOWER_SEQUENTIAL"); v == "1" || v == "true" {
		sequential.Store(true)
	}
}

// SetSequential toggles process-wide sequential mode and returns the
// previous setting. Tests use it to obtain a serial oracle:
//
//	prev := parallel.SetSequential(true)
//	defer parallel.SetSequential(prev)
func SetSequential(on bool) (previous bool) {
	return sequential.Swap(on)
}

// Sequential reports whether sequential mode is active.
func Sequential() bool { return sequential.Load() }

// SetMaxWorkers caps the default pool size (0 removes the cap, restoring
// GOMAXPROCS sizing). It returns the previous cap. The cap never raises
// the pool above GOMAXPROCS: this is a throttle, not an oversubscription
// knob.
func SetMaxWorkers(n int) (previous int) {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the effective default pool size: GOMAXPROCS, clipped by
// SetMaxWorkers, and 1 in sequential mode.
func Workers() int {
	if sequential.Load() {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if cap := int(maxWorkers.Load()); cap > 0 && cap < w {
		w = cap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pool is a bounded worker pool. The zero value and a nil *Pool both use
// the default (GOMAXPROCS-aware) sizing; NewPool pins an explicit size.
// Pools carry no goroutines between calls — workers are spawned per loop
// and joined before the loop returns, so a Pool is safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker bound. workers <= 0 selects
// the default GOMAXPROCS-aware sizing.
func NewPool(workers int) *Pool { return &Pool{workers: workers} }

// size resolves the worker count for a loop of n items.
func (p *Pool) size(n int) int {
	w := 0
	if p != nil {
		w = p.workers
	}
	if w <= 0 {
		w = Workers()
	} else if sequential.Load() {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n), using up to the pool's worker
// bound. Errors are collected per index and joined in index order; a
// non-nil error stops the distribution of further indices (in-flight items
// finish). fn must confine its writes to data owned by item i.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p.size(n) == 1 {
		// Inline serial path, duplicated from ForEachWorker so the adapter
		// closure below is never built when the loop won't fan out — that
		// closure escapes and would cost one allocation per call even on
		// single-core hosts.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("parallel: item %d: %w", i, err)
			}
		}
		return nil
	}
	return p.ForEachWorker(n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker id (0 ≤ w < workers) passed to
// fn, so callers can maintain per-worker scratch buffers and keep the
// inner loop allocation-free:
//
//	scratch := make([][]float64, workers)
//	pool.ForEachWorker(n, func(w, i int) error { use scratch[w] ... })
//
// Worker 0 is always the caller's goroutine when the loop degenerates to
// the inline path.
func (p *Pool) ForEachWorker(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.size(n)
	if workers == 1 {
		// Inline serial path: same iteration order as a plain for loop.
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return fmt.Errorf("parallel: item %d: %w", i, err)
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = fmt.Errorf("parallel: item %d: %w", i, err)
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		// Join in index order so the aggregate error is deterministic for
		// a deterministic set of failing items.
		var nonNil []error
		for _, e := range errs {
			if e != nil {
				nonNil = append(nonNil, e)
			}
		}
		return errors.Join(nonNil...)
	}
	return nil
}

// Map runs fn for every index and returns the results in index order.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapPool[T](nil, n, fn)
}

// MapPool is Map on an explicit pool.
func MapPool[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn over [0, n) on the default pool.
func ForEach(n int, fn func(i int) error) error {
	return (*Pool)(nil).ForEach(n, fn)
}

// ForEachWorker runs fn over [0, n) on the default pool, passing the
// worker id for per-worker scratch.
func ForEachWorker(n int, fn func(worker, i int) error) error {
	return (*Pool)(nil).ForEachWorker(n, fn)
}

// PerWorker is a lazily-built, pool-sized set of per-worker values that
// survives across loops, so iterative engines (the Section III-D refit
// loop) reuse per-worker scratch buffers instead of reallocating them every
// ForEachWorker call:
//
//	rows := parallel.NewPerWorker(func() []float64 { return make([]float64, n) })
//	for iter := ... {
//	    rows.Ensure(parallel.Workers())
//	    parallel.ForEachWorker(n, func(w, i int) error { use rows.Get(w) ... })
//	}
//
// Ensure must be called before the loop (growing during a loop would race);
// Get is then a plain slice index, safe from any worker.
type PerWorker[T any] struct {
	make func() T
	vals []T
}

// NewPerWorker returns a per-worker value set built on demand by factory.
func NewPerWorker[T any](factory func() T) *PerWorker[T] {
	return &PerWorker[T]{make: factory}
}

// Ensure grows the set to at least n values. It is not safe to call
// concurrently with Get from workers; call it before fanning out.
func (p *PerWorker[T]) Ensure(n int) {
	for len(p.vals) < n {
		p.vals = append(p.vals, p.make())
	}
}

// Get returns worker w's value. Ensure(w+1) must have happened first.
func (p *PerWorker[T]) Get(w int) T { return p.vals[w] }

// SumOrdered folds per-item partial sums in index order: workers compute
// partial[i] = fn(i) concurrently (disjoint writes), then the fold runs
// serially from 0 to n-1. The floating-point association therefore matches
// the serial loop "for i { s += fn(i) }" exactly whenever each fn(i) is
// itself computed with serial-identical arithmetic.
func SumOrdered(n int, fn func(i int) (float64, error)) (float64, error) {
	partial := make([]float64, n)
	if err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		partial[i] = v
		return nil
	}); err != nil {
		return 0, err
	}
	var s float64
	for _, v := range partial {
		s += v
	}
	return s, nil
}
