package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	visits := make([]int32, n)
	if err := ForEach(n, func(i int) error {
		atomic.AddInt32(&visits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	if err := ForEach(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty loop")
	}
}

func TestForEachErrorAggregation(t *testing.T) {
	// All failing items must appear, joined in index order.
	sentinel := errors.New("boom")
	err := NewPool(1).ForEach(5, func(i int) error {
		if i == 2 {
			return fmt.Errorf("item-%d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error chain lost: %v", err)
	}
	if !strings.Contains(err.Error(), "item 2") {
		t.Fatalf("error does not identify the item: %v", err)
	}
}

func TestForEachParallelErrorIsDeterministicForSerialPool(t *testing.T) {
	// With an explicit multi-worker pool every failing index is reported,
	// joined in index order.
	err := NewPool(4).ForEach(8, func(i int) error {
		if i%2 == 1 {
			return fmt.Errorf("odd %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Index order: any reported subset must be ascending.
	msg := err.Error()
	last := -1
	for i := 1; i < 8; i += 2 {
		pos := strings.Index(msg, fmt.Sprintf("item %d", i))
		if pos >= 0 && pos < last {
			t.Fatalf("errors out of index order: %q", msg)
		}
		if pos >= 0 {
			last = pos
		}
	}
}

func TestForEachWorkerScratchIsExclusive(t *testing.T) {
	// Per-worker scratch slots must never be used by two goroutines at
	// once; -race verifies the absence of data races, this verifies the id
	// range.
	workers := Workers()
	busy := make([]atomic.Bool, workers)
	err := ForEachWorker(200, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range [0,%d)", w, workers)
		}
		if !busy[w].CompareAndSwap(false, true) {
			return fmt.Errorf("worker slot %d used concurrently", w)
		}
		defer busy[w].Store(false)
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(3, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("bad")
		}
		return i, nil
	}); err == nil {
		t.Fatal("Map swallowed the error")
	}
}

func TestSequentialMode(t *testing.T) {
	prev := SetSequential(true)
	defer SetSequential(prev)
	if !Sequential() {
		t.Fatal("sequential mode not reported")
	}
	if w := Workers(); w != 1 {
		t.Fatalf("sequential Workers() = %d, want 1", w)
	}
	// The inline path must run in index order on the caller's goroutine.
	var order []int
	if err := ForEachWorker(10, func(w, i int) error {
		if w != 0 {
			return fmt.Errorf("sequential worker id %d", w)
		}
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order %v", order)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if w := Workers(); w != 1 {
		t.Fatalf("capped Workers() = %d, want 1", w)
	}
	SetMaxWorkers(0)
	if w := Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("uncapped Workers() = %d, want GOMAXPROCS", w)
	}
}

func TestSumOrderedMatchesSerialAssociation(t *testing.T) {
	// Values chosen so that summation order changes the result in the last
	// ulp: SumOrdered must reproduce the serial left fold exactly.
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 1.0 / float64(3*i+1)
	}
	var serial float64
	for _, v := range vals {
		serial += v
	}
	got, err := SumOrdered(len(vals), func(i int) (float64, error) { return vals[i], nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != serial {
		t.Fatalf("SumOrdered = %.17g, serial fold = %.17g", got, serial)
	}
}

func TestPoolSizeBounds(t *testing.T) {
	if got := NewPool(8).size(3); got != 3 {
		t.Fatalf("size clipped to n: got %d", got)
	}
	if got := NewPool(0).size(1000); got != Workers() {
		t.Fatalf("default sizing: got %d, want %d", got, Workers())
	}
	var nilPool *Pool
	if got := nilPool.size(1000); got != Workers() {
		t.Fatalf("nil pool sizing: got %d, want %d", got, Workers())
	}
}
