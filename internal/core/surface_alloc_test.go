package core

import (
	"context"
	"testing"

	"gpupower/internal/hw"
)

// TestColdSurfaceAllocsBounded is the allocation regression test for the
// cold DVFS-search path: a surface-cache miss — the cost every
// EvaluateOperatingPoints/FindBestConfig call paid before PR 4, and the
// cost the cluster simulator's decision-cache misses pay now. The compute
// rides the device's memoized Ladder()/LadderIndex and lays the four float
// columns into one backing array, so a full ladder evaluation is two
// allocations (Surface + backing) plus the amortized cache insert; the
// historical cold path was 11 allocs / 7.4 KB per op.
func TestColdSurfaceAllocsBounded(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 17)
	u := Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2, hw.Int: 0.1}
	ref := dev.DefaultConfig()
	c := NewSurfaceCache(64)
	ctx := context.Background()

	// Warm the per-device memoization (ladder + index) so the measurement
	// sees the steady state every later caller sees.
	if _, err := c.Get(ctx, m, dev, ref, u); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		m.InvalidateSurfaces() // force a full ladder recompute per run
		if _, err := c.Get(ctx, m, dev, ref, u); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 4
	if allocs > maxAllocs {
		t.Fatalf("cold surface compute allocates %.1f times per op, want <= %d", allocs, maxAllocs)
	}
}
