package core

import (
	"path/filepath"
	"testing"

	"gpupower/internal/hw"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := referenceModel()
	_ = m.Voltages.Set(hw.Config{CoreMHz: 595, MemMHz: 810}, 0.87, 1.02)
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.DeviceName != m.DeviceName || back.Ref != m.Ref {
		t.Fatal("identity fields lost")
	}
	if back.Beta != m.Beta || back.OmegaMem != m.OmegaMem {
		t.Fatal("coefficients lost")
	}
	for c, w := range m.OmegaCore {
		if back.OmegaCore[c] != w {
			t.Fatalf("ω_%s lost", c)
		}
	}
	vc, vm, err := back.Voltages.At(hw.Config{CoreMHz: 595, MemMHz: 810})
	if err != nil {
		t.Fatal(err)
	}
	if vc != 0.87 || vm != 1.02 {
		t.Fatalf("voltage table lost: (%g, %g)", vc, vm)
	}
	if back.L2BytesPerCycle != m.L2BytesPerCycle || back.Iterations != m.Iterations || back.Converged != m.Converged {
		t.Fatal("metadata lost")
	}
}

func TestModelSaveLoad(t *testing.T) {
	m := referenceModel()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.DeviceName != m.DeviceName {
		t.Fatal("load mismatch")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var m Model
	if err := m.UnmarshalJSON([]byte(`{"omega_core": [1, 2]}`)); err == nil {
		t.Fatal("short coefficient vector accepted")
	}
	if err := m.UnmarshalJSON([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMarshalRejectsInvalidModel(t *testing.T) {
	m := referenceModel()
	m.Beta[0] = -1
	if _, err := m.MarshalJSON(); err == nil {
		t.Fatal("invalid model marshalled")
	}
}
