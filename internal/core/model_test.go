package core

import (
	"testing"

	"gpupower/internal/hw"
)

// referenceModel builds a small, fully valid model for unit tests.
func referenceModel() *Model {
	dev := hw.GTXTitanX()
	volt := NewVoltageTable(dev.CoreFreqs, dev.MemFreqs)
	m := &Model{
		DeviceName: dev.Name,
		Ref:        dev.DefaultConfig(),
		Beta:       [4]float64{15, 0.017, 8, 0.0126},
		OmegaCore: map[hw.Component]float64{
			hw.Int: 0.025, hw.SP: 0.030, hw.DP: 0.020,
			hw.SF: 0.045, hw.Shared: 0.020, hw.L2: 0.030,
		},
		OmegaMem:        0.0334,
		Voltages:        volt,
		L2BytesPerCycle: 700,
		Iterations:      10,
		Converged:       true,
	}
	return m
}

func TestVoltageTableRoundTrip(t *testing.T) {
	dev := hw.GTXTitanX()
	v := NewVoltageTable(dev.CoreFreqs, dev.MemFreqs)
	cfg := hw.Config{CoreMHz: 595, MemMHz: 810}
	vc, vm, err := v.At(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vc != 1 || vm != 1 {
		t.Fatal("fresh table should be all ones")
	}
	if err := v.Set(cfg, 0.9, 1.1); err != nil {
		t.Fatal(err)
	}
	vc, vm, err = v.At(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vc != 0.9 || vm != 1.1 {
		t.Fatalf("At = (%g, %g)", vc, vm)
	}
	if _, _, err := v.At(hw.Config{CoreMHz: 123, MemMHz: 810}); err == nil {
		t.Fatal("off-grid config accepted")
	}
	if err := v.Set(hw.Config{CoreMHz: 595, MemMHz: 999}, 1, 1); err == nil {
		t.Fatal("off-grid set accepted")
	}
}

func TestVoltageTableClone(t *testing.T) {
	dev := hw.GTXTitanX()
	v := NewVoltageTable(dev.CoreFreqs, dev.MemFreqs)
	c := v.Clone()
	_ = c.Set(dev.DefaultConfig(), 2, 2)
	vc, _, _ := v.At(dev.DefaultConfig())
	if vc != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDecomposeMatchesEquations(t *testing.T) {
	m := referenceModel()
	cfg := hw.Config{CoreMHz: 595, MemMHz: 810}
	if err := m.Voltages.Set(cfg, 0.9, 1.0); err != nil {
		t.Fatal(err)
	}
	u := Utilization{hw.SP: 0.8, hw.DRAM: 0.5, hw.L2: 0.2}
	bd, err := m.Decompose(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vc, vm := 0.9, 1.0
	wantConst := m.Beta[0]*vc + vc*vc*595*m.Beta[1] + m.Beta[2]*vm + vm*vm*810*m.Beta[3]
	if !almostEq(bd.Constant, wantConst, 1e-9) {
		t.Fatalf("constant = %g, want %g", bd.Constant, wantConst)
	}
	if !almostEq(bd.Component[hw.SP], vc*vc*595*0.030*0.8, 1e-9) {
		t.Fatalf("SP power wrong")
	}
	if !almostEq(bd.Component[hw.DRAM], vm*vm*810*0.0334*0.5, 1e-9) {
		t.Fatalf("DRAM power wrong")
	}
	if bd.Component[hw.DP] != 0 {
		t.Fatal("unused component should contribute 0")
	}
	p, err := m.Predict(u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(p, bd.Total(), 1e-12) {
		t.Fatal("Predict != Decompose total")
	}
}

func TestPredictOffGridConfig(t *testing.T) {
	m := referenceModel()
	if _, err := m.Predict(Utilization{}, hw.Config{CoreMHz: 1000, MemMHz: 3505}); err == nil {
		t.Fatal("off-grid prediction accepted")
	}
}

func TestPredictedCoreVoltage(t *testing.T) {
	m := referenceModel()
	freqs, vbar, err := m.PredictedCoreVoltage(3505)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != 16 || len(vbar) != 16 {
		t.Fatalf("ladder lengths %d/%d", len(freqs), len(vbar))
	}
	if _, _, err := m.PredictedCoreVoltage(999); err == nil {
		t.Fatal("unknown memory frequency accepted")
	}
	// Returned slices are copies.
	vbar[0] = 42
	_, again, _ := m.PredictedCoreVoltage(3505)
	if again[0] == 42 {
		t.Fatal("PredictedCoreVoltage returns internal storage")
	}
}

func TestModelValidate(t *testing.T) {
	if err := referenceModel().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(m *Model){
		"negative beta":    func(m *Model) { m.Beta[0] = -1 },
		"missing omega":    func(m *Model) { delete(m.OmegaCore, hw.SF) },
		"negative omega":   func(m *Model) { m.OmegaCore[hw.SP] = -0.1 },
		"negative omegaM":  func(m *Model) { m.OmegaMem = -1 },
		"nil voltages":     func(m *Model) { m.Voltages = nil },
		"zero l2 peak":     func(m *Model) { m.L2BytesPerCycle = 0 },
		"zero voltage":     func(m *Model) { m.Voltages.VCore[0][0] = 0 },
		"zero mem voltage": func(m *Model) { m.Voltages.VMem[0][0] = -1 },
	}
	for name, mod := range cases {
		m := referenceModel()
		mod(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
