package core

import (
	"math"
	"testing"

	"gpupower/internal/cupti"
	"gpupower/internal/hw"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// syntheticMetrics builds an exact Table I metric set for a hypothetical
// kernel on the GTX Titan X at the default configuration.
func syntheticMetrics(aCycles float64) map[cupti.Metric]float64 {
	return map[cupti.Metric]float64{
		cupti.MetricACycles:     aCycles,
		cupti.MetricWarpsSPInt:  2.7e8,
		cupti.MetricInstInt:     0.3e8 * 32, // 1/9 of the combined warps are INT
		cupti.MetricInstSP:      2.4e8 * 32,
		cupti.MetricWarpsDP:     1e7,
		cupti.MetricWarpsSF:     5e7,
		cupti.MetricSharedLoad:  2e6,
		cupti.MetricSharedStore: 1e6,
		cupti.MetricL2Read:      8e6,
		cupti.MetricL2Write:     4e6,
		cupti.MetricDRAMRead:    6e6,
		cupti.MetricDRAMWrite:   2e6,
	}
}

func TestUtilizationFromMetricsEquations(t *testing.T) {
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	aCycles := 5e-3 * ref.CoreMHz * 1e6 // 5 ms of active time
	m := syntheticMetrics(aCycles)
	const l2bpc = 768.0

	u, err := UtilizationFromMetrics(dev, ref, m, l2bpc)
	if err != nil {
		t.Fatal(err)
	}

	// Eq. 10: warps split 1:8 between INT and SP.
	warpsInt := 2.7e8 * 1.0 / 9.0
	warpsSP := 2.7e8 * 8.0 / 9.0
	// Eq. 8 (device-total form).
	wantInt := warpsInt * 32 / (aCycles * 128 * 24)
	wantSP := warpsSP * 32 / (aCycles * 128 * 24)
	wantDP := 1e7 * 32 / (aCycles * 4 * 24)
	wantSF := 5e7 * 32 / (aCycles * 32 * 24)
	// Eq. 9.
	seconds := aCycles / (ref.CoreMHz * 1e6)
	wantShared := (3e6 * 128) / seconds / dev.PeakSharedBandwidth(ref.CoreMHz)
	wantL2 := (12e6 * 32) / seconds / (ref.CoreMHz * 1e6 * l2bpc)
	wantDRAM := (8e6 * 32) / seconds / dev.PeakDRAMBandwidth(ref.MemMHz)

	checks := []struct {
		c    hw.Component
		want float64
	}{
		{hw.Int, wantInt}, {hw.SP, wantSP}, {hw.DP, wantDP}, {hw.SF, wantSF},
		{hw.Shared, wantShared}, {hw.L2, wantL2}, {hw.DRAM, wantDRAM},
	}
	for _, c := range checks {
		if !almostEq(u[c.c], c.want, 1e-12) {
			t.Errorf("U(%s) = %g, want %g", c.c, u[c.c], c.want)
		}
	}
}

func TestUtilizationClamping(t *testing.T) {
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	m := syntheticMetrics(1e6)
	// Absurdly high DRAM sectors: must clamp to 1.
	m[cupti.MetricDRAMRead] = 1e15
	u, err := UtilizationFromMetrics(dev, ref, m, 768)
	if err != nil {
		t.Fatal(err)
	}
	if u[hw.DRAM] != 1 {
		t.Fatalf("U(DRAM) = %g, want clamp at 1", u[hw.DRAM])
	}
}

func TestUtilizationZeroInstructionSplit(t *testing.T) {
	// No INT/SP instructions at all: both utilizations must be zero, not NaN.
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	m := syntheticMetrics(1e9)
	m[cupti.MetricWarpsSPInt] = 0
	m[cupti.MetricInstInt] = 0
	m[cupti.MetricInstSP] = 0
	u, err := UtilizationFromMetrics(dev, ref, m, 768)
	if err != nil {
		t.Fatal(err)
	}
	if u[hw.Int] != 0 || u[hw.SP] != 0 {
		t.Fatalf("INT/SP = (%g, %g), want zeros", u[hw.Int], u[hw.SP])
	}
	if math.IsNaN(u[hw.Int]) {
		t.Fatal("NaN utilization")
	}
}

func TestUtilizationErrors(t *testing.T) {
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	m := syntheticMetrics(0)
	if _, err := UtilizationFromMetrics(dev, ref, m, 768); err == nil {
		t.Fatal("zero active cycles accepted")
	}
	m = syntheticMetrics(1e9)
	if _, err := UtilizationFromMetrics(dev, ref, m, 0); err == nil {
		t.Fatal("zero L2 peak accepted")
	}
}

func TestUtilizationValidateAndClone(t *testing.T) {
	u := Utilization{hw.SP: 0.5, hw.DRAM: 0.9}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	c := u.Clone()
	c[hw.SP] = 0.1
	if u[hw.SP] != 0.5 {
		t.Fatal("Clone shares storage")
	}
	bad := Utilization{hw.SP: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range utilization accepted")
	}
	bad2 := Utilization{hw.Component(42): 0.5}
	if err := bad2.Validate(); err == nil {
		t.Fatal("invalid component accepted")
	}
}
