// Prediction surfaces: memoized evaluations of a fitted model over a
// device's full frequency ladder (DESIGN.md §10).
//
// The DVFS search, the real-time governor and the auto-tuner all ask the
// same question — "what are power, relative time, relative energy and EDP
// at every ladder configuration for this utilization vector?" — and they
// ask it repeatedly for the same (model, device, reference, utilization)
// tuple: every governor decision for an already-profiled kernel, every
// repeated FindBestConfig in a sweep. A Surface answers it once; the
// sharded SurfaceCache makes the answer safe to share across goroutines.
//
// Invalidation is generational: the cache key includes Model.Generation(),
// a process-unique value drawn lazily per model instance. A refit returns a
// new *Model and therefore a new generation; in-place mutation requires an
// explicit InvalidateSurfaces call. Stale generations are evicted when a
// shard reaches capacity. Errors (voltage-table misses, non-positive
// reference power, cancellation) are never cached.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
)

// flatUtil is a utilization vector flattened into the canonical component
// order — CoreOmegaOrder (= hw.CoreComponents) then DRAM — matching the
// estimator's base blocks. Flattening once moves every hot prediction loop
// off map lookups while preserving the exact values the map path reads.
type flatUtil [nUtil]float64

// flattenUtil projects u onto the canonical order. Missing components read
// as zero, exactly as they do through the map.
func flattenUtil(u Utilization) flatUtil {
	var f flatUtil
	for i, c := range CoreOmegaOrder {
		f[i] = u[c]
	}
	f[nUtil-1] = u[hw.DRAM]
	return f
}

// flatOmega flattens the model's dynamic coefficients into the same order.
func (m *Model) flatOmega() [nUtil]float64 {
	var om [nUtil]float64
	for i, c := range CoreOmegaOrder {
		om[i] = m.OmegaCore[c]
	}
	om[nUtil-1] = m.OmegaMem
	return om
}

// predictFlat is the map-free fast path of Predict: term for term the
// arithmetic of Decompose plus the hw.SumComponents fold, evaluated on
// flattened utilization and coefficient blocks. surface_test.go pins the
// bitwise equality of the two paths.
func (m *Model) predictFlat(uf *flatUtil, om *[nUtil]float64, cfg hw.Config) (float64, error) {
	vc, vm, err := m.Voltages.At(cfg)
	if err != nil {
		return 0, err
	}
	// Eq. 6 + Eq. 7 constant part, association identical to Decompose.
	constant := m.Beta[0]*vc + vc*vc*cfg.CoreMHz*m.Beta[1] +
		m.Beta[2]*vm + vm*vm*cfg.MemMHz*m.Beta[3]
	// Component fold in hw.Components order (core components then DRAM),
	// replicating Breakdown.Total's SumComponents association.
	var s float64
	for i := 0; i < nUtil-1; i++ {
		s += vc * vc * cfg.CoreMHz * om[i] * uf[i]
	}
	s += vm * vm * cfg.MemMHz * om[nUtil-1] * uf[nUtil-1]
	return constant + s, nil
}

// relTimeFlat is EstimateRelativeTime on a flattened utilization block:
// same max scans in the same component order, same arithmetic.
func relTimeFlat(uf *flatUtil, ref, cfg hw.Config) float64 {
	var coreU float64
	for i := 0; i < nUtil-1; i++ {
		if uf[i] > coreU {
			coreU = uf[i]
		}
	}
	memU := uf[nUtil-1]
	bound := math.Max(coreU, memU)
	if bound <= 0 {
		return 1 // no measurable activity: latency-bound, frequency-insensitive
	}
	coreTime := coreU * ref.CoreMHz / cfg.CoreMHz
	memTime := memU * ref.MemMHz / cfg.MemMHz
	return math.Max(coreTime, memTime) / bound
}

// PredictAll evaluates the model at utilization u for every configuration
// in configs, writing the predictions into dst (len(configs)). It is the
// batch sibling of Predict — identical per-point arithmetic, one flatten
// of u and of the coefficient maps for the whole batch, no allocation.
//
//gpower:noalloc batch predictions allocate only on error paths
func (m *Model) PredictAll(u Utilization, configs []hw.Config, dst []float64) error {
	if len(dst) != len(configs) {
		//gpower:allocs caller-bug error path: mismatched destination length
		return fmt.Errorf("core: PredictAll dst length %d, want %d", len(dst), len(configs))
	}
	uf := flattenUtil(u)
	om := m.flatOmega()
	for i, cfg := range configs {
		p, err := m.predictFlat(&uf, &om, cfg)
		if err != nil {
			return err
		}
		dst[i] = p
	}
	return nil
}

// NonPositiveRefPowerError reports a reference-configuration power
// prediction that is zero or negative, which makes every relative-energy
// quantity undefined. Callers that need a domain-specific message unwrap it
// with errors.As.
type NonPositiveRefPowerError struct {
	Power float64
}

func (e *NonPositiveRefPowerError) Error() string {
	return fmt.Sprintf("core: non-positive reference power prediction %g", e.Power)
}

// Surface is one memoized prediction surface: the model evaluated for one
// utilization vector at every configuration of a device ladder, with the
// derived relative-time/energy/EDP columns the DVFS consumers need. All
// slices share ladder order (index i ↔ Configs[i]) and are read-only after
// construction — a Surface is shared across goroutines by the cache.
//
// Gen is the generation of the model the surface was computed from
// (Model.Generation() at computation time). Derived per-surface caches —
// the cluster simulator's governor-decision cache is the canonical one —
// key their entries by it, so a refit or an InvalidateSurfaces call
// orphans the derived results exactly when it orphans the surface.
type Surface struct {
	Device   string
	Ref      hw.Config
	RefPower float64
	Gen      uint64

	Configs   []hw.Config
	PowerW    []float64
	RelTime   []float64
	RelEnergy []float64
	RelEDP    []float64

	dev *hw.Device
}

// Len returns the number of ladder points.
func (s *Surface) Len() int { return len(s.Configs) }

// Point returns the ladder index of cfg, or false when cfg is not a ladder
// configuration of the surface's device. The lookup rides the device's
// memoized ladder index, so building a surface allocates no per-surface map.
func (s *Surface) Point(cfg hw.Config) (int, bool) {
	return s.dev.LadderIndex(cfg)
}

// computeSurface evaluates the full ladder. Cancellation is checked per
// configuration, so a canceled fit aborts promptly even on large ladders.
//
// Cold-path allocation budget: the ladder enumeration and its index are the
// device's memoized Ladder()/LadderIndex (shared, read-only), and the four
// float columns are views into one backing array — a cold surface costs two
// allocations (the Surface and the backing), down from the eleven the
// per-call AllConfigs + four makes + index map used to take. The cluster
// simulator's decision-cache misses land exactly here.
func computeSurface(ctx context.Context, m *Model, dev *hw.Device, ref hw.Config, uf *flatUtil) (*Surface, error) {
	om := m.flatOmega()
	refPower, err := m.predictFlat(uf, &om, ref)
	if err != nil {
		return nil, err
	}
	if refPower <= 0 {
		return nil, &NonPositiveRefPowerError{Power: refPower}
	}
	configs := dev.Ladder()
	n := len(configs)
	back := make([]float64, 4*n)
	s := &Surface{
		Device:    dev.Name,
		Ref:       ref,
		RefPower:  refPower,
		Configs:   configs,
		PowerW:    back[0*n : 1*n : 1*n],
		RelTime:   back[1*n : 2*n : 2*n],
		RelEnergy: back[2*n : 3*n : 3*n],
		RelEDP:    back[3*n : 4*n : 4*n],
		dev:       dev,
	}
	for i, cfg := range configs {
		if err := backend.CheckContext(ctx, "core: prediction surface"); err != nil {
			return nil, err
		}
		pw, err := m.predictFlat(uf, &om, cfg)
		if err != nil {
			return nil, err
		}
		rt := relTimeFlat(uf, ref, cfg)
		relEnergy := pw * rt / refPower
		s.PowerW[i] = pw
		s.RelTime[i] = rt
		s.RelEnergy[i] = relEnergy
		s.RelEDP[i] = relEnergy * rt
	}
	return s, nil
}

// surfaceKey identifies one memoized surface. Every field is comparable,
// so the key hashes through the built-in map; utilization is flattened to
// a fixed array in canonical order, making two maps with equal entries
// equal keys.
type surfaceKey struct {
	gen    uint64
	device string
	ref    hw.Config
	util   flatUtil
}

// FNV-1a parameters for surfaceKey sharding.
const (
	surfaceFNVOffset uint64 = 14695981039346656037
	surfaceFNVPrime  uint64 = 1099511628211
)

// surfaceFNVMix folds one 64-bit word into an FNV-1a hash byte by byte. A
// package function rather than a closure keeps the sharding path free of
// closure allocation (alloccheck proves the warm Get path).
func surfaceFNVMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= surfaceFNVPrime
	}
	return h
}

// shard maps the key to a cache shard with FNV-1a over the key's bytes.
func (k *surfaceKey) shard() int {
	h := surfaceFNVOffset
	h = surfaceFNVMix(h, k.gen)
	for i := 0; i < len(k.device); i++ {
		h ^= uint64(k.device[i])
		h *= surfaceFNVPrime
	}
	h = surfaceFNVMix(h, math.Float64bits(k.ref.CoreMHz))
	h = surfaceFNVMix(h, math.Float64bits(k.ref.MemMHz))
	for _, v := range k.util {
		h = surfaceFNVMix(h, math.Float64bits(v))
	}
	return int(h % surfaceShards)
}

// surfaceShards is the lock-striping factor. 16 keeps contention negligible
// for the governor's worst case (one decision stream per kernel across a
// pool of workers) without bloating the zero-entry footprint.
const surfaceShards = 16

// surfaceShard is one stripe: an RWMutex-guarded map slice of the cache.
type surfaceShard struct {
	mu      sync.RWMutex
	entries map[surfaceKey]*Surface
}

// SurfaceCache memoizes prediction surfaces per (model generation, device,
// reference, utilization). It is safe for concurrent use: reads take a
// shard read-lock, and the surfaces themselves are immutable after
// construction. Capacity is bounded per shard; on overflow, entries from
// stale generations are evicted first, then the shard resets (the cache is
// a performance device — dropping entries is always correct).
type SurfaceCache struct {
	shards   [surfaceShards]surfaceShard
	capacity int

	// hits and misses count warm and cold Get calls across all shards; the
	// serving layer's /metrics endpoint exports them. A concurrent
	// double-compute counts as one miss per computing caller.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewSurfaceCache returns a cache bounded to perShardCapacity entries per
// shard (minimum 1).
func NewSurfaceCache(perShardCapacity int) *SurfaceCache {
	if perShardCapacity < 1 {
		perShardCapacity = 1
	}
	c := &SurfaceCache{capacity: perShardCapacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[surfaceKey]*Surface)
	}
	return c
}

// Surfaces is the process-wide default cache used by the DVFS search, the
// governor and the auto-tuner. 64 entries × 16 shards comfortably covers a
// multi-kernel application sweep per fitted model.
var Surfaces = NewSurfaceCache(64)

// Get returns the memoized surface for (m, dev, ref, u), computing and
// caching it on miss. The warm path costs one atomic load, one map lookup
// under a read-lock and no allocation. Cancellation: the warm path checks
// ctx once on entry; a cold computation additionally checks per ladder
// configuration. Errors are returned, never cached.
//
//gpower:noalloc the warm path is one atomic load and a read-locked map hit
func (c *SurfaceCache) Get(ctx context.Context, m *Model, dev *hw.Device, ref hw.Config, u Utilization) (*Surface, error) {
	if err := backend.CheckContext(ctx, "core: prediction surface"); err != nil {
		return nil, err
	}
	key := surfaceKey{gen: m.Generation(), device: dev.Name, ref: ref, util: flattenUtil(u)}
	sh := &c.shards[key.shard()]
	sh.mu.RLock()
	s := sh.entries[key]
	sh.mu.RUnlock()
	if s != nil {
		c.hits.Add(1)
		return s, nil
	}
	c.misses.Add(1)
	//gpower:allocs cold miss: computeSurface builds the two-allocation surface exactly once per key
	s, err := computeSurface(ctx, m, dev, ref, &key.util)
	if err != nil {
		return nil, err
	}
	s.Gen = key.gen
	sh.mu.Lock()
	if cur, ok := sh.entries[key]; ok {
		// A concurrent caller computed the same surface first; adopt theirs
		// so every holder shares one immutable instance.
		s = cur
	} else {
		if len(sh.entries) >= c.capacity {
			//gpower:allocs cold overflow: stale-generation eviction may reset the shard map
			c.evictLocked(sh, key.gen)
		}
		//gpower:allocs cold miss: inserting the freshly computed surface may grow the shard map
		sh.entries[key] = s
	}
	sh.mu.Unlock()
	return s, nil
}

// evictLocked reclaims space in a full shard: entries from generations
// other than liveGen go first (they belong to replaced or invalidated
// models); if the shard is still full, it resets. Iteration order is
// irrelevant — eviction only ever deletes, so the surviving set does not
// depend on it.
func (c *SurfaceCache) evictLocked(sh *surfaceShard, liveGen uint64) {
	for k := range sh.entries {
		if k.gen != liveGen {
			delete(sh.entries, k)
		}
	}
	if len(sh.entries) >= c.capacity {
		sh.entries = make(map[surfaceKey]*Surface, c.capacity)
	}
}

// Predict returns the memoized power prediction for cfg — the cached
// sibling of Model.Predict. Warm calls perform no allocation.
//
//gpower:noalloc warm lookups allocate only on the off-ladder error path
func (c *SurfaceCache) Predict(ctx context.Context, m *Model, dev *hw.Device, ref hw.Config, u Utilization, cfg hw.Config) (float64, error) {
	s, err := c.Get(ctx, m, dev, ref, u)
	if err != nil {
		return 0, err
	}
	i, ok := s.Point(cfg)
	if !ok {
		//gpower:allocs cold error path: only an off-ladder configuration lands here
		return 0, fmt.Errorf("core: configuration %.0f/%.0f MHz is not on the %s ladder",
			cfg.CoreMHz, cfg.MemMHz, dev.Name)
	}
	return s.PowerW[i], nil
}

// Stats reports the cumulative warm (hit) and cold (miss) Get counts —
// the cache-effectiveness signal the metrics layer exports.
func (c *SurfaceCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the total number of cached surfaces (diagnostics).
func (c *SurfaceCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.RUnlock()
	}
	return n
}
