package core

import (
	"math"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/stats"
)

// TestPredictMatchesDecompose pins the allocation-free Predict fast path to
// the map-walking Decompose().Total() reference bitwise. Predict used to be
// literally Decompose+Total; since it now evaluates on flattened blocks,
// this test is what keeps "total of the breakdown" and "predicted power"
// the same number to the last bit.
func TestPredictMatchesDecompose(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		m := surfaceTestModel(dev, 11)
		rng := stats.NewRNG(12)
		for trial := 0; trial < 20; trial++ {
			u := randomUtil(rng)
			for _, cfg := range dev.AllConfigs() {
				got, err := m.Predict(u, cfg)
				if err != nil {
					t.Fatal(err)
				}
				b, err := m.Decompose(u, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(got) != math.Float64bits(b.Total()) {
					t.Fatalf("%s trial %d cfg %v: Predict %x, Decompose.Total %x (not bitwise equal)",
						dev.Name, trial, cfg, got, b.Total())
				}
			}
		}
	}
}

// TestPredictAllocFree is the allocation regression test for the warm
// single-prediction path — a gpowerd serving hot path. The flattening of
// the utilization and coefficient maps happens into stack arrays, so a
// steady-state Predict must not allocate at all (it was 3 allocs/op when it
// went through Decompose).
func TestPredictAllocFree(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 13)
	u := Utilization{hw.SP: 0.8, hw.DRAM: 0.4, hw.L2: 0.2, hw.Int: 0.1}
	cfg := hw.Config{CoreMHz: 595, MemMHz: 810}
	if _, err := m.Predict(u, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Predict(u, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Model.Predict allocates %.1f times per call, want 0", allocs)
	}
}
