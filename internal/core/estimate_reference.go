package core

import (
	"context"
	"fmt"
	"math"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
	"gpupower/internal/linalg"
)

// This file preserves the pre-restructuring estimation engine as a living
// baseline: row-by-row design assembly with per-call allocation, NNLS
// through the reference (Hypot-chain) QR kernel, and step-2 objectives
// evaluated directly — an O(nb) benchmark loop per evaluation inside
// Minimize2D. It is what the estimate-fit speedup rows measure against
// (internal/experiments/speedup.go) and what the accuracy cross-check tests
// compare the production engine to. Nothing on the production path calls it.

// solveXRef is the historical step-1/step-3 solve: build the design row by
// row, then NNLS via the reference QR kernel.
func solveXRef(d *Dataset, volt *VoltageTable, configIdx []int) ([]float64, error) {
	nb := len(d.Benchmarks)
	rows := nb * len(configIdx)
	a := linalg.NewMatrix(rows, nParams)
	b := make([]float64, rows)
	r := 0
	for _, fi := range configIdx {
		cfg := d.Configs[fi]
		vc, vm, err := volt.At(cfg)
		if err != nil {
			return nil, err
		}
		for bi := 0; bi < nb; bi++ {
			designRowInto(a.RowView(r), d.Benchmarks[bi].Util, cfg, vc, vm)
			b[r] = d.Power[bi][fi]
			r++
		}
	}
	return linalg.NNLSRef(a, b)
}

// solveVoltagesRef is the historical step 2: a direct sum-of-squares
// objective closure per configuration, minimized by the generic Minimize2D.
func solveVoltagesRef(d *Dataset, x []float64, volt *VoltageTable, opts *EstimatorOptions) error {
	nb := len(d.Benchmarks)
	A := make([]float64, nb)
	B := make([]float64, nb)
	for bi, bench := range d.Benchmarks {
		A[bi] = x[1]
		for i, c := range CoreOmegaOrder {
			A[bi] += x[4+i] * bench.Util[c]
		}
		B[bi] = x[3] + x[nParams-1]*bench.Util[hw.DRAM]
	}
	beta0, beta2 := x[0], x[2]
	for fi, cfg := range d.Configs {
		if cfg == d.Ref {
			if err := volt.Set(cfg, 1, 1); err != nil {
				return err
			}
			continue
		}
		fc, fm := cfg.CoreMHz, cfg.MemMHz
		fi := fi
		obj := func(vc, vm float64) float64 {
			var s float64
			for bi := range d.Benchmarks {
				pred := beta0*vc + vc*vc*fc*A[bi] + beta2*vm + vm*vm*fm*B[bi]
				diff := d.Power[bi][fi] - pred
				s += diff * diff
			}
			return s
		}
		vc, vm, err := linalg.Minimize2D(obj, opts.VoltageLo, opts.VoltageHi,
			opts.VoltageLo, opts.VoltageHi, 1e-6)
		if err != nil {
			return err
		}
		if err := volt.Set(cfg, vc, vm); err != nil {
			return err
		}
	}
	if !opts.DisableMonotonic {
		if err := projectMonotonic(volt); err != nil {
			return err
		}
	}
	return renormalize(volt, d.Ref)
}

// trainingSSERef evaluates the training SSE the historical way: one design
// row per sample, dotted with x.
func trainingSSERef(d *Dataset, volt *VoltageTable, x []float64) (float64, error) {
	row := make([]float64, nParams)
	var sse float64
	for fi, cfg := range d.Configs {
		vc, vm, err := volt.At(cfg)
		if err != nil {
			return 0, fmt.Errorf("core: training SSE at %v: %w", cfg, err)
		}
		for bi := range d.Benchmarks {
			designRowInto(row, d.Benchmarks[bi].Util, cfg, vc, vm)
			var pred float64
			for j, v := range row {
				pred += v * x[j]
			}
			diff := d.Power[bi][fi] - pred
			sse += diff * diff
		}
	}
	return sse, nil
}

// EstimateReference runs the Section III-D alternation with the historical
// engine described at the top of this file. It supports the same options as
// Estimate minus the ablation/known-voltage shortcuts (which bypass the
// alternation entirely and therefore have nothing to baseline).
func EstimateReference(ctx context.Context, d *Dataset, opts *EstimatorOptions) (*Model, error) {
	if opts == nil {
		opts = DefaultEstimatorOptions()
	}
	if opts.DisableVoltage || opts.LinearVoltage || opts.KnownVoltages != nil {
		return nil, fmt.Errorf("core: EstimateReference does not support ablation or known-voltage modes")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIterations < 1 {
		return nil, fmt.Errorf("core: MaxIterations must be >= 1")
	}
	if err := backend.CheckContext(ctx, "core: estimate (reference)"); err != nil {
		return nil, err
	}

	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	m := &Model{
		DeviceName:      d.Device.Name,
		Ref:             d.Ref,
		Voltages:        volt,
		L2BytesPerCycle: d.L2BytesPerCycle,
	}
	allConfigs := make([]int, len(d.Configs))
	for i := range d.Configs {
		allConfigs[i] = i
	}

	init, err := initialConfigs(d)
	if err != nil {
		return nil, err
	}
	x, err := solveXRef(d, volt, init)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 failed: %w", err)
	}

	prevX := append([]float64(nil), x...)
	prevVolt := volt.Clone()
	prevSSE := math.Inf(1)
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if err := backend.CheckContext(ctx, fmt.Sprintf("core: estimate reference (iteration %d)", iter)); err != nil {
			return nil, err
		}
		m.Iterations = iter
		if err := solveVoltagesRef(d, x, volt, opts); err != nil {
			return nil, fmt.Errorf("core: step 2 (iteration %d) failed: %w", iter, err)
		}
		if opts.OverRelax > 1 && iter > 1 {
			if err := overRelax(prevVolt, volt, opts, d.Ref); err != nil {
				return nil, fmt.Errorf("core: over-relaxation (iteration %d) failed: %w", iter, err)
			}
		}
		if x, err = solveXRef(d, volt, allConfigs); err != nil {
			return nil, fmt.Errorf("core: step 3 (iteration %d) failed: %w", iter, err)
		}

		dv := voltageDelta(prevVolt, volt)
		dx := relDelta(prevX, x)
		sse, err := trainingSSERef(d, volt, x)
		if err != nil {
			return nil, fmt.Errorf("core: SSE evaluation (iteration %d) failed: %w", iter, err)
		}
		if opts.Trace != nil {
			opts.Trace(iter, dv, dx, sse)
		}
		sseFlat := prevSSE > 0 && math.Abs(prevSSE-sse)/prevSSE < opts.SSETol
		if (dv < opts.Tol && dx < opts.Tol) || (iter > 1 && sseFlat) {
			m.Converged = true
			break
		}
		prevSSE = sse
		prevX = append(prevX[:0], x...)
		prevVolt.CopyFrom(volt)
	}

	paramsToModel(m, x)
	return m, m.Validate()
}
