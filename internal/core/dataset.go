package core

import (
	"context"
	"fmt"

	"gpupower/internal/backend"
	"gpupower/internal/cupti"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
)

// TrainingSample is one microbenchmark's reference-configuration profile:
// its name and the Eq. 8–10 utilization vector derived from events measured
// at the reference configuration only.
type TrainingSample struct {
	Name string
	Util Utilization
}

// Dataset is everything the Section III-D estimator consumes: per-benchmark
// utilizations (events at the reference configuration) and measured average
// power for every benchmark at every V-F configuration.
type Dataset struct {
	Device  *hw.Device
	Ref     hw.Config
	Configs []hw.Config

	Benchmarks []TrainingSample
	// Power[b][f] is the measured power of benchmark b at Configs[f], W.
	Power [][]float64

	// L2BytesPerCycle is the calibrated L2 peak used for the utilizations.
	L2BytesPerCycle float64
}

// Validate checks dataset shape invariants.
func (d *Dataset) Validate() error {
	if len(d.Benchmarks) == 0 || len(d.Configs) == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	if len(d.Power) != len(d.Benchmarks) {
		return fmt.Errorf("core: power rows %d != benchmarks %d", len(d.Power), len(d.Benchmarks))
	}
	for i, row := range d.Power {
		if len(row) != len(d.Configs) {
			return fmt.Errorf("core: power row %d has %d entries, want %d", i, len(row), len(d.Configs))
		}
		for j, p := range row {
			if p < 0 {
				return fmt.Errorf("core: negative power %g for benchmark %d at config %d", p, i, j)
			}
		}
	}
	for _, b := range d.Benchmarks {
		if err := b.Util.Validate(); err != nil {
			return fmt.Errorf("core: benchmark %s: %w", b.Name, err)
		}
	}
	// Configuration uniqueness is what makes the parallel step-2 solves'
	// voltage-table writes disjoint (each config owns one (mi, ci) slot).
	seen := make(map[hw.Config]struct{}, len(d.Configs))
	for _, cfg := range d.Configs {
		if _, dup := seen[cfg]; dup {
			return fmt.Errorf("core: duplicate configuration %v in dataset", cfg)
		}
		seen[cfg] = struct{}{}
	}
	return nil
}

// configIndex returns the position of cfg in d.Configs.
func (d *Dataset) configIndex(cfg hw.Config) (int, error) {
	for i, c := range d.Configs {
		if c == cfg {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: configuration %v not in dataset", cfg)
}

// CalibrateL2BytesPerCycle discovers the device's aggregate L2 peak
// bandwidth by running the dedicated L2 microbenchmarks at the reference
// configuration and taking the best achieved bytes-per-core-cycle
// (Section III-C / Section IV).
func CalibrateL2BytesPerCycle(ctx context.Context, p *profiler.Profiler, ref hw.Config) (float64, error) {
	suite := microbench.Suite()
	var best float64
	for _, b := range suite {
		if b.Collection != microbench.CollL2 {
			continue
		}
		prof, err := p.ProfileApp(ctx, kernels.SingleKernelApp(b.Kernel), ref)
		if err != nil {
			return 0, err
		}
		kp := prof.Kernels[0]
		aCycles := kp.Metrics[cupti.MetricACycles]
		if aCycles <= 0 {
			continue
		}
		l2Bytes := (kp.Metrics[cupti.MetricL2Read] + kp.Metrics[cupti.MetricL2Write]) * 32
		if bpc := l2Bytes / aCycles; bpc > best {
			best = bpc
		}
	}
	if best <= 0 {
		return 0, fmt.Errorf("core: L2 calibration produced no bandwidth sample")
	}
	return best, nil
}

// BuildDataset measures the full training dataset on a device: events for
// every microbenchmark at the reference configuration, power for every
// microbenchmark at every configuration in configs. Cancellation is checked
// at benchmark and configuration granularity.
func BuildDataset(ctx context.Context, p *profiler.Profiler, suite []microbench.Benchmark, ref hw.Config, configs []hw.Config) (*Dataset, error) {
	if len(suite) == 0 {
		return nil, fmt.Errorf("core: empty microbenchmark suite")
	}
	l2bpc, err := CalibrateL2BytesPerCycle(ctx, p, ref)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Device:          p.HW(),
		Ref:             ref,
		Configs:         append([]hw.Config(nil), configs...),
		L2BytesPerCycle: l2bpc,
	}
	for _, b := range suite {
		if err := backend.CheckContext(ctx, "core: building dataset"); err != nil {
			return nil, err
		}
		prof, err := p.ProfileApp(ctx, kernels.SingleKernelApp(b.Kernel), ref)
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", b.Kernel.Name, err)
		}
		util, err := UtilizationFromMetrics(d.Device, ref, prof.Kernels[0].Metrics, l2bpc)
		if err != nil {
			return nil, fmt.Errorf("core: utilization of %s: %w", b.Kernel.Name, err)
		}
		row := make([]float64, len(configs))
		for fi, cfg := range configs {
			pw, _, err := p.MeasureKernelPower(ctx, b.Kernel, cfg)
			if err != nil {
				return nil, fmt.Errorf("core: measuring %s at %v: %w", b.Kernel.Name, cfg, err)
			}
			row[fi] = pw
		}
		d.Benchmarks = append(d.Benchmarks, TrainingSample{Name: b.Kernel.Name, Util: util})
		d.Power = append(d.Power, row)
	}
	return d, d.Validate()
}

// AppUtilization converts an application's reference-configuration event
// profile into a single utilization vector, weighting each kernel by its
// relative execution time (the same weighting the paper applies to power).
func AppUtilization(dev *hw.Device, prof *profiler.AppProfile, l2BytesPerCycle float64) (Utilization, error) {
	if len(prof.Kernels) == 0 {
		return nil, fmt.Errorf("core: app profile %s has no kernels", prof.App.Name)
	}
	var totalT float64
	acc := make(Utilization, 7)
	for _, kp := range prof.Kernels {
		u, err := UtilizationFromMetrics(dev, prof.RefConfig, kp.Metrics, l2BytesPerCycle)
		if err != nil {
			return nil, fmt.Errorf("core: kernel %s: %w", kp.Spec.Name, err)
		}
		for c, v := range u {
			acc[c] += v * kp.Seconds
		}
		totalT += kp.Seconds
	}
	if totalT <= 0 {
		return nil, fmt.Errorf("core: app profile %s has zero total time", prof.App.Name)
	}
	for c := range acc {
		acc[c] = clamp01(acc[c] / totalT)
	}
	return acc, nil
}
