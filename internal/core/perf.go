package core

import (
	"math"

	"gpupower/internal/hw"
)

// EstimateRelativeTime predicts T(cfg)/T(ref) for an application with the
// given reference-configuration utilizations, using a roofline companion to
// the power model: the core-domain share of the critical path stretches
// with f_ref/f_core and the memory share with f_ref/f_mem, the bound
// resource dominating. The paper pairs its power model with the authors'
// earlier performance-scaling classification [9]; this is the simplest
// member of that family and is what the DVFS search and the real-time
// governor use.
func EstimateRelativeTime(u Utilization, ref, cfg hw.Config) float64 {
	var coreU float64
	for _, c := range hw.CoreComponents {
		if u[c] > coreU {
			coreU = u[c]
		}
	}
	memU := u[hw.DRAM]
	bound := math.Max(coreU, memU)
	if bound <= 0 {
		return 1 // no measurable activity: latency-bound, frequency-insensitive
	}
	coreTime := coreU * ref.CoreMHz / cfg.CoreMHz
	memTime := memU * ref.MemMHz / cfg.MemMHz
	return math.Max(coreTime, memTime) / bound
}
