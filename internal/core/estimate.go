package core

import (
	"context"
	"fmt"
	"math"

	"gpupower/internal/backend"
	"gpupower/internal/hw"
	"gpupower/internal/linalg"
	"gpupower/internal/parallel"
)

// EstimatorOptions tunes the Section III-D iterative algorithm. The zero
// value is not usable; call DefaultEstimatorOptions.
type EstimatorOptions struct {
	// MaxIterations bounds the step-2/step-3 alternation (the paper's
	// algorithm "converged in less than 50 iterations").
	MaxIterations int
	// Tol is the convergence threshold on the largest voltage change and on
	// the relative parameter change between iterations.
	Tol float64
	// SSETol declares convergence when the relative change of the training
	// sum of squared errors between iterations falls below it. The
	// alternation is a (block-)coordinate descent on the SSE, so a flat
	// objective is the principled stopping signal even when weakly
	// identifiable parameters (e.g. the β0/β2 static split) keep drifting
	// along the valley floor.
	SSETol float64
	// VoltageLo/VoltageHi bound the normalized voltage search box in step 2.
	VoltageLo, VoltageHi float64
	// OverRelax extrapolates each voltage update:
	// V ← V_prev + η·(V_new − V_prev). The X↔V̄ alternation descends a
	// shallow valley (the static-power split between domains is weakly
	// identifiable), so plain alternation (η = 1) crawls; η ≈ 1.8
	// accelerates it substantially without destabilizing the quartic
	// per-configuration objectives. Values ≤ 1 disable acceleration.
	OverRelax float64

	// Ablation switches (all false for the paper's algorithm):
	// DisableVoltage pins V̄ ≡ 1 everywhere (a frequency-only model).
	DisableVoltage bool
	// LinearVoltage pins V̄ = f/f_ref (the linear-scaling assumption of
	// pre-Maxwell models the paper argues against).
	LinearVoltage bool
	// DisableMonotonic skips the Eq. 12 monotonicity constraint on V̄(f).
	DisableMonotonic bool

	// KnownVoltages, when non-nil, supplies measured normalized voltages
	// for every configuration; the paper's simplification then applies:
	// "if there is a previous information regarding the voltage levels of
	// each domain at any given frequency configuration, the proposed
	// methodology can be simplified into a single execution of step 3, by
	// utilizing the real voltage values" (Section III-D). Incompatible with
	// the voltage ablation switches.
	KnownVoltages *VoltageTable

	// Trace, when non-nil, receives the per-iteration convergence deltas
	// (used by the convergence experiment and for diagnostics).
	Trace func(iter int, voltDelta, paramDelta, sse float64)
}

// DefaultEstimatorOptions returns the paper's settings.
func DefaultEstimatorOptions() *EstimatorOptions {
	return &EstimatorOptions{
		MaxIterations: 50,
		Tol:           1e-3,
		SSETol:        1e-4,
		VoltageLo:     0.5,
		VoltageHi:     1.8,
		OverRelax:     1.8,
	}
}

// nParams is the length of X = [β0 β1 β2 β3 ω_int ω_sp ω_dp ω_sf ω_sh ω_l2 ω_mem].
const nParams = 11

// designRow fills one row of the regression design for benchmark
// utilization u at configuration cfg with normalized voltages (vc, vm):
//
//	P̂ = β0·vc + β1·vc²·fc + β2·vm + β3·vm²·fm
//	    + Σ_i ω_i·vc²·fc·U_i + ω_mem·vm²·fm·U_dram
func designRow(u Utilization, cfg hw.Config, vc, vm float64) []float64 {
	row := make([]float64, nParams)
	designRowInto(row, u, cfg, vc, vm)
	return row
}

// designRowInto is the allocation-free form of designRow: it fills dst
// (len nParams) in place so the parallel assembly loops can reuse
// per-worker scratch rows.
func designRowInto(dst []float64, u Utilization, cfg hw.Config, vc, vm float64) {
	fc, fm := cfg.CoreMHz, cfg.MemMHz
	dst[0] = vc
	dst[1] = vc * vc * fc
	dst[2] = vm
	dst[3] = vm * vm * fm
	for i, c := range CoreOmegaOrder {
		dst[4+i] = vc * vc * fc * u[c]
	}
	dst[10] = vm * vm * fm * u[hw.DRAM]
}

// paramsToModel unpacks the X vector into model fields.
func paramsToModel(m *Model, x []float64) {
	copy(m.Beta[:], x[:4])
	m.OmegaCore = make(map[hw.Component]float64, len(CoreOmegaOrder))
	for i, c := range CoreOmegaOrder {
		m.OmegaCore[c] = x[4+i]
	}
	m.OmegaMem = x[10]
}

// modelToParams packs model fields back into an X vector.
func modelToParams(m *Model) []float64 {
	x := make([]float64, nParams)
	copy(x[:4], m.Beta[:])
	for i, c := range CoreOmegaOrder {
		x[4+i] = m.OmegaCore[c]
	}
	x[10] = m.OmegaMem
	return x
}

// nUtil is the length of a benchmark's utilization base block: the six
// CoreOmegaOrder components followed by DRAM. The estimator flattens each
// sample's Utilization map into this fixed-order block once per fit, so the
// per-iteration assembly loops never touch a map.
const nUtil = 7

// estimatorWorkspace carries every buffer the Section III-D alternation
// reuses across iterations (DESIGN.md §10): the flattened utilization base
// blocks, the full-ladder design matrix and right-hand side, the NNLS
// workspace for the step-1/step-3 refits, and the step-2/SSE scratch. One
// workspace serves one Estimate call; nothing in it is goroutine-safe.
//
// The incremental design assembly exploits the factored structure of the
// regression row: every voltage-dependent entry is one of the per-config
// scalars vc, s1 = vc²·fc, vm, s3 = vm²·fm times a per-sample utilization
// constant. The base blocks are computed once; each refit only rescales
// them in place. The arithmetic — s1·u instead of vc·vc·fc·u — preserves
// the float association of designRowInto exactly, so the assembled system
// (and therefore the fitted model) is bitwise-identical to the historical
// row-by-row path; estimate_equiv_test.go pins this.
type estimatorWorkspace struct {
	d  *Dataset
	nb int

	// ubase is nb base blocks of nUtil entries each (flat, stride nUtil).
	ubase []float64

	a    *linalg.Matrix // nb·len(Configs) × nParams design (step-3 shape)
	bvec []float64
	nnls *linalg.NNLSWorkspace

	// Subset-shape buffers for the step-1 {F1,F2,F3} solve. Historically
	// this path silently allocated a fresh matrix + rhs on every call; the
	// cache keeps repeated fits (the fleet scenario) allocation-free.
	subA *linalg.Matrix
	subB []float64

	// fill* carry solveXInto's per-call arguments to fillRowBlock, and
	// fillFn memoizes the bound method value. A closure literal passed to
	// parallel.ForEach escapes and allocates even on the inline serial
	// path (the MulInto closure-escape trap), so the assembly loop's
	// callback is built once per workspace instead of once per solve.
	fillA    *linalg.Matrix
	fillB    []float64
	fillVolt *VoltageTable
	fillIdx  []int
	fillFn   func(k int) error

	A, B    []float64 // step-2 per-benchmark precomputes
	partial []float64 // trainingSSE per-config partial sums
}

// growFloats returns s resized to exactly n entries, reusing its backing
// array when the capacity suffices. Contents are unspecified; every caller
// overwrites the slice before reading it.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// newEstimatorWorkspace sizes a workspace for dataset d and flattens the
// utilization base blocks.
func newEstimatorWorkspace(d *Dataset) *estimatorWorkspace {
	ws := &estimatorWorkspace{}
	ws.reset(d)
	return ws
}

// reset retargets the workspace at dataset d, growing buffers only when d
// needs more capacity than any dataset seen before and re-deriving all
// dataset-dependent state (the flattened utilization base blocks). A reused
// workspace therefore produces bitwise-identical fits to a fresh one: every
// buffer is either fully rewritten here or fully rewritten by the assembly
// loops before it is read. This is what lets fleet fitting hold one
// workspace per worker across many heterogeneous device fits.
func (ws *estimatorWorkspace) reset(d *Dataset) {
	nb := len(d.Benchmarks)
	rows := nb * len(d.Configs)
	ws.d = d
	ws.nb = nb
	ws.ubase = growFloats(ws.ubase, nb*nUtil)
	if ws.a == nil {
		ws.a = linalg.NewMatrix(rows, nParams)
	} else {
		ws.a.Reshape(rows, nParams)
	}
	ws.bvec = growFloats(ws.bvec, rows)
	if ws.nnls == nil {
		ws.nnls = linalg.NewNNLSWorkspace(rows, nParams)
	} else {
		ws.nnls.Ensure(rows, nParams)
	}
	ws.A = growFloats(ws.A, nb)
	ws.B = growFloats(ws.B, nb)
	ws.partial = growFloats(ws.partial, len(d.Configs))
	for bi, bench := range d.Benchmarks {
		ub := ws.ubase[bi*nUtil : (bi+1)*nUtil]
		for i, c := range CoreOmegaOrder {
			ub[i] = bench.Util[c]
		}
		ub[nUtil-1] = bench.Util[hw.DRAM]
	}
}

// ub returns benchmark bi's utilization base block.
func (ws *estimatorWorkspace) ub(bi int) []float64 {
	return ws.ubase[bi*nUtil : (bi+1)*nUtil]
}

// solveXInto performs the (non-negative) least-squares estimation of X over
// the given configuration indices, using the current voltage table (step 1
// with V̄ ≡ 1, step 3 with the estimated voltages), writing the parameter
// vector into dst (len nParams).
//
// The design-matrix assembly is parallelized across configurations: the k-th
// configuration owns the contiguous row block [k·nb, (k+1)·nb), so workers
// write disjoint slices of the matrix and the assembled system is
// bitwise-identical to the serial one. Rows are filled through RowView from
// the precomputed base blocks — no per-row scratch, no map lookups, and
// (for the full-ladder shape) no allocation.
func (ws *estimatorWorkspace) solveXInto(dst []float64, volt *VoltageTable, configIdx []int) error {
	rows := ws.nb * len(configIdx)
	a, b := ws.a, ws.bvec
	if rows != a.Rows() {
		// Subset solves (the step-1 {F1,F2,F3} system) use cached
		// right-sized buffers — a right-sized matrix keeps the NNLS scaling
		// identical to the historical path, and the cache keeps repeated
		// fits through a reused workspace allocation-free.
		if ws.subA == nil {
			ws.subA = linalg.NewMatrix(rows, nParams)
		} else if ws.subA.Rows() != rows {
			ws.subA.Reshape(rows, nParams)
		}
		ws.subB = growFloats(ws.subB, rows)
		a, b = ws.subA, ws.subB
	}
	if ws.fillFn == nil {
		ws.fillFn = ws.fillRowBlock
	}
	ws.fillA, ws.fillB, ws.fillVolt, ws.fillIdx = a, b, volt, configIdx
	err := parallel.ForEach(len(configIdx), ws.fillFn)
	ws.fillVolt, ws.fillIdx = nil, nil
	if err != nil {
		return err
	}
	return ws.nnls.SolveInto(dst, a, b)
}

// fillRowBlock assembles configuration k's contiguous row block of the
// design system staged in ws.fill* by solveXInto. Workers read the shared
// fill state and write disjoint row ranges only.
func (ws *estimatorWorkspace) fillRowBlock(k int) error {
	d, nb := ws.d, ws.nb
	a, b := ws.fillA, ws.fillB
	fi := ws.fillIdx[k]
	cfg := d.Configs[fi]
	vc, vm, err := ws.fillVolt.At(cfg)
	if err != nil {
		return err
	}
	fc, fm := cfg.CoreMHz, cfg.MemMHz
	s1 := vc * vc * fc
	s3 := vm * vm * fm
	r := k * nb
	for bi := 0; bi < nb; bi++ {
		row := a.RowView(r)
		ub := ws.ub(bi)
		row[0] = vc
		row[1] = s1
		row[2] = vm
		row[3] = s3
		for i := 0; i < nUtil-1; i++ {
			row[4+i] = s1 * ub[i]
		}
		row[nParams-1] = s3 * ub[nUtil-1]
		b[r] = d.Power[bi][fi]
		r++
	}
	return nil
}

// solveX is the workspace-per-call form of solveXInto, kept for tests and
// one-shot callers.
func solveX(d *Dataset, volt *VoltageTable, configIdx []int) ([]float64, error) {
	ws := newEstimatorWorkspace(d)
	x := make([]float64, nParams)
	if err := ws.solveXInto(x, volt, configIdx); err != nil {
		return nil, err
	}
	return x, nil
}

// solveVoltages performs step 2: for every configuration, estimate
// (V̄core, V̄mem) by minimizing the squared prediction error over the
// benchmark set, then project each domain's ladder onto the monotonicity
// constraint (Eq. 12) and renormalize so V̄(ref) = 1.
//
// The per-configuration objective Σ_b (P_b − β0·vc − fc·A_b·vc² − β2·vm −
// fm·B_b·vm²)² is compiled into a closed-form bivariate quartic
// (linalg.Quartic2D) before the search: the benchmark sum collapses into
// thirteen monomial coefficients, one O(nb) pass per configuration, so every
// evaluation inside the golden-section descent costs O(1) instead of O(nb).
// This removed the dominant cost of a fit (the objective loop was >50% of
// Estimate's profile); EstimateReference keeps the direct-evaluation
// arithmetic as the measured baseline.
func (ws *estimatorWorkspace) solveVoltages(x []float64, volt *VoltageTable, opts *EstimatorOptions) error {
	// Precompute A_b = β1 + Σ ω_i U_ib and B_b = β3 + ω_mem·U_dram,b on the
	// reused workspace buffers, reading the flattened base blocks (same
	// accumulation order as the historical map-walking loop).
	d := ws.d
	A, B := ws.A, ws.B
	for bi := 0; bi < ws.nb; bi++ {
		ub := ws.ub(bi)
		A[bi] = x[1]
		for i := 0; i < nUtil-1; i++ {
			A[bi] += x[4+i] * ub[i]
		}
		B[bi] = x[3] + x[nParams-1]*ub[nUtil-1]
	}
	beta0, beta2 := x[0], x[2]

	// Voltage- and frequency-independent moments of the per-benchmark slope
	// terms, shared by every configuration's compiled objective (the
	// config-dependent factors fc, fm scale them per config below).
	var sumA, sumB, sumA2, sumB2, sumAB float64
	for bi := 0; bi < ws.nb; bi++ {
		sumA += A[bi]
		sumB += B[bi]
		sumA2 += A[bi] * A[bi]
		sumB2 += B[bi] * B[bi]
		sumAB += A[bi] * B[bi]
	}
	nbf := float64(ws.nb)

	// The per-configuration solves are independent (the paper's step 2 is a
	// separate 2-D minimization per V-F point), so they fan out across the
	// worker pool. Each iteration writes exactly one (mi, ci) slot of the
	// voltage table — dataset configurations are unique (Dataset.Validate) —
	// so the writes are disjoint, and the per-config arithmetic is
	// straight-line, so the table is bitwise-identical to the serial fill.
	err := parallel.ForEach(len(d.Configs), func(fi int) error {
		cfg := d.Configs[fi]
		if cfg == d.Ref {
			//lint:ignore disjointwrite iteration fi writes only cfg's own (mi,ci) slot; configs are unique (Dataset.Validate)
			return volt.Set(cfg, 1, 1)
		}
		fc, fm := cfg.CoreMHz, cfg.MemMHz
		// Config-dependent moments: one fused pass over the benchmarks.
		var sumD, sumD2, sumDA, sumDB float64
		for bi := 0; bi < ws.nb; bi++ {
			pd := d.Power[bi][fi]
			sumD += pd
			sumD2 += pd * pd
			sumDA += pd * A[bi]
			sumDB += pd * B[bi]
		}
		q := linalg.Quartic2D{
			C00: sumD2,
			C10: -2 * beta0 * sumD,
			C20: nbf*beta0*beta0 - 2*fc*sumDA,
			C30: 2 * beta0 * fc * sumA,
			C40: fc * fc * sumA2,
			C01: -2 * beta2 * sumD,
			C02: nbf*beta2*beta2 - 2*fm*sumDB,
			C03: 2 * beta2 * fm * sumB,
			C04: fm * fm * sumB2,
			C11: 2 * nbf * beta0 * beta2,
			C12: 2 * beta0 * fm * sumB,
			C21: 2 * beta2 * fc * sumA,
			C22: 2 * fc * fm * sumAB,
		}
		vc, vm, err := q.Minimize(opts.VoltageLo, opts.VoltageHi,
			opts.VoltageLo, opts.VoltageHi, 1e-6)
		if err != nil {
			return err
		}
		//lint:ignore disjointwrite iteration fi writes only cfg's own (mi,ci) slot; configs are unique (Dataset.Validate)
		return volt.Set(cfg, vc, vm)
	})
	if err != nil {
		return err
	}

	if !opts.DisableMonotonic {
		if err := projectMonotonic(volt); err != nil {
			return err
		}
	}
	return renormalize(volt, d.Ref)
}

// projectMonotonic enforces Eq. 12's constraint: for each memory frequency,
// V̄core must be non-decreasing along the core ladder; for each core
// frequency, V̄mem non-decreasing along the memory ladder.
func projectMonotonic(volt *VoltageTable) error {
	for mi := range volt.VCore {
		fit, err := linalg.IsotonicRegression(volt.VCore[mi], nil)
		if err != nil {
			return err
		}
		copy(volt.VCore[mi], fit)
	}
	nc := len(volt.CoreFreqs)
	nm := len(volt.MemFreqs)
	col := make([]float64, nm)
	for ci := 0; ci < nc; ci++ {
		for mi := 0; mi < nm; mi++ {
			col[mi] = volt.VMem[mi][ci]
		}
		fit, err := linalg.IsotonicRegression(col, nil)
		if err != nil {
			return err
		}
		for mi := 0; mi < nm; mi++ {
			volt.VMem[mi][ci] = fit[mi]
		}
	}
	return nil
}

// renormalize rescales each domain's table so V̄ = 1 exactly at the
// reference configuration (the Eq. 5 normalization), preserving the
// relative shape the optimizer found.
func renormalize(volt *VoltageTable, ref hw.Config) error {
	vcRef, vmRef, err := volt.At(ref)
	if err != nil {
		return err
	}
	if vcRef <= 0 || vmRef <= 0 {
		return fmt.Errorf("core: non-positive reference voltage (%g, %g)", vcRef, vmRef)
	}
	for mi := range volt.VCore {
		for ci := range volt.VCore[mi] {
			volt.VCore[mi][ci] /= vcRef
			volt.VMem[mi][ci] /= vmRef
		}
	}
	return nil
}

// initialConfigs picks the paper's F1, F2, F3 for step 1: the reference,
// one with a different core frequency, one with a different memory
// frequency (when the device has more than one memory level). The extreme
// ladder ends give the regression maximal frequency contrast.
func initialConfigs(d *Dataset) ([]int, error) {
	ref, err := d.configIndex(d.Ref)
	if err != nil {
		return nil, err
	}
	idx := []int{ref}
	// F2: same memory frequency, most distant core frequency.
	bestF2, bestDist := -1, 0.0
	for i, cfg := range d.Configs {
		//lint:ignore floateq ladder frequencies are exact catalog constants; F2 selection needs exact same-memory-level matching
		if cfg.MemMHz == d.Ref.MemMHz && cfg.CoreMHz != d.Ref.CoreMHz {
			if dist := math.Abs(cfg.CoreMHz - d.Ref.CoreMHz); dist > bestDist {
				bestF2, bestDist = i, dist
			}
		}
	}
	if bestF2 < 0 {
		return nil, fmt.Errorf("core: dataset has no second core frequency at the reference memory level")
	}
	idx = append(idx, bestF2)
	// F3: same core frequency, most distant memory frequency (optional for
	// single-memory-level devices like the Tesla K40c).
	bestF3, bestDist := -1, 0.0
	for i, cfg := range d.Configs {
		//lint:ignore floateq ladder frequencies are exact catalog constants; F3 selection needs exact same-core-level matching
		if cfg.CoreMHz == d.Ref.CoreMHz && cfg.MemMHz != d.Ref.MemMHz {
			if dist := math.Abs(cfg.MemMHz - d.Ref.MemMHz); dist > bestDist {
				bestF3, bestDist = i, dist
			}
		}
	}
	if bestF3 >= 0 {
		idx = append(idx, bestF3)
	}
	return idx, nil
}

// applyFixedVoltages fills the table for the two ablation modes.
func applyFixedVoltages(d *Dataset, volt *VoltageTable, opts *EstimatorOptions) error {
	for _, cfg := range d.Configs {
		vc, vm := 1.0, 1.0
		if opts.LinearVoltage {
			vc = cfg.CoreMHz / d.Ref.CoreMHz
			vm = cfg.MemMHz / d.Ref.MemMHz
		}
		if err := volt.Set(cfg, vc, vm); err != nil {
			return err
		}
	}
	return nil
}

// FitWorkspace is a reusable, opaque estimation workspace: the design
// matrix, NNLS/QR buffers and step-2/SSE scratch of the Section III-D
// alternation, preserved across EstimateWith calls. Buffers grow to the
// largest dataset seen and are re-derived per fit, so reuse never changes a
// fitted bit (the fleet equivalence tests pin this). A workspace is
// single-goroutine state: confine each instance to one worker (see
// parallel.PerWorker) or guard it externally.
type FitWorkspace struct {
	ws *estimatorWorkspace
}

// NewFitWorkspace returns an empty workspace; buffers are sized lazily by
// the first fit.
func NewFitWorkspace() *FitWorkspace { return &FitWorkspace{} }

// prepare retargets the workspace at dataset d.
func (fw *FitWorkspace) prepare(d *Dataset) *estimatorWorkspace {
	if fw.ws == nil {
		fw.ws = newEstimatorWorkspace(d)
	} else {
		fw.ws.reset(d)
	}
	return fw.ws
}

// Estimate runs the Section III-D algorithm on a training dataset and
// returns the fitted DVFS-aware power model. Cancellation is checked at
// iteration granularity: a canceled context aborts the alternation promptly
// with an error wrapping ctx.Err().
func Estimate(ctx context.Context, d *Dataset, opts *EstimatorOptions) (*Model, error) {
	return EstimateWith(ctx, d, opts, nil)
}

// EstimateWith is Estimate on a caller-owned reusable workspace (nil fw
// behaves like Estimate: a fresh workspace per call). Fleet fitting holds
// one FitWorkspace per worker so back-to-back fits of same-shaped datasets
// run with zero steady-state workspace allocation.
func EstimateWith(ctx context.Context, d *Dataset, opts *EstimatorOptions, fw *FitWorkspace) (*Model, error) {
	if opts == nil {
		opts = DefaultEstimatorOptions()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxIterations < 1 {
		return nil, fmt.Errorf("core: MaxIterations must be >= 1")
	}
	if err := backend.CheckContext(ctx, "core: estimate"); err != nil {
		return nil, err
	}

	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	m := &Model{
		DeviceName:      d.Device.Name,
		Ref:             d.Ref,
		Voltages:        volt,
		L2BytesPerCycle: d.L2BytesPerCycle,
	}

	allConfigs := make([]int, len(d.Configs))
	for i := range d.Configs {
		allConfigs[i] = i
	}

	// One workspace per fit — or the caller's reusable one: design matrix,
	// NNLS buffers and scratch are sized here and reused by every iteration
	// below (DESIGN.md §10).
	if fw == nil {
		fw = NewFitWorkspace()
	}
	ws := fw.prepare(d)
	x := make([]float64, nParams)

	// Known-voltage simplification (Section III-D): copy the measured
	// voltages and run step 3 once.
	if opts.KnownVoltages != nil {
		if opts.DisableVoltage || opts.LinearVoltage {
			return nil, fmt.Errorf("core: KnownVoltages is incompatible with the voltage ablations")
		}
		for _, cfg := range d.Configs {
			vc, vm, err := opts.KnownVoltages.At(cfg)
			if err != nil {
				return nil, fmt.Errorf("core: known voltages: %w", err)
			}
			if err := volt.Set(cfg, vc, vm); err != nil {
				return nil, err
			}
		}
		if err := ws.solveXInto(x, volt, allConfigs); err != nil {
			return nil, err
		}
		paramsToModel(m, x)
		m.Iterations = 1
		m.Converged = true
		return m, m.Validate()
	}

	// Ablation modes bypass the alternation: fix V̄ and run step 3 once.
	if opts.DisableVoltage || opts.LinearVoltage {
		if err := applyFixedVoltages(d, volt, opts); err != nil {
			return nil, err
		}
		if err := ws.solveXInto(x, volt, allConfigs); err != nil {
			return nil, err
		}
		paramsToModel(m, x)
		m.Iterations = 1
		m.Converged = true
		return m, m.Validate()
	}

	// Step 1: initial X from {F1, F2, F3} with V̄ ≡ 1.
	init, err := initialConfigs(d)
	if err != nil {
		return nil, err
	}
	if err := ws.solveXInto(x, volt, init); err != nil {
		return nil, fmt.Errorf("core: step 1 failed: %w", err)
	}

	// Steps 2–4: alternate voltage and parameter estimation. The previous-
	// iteration snapshots live on reused storage (CopyFrom, append into the
	// same backing array), so the loop body is allocation-light: only the
	// per-config Minimize2D solves and the parallel fan-out allocate.
	prevX := append([]float64(nil), x...)
	prevVolt := volt.Clone()
	prevSSE := math.Inf(1)
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if err := backend.CheckContext(ctx, fmt.Sprintf("core: estimate (iteration %d)", iter)); err != nil {
			return nil, err
		}
		m.Iterations = iter
		if err := ws.solveVoltages(x, volt, opts); err != nil {
			return nil, fmt.Errorf("core: step 2 (iteration %d) failed: %w", iter, err)
		}
		if opts.OverRelax > 1 && iter > 1 {
			if err := overRelax(prevVolt, volt, opts, d.Ref); err != nil {
				return nil, fmt.Errorf("core: over-relaxation (iteration %d) failed: %w", iter, err)
			}
		}
		if err := ws.solveXInto(x, volt, allConfigs); err != nil {
			return nil, fmt.Errorf("core: step 3 (iteration %d) failed: %w", iter, err)
		}

		dv := voltageDelta(prevVolt, volt)
		dx := relDelta(prevX, x)
		sse, err := ws.trainingSSE(volt, x)
		if err != nil {
			return nil, fmt.Errorf("core: SSE evaluation (iteration %d) failed: %w", iter, err)
		}
		if opts.Trace != nil {
			opts.Trace(iter, dv, dx, sse)
		}
		sseFlat := prevSSE > 0 && math.Abs(prevSSE-sse)/prevSSE < opts.SSETol
		if (dv < opts.Tol && dx < opts.Tol) || (iter > 1 && sseFlat) {
			m.Converged = true
			break
		}
		prevSSE = sse
		prevX = append(prevX[:0], x...)
		prevVolt.CopyFrom(volt)
	}

	paramsToModel(m, x)
	return m, m.Validate()
}

// overRelax extrapolates the voltage table along the last update direction,
// re-projects onto the monotonicity cone and restores the reference
// normalization.
func overRelax(prev, volt *VoltageTable, opts *EstimatorOptions, ref hw.Config) error {
	eta := opts.OverRelax
	clamp := func(v float64) float64 {
		if v < opts.VoltageLo {
			return opts.VoltageLo
		}
		if v > opts.VoltageHi {
			return opts.VoltageHi
		}
		return v
	}
	for mi := range volt.VCore {
		for ci := range volt.VCore[mi] {
			volt.VCore[mi][ci] = clamp(prev.VCore[mi][ci] + eta*(volt.VCore[mi][ci]-prev.VCore[mi][ci]))
			volt.VMem[mi][ci] = clamp(prev.VMem[mi][ci] + eta*(volt.VMem[mi][ci]-prev.VMem[mi][ci]))
		}
	}
	if !opts.DisableMonotonic {
		if err := projectMonotonic(volt); err != nil {
			return err
		}
	}
	return renormalize(volt, ref)
}

// trainingSSE evaluates the sum of squared prediction errors of parameter
// vector x with voltage table volt over the whole dataset.
//
// The (config × benchmark) error blocks are evaluated in parallel — each
// configuration owns one partial sum — and folded in configuration order,
// so the result is bitwise-identical run-to-run regardless of scheduling.
// A voltage-table miss is a hard error: every dataset configuration must
// resolve (silently skipping one used to understate the SSE and could
// declare convergence on an objective that ignored part of the data).
func (ws *estimatorWorkspace) trainingSSE(volt *VoltageTable, x []float64) (float64, error) {
	d := ws.d
	partial := ws.partial
	err := parallel.ForEach(len(d.Configs), func(fi int) error {
		cfg := d.Configs[fi]
		vc, vm, err := volt.At(cfg)
		if err != nil {
			return fmt.Errorf("core: training SSE at %v: %w", cfg, err)
		}
		fc, fm := cfg.CoreMHz, cfg.MemMHz
		s1 := vc * vc * fc
		s3 := vm * vm * fm
		var s float64
		for bi := 0; bi < ws.nb; bi++ {
			ub := ws.ub(bi)
			// Term-by-term accumulation in row order replicates the
			// historical designRowInto + ordered dot product exactly:
			// each term is (row entry)·x[j] with the row entry factored
			// through s1/s3 at identical float association.
			pred := 0.0
			pred += vc * x[0]
			pred += s1 * x[1]
			pred += vm * x[2]
			pred += s3 * x[3]
			for i := 0; i < nUtil-1; i++ {
				pred += s1 * ub[i] * x[4+i]
			}
			pred += s3 * ub[nUtil-1] * x[nParams-1]
			diff := d.Power[bi][fi] - pred
			s += diff * diff
		}
		partial[fi] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sse float64
	for _, s := range partial {
		sse += s
	}
	return sse, nil
}

// trainingSSE is the workspace-per-call form used by tests and diagnostics.
func trainingSSE(d *Dataset, volt *VoltageTable, x []float64) (float64, error) {
	return newEstimatorWorkspace(d).trainingSSE(volt, x)
}

// voltageDelta is the largest absolute voltage change between two tables.
func voltageDelta(a, b *VoltageTable) float64 {
	var mx float64
	for mi := range a.VCore {
		if d := linalg.MaxAbsDiff(a.VCore[mi], b.VCore[mi]); d > mx {
			mx = d
		}
		if d := linalg.MaxAbsDiff(a.VMem[mi], b.VMem[mi]); d > mx {
			mx = d
		}
	}
	return mx
}

// relDelta is the largest relative parameter change. The denominator is
// floored at 1% of the largest parameter magnitude, so near-zero
// coefficients jittering at the NNLS tolerance do not block convergence.
func relDelta(a, b []float64) float64 {
	var scale float64
	for i := range a {
		if v := math.Abs(a[i]); v > scale {
			scale = v
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
	}
	floor := 1e-2 * scale
	if floor == 0 { //lint:ignore floateq guard: an all-zero parameter vector yields an exactly-zero floor, which must not divide
		floor = 1e-12
	}
	var mx float64
	for i := range a {
		den := math.Abs(a[i])
		if den < floor {
			den = floor
		}
		if d := math.Abs(a[i]-b[i]) / den; d > mx {
			mx = d
		}
	}
	return mx
}
