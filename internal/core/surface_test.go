package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/stats"
)

// surfaceTestModel builds a fitted-shaped model with a non-trivial voltage
// table, cheap enough to construct per test.
func surfaceTestModel(dev *hw.Device, seed uint64) *Model {
	rng := stats.NewRNG(seed)
	volt := NewVoltageTable(dev.CoreFreqs, dev.MemFreqs)
	for mi := range volt.VCore {
		for ci := range volt.VCore[mi] {
			volt.VCore[mi][ci] = 0.85 + 0.3*rng.Float64()
			volt.VMem[mi][ci] = 0.85 + 0.3*rng.Float64()
		}
	}
	m := &Model{
		DeviceName: dev.Name,
		Ref:        dev.DefaultConfig(),
		Beta:       [4]float64{15, 0.017, 8, 0.0126},
		OmegaCore: map[hw.Component]float64{
			hw.Int: 0.025, hw.SP: 0.030, hw.DP: 0.020,
			hw.SF: 0.045, hw.Shared: 0.020, hw.L2: 0.030,
		},
		OmegaMem:        0.0334,
		Voltages:        volt,
		L2BytesPerCycle: dev.L2BytesPerCycle,
	}
	return m
}

func randomUtil(rng *stats.RNG) Utilization {
	u := Utilization{}
	for _, c := range hw.Components {
		if rng.Float64() < 0.7 {
			u[c] = rng.Float64()
		}
	}
	return u
}

// TestPredictAllMatchesPredict pins the flattened fast path (predictFlat,
// via PredictAll) to the map-walking Decompose+SumComponents path bitwise.
func TestPredictAllMatchesPredict(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 1)
	rng := stats.NewRNG(2)
	configs := dev.AllConfigs()
	dst := make([]float64, len(configs))
	for trial := 0; trial < 20; trial++ {
		u := randomUtil(rng)
		if err := m.PredictAll(u, configs, dst); err != nil {
			t.Fatal(err)
		}
		for i, cfg := range configs {
			want, err := m.Predict(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("trial %d cfg %v: PredictAll %x, Predict %x (not bitwise equal)",
					trial, cfg, dst[i], want)
			}
		}
	}
}

// TestRelTimeFlatMatchesEstimateRelativeTime pins the flattened roofline to
// the map path bitwise, including the idle (bound ≤ 0) branch.
func TestRelTimeFlatMatchesEstimateRelativeTime(t *testing.T) {
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	rng := stats.NewRNG(3)
	utils := []Utilization{{}, {hw.SP: 0.9}, {hw.DRAM: 0.8}}
	for i := 0; i < 10; i++ {
		utils = append(utils, randomUtil(rng))
	}
	for _, u := range utils {
		uf := flattenUtil(u)
		for _, cfg := range dev.AllConfigs() {
			want := EstimateRelativeTime(u, ref, cfg)
			got := relTimeFlat(&uf, ref, cfg)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("u=%v cfg=%v: relTimeFlat %x, want %x", u, cfg, got, want)
			}
		}
	}
}

// TestSurfaceMatchesPointwise pins every surface column to the historical
// per-point computation: Predict, EstimateRelativeTime, and the
// relEnergy/EDP derivations in their original association.
func TestSurfaceMatchesPointwise(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 4)
	ref := m.Ref
	rng := stats.NewRNG(5)
	u := randomUtil(rng)

	s, err := Surfaces.Get(context.Background(), m, dev, ref, u)
	if err != nil {
		t.Fatal(err)
	}
	refPower, err := m.Predict(u, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(s.RefPower) != math.Float64bits(refPower) {
		t.Fatalf("RefPower %x, want %x", s.RefPower, refPower)
	}
	if s.Len() != len(dev.AllConfigs()) {
		t.Fatalf("surface has %d points, ladder has %d", s.Len(), len(dev.AllConfigs()))
	}
	for i, cfg := range s.Configs {
		pw, err := m.Predict(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt := EstimateRelativeTime(u, ref, cfg)
		relEnergy := pw * rt / refPower
		relEDP := relEnergy * rt
		if math.Float64bits(s.PowerW[i]) != math.Float64bits(pw) {
			t.Fatalf("%v: PowerW %x, want %x", cfg, s.PowerW[i], pw)
		}
		if math.Float64bits(s.RelTime[i]) != math.Float64bits(rt) {
			t.Fatalf("%v: RelTime %x, want %x", cfg, s.RelTime[i], rt)
		}
		if math.Float64bits(s.RelEnergy[i]) != math.Float64bits(relEnergy) {
			t.Fatalf("%v: RelEnergy %x, want %x", cfg, s.RelEnergy[i], relEnergy)
		}
		if math.Float64bits(s.RelEDP[i]) != math.Float64bits(relEDP) {
			t.Fatalf("%v: RelEDP %x, want %x", cfg, s.RelEDP[i], relEDP)
		}
		if j, ok := s.Point(cfg); !ok || j != i {
			t.Fatalf("%v: Point index %d/%v, want %d", cfg, j, ok, i)
		}
	}
}

// TestSurfaceCacheMemoization checks the hit path returns the same
// immutable instance, and that generation bumps invalidate it.
func TestSurfaceCacheMemoization(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 6)
	u := Utilization{hw.SP: 0.5, hw.DRAM: 0.25}
	c := NewSurfaceCache(8)
	ctx := context.Background()

	s1, err := c.Get(ctx, m, dev, m.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Get(ctx, m, dev, m.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("warm Get returned a different surface instance")
	}

	// Equal-valued but distinct utilization map: still a hit (flattened key).
	s3, err := c.Get(ctx, m, dev, m.Ref, Utilization{hw.SP: 0.5, hw.DRAM: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatal("equal utilization did not hit the cache")
	}

	// In-place mutation + invalidation: new generation, fresh surface.
	m.OmegaMem *= 1.5
	m.InvalidateSurfaces()
	s4, err := c.Get(ctx, m, dev, m.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s1 {
		t.Fatal("InvalidateSurfaces did not invalidate the cached surface")
	}
	if math.Float64bits(s4.PowerW[0]) == math.Float64bits(s1.PowerW[0]) {
		t.Fatal("post-invalidation surface reused stale predictions")
	}

	// A second model never shares generations, hence never shares entries.
	m2 := surfaceTestModel(dev, 6)
	s5, err := c.Get(ctx, m2, dev, m2.Ref, u)
	if err != nil {
		t.Fatal(err)
	}
	if s5 == s4 || s5 == s1 {
		t.Fatal("distinct models shared a cached surface")
	}
}

// TestSurfaceCacheEviction checks the capacity bound: stale generations are
// dropped first, and the shard survives overflow of live entries.
func TestSurfaceCacheEviction(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 7)
	c := NewSurfaceCache(1)
	ctx := context.Background()
	rng := stats.NewRNG(8)
	for i := 0; i < 64; i++ {
		if _, err := c.Get(ctx, m, dev, m.Ref, randomUtil(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > surfaceShards {
		t.Fatalf("cache grew to %d entries despite per-shard capacity 1", n)
	}
	// Entries from an invalidated generation are reclaimed on overflow.
	m.InvalidateSurfaces()
	for i := 0; i < 64; i++ {
		if _, err := c.Get(ctx, m, dev, m.Ref, randomUtil(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > surfaceShards {
		t.Fatalf("cache grew to %d entries after invalidation", n)
	}
}

// TestSurfaceCacheCanceledContext checks that cancellation surfaces as an
// error on both the cold and warm paths, and is never cached.
func TestSurfaceCacheCanceledContext(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 9)
	u := Utilization{hw.SP: 0.4}
	c := NewSurfaceCache(8)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.Get(canceled, m, dev, m.Ref, u); err == nil {
		t.Fatal("cold Get with canceled context succeeded")
	}
	if c.Len() != 0 {
		t.Fatal("canceled computation was cached")
	}
	if _, err := c.Get(context.Background(), m, dev, m.Ref, u); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(canceled, m, dev, m.Ref, u); err == nil {
		t.Fatal("warm Get with canceled context succeeded")
	}
}

// TestSurfaceCachePredictAllocFree is the allocation regression test for
// the cached predict path: after warm-up, Predict performs zero heap
// allocations (ISSUE acceptance criterion).
func TestSurfaceCachePredictAllocFree(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 10)
	u := Utilization{hw.SP: 0.6, hw.DRAM: 0.4}
	cfg := dev.AllConfigs()[3]
	c := NewSurfaceCache(8)
	ctx := context.Background()
	if _, err := c.Predict(ctx, m, dev, m.Ref, u, cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Predict(ctx, m, dev, m.Ref, u, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cached Predict allocates %.1f/op, want 0", allocs)
	}
}

// TestSurfaceCacheConcurrent hammers one cache from many goroutines over a
// small key set; every caller must observe the same instance per key. Run
// under -race this doubles as the data-race check for the sharded maps.
func TestSurfaceCacheConcurrent(t *testing.T) {
	dev := hw.GTXTitanX()
	m := surfaceTestModel(dev, 11)
	c := NewSurfaceCache(16)
	utils := []Utilization{
		{hw.SP: 0.1}, {hw.SP: 0.2}, {hw.DRAM: 0.3}, {hw.Int: 0.4, hw.DRAM: 0.5},
	}
	const workers = 8
	got := make([][]*Surface, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			got[w] = make([]*Surface, len(utils))
			for rep := 0; rep < 50; rep++ {
				for i, u := range utils {
					s, err := c.Get(context.Background(), m, dev, m.Ref, u)
					if err != nil {
						t.Error(err)
						return
					}
					if got[w][i] == nil {
						got[w][i] = s
					} else if got[w][i] != s {
						t.Errorf("worker %d key %d: surface instance changed", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range utils {
			if got[w][i] != got[0][i] {
				t.Fatalf("workers 0 and %d observed different surfaces for key %d", w, i)
			}
		}
	}
}
