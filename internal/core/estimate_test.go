package core

import (
	"context"
	"math"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/stats"
)

// syntheticTruth defines a known ground-truth model (within the fitted
// family) used to verify the estimator recovers what generated the data.
type syntheticTruth struct {
	dev   *hw.Device
	beta  [4]float64
	omega map[hw.Component]float64
	vcore func(f float64) float64 // normalized to the default core clock
	vmem  func(f float64) float64
}

func defaultSyntheticTruth() *syntheticTruth {
	dev := hw.GTXTitanX()
	return &syntheticTruth{
		dev:  dev,
		beta: [4]float64{15, 0.017, 8, 0.0126},
		omega: map[hw.Component]float64{
			hw.Int: 0.025, hw.SP: 0.030, hw.DP: 0.020,
			hw.SF: 0.045, hw.Shared: 0.020, hw.L2: 0.030,
			hw.DRAM: 0.0334,
		},
		vcore: func(f float64) float64 {
			// Plateau + linear, normalized at 975 MHz.
			v := 0.9
			if f > 747 {
				v = 0.9 + (f-747)*(1.15-0.9)/(1164-747)
			}
			ref := 0.9 + (975-747)*(1.15-0.9)/(1164-747)
			return v / ref
		},
		vmem: func(f float64) float64 { return 1 },
	}
}

func (s *syntheticTruth) power(u Utilization, cfg hw.Config) float64 {
	vc := s.vcore(cfg.CoreMHz)
	vm := s.vmem(cfg.MemMHz)
	p := s.beta[0]*vc + vc*vc*cfg.CoreMHz*s.beta[1] +
		s.beta[2]*vm + vm*vm*cfg.MemMHz*s.beta[3]
	for _, c := range CoreOmegaOrder {
		p += vc * vc * cfg.CoreMHz * s.omega[c] * u[c]
	}
	p += vm * vm * cfg.MemMHz * s.omega[hw.DRAM] * u[hw.DRAM]
	return p
}

// syntheticDataset generates a noiseless (or lightly noisy) training set
// from the synthetic truth, with diverse random utilization vectors.
func syntheticDataset(s *syntheticTruth, nBench int, noise float64, seed uint64) *Dataset {
	rng := stats.NewRNG(seed)
	d := &Dataset{
		Device:          s.dev,
		Ref:             s.dev.DefaultConfig(),
		Configs:         s.dev.AllConfigs(),
		L2BytesPerCycle: s.dev.L2BytesPerCycle,
	}
	for b := 0; b < nBench; b++ {
		u := Utilization{}
		// Mixture of stressed and idle components, like the real suite.
		for _, c := range hw.Components {
			if rng.Float64() < 0.5 {
				u[c] = rng.Float64()
			}
		}
		d.Benchmarks = append(d.Benchmarks, TrainingSample{
			Name: "synthetic",
			Util: u,
		})
		row := make([]float64, len(d.Configs))
		for fi, cfg := range d.Configs {
			p := s.power(u, cfg)
			if noise > 0 {
				p += rng.Normal(0, noise)
			}
			if p < 0 {
				p = 0
			}
			row[fi] = p
		}
		d.Power = append(d.Power, row)
	}
	// One idle row anchors the constant terms, like the real ub_idle.
	d.Benchmarks = append(d.Benchmarks, TrainingSample{Name: "idle", Util: Utilization{}})
	row := make([]float64, len(d.Configs))
	for fi, cfg := range d.Configs {
		row[fi] = s.power(Utilization{}, cfg)
	}
	d.Power = append(d.Power, row)
	return d
}

// TestEstimateRecoversSyntheticTruth is the estimator's core correctness
// test: on noiseless data generated from the model family, predictions must
// match the truth almost exactly and the voltage ladder must be recovered.
func TestEstimateRecoversSyntheticTruth(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 60, 0, 1)
	m, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Held-out workloads across the whole configuration space.
	rng := stats.NewRNG(99)
	var worst float64
	for trial := 0; trial < 20; trial++ {
		u := Utilization{}
		for _, c := range hw.Components {
			u[c] = rng.Float64()
		}
		for _, cfg := range d.Configs {
			want := truth.power(u, cfg)
			got, err := m.Predict(u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got-want) / want; rel > worst {
				worst = rel
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("worst held-out relative error %.3f, want < 0.02 on noiseless data", worst)
	}

	// Voltage recovery at the default memory frequency.
	freqs, vbar, err := m.PredictedCoreVoltage(d.Ref.MemMHz)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		if math.Abs(vbar[i]-truth.vcore(f)) > 0.03 {
			t.Errorf("V̄core(%g) = %.3f, want %.3f", f, vbar[i], truth.vcore(f))
		}
	}
}

func TestEstimateVoltageMonotone(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 40, 1.0, 2) // noisy: projection must still hold
	m, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for mi := range m.Voltages.VCore {
		row := m.Voltages.VCore[mi]
		for i := 1; i < len(row); i++ {
			if row[i] < row[i-1]-1e-9 {
				t.Fatalf("V̄core not monotone at mem level %d: %v", mi, row)
			}
		}
	}
}

func TestEstimateReferencePinned(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 30, 0.5, 3)
	m, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	vc, vm, err := m.Voltages.At(d.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vc, 1, 1e-9) || !almostEq(vm, 1, 1e-9) {
		t.Fatalf("V̄(ref) = (%g, %g), want (1, 1)", vc, vm)
	}
}

func TestEstimateNonNegativeCoefficients(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 40, 2.0, 4)
	m, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range m.Beta {
		if b < 0 {
			t.Fatalf("β%d = %g < 0", i, b)
		}
	}
	for c, w := range m.OmegaCore {
		if w < 0 {
			t.Fatalf("ω_%s = %g < 0", c, w)
		}
	}
	if m.OmegaMem < 0 {
		t.Fatal("ω_mem < 0")
	}
}

func TestEstimateAblationModes(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 50, 0, 5)

	full, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}

	noVolt := DefaultEstimatorOptions()
	noVolt.DisableVoltage = true
	mv, err := Estimate(context.Background(), d, noVolt)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Iterations != 1 {
		t.Fatal("ablation should be single-pass")
	}
	for mi := range mv.Voltages.VCore {
		for _, v := range mv.Voltages.VCore[mi] {
			if v != 1 {
				t.Fatal("DisableVoltage must pin V̄ = 1")
			}
		}
	}

	lin := DefaultEstimatorOptions()
	lin.LinearVoltage = true
	ml, err := Estimate(context.Background(), d, lin)
	if err != nil {
		t.Fatal(err)
	}
	vc, _, _ := ml.Voltages.At(hw.Config{CoreMHz: 595, MemMHz: d.Ref.MemMHz})
	if !almostEq(vc, 595.0/975.0, 1e-9) {
		t.Fatalf("LinearVoltage V̄(595) = %g, want %g", vc, 595.0/975.0)
	}

	// On data generated with a non-linear plateau V(f), the full algorithm
	// must beat both ablations on training SSE.
	sse := func(m *Model) float64 {
		var s float64
		for fi, cfg := range d.Configs {
			for bi := range d.Benchmarks {
				p, err := m.Predict(d.Benchmarks[bi].Util, cfg)
				if err != nil {
					t.Fatal(err)
				}
				diff := d.Power[bi][fi] - p
				s += diff * diff
			}
		}
		return s
	}
	fullSSE, noVoltSSE, linSSE := sse(full), sse(mv), sse(ml)
	if fullSSE > noVoltSSE {
		t.Fatalf("full SSE %g worse than no-voltage %g", fullSSE, noVoltSSE)
	}
	if fullSSE > linSSE {
		t.Fatalf("full SSE %g worse than linear-voltage %g", fullSSE, linSSE)
	}
}

func TestEstimateInputValidation(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 10, 0, 6)

	opts := DefaultEstimatorOptions()
	opts.MaxIterations = 0
	if _, err := Estimate(context.Background(), d, opts); err == nil {
		t.Fatal("MaxIterations=0 accepted")
	}

	bad := *d
	bad.Power = bad.Power[:1]
	if _, err := Estimate(context.Background(), &bad, nil); err == nil {
		t.Fatal("inconsistent dataset accepted")
	}
}

func TestDatasetValidate(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 5, 0, 7)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(d *Dataset){
		"no benchmarks":  func(d *Dataset) { d.Benchmarks = nil; d.Power = nil },
		"row mismatch":   func(d *Dataset) { d.Power = d.Power[:2] },
		"ragged row":     func(d *Dataset) { d.Power[0] = d.Power[0][:3] },
		"negative power": func(d *Dataset) { d.Power[1][2] = -5 },
		"bad utilization": func(d *Dataset) {
			d.Benchmarks[0].Util = Utilization{hw.SP: 2}
		},
	}
	for name, mod := range cases {
		dd := syntheticDataset(truth, 5, 0, 7)
		mod(dd)
		if err := dd.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDesignRow(t *testing.T) {
	u := Utilization{hw.Int: 0.1, hw.SP: 0.2, hw.DP: 0.3, hw.SF: 0.4, hw.Shared: 0.5, hw.L2: 0.6, hw.DRAM: 0.7}
	cfg := hw.Config{CoreMHz: 1000, MemMHz: 2000}
	row := designRow(u, cfg, 1.1, 0.9)
	if len(row) != nParams {
		t.Fatalf("row length %d", len(row))
	}
	if !almostEq(row[0], 1.1, 1e-12) || !almostEq(row[2], 0.9, 1e-12) {
		t.Fatal("static columns wrong")
	}
	if !almostEq(row[1], 1.1*1.1*1000, 1e-9) || !almostEq(row[3], 0.9*0.9*2000, 1e-9) {
		t.Fatal("idle-dynamic columns wrong")
	}
	if !almostEq(row[4], 1.1*1.1*1000*0.1, 1e-9) { // Int is first in CoreOmegaOrder
		t.Fatal("Int column wrong")
	}
	if !almostEq(row[10], 0.9*0.9*2000*0.7, 1e-9) {
		t.Fatal("DRAM column wrong")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	m := referenceModel()
	x := modelToParams(m)
	var m2 Model
	paramsToModel(&m2, x)
	if m2.Beta != m.Beta || m2.OmegaMem != m.OmegaMem {
		t.Fatal("params round trip lost betas")
	}
	for c, w := range m.OmegaCore {
		if m2.OmegaCore[c] != w {
			t.Fatalf("ω_%s lost", c)
		}
	}
}

func TestTraceCallback(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 20, 0, 8)
	opts := DefaultEstimatorOptions()
	var iters []int
	opts.Trace = func(iter int, dv, dx, sse float64) {
		iters = append(iters, iter)
		if sse < 0 {
			t.Fatal("negative SSE")
		}
	}
	m, err := Estimate(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != m.Iterations {
		t.Fatalf("trace calls %d != iterations %d", len(iters), m.Iterations)
	}
}

func TestEstimateWithKnownVoltages(t *testing.T) {
	// The Section III-D simplification: supplying the true voltages skips
	// the alternation and must fit the noiseless data essentially exactly.
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 40, 0, 9)

	known := NewVoltageTable(truth.dev.CoreFreqs, truth.dev.MemFreqs)
	for _, cfg := range d.Configs {
		if err := known.Set(cfg, truth.vcore(cfg.CoreMHz), truth.vmem(cfg.MemMHz)); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultEstimatorOptions()
	opts.KnownVoltages = known
	m, err := Estimate(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iterations != 1 {
		t.Fatalf("known-voltage fit took %d iterations, want 1", m.Iterations)
	}
	// Coefficients recovered almost exactly.
	if math.Abs(m.Beta[1]-truth.beta[1]) > 1e-4 {
		t.Errorf("β1 = %g, want %g", m.Beta[1], truth.beta[1])
	}
	for _, c := range CoreOmegaOrder {
		if math.Abs(m.OmegaCore[c]-truth.omega[c]) > 1e-4 {
			t.Errorf("ω_%s = %g, want %g", c, m.OmegaCore[c], truth.omega[c])
		}
	}
	if math.Abs(m.OmegaMem-truth.omega[hw.DRAM]) > 1e-4 {
		t.Errorf("ω_mem = %g, want %g", m.OmegaMem, truth.omega[hw.DRAM])
	}
	// Held-out prediction must be at least as good as the full algorithm's.
	full, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(123)
	var worstKnown, worstFull float64
	for trial := 0; trial < 10; trial++ {
		u := Utilization{}
		for _, c := range hw.Components {
			u[c] = rng.Float64()
		}
		for _, cfg := range d.Configs {
			want := truth.power(u, cfg)
			pk, _ := m.Predict(u, cfg)
			pf, _ := full.Predict(u, cfg)
			if rel := math.Abs(pk-want) / want; rel > worstKnown {
				worstKnown = rel
			}
			if rel := math.Abs(pf-want) / want; rel > worstFull {
				worstFull = rel
			}
		}
	}
	if worstKnown > 1e-6 {
		t.Errorf("known-voltage fit not exact on noiseless data: %g", worstKnown)
	}
	if worstKnown > worstFull {
		t.Errorf("known voltages (%g) should not trail the blind fit (%g)", worstKnown, worstFull)
	}
}

func TestKnownVoltagesIncompatibleWithAblations(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 10, 0, 10)
	opts := DefaultEstimatorOptions()
	opts.KnownVoltages = NewVoltageTable(truth.dev.CoreFreqs, truth.dev.MemFreqs)
	opts.DisableVoltage = true
	if _, err := Estimate(context.Background(), d, opts); err == nil {
		t.Fatal("KnownVoltages + DisableVoltage accepted")
	}
}
