package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"gpupower/internal/hw"
)

// CoreOmegaOrder fixes the ordering of the core-domain component
// coefficients in the parameter vector X = [β0 β1 β2 β3 ω… ω_mem].
var CoreOmegaOrder = []hw.Component{hw.Int, hw.SP, hw.DP, hw.SF, hw.Shared, hw.L2}

// VoltageTable stores the estimated normalized voltages per configuration.
// V̄core may depend on both frequencies (the paper predicts core-voltage
// differences across memory frequencies on the GTX Titan X); V̄mem is
// indexed the same way for symmetry.
type VoltageTable struct {
	// CoreFreqs and MemFreqs mirror the device ladders (ascending MHz).
	CoreFreqs []float64
	MemFreqs  []float64
	// VCore[mi][ci] is V̄core at (CoreFreqs[ci], MemFreqs[mi]); VMem likewise.
	VCore [][]float64
	VMem  [][]float64
}

// NewVoltageTable returns a table initialized to V̄ = 1 everywhere.
func NewVoltageTable(coreFreqs, memFreqs []float64) *VoltageTable {
	t := &VoltageTable{
		CoreFreqs: append([]float64(nil), coreFreqs...),
		MemFreqs:  append([]float64(nil), memFreqs...),
	}
	for range memFreqs {
		vc := make([]float64, len(coreFreqs))
		vm := make([]float64, len(coreFreqs))
		for i := range vc {
			vc[i], vm[i] = 1, 1
		}
		t.VCore = append(t.VCore, vc)
		t.VMem = append(t.VMem, vm)
	}
	return t
}

func (t *VoltageTable) indexOf(cfg hw.Config) (mi, ci int, err error) {
	mi, ci = -1, -1
	for i, f := range t.MemFreqs {
		if f == cfg.MemMHz { //lint:ignore floateq ladder lookup: table frequencies are copied verbatim from the device catalog, so equality is exact by construction
			mi = i
			break
		}
	}
	for i, f := range t.CoreFreqs {
		if f == cfg.CoreMHz { //lint:ignore floateq ladder lookup: table frequencies are copied verbatim from the device catalog, so equality is exact by construction
			ci = i
			break
		}
	}
	if mi < 0 || ci < 0 {
		//gpower:allocs cold error path: only an off-ladder configuration lands here
		return 0, 0, fmt.Errorf("core: configuration %v not in voltage table", cfg)
	}
	return mi, ci, nil
}

// At returns (V̄core, V̄mem) for a ladder configuration.
func (t *VoltageTable) At(cfg hw.Config) (vc, vm float64, err error) {
	mi, ci, err := t.indexOf(cfg)
	if err != nil {
		return 0, 0, err
	}
	return t.VCore[mi][ci], t.VMem[mi][ci], nil
}

// Set stores (V̄core, V̄mem) for a ladder configuration.
func (t *VoltageTable) Set(cfg hw.Config, vc, vm float64) error {
	mi, ci, err := t.indexOf(cfg)
	if err != nil {
		return err
	}
	t.VCore[mi][ci] = vc
	t.VMem[mi][ci] = vm
	return nil
}

// Clone deep-copies the table.
func (t *VoltageTable) Clone() *VoltageTable {
	c := NewVoltageTable(t.CoreFreqs, t.MemFreqs)
	c.CopyFrom(t)
	return c
}

// CopyFrom copies src's voltage entries into t, which must have the same
// ladder shape. It is the allocation-free sibling of Clone, used by the
// estimator to keep its previous-iteration snapshot on reused storage.
func (t *VoltageTable) CopyFrom(src *VoltageTable) {
	if len(t.VCore) != len(src.VCore) || len(t.CoreFreqs) != len(src.CoreFreqs) {
		panic(fmt.Sprintf("core: CopyFrom shape mismatch %dx%d vs %dx%d",
			len(src.MemFreqs), len(src.CoreFreqs), len(t.MemFreqs), len(t.CoreFreqs)))
	}
	for mi := range src.VCore {
		copy(t.VCore[mi], src.VCore[mi])
		copy(t.VMem[mi], src.VMem[mi])
	}
}

// Model is the fitted DVFS-aware power model of one device (Eqs. 6–7 with
// the voltage tables estimated by the Section III-D algorithm).
type Model struct {
	DeviceName string
	Ref        hw.Config

	// Beta are [β0, β1, β2, β3]: core static, core idle-dynamic, memory
	// static, memory idle-dynamic (all normalized to the reference voltage).
	Beta [4]float64

	// OmegaCore are the dynamic coefficients of the core-domain components;
	// OmegaMem is ω_mem for DRAM.
	OmegaCore map[hw.Component]float64
	OmegaMem  float64

	// Voltages holds the estimated V̄ for every ladder configuration.
	Voltages *VoltageTable

	// L2BytesPerCycle is the experimentally calibrated L2 peak bandwidth
	// used when converting events to utilizations.
	L2BytesPerCycle float64

	// Iterations and Converged report how the Section III-D loop ended.
	Iterations int
	Converged  bool

	// gen is the surface-cache generation (surface.go): 0 means "not yet
	// assigned"; Generation() lazily draws a process-unique value. It is
	// accessed atomically, deliberately excluded from serialization (a
	// deserialized model is a distinct instance and draws a fresh
	// generation), and bumped by InvalidateSurfaces after in-place edits.
	gen uint64
}

// modelGenCounter is the process-wide generation source. Generation 0 is
// reserved as the "unassigned" sentinel.
var modelGenCounter uint64

// Generation returns the model's surface-cache generation, assigning a
// fresh process-unique value on first use. Two models never share a
// generation, so memoized prediction surfaces keyed by generation can never
// serve one model's surfaces to another — and a refit (which builds a new
// *Model) implicitly invalidates every cached surface of the old fit.
func (m *Model) Generation() uint64 {
	if g := atomic.LoadUint64(&m.gen); g != 0 {
		return g
	}
	g := atomic.AddUint64(&modelGenCounter, 1)
	if atomic.CompareAndSwapUint64(&m.gen, 0, g) {
		return g
	}
	return atomic.LoadUint64(&m.gen)
}

// InvalidateSurfaces assigns the model a fresh generation, orphaning every
// prediction surface memoized against the old one. Call it after mutating a
// fitted model in place (coefficient edits, voltage-table adjustments);
// Estimate never needs it because each fit returns a new instance.
func (m *Model) InvalidateSurfaces() {
	atomic.StoreUint64(&m.gen, atomic.AddUint64(&modelGenCounter, 1))
}

// Validate checks the model for physical consistency.
func (m *Model) Validate() error {
	for i, b := range m.Beta {
		if b < 0 || math.IsNaN(b) {
			return fmt.Errorf("core: β%d = %g is not physical", i, b)
		}
	}
	for _, c := range CoreOmegaOrder {
		w, ok := m.OmegaCore[c]
		if !ok {
			return fmt.Errorf("core: missing ω for %s", c)
		}
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("core: ω_%s = %g is not physical", c, w)
		}
	}
	if m.OmegaMem < 0 || math.IsNaN(m.OmegaMem) {
		return fmt.Errorf("core: ω_mem = %g is not physical", m.OmegaMem)
	}
	if m.Voltages == nil {
		return fmt.Errorf("core: model has no voltage table")
	}
	if m.L2BytesPerCycle <= 0 {
		return fmt.Errorf("core: L2 bytes/cycle %g must be positive", m.L2BytesPerCycle)
	}
	for mi := range m.Voltages.VCore {
		for ci := range m.Voltages.VCore[mi] {
			if v := m.Voltages.VCore[mi][ci]; v <= 0 {
				return fmt.Errorf("core: V̄core %g at index (%d,%d) not positive", v, mi, ci)
			}
			if v := m.Voltages.VMem[mi][ci]; v <= 0 {
				return fmt.Errorf("core: V̄mem %g at index (%d,%d) not positive", v, mi, ci)
			}
		}
	}
	return nil
}

// Breakdown is the model's power decomposition at one configuration
// (paper Figs. 5B and 10): the constant share (static + idle V-F power of
// both domains) plus each component's dynamic power.
type Breakdown struct {
	Config    hw.Config
	Constant  float64
	Component map[hw.Component]float64
}

// Total returns the total predicted power of the breakdown. The component
// map is folded in canonical component order (hw.SumComponents) so the float
// sum is bitwise-reproducible across runs — map iteration order is
// randomized and float addition is not associative.
func (b *Breakdown) Total() float64 {
	return b.Constant + hw.SumComponents(b.Component)
}

// Decompose predicts the per-part power of an application with utilization u
// at configuration cfg (must be a ladder configuration of the fitted device).
func (m *Model) Decompose(u Utilization, cfg hw.Config) (*Breakdown, error) {
	vc, vm, err := m.Voltages.At(cfg)
	if err != nil {
		return nil, err
	}
	b := &Breakdown{
		Config:    cfg,
		Component: make(map[hw.Component]float64, 7),
	}
	// Eq. 6 constant part: β0·V̄c + V̄c²·f_c·β1; Eq. 7: β2·V̄m + V̄m²·f_m·β3.
	b.Constant = m.Beta[0]*vc + vc*vc*cfg.CoreMHz*m.Beta[1] +
		m.Beta[2]*vm + vm*vm*cfg.MemMHz*m.Beta[3]
	for _, c := range CoreOmegaOrder {
		b.Component[c] = vc * vc * cfg.CoreMHz * m.OmegaCore[c] * u[c]
	}
	b.Component[hw.DRAM] = vm * vm * cfg.MemMHz * m.OmegaMem * u[hw.DRAM]
	return b, nil
}

// Predict returns the total predicted power of an application with
// utilization u at configuration cfg.
//
// This is a serving hot path (every gpowerd prediction that misses the
// surface cache lands here), so it evaluates on flattened utilization and
// coefficient blocks instead of building a Breakdown: zero allocations in
// the steady state, and bitwise-identical to Decompose().Total() — the
// surface tests pin the equality of the two paths.
//
//gpower:noalloc warm predictions allocate only on the off-ladder error path
func (m *Model) Predict(u Utilization, cfg hw.Config) (float64, error) {
	uf := flattenUtil(u)
	om := m.flatOmega()
	return m.predictFlat(&uf, &om, cfg)
}

// PredictedCoreVoltage returns the estimated V̄core ladder at a memory
// frequency, for the Fig. 6 voltage-validation plot.
func (m *Model) PredictedCoreVoltage(memMHz float64) (coreFreqs, vbar []float64, err error) {
	for mi, f := range m.Voltages.MemFreqs {
		if f == memMHz { //lint:ignore floateq ladder lookup: callers pass catalog frequencies, which the table stores verbatim
			return append([]float64(nil), m.Voltages.CoreFreqs...),
				append([]float64(nil), m.Voltages.VCore[mi]...), nil
		}
	}
	return nil, nil, fmt.Errorf("core: memory frequency %g MHz not in model", memMHz)
}
