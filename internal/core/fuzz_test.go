package core

import (
	"testing"

	"gpupower/internal/hw"
)

// Fuzz targets run their seed corpus under plain `go test` and can be
// explored further with `go test -fuzz=FuzzModelUnmarshal ./internal/core`.

func FuzzModelUnmarshal(f *testing.F) {
	// Seed with a valid model and a few corruptions.
	m := referenceModel()
	valid, err := m.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"omega_core":[1,2,3]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"device":"x","beta":[-1,0,0,0]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Model
		if err := back.UnmarshalJSON(data); err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be a valid model that can predict.
		if err := back.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
		cfg := hw.Config{CoreMHz: back.Voltages.CoreFreqs[0], MemMHz: back.Voltages.MemFreqs[0]}
		if _, err := back.Predict(Utilization{hw.SP: 0.5}, cfg); err != nil {
			t.Fatalf("accepted model cannot predict: %v", err)
		}
	})
}

func FuzzUtilizationFromMetrics(f *testing.F) {
	f.Add(1e6, 1e5, 1e5, 1e4, 1e3, 1e3, 768.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-1.0, 1e300, -5.0, 1.0, 2.0, 3.0, 512.0)

	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	f.Fuzz(func(t *testing.T, aCycles, warps, instSP, sectors, trans, dp, l2bpc float64) {
		m := syntheticMetrics(aCycles)
		m["AWarpsSP/INT"] = warps
		m["InstSP"] = instSP
		m["ABandDRAM.read"] = sectors
		m["ABandShared.load"] = trans
		m["AWarpsDP"] = dp
		u, err := UtilizationFromMetrics(dev, ref, m, l2bpc)
		if err != nil {
			return
		}
		// Accepted inputs must produce valid utilizations (never NaN/out of
		// range), whatever garbage the counters held.
		if err := u.Validate(); err != nil {
			t.Fatalf("accepted metrics produced invalid utilization: %v", err)
		}
	})
}
