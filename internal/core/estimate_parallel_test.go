package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"gpupower/internal/parallel"
)

// withGOMAXPROCS runs fn with the scheduler width pinned to n, so the
// parallel paths exercise real goroutine fan-out even on single-core CI
// hosts (concurrency without parallelism still shakes out races and
// ordering bugs under -race).
func withGOMAXPROCS(n int, fn func()) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// modelsIdentical asserts bitwise equality of everything Estimate fits.
func modelsIdentical(t *testing.T, a, b *Model) {
	t.Helper()
	if a.Beta != b.Beta {
		t.Fatalf("Beta differs: %v vs %v", a.Beta, b.Beta)
	}
	for c, v := range a.OmegaCore {
		if b.OmegaCore[c] != v {
			t.Fatalf("ω_%s differs: %v vs %v", c, v, b.OmegaCore[c])
		}
	}
	if a.OmegaMem != b.OmegaMem {
		t.Fatalf("ω_mem differs: %v vs %v", a.OmegaMem, b.OmegaMem)
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("trajectory differs: (%d, %v) vs (%d, %v)",
			a.Iterations, a.Converged, b.Iterations, b.Converged)
	}
	for mi := range a.Voltages.VCore {
		for ci := range a.Voltages.VCore[mi] {
			if a.Voltages.VCore[mi][ci] != b.Voltages.VCore[mi][ci] {
				t.Fatalf("V̄core differs at (%d,%d): %v vs %v", mi, ci,
					a.Voltages.VCore[mi][ci], b.Voltages.VCore[mi][ci])
			}
			if a.Voltages.VMem[mi][ci] != b.Voltages.VMem[mi][ci] {
				t.Fatalf("V̄mem differs at (%d,%d): %v vs %v", mi, ci,
					a.Voltages.VMem[mi][ci], b.Voltages.VMem[mi][ci])
			}
		}
	}
}

// TestEstimateSerialParallelEquivalence is the determinism guarantee of the
// parallel engine: a fit on the sequential oracle path and a fit with the
// worker pool fanned out must produce bitwise-identical parameters, voltage
// tables and convergence trajectories (the disjoint-write / ordered-
// reduction invariants of internal/parallel make this exact, not
// approximate).
func TestEstimateSerialParallelEquivalence(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 40, 0.5, 7)

	var serial, parallelFit *Model
	var err error

	prev := parallel.SetSequential(true)
	serial, err = Estimate(context.Background(), d, nil)
	parallel.SetSequential(prev)
	if err != nil {
		t.Fatal(err)
	}

	withGOMAXPROCS(4, func() {
		parallelFit, err = Estimate(context.Background(), d, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	modelsIdentical(t, serial, parallelFit)
}

// TestEstimateConcurrentOnSharedDataset runs several fits against the SAME
// dataset from concurrent goroutines. Estimate must treat the dataset as
// read-only — under `go test -race` this test proves it — and every fit
// must land on the identical model.
func TestEstimateConcurrentOnSharedDataset(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 30, 0.5, 11)

	withGOMAXPROCS(4, func() {
		const fits = 4
		models := make([]*Model, fits)
		errs := make([]error, fits)
		var wg sync.WaitGroup
		wg.Add(fits)
		for i := 0; i < fits; i++ {
			go func(i int) {
				defer wg.Done()
				models[i], errs[i] = Estimate(context.Background(), d, nil)
			}(i)
		}
		wg.Wait()
		for i := 0; i < fits; i++ {
			if errs[i] != nil {
				t.Fatalf("concurrent fit %d: %v", i, errs[i])
			}
		}
		for i := 1; i < fits; i++ {
			modelsIdentical(t, models[0], models[i])
		}
	})
}

// TestTrainingSSEPropagatesVoltageError is the regression test for the
// silent-continue bug: a voltage table that cannot resolve one of the
// dataset's configurations used to be skipped, understating the SSE (and
// potentially declaring convergence on a partial objective). It must now
// surface as a hard error.
func TestTrainingSSEPropagatesVoltageError(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 5, 0, 3)

	// A table built over a truncated core ladder cannot resolve most of the
	// dataset's configurations.
	truncated := NewVoltageTable(d.Device.CoreFreqs[:1], d.Device.MemFreqs)
	x := make([]float64, nParams)
	if _, err := trainingSSE(d, truncated, x); err == nil {
		t.Fatal("trainingSSE swallowed the voltage-table miss")
	}

	// Happy path: the full table yields exactly the measured power's SSE
	// for the all-zero parameter vector (prediction ≡ 0).
	full := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	got, err := trainingSSE(d, full, x)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for fi := range d.Configs {
		var s float64
		for bi := range d.Benchmarks {
			p := d.Power[bi][fi]
			s += p * p
		}
		want += s
	}
	if got != want {
		t.Fatalf("SSE(x=0) = %g, want the measured power SSE %g", got, want)
	}
}

// TestSolveXParallelMatchesSequential pins the step-1/step-3 design
// assembly: the row blocks written by the worker pool must assemble the
// same system (hence the same NNLS solution) as the sequential path.
func TestSolveXParallelMatchesSequential(t *testing.T) {
	truth := defaultSyntheticTruth()
	d := syntheticDataset(truth, 25, 0.25, 5)
	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	all := make([]int, len(d.Configs))
	for i := range all {
		all[i] = i
	}

	prev := parallel.SetSequential(true)
	xSeq, errSeq := solveX(d, volt, all)
	parallel.SetSequential(prev)
	if errSeq != nil {
		t.Fatal(errSeq)
	}

	var xPar []float64
	var errPar error
	withGOMAXPROCS(4, func() {
		xPar, errPar = solveX(d, volt, all)
	})
	if errPar != nil {
		t.Fatal(errPar)
	}
	for j := range xSeq {
		if xSeq[j] != xPar[j] {
			t.Fatalf("x[%d]: sequential %v != parallel %v", j, xSeq[j], xPar[j])
		}
	}
}
