package core

import (
	"context"
	"math"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/linalg"
	"gpupower/internal/stats"
)

// referenceSolveX is the historical step-1/step-3 path: build every design
// row with designRowInto, copy it into a fresh matrix, and solve with the
// allocating NNLS entry point. The incremental workspace path must match it
// bitwise — same rows, same right-hand side, same active-set trajectory.
func referenceSolveX(d *Dataset, volt *VoltageTable, configIdx []int) ([]float64, error) {
	nb := len(d.Benchmarks)
	rows := nb * len(configIdx)
	a := linalg.NewMatrix(rows, nParams)
	b := make([]float64, rows)
	row := make([]float64, nParams)
	for k, fi := range configIdx {
		cfg := d.Configs[fi]
		vc, vm, err := volt.At(cfg)
		if err != nil {
			return nil, err
		}
		r := k * nb
		for bi, bench := range d.Benchmarks {
			designRowInto(row, bench.Util, cfg, vc, vm)
			a.SetRow(r, row)
			b[r] = d.Power[bi][fi]
			r++
		}
	}
	return linalg.NNLS(a, b)
}

// referenceTrainingSSE is the historical SSE evaluation: a designRowInto
// row per (config, benchmark) folded against x in index order, partials
// folded in configuration order.
func referenceTrainingSSE(d *Dataset, volt *VoltageTable, x []float64) (float64, error) {
	row := make([]float64, nParams)
	var sse float64
	for fi, cfg := range d.Configs {
		vc, vm, err := volt.At(cfg)
		if err != nil {
			return 0, err
		}
		var s float64
		for bi, bench := range d.Benchmarks {
			designRowInto(row, bench.Util, cfg, vc, vm)
			pred := 0.0
			for j, v := range row {
				pred += v * x[j]
			}
			diff := d.Power[bi][fi] - pred
			s += diff * diff
		}
		_ = fi
		sse += s
	}
	return sse, nil
}

// perturbedVoltages builds a deterministic non-trivial voltage table so the
// equivalence check exercises the incremental rescaling away from V̄ ≡ 1.
func perturbedVoltages(d *Dataset, seed uint64) *VoltageTable {
	rng := stats.NewRNG(seed)
	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	for mi := range volt.VCore {
		for ci := range volt.VCore[mi] {
			volt.VCore[mi][ci] = 0.8 + 0.4*rng.Float64()
			volt.VMem[mi][ci] = 0.8 + 0.4*rng.Float64()
		}
	}
	return volt
}

// TestIncrementalAssemblyBitwiseEquivalent pins the tentpole invariant: the
// incremental design-matrix assembly (base blocks rescaled by the per-config
// scalars vc, vc²·fc, vm, vm²·fm) solves to bitwise-identical parameter
// vectors as the historical row-by-row designRowInto path, including when
// the workspace is reused across successive solves with different voltage
// tables and different configuration subsets.
func TestIncrementalAssemblyBitwiseEquivalent(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 24, 2.0, 7)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ws := newEstimatorWorkspace(d)

	init, err := initialConfigs(d)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, len(d.Configs))
	for i := range all {
		all[i] = i
	}

	cases := []struct {
		name string
		volt *VoltageTable
		idx  []int
	}{
		{"unit-voltages/init-subset", NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs), init},
		{"perturbed/all-configs", perturbedVoltages(d, 3), all},
		{"perturbed2/all-configs", perturbedVoltages(d, 11), all},
		{"perturbed2/init-subset", perturbedVoltages(d, 11), init},
	}
	x := make([]float64, nParams)
	for _, tc := range cases {
		want, err := referenceSolveX(d, tc.volt, tc.idx)
		if err != nil {
			t.Fatalf("%s: referenceSolveX: %v", tc.name, err)
		}
		if err := ws.solveXInto(x, tc.volt, tc.idx); err != nil {
			t.Fatalf("%s: solveXInto: %v", tc.name, err)
		}
		for j := range want {
			if math.Float64bits(x[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%s: x[%d] = %x, want %x (not bitwise equal)", tc.name, j, x[j], want[j])
			}
		}

		wantSSE, err := referenceTrainingSSE(d, tc.volt, x)
		if err != nil {
			t.Fatalf("%s: referenceTrainingSSE: %v", tc.name, err)
		}
		gotSSE, err := ws.trainingSSE(tc.volt, x)
		if err != nil {
			t.Fatalf("%s: trainingSSE: %v", tc.name, err)
		}
		if math.Float64bits(gotSSE) != math.Float64bits(wantSSE) {
			t.Fatalf("%s: SSE = %x, want %x (not bitwise equal)", tc.name, gotSSE, wantSSE)
		}
	}
}

// TestSolveVoltagesBasePrecomputes pins the flattened A/B precomputes of
// step 2 to the historical map-walking accumulation.
func TestSolveVoltagesBasePrecomputes(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 16, 1.0, 5)
	ws := newEstimatorWorkspace(d)
	rng := stats.NewRNG(9)
	x := make([]float64, nParams)
	for j := range x {
		x[j] = rng.Float64()
	}
	// Run one step-2 solve to fill ws.A/ws.B.
	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	opts := DefaultEstimatorOptions()
	if err := ws.solveVoltages(x, volt, opts); err != nil {
		t.Fatal(err)
	}
	for bi, bench := range d.Benchmarks {
		wantA := x[1]
		for i, c := range CoreOmegaOrder {
			wantA += x[4+i] * bench.Util[c]
		}
		wantB := x[3] + x[10]*bench.Util[hw.DRAM]
		if math.Float64bits(ws.A[bi]) != math.Float64bits(wantA) {
			t.Fatalf("A[%d] = %x, want %x", bi, ws.A[bi], wantA)
		}
		if math.Float64bits(ws.B[bi]) != math.Float64bits(wantB) {
			t.Fatalf("B[%d] = %x, want %x", bi, ws.B[bi], wantB)
		}
	}
}

// TestSolveXIntoSubsetAllocFree pins the step-1 subset path: solving over
// initialConfigs (rows != full design height) must reuse the cached
// subset-shaped buffers after the first call instead of allocating a fresh
// matrix and right-hand side per solve.
func TestSolveXIntoSubsetAllocFree(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 24, 2.0, 7)
	ws := newEstimatorWorkspace(d)
	init, err := initialConfigs(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(init) == len(d.Configs) {
		t.Fatalf("initialConfigs covers the full ladder; subset path not exercised")
	}
	volt := NewVoltageTable(d.Device.CoreFreqs, d.Device.MemFreqs)
	x := make([]float64, nParams)
	// Warm once: the first subset solve sizes ws.subA/ws.subB.
	if err := ws.solveXInto(x, volt, init); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := ws.solveXInto(x, volt, init); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("subset solveXInto allocates %.1f/op in steady state, want 0", allocs)
	}
}

// TestEstimateMatchesReferenceEngine cross-checks the production engine
// against the preserved pre-restructuring engine (estimate_reference.go) on
// a synthetic dataset. The engines order their floating-point work
// differently (blocked vs Hypot-chain QR, compiled vs direct step-2
// objectives), so agreement is tolerance-based: measured divergence on the
// real device rigs is ≤1e-5 relative on parameters and ≤6e-6 on voltages;
// the bounds here leave two orders of magnitude of margin.
func TestEstimateMatchesReferenceEngine(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 24, 2.0, 7)
	ref, err := EstimateReference(context.Background(), d, nil)
	if err != nil {
		t.Fatalf("EstimateReference: %v", err)
	}
	got, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}

	if got.Converged != ref.Converged {
		t.Fatalf("Converged = %v, reference %v (after %d vs %d iterations)",
			got.Converged, ref.Converged, got.Iterations, ref.Iterations)
	}

	var scale float64
	for _, b := range ref.Beta {
		scale = math.Max(scale, math.Abs(b))
	}
	for _, w := range ref.OmegaCore {
		scale = math.Max(scale, math.Abs(w))
	}
	scale = math.Max(scale, math.Abs(ref.OmegaMem))

	for i := range ref.Beta {
		if diff := math.Abs(got.Beta[i] - ref.Beta[i]); diff > 1e-3*scale {
			t.Errorf("β%d = %v, reference %v (diff %g)", i, got.Beta[i], ref.Beta[i], diff)
		}
	}
	for c, w := range ref.OmegaCore {
		if diff := math.Abs(got.OmegaCore[c] - w); diff > 1e-3*scale {
			t.Errorf("ω_%s = %v, reference %v (diff %g)", c, got.OmegaCore[c], w, diff)
		}
	}
	if diff := math.Abs(got.OmegaMem - ref.OmegaMem); diff > 1e-3*scale {
		t.Errorf("ω_mem = %v, reference %v (diff %g)", got.OmegaMem, ref.OmegaMem, diff)
	}
	for mi := range ref.Voltages.VCore {
		for ci := range ref.Voltages.VCore[mi] {
			dc := math.Abs(got.Voltages.VCore[mi][ci] - ref.Voltages.VCore[mi][ci])
			dm := math.Abs(got.Voltages.VMem[mi][ci] - ref.Voltages.VMem[mi][ci])
			if dc > 1e-4 || dm > 1e-4 {
				t.Errorf("voltage (%d,%d): (%v, %v), reference (%v, %v)",
					mi, ci, got.Voltages.VCore[mi][ci], got.Voltages.VMem[mi][ci],
					ref.Voltages.VCore[mi][ci], ref.Voltages.VMem[mi][ci])
			}
		}
	}
}

// TestDesignRowIntoAllocFree is the allocation regression test for the
// per-row fill primitive shared by the reference path and external callers.
func TestDesignRowIntoAllocFree(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 2, 0, 1)
	u := d.Benchmarks[0].Util
	cfg := d.Ref
	dst := make([]float64, nParams)
	allocs := testing.AllocsPerRun(100, func() {
		designRowInto(dst, u, cfg, 1.05, 0.95)
	})
	if allocs != 0 {
		t.Fatalf("designRowInto allocates %.1f/op, want 0", allocs)
	}
}
