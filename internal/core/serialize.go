package core

import (
	"encoding/json"
	"fmt"
	"os"

	"gpupower/internal/hw"
)

// modelJSON is the stable on-disk representation of a fitted model.
type modelJSON struct {
	DeviceName string     `json:"device"`
	RefCore    float64    `json:"ref_core_mhz"`
	RefMem     float64    `json:"ref_mem_mhz"`
	Beta       [4]float64 `json:"beta"`
	OmegaCore  []float64  `json:"omega_core"` // ordered per CoreOmegaOrder
	OmegaMem   float64    `json:"omega_mem"`

	CoreFreqs []float64   `json:"core_freqs_mhz"`
	MemFreqs  []float64   `json:"mem_freqs_mhz"`
	VCore     [][]float64 `json:"vbar_core"`
	VMem      [][]float64 `json:"vbar_mem"`

	L2BytesPerCycle float64 `json:"l2_bytes_per_cycle"`
	Iterations      int     `json:"iterations"`
	Converged       bool    `json:"converged"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	j := modelJSON{
		DeviceName:      m.DeviceName,
		RefCore:         m.Ref.CoreMHz,
		RefMem:          m.Ref.MemMHz,
		Beta:            m.Beta,
		OmegaMem:        m.OmegaMem,
		CoreFreqs:       m.Voltages.CoreFreqs,
		MemFreqs:        m.Voltages.MemFreqs,
		VCore:           m.Voltages.VCore,
		VMem:            m.Voltages.VMem,
		L2BytesPerCycle: m.L2BytesPerCycle,
		Iterations:      m.Iterations,
		Converged:       m.Converged,
	}
	for _, c := range CoreOmegaOrder {
		j.OmegaCore = append(j.OmegaCore, m.OmegaCore[c])
	}
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.OmegaCore) != len(CoreOmegaOrder) {
		return fmt.Errorf("core: model JSON has %d core coefficients, want %d",
			len(j.OmegaCore), len(CoreOmegaOrder))
	}
	m.DeviceName = j.DeviceName
	m.Ref = hw.Config{CoreMHz: j.RefCore, MemMHz: j.RefMem}
	m.Beta = j.Beta
	m.OmegaCore = make(map[hw.Component]float64, len(CoreOmegaOrder))
	for i, c := range CoreOmegaOrder {
		m.OmegaCore[c] = j.OmegaCore[i]
	}
	m.OmegaMem = j.OmegaMem
	m.Voltages = &VoltageTable{
		CoreFreqs: j.CoreFreqs,
		MemFreqs:  j.MemFreqs,
		VCore:     j.VCore,
		VMem:      j.VMem,
	}
	m.L2BytesPerCycle = j.L2BytesPerCycle
	m.Iterations = j.Iterations
	m.Converged = j.Converged
	return m.Validate()
}

// Save writes the model to a JSON file.
func (m *Model) Save(path string) error {
	data, err := m.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads a model from a JSON file.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("core: loading %s: %w", path, err)
	}
	return &m, nil
}
