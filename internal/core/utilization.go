// Package core implements the paper's contribution: the DVFS-aware GPU
// power model (Eqs. 3–7), the hardware-utilization metrics computed from
// CUPTI events (Eqs. 8–10), the iterative estimation algorithm of
// Section III-D, and power prediction/decomposition for unseen applications
// (Section III-E).
package core

import (
	"fmt"

	"gpupower/internal/cupti"
	"gpupower/internal/hw"
)

// Utilization holds the average utilization rate U ∈ [0,1] of each modelled
// component, as defined by paper Eqs. 8 and 9.
type Utilization map[hw.Component]float64

// Clone returns a copy of u.
func (u Utilization) Clone() Utilization {
	out := make(Utilization, len(u))
	for c, v := range u {
		out[c] = v
	}
	return out
}

// Validate checks all rates are finite and within [0, 1] (after clamping
// tolerance for event noise).
func (u Utilization) Validate() error {
	for c, v := range u {
		if !c.Valid() {
			return fmt.Errorf("core: utilization has invalid component %v", c)
		}
		if v < 0 || v > 1 {
			return fmt.Errorf("core: utilization of %s is %g, outside [0,1]", c, v)
		}
	}
	return nil
}

// clamp01 limits noisy event-derived rates into the physical range.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// UtilizationFromMetrics converts aggregated Table I metrics collected at
// the reference configuration into the Eq. 8–10 utilization rates.
//
// l2BytesPerCycle is the experimentally determined aggregate L2 bandwidth in
// bytes per core cycle (Section III-C: "the L2 cache peak bandwidth cannot
// be computed as trivially … it was experimentally determined with a set of
// specific L2 microbenchmarks"); see CalibrateL2BytesPerCycle.
func UtilizationFromMetrics(dev *hw.Device, ref hw.Config, m map[cupti.Metric]float64, l2BytesPerCycle float64) (Utilization, error) {
	aCycles := m[cupti.MetricACycles]
	if aCycles <= 0 {
		return nil, fmt.Errorf("core: non-positive active cycles %g", aCycles)
	}
	if l2BytesPerCycle <= 0 {
		return nil, fmt.Errorf("core: non-positive L2 bytes/cycle %g", l2BytesPerCycle)
	}
	seconds := aCycles / (ref.CoreMHz * 1e6)
	ws := float64(dev.WarpSize)
	sms := float64(dev.NumSMs)

	u := make(Utilization, 7)

	// Eq. 10: the SP and INT units share one warp counter; split it by the
	// per-type instruction counts.
	warpsIntSP := m[cupti.MetricWarpsSPInt]
	instInt := m[cupti.MetricInstInt]
	instSP := m[cupti.MetricInstSP]
	var warpsInt, warpsSP float64
	if tot := instInt + instSP; tot > 0 {
		warpsInt = warpsIntSP * instInt / tot
		warpsSP = warpsIntSP * instSP / tot
	}

	// Eq. 8: U_x = AWarps_x · WarpSize / (ACycles · UnitsPerSM_x), with the
	// device-total convention (AWarps counted across all SMs, hence the SM
	// count in the denominator).
	compute := func(c hw.Component, warps float64) float64 {
		return warps * ws / (aCycles * float64(dev.UnitsPerSM[c]) * sms)
	}
	u[hw.Int] = clamp01(compute(hw.Int, warpsInt))
	u[hw.SP] = clamp01(compute(hw.SP, warpsSP))
	u[hw.DP] = clamp01(compute(hw.DP, m[cupti.MetricWarpsDP]))
	u[hw.SF] = clamp01(compute(hw.SF, m[cupti.MetricWarpsSF]))

	// Eq. 9: U_y = ABand_y / PeakBand_y. Sector queries are 32 B; shared
	// transactions move banks×4 B.
	sharedBytes := (m[cupti.MetricSharedLoad] + m[cupti.MetricSharedStore]) * float64(dev.SharedBanks) * 4
	l2Bytes := (m[cupti.MetricL2Read] + m[cupti.MetricL2Write]) * 32
	dramBytes := (m[cupti.MetricDRAMRead] + m[cupti.MetricDRAMWrite]) * 32

	u[hw.Shared] = clamp01(sharedBytes / seconds / dev.PeakSharedBandwidth(ref.CoreMHz))
	u[hw.L2] = clamp01(l2Bytes / seconds / (ref.CoreMHz * 1e6 * l2BytesPerCycle))
	u[hw.DRAM] = clamp01(dramBytes / seconds / dev.PeakDRAMBandwidth(ref.MemMHz))

	return u, nil
}
