package core

import (
	"math"
	"testing"
	"testing/quick"

	"gpupower/internal/hw"
)

// Property-based tests (testing/quick) on the model's core data structures
// and algebraic invariants.

// clampU folds an arbitrary float into a valid utilization value.
func clampU(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Abs(math.Mod(v, 1))
}

// utilFrom builds a valid utilization vector from arbitrary floats.
func utilFrom(vals [7]float64) Utilization {
	u := Utilization{}
	for i, c := range hw.Components {
		u[c] = clampU(vals[i])
	}
	return u
}

// TestPredictAffineInUtilization: the Eq. 6–7 model is affine in U, so
// P(U) − P(0) must be additive: [P(Ua)−P(0)] + [P(Ub)−P(0)] = P(Ua+Ub)−P(0)
// whenever Ua+Ub stays in range.
func TestPredictAffineInUtilization(t *testing.T) {
	m := referenceModel()
	cfg := hw.Config{CoreMHz: 823, MemMHz: 3300}
	_ = m.Voltages.Set(cfg, 0.95, 1.0)
	zero, err := m.Predict(Utilization{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b [7]float64) bool {
		ua, ub := utilFrom(a), utilFrom(b)
		sum := Utilization{}
		for _, c := range hw.Components {
			ua[c] /= 2 // keep the sum within [0,1]
			ub[c] /= 2
			sum[c] = ua[c] + ub[c]
		}
		pa, err1 := m.Predict(ua, cfg)
		pb, err2 := m.Predict(ub, cfg)
		ps, err3 := m.Predict(sum, cfg)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		lhs := (pa - zero) + (pb - zero)
		rhs := ps - zero
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictMonotoneInUtilization: with non-negative coefficients, more
// utilization can never predict less power.
func TestPredictMonotoneInUtilization(t *testing.T) {
	m := referenceModel()
	cfg := m.Ref
	f := func(base [7]float64, which uint8, extra float64) bool {
		u := utilFrom(base)
		c := hw.Components[int(which)%len(hw.Components)]
		u2 := u.Clone()
		u2[c] = math.Min(1, u2[c]+clampU(extra))
		p1, err1 := m.Predict(u, cfg)
		p2, err2 := m.Predict(u2, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeSumsToPredict: the breakdown always reassembles into the
// total, for arbitrary utilizations and every ladder configuration.
func TestDecomposeSumsToPredict(t *testing.T) {
	m := referenceModel()
	configs := hw.GTXTitanX().AllConfigs()
	f := func(vals [7]float64, cfgIdx uint16) bool {
		u := utilFrom(vals)
		cfg := configs[int(cfgIdx)%len(configs)]
		bd, err := m.Decompose(u, cfg)
		if err != nil {
			return false
		}
		p, err := m.Predict(u, cfg)
		if err != nil {
			return false
		}
		return math.Abs(bd.Total()-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVoltageTableSetAtRoundTrip: Set followed by At returns what was set,
// for arbitrary in-range values at arbitrary ladder coordinates.
func TestVoltageTableSetAtRoundTrip(t *testing.T) {
	dev := hw.GTXTitanX()
	v := NewVoltageTable(dev.CoreFreqs, dev.MemFreqs)
	cfgs := dev.AllConfigs()
	f := func(cfgIdx uint16, vc, vm float64) bool {
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		wc := 0.5 + clampU(vc)
		wm := 0.5 + clampU(vm)
		if err := v.Set(cfg, wc, wm); err != nil {
			return false
		}
		gc, gm, err := v.At(cfg)
		return err == nil && gc == wc && gm == wm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRelativeTimeProperties: the roofline companion never returns a
// non-positive ratio, is exactly 1 at the reference, and scales inversely
// with the bound domain's frequency for single-component profiles.
func TestRelativeTimeProperties(t *testing.T) {
	dev := hw.GTXTitanX()
	ref := dev.DefaultConfig()
	cfgs := dev.AllConfigs()
	f := func(vals [7]float64, cfgIdx uint16) bool {
		u := utilFrom(vals)
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		rt := EstimateRelativeTime(u, ref, cfg)
		if rt <= 0 || math.IsNaN(rt) {
			return false
		}
		if EstimateRelativeTime(u, ref, ref) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Pure DRAM-bound profile: time ∝ f_mem_ref / f_mem.
	u := Utilization{hw.DRAM: 0.8}
	for _, cfg := range cfgs {
		want := ref.MemMHz / cfg.MemMHz
		got := EstimateRelativeTime(u, ref, cfg)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("DRAM-bound relative time at %v: %g, want %g", cfg, got, want)
		}
	}
}
