package core

import (
	"context"
	"math"
	"testing"

	"gpupower/internal/backend/simbk"
	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/microbench"
	"gpupower/internal/profiler"
)

func k40Profiler(t *testing.T) *profiler.Profiler {
	t.Helper()
	// Tesla K40c: smallest configuration space, fast tests.
	b, err := simbk.Open("Tesla K40c", 42)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profiler.New(b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCalibrateL2BytesPerCycle(t *testing.T) {
	p := k40Profiler(t)
	ref := p.HW().DefaultConfig()
	got, err := CalibrateL2BytesPerCycle(context.Background(), p, ref)
	if err != nil {
		t.Fatal(err)
	}
	// The device's true figure is 512 B/cycle; the calibration benches reach
	// ~88% of peak and carry Kepler event error, so accept a generous band —
	// systematic calibration bias is absorbed by ω_L2 during fitting.
	true512 := p.HW().L2BytesPerCycle
	if got < 0.5*true512 || got > 1.3*true512 {
		t.Fatalf("calibrated L2 = %.0f B/cycle, true %.0f", got, true512)
	}
}

func TestBuildDatasetShape(t *testing.T) {
	p := k40Profiler(t)
	dev := p.HW()
	d, err := BuildDataset(context.Background(), p, microbench.Suite(), dev.DefaultConfig(), dev.AllConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Benchmarks) != microbench.SuiteSize {
		t.Fatalf("benchmark rows = %d, want %d", len(d.Benchmarks), microbench.SuiteSize)
	}
	if len(d.Configs) != dev.NumConfigs() {
		t.Fatalf("config columns = %d", len(d.Configs))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Power values must lie in a physical band.
	for bi, row := range d.Power {
		for fi, pw := range row {
			if pw <= 0 || pw > dev.TDP {
				t.Fatalf("power[%d][%d] = %g W out of (0, TDP]", bi, fi, pw)
			}
		}
	}
	// The idle benchmark should be the cheapest at the reference config.
	refIdx, err := d.configIndex(dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	idleIdx := -1
	for bi, b := range d.Benchmarks {
		if b.Name == "ub_idle" {
			idleIdx = bi
		}
	}
	if idleIdx < 0 {
		t.Fatal("ub_idle missing from dataset")
	}
	for bi := range d.Benchmarks {
		if d.Power[bi][refIdx] < d.Power[idleIdx][refIdx]-2 {
			t.Fatalf("benchmark %s cheaper than idle", d.Benchmarks[bi].Name)
		}
	}
}

func TestBuildDatasetEmptySuite(t *testing.T) {
	p := k40Profiler(t)
	dev := p.HW()
	if _, err := BuildDataset(context.Background(), p, nil, dev.DefaultConfig(), dev.AllConfigs()); err == nil {
		t.Fatal("empty suite accepted")
	}
}

func TestAppUtilizationWeighting(t *testing.T) {
	p := k40Profiler(t)
	dev := p.HW()
	ref := dev.DefaultConfig()
	l2bpc, err := CalibrateL2BytesPerCycle(context.Background(), p, ref)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(name string, sp float64) *kernels.KernelSpec {
		return &kernels.KernelSpec{
			Name:            name,
			WarpInstrs:      map[hw.Component]float64{hw.SP: sp},
			L2ReadBytes:     1e8,
			DRAMReadBytes:   1e8,
			IssueEfficiency: 0.9,
		}
	}
	fast := mk("fast", 1e9)
	slow := mk("slow", 4e10) // dominates the runtime

	prof, err := p.ProfileApp(context.Background(), &kernels.App{Name: "mix", Kernels: []*kernels.KernelSpec{fast, slow}}, ref)
	if err != nil {
		t.Fatal(err)
	}
	u, err := AppUtilization(dev, prof, l2bpc)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// The app utilization must be dominated by the slow kernel's profile.
	slowProf, err := p.ProfileApp(context.Background(), kernels.SingleKernelApp(slow), ref)
	if err != nil {
		t.Fatal(err)
	}
	uSlow, err := AppUtilization(dev, slowProf, l2bpc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[hw.SP]-uSlow[hw.SP]) > 0.1 {
		t.Fatalf("weighted U(SP) = %.2f, want near slow kernel's %.2f", u[hw.SP], uSlow[hw.SP])
	}
}

func TestAppUtilizationEmptyProfile(t *testing.T) {
	dev := hw.TeslaK40c()
	if _, err := AppUtilization(dev, &profiler.AppProfile{App: &kernels.App{Name: "x"}}, 512); err == nil {
		t.Fatal("empty profile accepted")
	}
}

// TestEndToEndFitOnSimulatedK40c is the package's integration test: build
// the dataset on the simulated die, fit, and check the model predicts a
// held-out application within the paper's Kepler error band.
func TestEndToEndFitOnSimulatedK40c(t *testing.T) {
	p := k40Profiler(t)
	dev := p.HW()
	d, err := BuildDataset(context.Background(), p, microbench.Suite(), dev.DefaultConfig(), dev.AllConfigs())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Estimate(context.Background(), d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Errorf("estimator did not converge in %d iterations", m.Iterations)
	}
	if m.Iterations >= 50 {
		t.Errorf("estimator used %d iterations, paper reports < 50", m.Iterations)
	}

	app := &kernels.KernelSpec{
		Name:            "heldout",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 2e10, hw.Int: 4e9},
		L2ReadBytes:     5e9,
		DRAMReadBytes:   5e9,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
	prof, err := p.ProfileApp(context.Background(), kernels.SingleKernelApp(app), dev.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	u, err := AppUtilization(dev, prof, m.L2BytesPerCycle)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range dev.AllConfigs() {
		pred, err := m.Predict(u, cfg)
		if err != nil {
			t.Fatal(err)
		}
		meas, _, err := p.MeasureKernelPower(context.Background(), app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pred-meas) / meas; rel > 0.35 {
			t.Errorf("%v: predicted %.1f vs measured %.1f (%.0f%%)", cfg, pred, meas, 100*rel)
		}
	}
}
