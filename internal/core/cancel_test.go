package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpupower/internal/microbench"
)

// The cancellation regression tests: long-running pipeline stages must
// return promptly with an error wrapping context.Canceled (run under -race
// by make race, which is what catches a cancellation path that races the
// worker pool).

func TestEstimateCanceledBeforeStart(t *testing.T) {
	d := syntheticDataset(defaultSyntheticTruth(), 60, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Estimate(ctx, d, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestEstimateCanceledMidIteration(t *testing.T) {
	// Cancel concurrently with the alternation loop: Estimate must stop at
	// its next iteration checkpoint, never hang, and report the context
	// error (unless it legitimately finished before the cancel landed).
	d := syntheticDataset(defaultSyntheticTruth(), 60, 0.02, 2)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Estimate(ctx, d, nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil or wrapped context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Estimate did not return after cancellation")
	}
}

func TestBuildDatasetCanceled(t *testing.T) {
	p := k40Profiler(t)
	dev := p.HW()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildDataset(ctx, p, microbench.Suite(), dev.DefaultConfig(), dev.AllConfigs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
