package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Width:  20,
		Height: 5,
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}, Marker: '*'},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"demo", "*", "legend: *=up", "x: x   y: y"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Title + 5 grid rows + axis + x labels + xy label + legend.
	if len(lines) < 9 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestRenderMarkerPositions(t *testing.T) {
	c := &Chart{
		Width:  11,
		Height: 3,
		Series: []Series{
			{X: []float64{0, 10}, Y: []float64{0, 10}, Marker: '*'},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// Max y (10) maps to the top row, x=10 to the last column.
	top := lines[0]
	if top[len(top)-1] != '*' {
		t.Fatalf("top-right marker missing: %q", top)
	}
	bottom := lines[2]
	if !strings.Contains(bottom, "|*") {
		t.Fatalf("bottom-left marker missing: %q", bottom)
	}
}

func TestRenderMultipleSeriesDefaultsMarkers(t *testing.T) {
	c := &Chart{
		Width:  10,
		Height: 3,
		Series: []Series{
			{Name: "a", X: []float64{0}, Y: []float64{0}},
			{Name: "b", X: []float64{1}, Y: []float64{1}},
		},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("default markers missing:\n%s", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := &Chart{
		Series: []Series{{X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}},
	}
	if _, err := c.Render(); err != nil {
		t.Fatalf("flat series should render: %v", err)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := (&Chart{}).Render(); err == nil {
		t.Fatal("empty chart accepted")
	}
	c := &Chart{Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := c.Render(); err == nil {
		t.Fatal("ragged series accepted")
	}
	c = &Chart{Series: []Series{{X: []float64{math.NaN()}, Y: []float64{1}}}}
	if _, err := c.Render(); err == nil {
		t.Fatal("NaN point accepted")
	}
	c = &Chart{Series: []Series{{X: nil, Y: nil, Name: "empty"}}}
	if _, err := c.Render(); err == nil {
		t.Fatal("pointless chart accepted")
	}
}
