// Package textplot renders small ASCII line/scatter charts for the
// experiment drivers, so `gpowerbench -plot` can show the paper's figures
// directly in a terminal. It is intentionally minimal: fixed-size rune
// grid, linear axes, one marker per series.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted data series.
type Series struct {
	Name   string
	X, Y   []float64
	Marker rune
}

// Chart is a renderable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (defaults: 64×16).
	Width, Height int
	Series        []Series
}

// defaultMarkers cycles when a series does not set one.
var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c *Chart) Render() (string, error) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("textplot: chart %q has no series", c.Title)
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q has %d x values and %d y values",
				s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) ||
				math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return "", fmt.Errorf("textplot: series %q has a non-finite point", s.Name)
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "", fmt.Errorf("textplot: chart %q has no points", c.Title)
	}
	// Degenerate ranges expand symmetrically so a flat series still renders.
	if xmax == xmin { //lint:ignore floateq degenerate-range guard: a perfectly flat series needs symmetric expansion before scaling
		xmax, xmin = xmax+1, xmin-1
	}
	if ymax == ymin { //lint:ignore floateq degenerate-range guard: a perfectly flat series needs symmetric expansion before scaling
		ymax, ymin = ymax+1, ymin-1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	toCol := func(x float64) int {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		if col < 0 {
			col = 0
		}
		if col >= w {
			col = w - 1
		}
		return col
	}
	toRow := func(y float64) int {
		row := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		return row
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			grid[toRow(s.Y[i])][toCol(s.X[i])] = marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	topLabel := fmt.Sprintf("%.4g", ymax)
	botLabel := fmt.Sprintf("%.4g", ymin)
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, topLabel)
		}
		if i == h-1 {
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xAxis := fmt.Sprintf("%.4g", xmin)
	xEnd := fmt.Sprintf("%.4g", xmax)
	gap := w - len(xAxis) - len(xEnd)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&sb, "%s  %s%s%s\n", strings.Repeat(" ", pad), xAxis, strings.Repeat(" ", gap), xEnd)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	// Legend.
	if len(c.Series) > 1 || c.Series[0].Name != "" {
		fmt.Fprintf(&sb, "%s  legend:", strings.Repeat(" ", pad))
		for si, s := range c.Series {
			marker := s.Marker
			if marker == 0 {
				marker = defaultMarkers[si%len(defaultMarkers)]
			}
			fmt.Fprintf(&sb, " %c=%s", marker, s.Name)
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
