package stats

import (
	"math"
	"testing"
)

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	// Two tight blobs far apart: k-means must separate them exactly.
	var points [][]float64
	for i := 0; i < 10; i++ {
		points = append(points, []float64{0 + 0.01*float64(i), 0})
	}
	for i := 0; i < 10; i++ {
		points = append(points, []float64{100 + 0.01*float64(i), 0})
	}
	assign, centers := KMeans(points, 2, 7)
	if len(centers) != 2 {
		t.Fatalf("center count = %d", len(centers))
	}
	first := assign[0]
	for i := 0; i < 10; i++ {
		if assign[i] != first {
			t.Fatal("first blob split across clusters")
		}
	}
	second := assign[10]
	if second == first {
		t.Fatal("blobs merged")
	}
	for i := 10; i < 20; i++ {
		if assign[i] != second {
			t.Fatal("second blob split across clusters")
		}
	}
	// Centroids land on the blob means.
	lo := math.Min(centers[0][0], centers[1][0])
	hi := math.Max(centers[0][0], centers[1][0])
	if math.Abs(lo-0.045) > 0.1 || math.Abs(hi-100.045) > 0.1 {
		t.Fatalf("centroids = %g, %g", lo, hi)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := NewRNG(3)
	var points [][]float64
	for i := 0; i < 40; i++ {
		points = append(points, []float64{rng.Normal(0, 5), rng.Normal(0, 5)})
	}
	a1, _ := KMeans(points, 4, 11)
	a2, _ := KMeans(points, 4, 11)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansClampsK(t *testing.T) {
	points := [][]float64{{1}, {2}}
	assign, centers := KMeans(points, 10, 1)
	if len(centers) != 2 || len(assign) != 2 {
		t.Fatalf("k not clamped: %d centers", len(centers))
	}
}

func TestKMeansDegenerate(t *testing.T) {
	if a, c := KMeans(nil, 3, 1); a != nil || c != nil {
		t.Fatal("empty input should return nil")
	}
	if a, c := KMeans([][]float64{{1}}, 0, 1); a != nil || c != nil {
		t.Fatal("k=0 should return nil")
	}
	// Identical points: all in one effective cluster, no panic.
	points := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	assign, _ := KMeans(points, 2, 1)
	if len(assign) != 3 {
		t.Fatal("assignment length wrong")
	}
}

func TestSqDist(t *testing.T) {
	if SqDist([]float64{0, 0}, []float64{3, 4}) != 25 {
		t.Fatal("SqDist wrong")
	}
}
