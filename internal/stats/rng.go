// Package stats provides the deterministic random-number generation and
// error/summary statistics shared by the simulator, the profiler and the
// experiment drivers.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// Every stochastic element of the simulation (sensor noise, process
// variation, event-counter error) draws from a seeded RNG so that each
// experiment is exactly reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Normal returns a sample from N(mean, stddev²) via Box–Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 { //lint:ignore floateq Box-Muller guard: log(0) is the only invalid input, and Float64 can return exactly 0
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Fork derives an independent child generator. Children seeded with distinct
// labels produce decorrelated streams, letting subsystems (sensor, events,
// process variation) own private randomness while staying reproducible.
func (r *RNG) Fork(label uint64) *RNG {
	base := r.Uint64()
	return NewRNG(base ^ (label * 0xA24BAED4963EE407))
}
