package stats

import "math"

// SqDist returns the squared Euclidean distance of two equal-length vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points with Lloyd's algorithm and deterministic
// farthest-point seeding (first center from the seed), returning the
// assignment per point and the final centroids. k is clamped to the point
// count. Used by the Wu-style baseline and the performance-scaling
// classifier.
func KMeans(points [][]float64, k int, seed uint64) (assign []int, centers [][]float64) {
	n := len(points)
	if n == 0 || k < 1 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	dim := len(points[0])

	centers = make([][]float64, 0, k)
	first := int(seed % uint64(n))
	centers = append(centers, append([]float64(nil), points[first]...))
	for len(centers) < k {
		bestI, bestD := 0, -1.0
		for i, p := range points {
			dMin := math.Inf(1)
			for _, c := range centers {
				if d := SqDist(p, c); d < dMin {
					dMin = d
				}
			}
			if dMin > bestD {
				bestI, bestD = i, dMin
			}
		}
		centers = append(centers, append([]float64(nil), points[bestI]...))
	}

	assign = make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := SqDist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j := 0; j < dim; j++ {
				centers[c][j] += p[j]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centers[c] {
				centers[c][j] *= inv
			}
		}
	}
	return assign, centers
}
