package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %g, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d hits, want ~1000", b, c)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) did not panic")
			}
		}()
		r.Intn(0)
	}()
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.02 {
		t.Fatalf("mean = %g, want ~3", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Fatalf("stddev = %g, want ~2", math.Sqrt(variance))
	}
}

func TestUniform(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform = %g outside [2,5)", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	// Children with different labels produce different streams; the same
	// label from the same parent state produces the same stream.
	p1 := NewRNG(9)
	p2 := NewRNG(9)
	a := p1.Fork(1)
	b := p2.Fork(1)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-label forks from identical parents diverged")
		}
	}
	p3 := NewRNG(9)
	p4 := NewRNG(9)
	c := p3.Fork(1)
	d := p4.Fork(2)
	diff := false
	for i := 0; i < 20; i++ {
		if c.Uint64() != d.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different-label forks identical")
	}
}
