package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	v, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("MAE = %g, want 1", v)
	}
	if _, err := MAE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMAPE(t *testing.T) {
	v, err := MAPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !eq(v, 10, 1e-12) {
		t.Fatalf("MAPE = %g, want 10", v)
	}
	// Zero measurements are skipped.
	v, err = MAPE([]float64{110, 5}, []float64{100, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !eq(v, 10, 1e-12) {
		t.Fatalf("MAPE with zero = %g, want 10", v)
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("all-zero measurements accepted")
	}
}

func TestMeanPercentErrorSigned(t *testing.T) {
	v, err := MeanPercentError([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !eq(v, 0, 1e-12) {
		t.Fatalf("signed error = %g, want 0", v)
	}
	v, _ = MeanPercentError([]float64{120}, []float64{100})
	if !eq(v, 20, 1e-12) {
		t.Fatalf("signed error = %g, want +20", v)
	}
}

func TestRMSE(t *testing.T) {
	v, err := RMSE([]float64{1, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !eq(v, math.Sqrt(2), 1e-12) {
		t.Fatalf("RMSE = %g", v)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd Median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even Median wrong")
	}
	// Median must not mutate input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestQuantile(t *testing.T) {
	v, err := Quantile([]float64{1, 2, 3, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !eq(v, 2.5, 1e-12) {
		t.Fatalf("q0.5 = %g", v)
	}
	if v, _ := Quantile([]float64{1, 2, 3, 4}, 0); v != 1 {
		t.Fatal("q0 wrong")
	}
	if v, _ := Quantile([]float64{1, 2, 3, 4}, 1); v != 4 {
		t.Fatal("q1 wrong")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("out-of-range q accepted")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
	if !eq(StdDev([]float64{2, 4}), math.Sqrt(2), 1e-12) {
		t.Fatalf("StdDev = %g", StdDev([]float64{2, 4}))
	}
}

func TestMinMax(t *testing.T) {
	if Max([]float64{1, 9, 3}) != 9 || Min([]float64{4, 1, 6}) != 1 {
		t.Fatal("Min/Max wrong")
	}
}

// Property: MAE is symmetric and zero iff inputs equal.
func TestMAEProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e150 || math.Abs(b[i]) > 1e150 {
				return true // difference would overflow float64
			}
		}
		ab, err1 := MAE(a[:], b[:])
		ba, err2 := MAE(b[:], a[:])
		if err1 != nil || err2 != nil {
			return false
		}
		if !eq(ab, ba, 1e-9*(1+math.Abs(ab))) {
			return false
		}
		same, _ := MAE(a[:], a[:])
		return same == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: median lies within [min, max] and at least half the points are
// on each side.
func TestMedianProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		m := Median(raw)
		if m < Min(raw) || m > Max(raw) {
			return false
		}
		lo, hi := 0, 0
		for _, v := range raw {
			if v <= m {
				lo++
			}
			if v >= m {
				hi++
			}
		}
		return lo*2 >= len(raw) && hi*2 >= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
