package stats

import (
	"fmt"
	"math"
	"sort"
)

// MAE returns the mean absolute error between predictions and measurements.
func MAE(pred, meas []float64) (float64, error) {
	if err := sameLen(pred, meas); err != nil {
		return 0, err
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - meas[i])
	}
	return s / float64(len(pred)), nil
}

// MAPE returns the mean absolute percentage error, in percent, matching the
// paper's accuracy metric ("mean absolute error" of 6.9%, 6.0%, 12.4% is a
// percentage of the measured power).
func MAPE(pred, meas []float64) (float64, error) {
	if err := sameLen(pred, meas); err != nil {
		return 0, err
	}
	var s float64
	n := 0
	for i := range pred {
		if meas[i] == 0 { //lint:ignore floateq MAPE-style guard: exactly-zero measurements are skipped, not divided (mirrored by examples/virtual-sensor)
			continue
		}
		s += math.Abs(pred[i]-meas[i]) / math.Abs(meas[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: MAPE undefined, all measurements zero")
	}
	return 100 * s / float64(n), nil
}

// MeanPercentError returns the signed mean error in percent (positive means
// over-prediction), as plotted per-benchmark in paper Fig. 8.
func MeanPercentError(pred, meas []float64) (float64, error) {
	if err := sameLen(pred, meas); err != nil {
		return 0, err
	}
	var s float64
	n := 0
	for i := range pred {
		if meas[i] == 0 { //lint:ignore floateq MAPE-style guard: exactly-zero measurements are skipped, not divided (mirrored by examples/virtual-sensor)
			continue
		}
		s += (pred[i] - meas[i]) / meas[i]
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: mean percent error undefined, all measurements zero")
	}
	return 100 * s / float64(n), nil
}

// RMSE returns the root-mean-square error.
func RMSE(pred, meas []float64) (float64, error) {
	if err := sameLen(pred, meas); err != nil {
		return 0, err
	}
	var s float64
	for i := range pred {
		d := pred[i] - meas[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

func sameLen(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("stats: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return fmt.Errorf("stats: empty input")
	}
	return nil
}

// Mean returns the arithmetic mean of v. It panics on empty input.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Median returns the median of v (average of the middle two for even n).
// It panics on empty input.
func Median(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: Median of empty slice")
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	// Midpoint form avoids overflow for extreme magnitudes.
	lo, hi := c[n/2-1], c[n/2]
	return lo + (hi-lo)/2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v with linear interpolation.
func Quantile(v []float64, q float64) (float64, error) {
	if len(v) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g out of [0,1]", q)
	}
	c := append([]float64(nil), v...)
	sort.Float64s(c)
	if len(c) == 1 {
		return c[0], nil
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo], nil
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac, nil
}

// StdDev returns the sample standard deviation of v (n-1 denominator);
// zero for fewer than two samples.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// Max returns the maximum of v. It panics on empty input.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: Max of empty slice")
	}
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum of v. It panics on empty input.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("stats: Min of empty slice")
	}
	mn := v[0]
	for _, x := range v[1:] {
		if x < mn {
			mn = x
		}
	}
	return mn
}
