// Package fleet fits many per-device power models concurrently — the
// "model registry" scenario: a site operates a heterogeneous fleet of GPUs
// (several catalog architectures, several silicon instances per
// architecture) and wants one fitted Section III-D model per device.
//
// The package composes the pieces the rest of the repository already
// guarantees are safe to drive concurrently: each fleet member owns its own
// simulated device, backend and profiler (measurements on one member are
// single-goroutine, members are independent), and each pool worker owns one
// reusable core.FitWorkspace, so back-to-back fits on a worker allocate no
// workspace memory. Fits write disjoint result slots and reuse never
// changes a fitted bit (core's workspace-reset contract), so a fleet fit of
// N devices is bitwise-identical to N independent Estimate calls — the
// fleet tests pin this.
package fleet

import (
	"context"
	"fmt"
	"time"

	"gpupower/internal/backend"
	"gpupower/internal/backend/simbk"
	"gpupower/internal/core"
	"gpupower/internal/hw"
	"gpupower/internal/microbench"
	"gpupower/internal/parallel"
	"gpupower/internal/profiler"
	"gpupower/internal/sim"
)

// Spec identifies one fleet member: a catalog device plus the per-instance
// seed (distinct silicon instances of the same architecture get distinct
// seeds and therefore distinct process variation).
type Spec struct {
	Device string
	Seed   uint64
}

// String renders a stable member label ("GTX Titan X#7").
func (s Spec) String() string { return fmt.Sprintf("%s#%d", s.Device, s.Seed) }

// Registry returns n fleet members drawn round-robin from the device
// catalog, seeded baseSeed, baseSeed+1, … — the synthetic stand-in for a
// site's device inventory.
func Registry(n int, baseSeed uint64) []Spec {
	devs := hw.AllDevices()
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{Device: devs[i%len(devs)].Name, Seed: baseSeed + uint64(i)}
	}
	return specs
}

// Member is one opened fleet member: the device description plus the
// long-lived measurement stack (backend, profiler) the serving registry
// keeps after fitting. Measurements on one member are single-goroutine
// (the rig concurrency contract); members are independent.
type Member struct {
	Spec     Spec
	Device   *hw.Device
	Backend  backend.Backend
	Profiler *profiler.Profiler
}

// OpenMember opens the simulator-backed measurement stack for one spec.
func OpenMember(spec Spec) (*Member, error) {
	dev, err := hw.DeviceByName(spec.Device)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(dev, spec.Seed)
	if err != nil {
		return nil, err
	}
	b, err := simbk.New(s)
	if err != nil {
		return nil, err
	}
	p, err := profiler.New(b)
	if err != nil {
		return nil, err
	}
	return &Member{Spec: spec, Device: dev, Backend: b, Profiler: p}, nil
}

// OpenMembers opens every spec concurrently; slot i belongs to specs[i].
func OpenMembers(specs []Spec) ([]*Member, error) {
	return parallel.Map(len(specs), func(i int) (*Member, error) {
		return OpenMember(specs[i])
	})
}

// BuildDataset measures the member's full training dataset (83
// microbenchmarks at every ladder configuration) through its own profiler.
func (m *Member) BuildDataset(ctx context.Context) (*core.Dataset, error) {
	d, err := core.BuildDataset(ctx, m.Profiler, microbench.Suite(), m.Device.DefaultConfig(), m.Device.AllConfigs())
	if err != nil {
		return nil, fmt.Errorf("fleet: dataset for %s: %w", m.Spec, err)
	}
	return d, nil
}

// Fit is one member's fitted result. Member carries the measurement stack
// the fit ran over, so a fleet fit hands the serving registry everything a
// per-device entry needs — not just a bare model.
type Fit struct {
	Spec   Spec
	Member *Member
	Model  *core.Model
}

// Result is a fleet fit: one Fit per input spec, in spec order, plus the
// wall-clock throughput of the fitting phase.
type Result struct {
	Fits []Fit
	// Wall is the wall-clock duration of the concurrent fitting phase
	// (dataset measurement excluded).
	Wall time.Duration
	// ModelsPerMinute is len(Fits) normalized by Wall.
	ModelsPerMinute float64
	// Workers is the pool width the fits ran under.
	Workers int
}

// BuildDatasets measures one training dataset per spec, fanning out across
// members (each member's measurement pipeline is confined to one goroutine,
// per the rig concurrency contract). Result slot i belongs to specs[i].
func BuildDatasets(ctx context.Context, specs []Spec) ([]*core.Dataset, error) {
	return parallel.Map(len(specs), func(i int) (*core.Dataset, error) {
		m, err := OpenMember(specs[i])
		if err != nil {
			return nil, err
		}
		return m.BuildDataset(ctx)
	})
}

// BuildMemberDatasets measures one training dataset per already-open member,
// fanning out across members. Result slot i belongs to members[i].
func BuildMemberDatasets(ctx context.Context, members []*Member) ([]*core.Dataset, error) {
	return parallel.Map(len(members), func(i int) (*core.Dataset, error) {
		return members[i].BuildDataset(ctx)
	})
}

// FitDatasets fits one model per dataset concurrently. Each pool worker
// holds one reusable core.FitWorkspace across all the fits it executes;
// models land in slot i for datasets[i]. Models are bitwise-identical to
// individual core.Estimate calls on the same datasets.
func FitDatasets(ctx context.Context, datasets []*core.Dataset, opts *core.EstimatorOptions) ([]*core.Model, error) {
	workspaces := parallel.NewPerWorker(core.NewFitWorkspace)
	workspaces.Ensure(parallel.Workers())
	models := make([]*core.Model, len(datasets))
	err := parallel.ForEachWorker(len(datasets), func(w, i int) error {
		m, err := core.EstimateWith(ctx, datasets[i], opts, workspaces.Get(w))
		if err != nil {
			return err
		}
		models[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return models, nil
}

// FitAll measures and fits the whole fleet: datasets first (untimed — in
// production the measurements come from the devices themselves), then the
// concurrent fitting phase, timed, with the models-fitted-per-minute
// throughput in the result.
func FitAll(ctx context.Context, specs []Spec, opts *core.EstimatorOptions) (*Result, error) {
	members, err := OpenMembers(specs)
	if err != nil {
		return nil, err
	}
	datasets, err := BuildMemberDatasets(ctx, members)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	models, err := FitDatasets(ctx, datasets, opts)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	res := &Result{
		Fits:    make([]Fit, len(specs)),
		Wall:    wall,
		Workers: parallel.Workers(),
	}
	for i := range specs {
		res.Fits[i] = Fit{Spec: specs[i], Member: members[i], Model: models[i]}
	}
	if wall > 0 {
		res.ModelsPerMinute = float64(len(specs)) / wall.Minutes()
	}
	return res, nil
}
