package fleet

import (
	"context"
	"runtime"
	"testing"

	"gpupower/internal/core"
)

// withGOMAXPROCS pins the scheduler width so the pool genuinely fans out
// even on single-core CI hosts (concurrency without parallelism still
// exercises every ordering under -race).
func withGOMAXPROCS(n int, fn func()) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// modelsIdentical asserts bitwise equality of everything Estimate fits.
func modelsIdentical(t *testing.T, label string, a, b *core.Model) {
	t.Helper()
	if a.Beta != b.Beta {
		t.Fatalf("%s: Beta differs: %v vs %v", label, a.Beta, b.Beta)
	}
	for c, v := range a.OmegaCore {
		if b.OmegaCore[c] != v {
			t.Fatalf("%s: ω_%s differs: %v vs %v", label, c, v, b.OmegaCore[c])
		}
	}
	if a.OmegaMem != b.OmegaMem {
		t.Fatalf("%s: ω_mem differs: %v vs %v", label, a.OmegaMem, b.OmegaMem)
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("%s: trajectory differs: (%d, %v) vs (%d, %v)",
			label, a.Iterations, a.Converged, b.Iterations, b.Converged)
	}
	for mi := range a.Voltages.VCore {
		for ci := range a.Voltages.VCore[mi] {
			if a.Voltages.VCore[mi][ci] != b.Voltages.VCore[mi][ci] ||
				a.Voltages.VMem[mi][ci] != b.Voltages.VMem[mi][ci] {
				t.Fatalf("%s: voltage table differs at (%d,%d)", label, mi, ci)
			}
		}
	}
}

// fleetSpecs is the 8-member test fleet: all Tesla K40c instances (the
// smallest ladder, so the -race run stays fast) with distinct seeds — eight
// distinct devices with distinct process variation.
func fleetSpecs() []Spec {
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = Spec{Device: "Tesla K40c", Seed: uint64(100 + i)}
	}
	return specs
}

// TestFleetFitConcurrent fits ≥8 devices concurrently (GOMAXPROCS pinned to
// the fleet size so all fits are in flight at once) and pins the bitwise
// equivalence of the fleet path against individual sequential Estimate
// calls: per-worker workspace reuse and concurrent scheduling must not
// change a fitted bit. Run under -race this also proves the fits share no
// unsynchronized state.
func TestFleetFitConcurrent(t *testing.T) {
	specs := fleetSpecs()
	datasets, err := BuildDatasets(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	var fleetModels []*core.Model
	withGOMAXPROCS(len(specs), func() {
		fleetModels, err = FitDatasets(context.Background(), datasets, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, d := range datasets {
		individual, err := core.Estimate(context.Background(), d, nil)
		if err != nil {
			t.Fatalf("individual fit %s: %v", specs[i], err)
		}
		modelsIdentical(t, specs[i].String(), individual, fleetModels[i])
	}
}

// TestFleetWorkspaceReuse drives one FitWorkspace through heterogeneous
// dataset shapes back to back — grow, shrink, regrow — and checks each fit
// against a fresh-workspace fit. This is the reset contract FitDatasets
// relies on when a worker meets devices with different ladder sizes.
func TestFleetWorkspaceReuse(t *testing.T) {
	specs := []Spec{
		{Device: "Tesla K40c", Seed: 1},
		{Device: "GTX Titan X", Seed: 2},
		{Device: "Tesla K40c", Seed: 3},
	}
	datasets, err := BuildDatasets(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	fw := core.NewFitWorkspace()
	for i, d := range datasets {
		reused, err := core.EstimateWith(context.Background(), d, nil, fw)
		if err != nil {
			t.Fatalf("reused-workspace fit %s: %v", specs[i], err)
		}
		fresh, err := core.Estimate(context.Background(), d, nil)
		if err != nil {
			t.Fatal(err)
		}
		modelsIdentical(t, specs[i].String(), fresh, reused)
	}
}

// TestFitAllThroughput smoke-tests the measured entry point: every member
// fitted, positive throughput, worker count recorded.
func TestFitAllThroughput(t *testing.T) {
	specs := Registry(4, 50)
	if specs[0].Device == specs[1].Device {
		t.Fatalf("Registry is not heterogeneous: %v", specs[:2])
	}
	res, err := FitAll(context.Background(), specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fits) != len(specs) {
		t.Fatalf("fitted %d of %d members", len(res.Fits), len(specs))
	}
	for _, f := range res.Fits {
		if f.Model == nil {
			t.Fatalf("member %s has no model", f.Spec)
		}
		if f.Model.DeviceName != f.Spec.Device {
			t.Fatalf("member %s fitted model for %q", f.Spec, f.Model.DeviceName)
		}
	}
	if res.ModelsPerMinute <= 0 {
		t.Fatalf("non-positive throughput %v", res.ModelsPerMinute)
	}
	if res.Workers < 1 {
		t.Fatalf("invalid worker count %d", res.Workers)
	}
}
