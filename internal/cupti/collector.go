package cupti

import (
	"fmt"
	"hash/fnv"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/sim"
	"gpupower/internal/stats"
)

// Collector gathers performance events for kernel launches on one device.
//
// Each die carries two kinds of event error, both deterministic for a given
// die so that re-profiling a kernel reproduces the same (possibly wrong)
// counts — the behaviour of real undocumented counters:
//
//   - a per-event systematic multiplier (counter wiring / sampling
//     inaccuracy), constant across workloads. A constant bias is largely
//     absorbed into the regression coefficients, so it degrades the fitted
//     model only mildly.
//   - a per-(event, workload) systematic bias: an undocumented counter
//     characterizes its intended quantity imperfectly, and how far off it
//     is depends on the workload's instruction/traffic composition. This is
//     the error that cannot be absorbed, and it is substantially larger on
//     the Kepler device — the paper attributes the K40c's higher model
//     error to exactly this ("a reduced accuracy of the hardware events
//     when characterizing the utilization", Section V-B).
type Collector struct {
	dev     *sim.Device
	table   EventTable
	passes  [][]Event           // replay schedule (hardware counter budget)
	metric  map[EventID]Metric  // owning metric per event
	fanout  map[EventID]int     // events sharing the metric (aggregation split)
	sys     map[EventID]float64 // per-die systematic multiplier per event
	dieSalt uint64              // decorrelates workload biases across dies
	rng     *stats.RNG          // per-collection read noise
}

// systematicSigma returns the standard deviation of the per-die constant
// event bias for an architecture.
func systematicSigma(a hw.Arch) float64 {
	switch a {
	case hw.Kepler:
		return 0.10
	default:
		return 0.015
	}
}

// workloadSigma returns the standard deviation of the per-(event, workload)
// relative bias.
func workloadSigma(a hw.Arch) float64 {
	switch a {
	case hw.Kepler:
		return 0.50
	default:
		return 0.06
	}
}

// readSigma is the per-collection relative read noise.
const readSigma = 0.003

// NewCollector creates an event collector for the device.
func NewCollector(d *sim.Device) (*Collector, error) {
	table, err := Table(d.HW())
	if err != nil {
		return nil, err
	}
	rng := d.EventRNG()
	sigma := systematicSigma(d.HW().Arch)
	sys := make(map[EventID]float64)
	// Draw the die's per-event bias in a deterministic event order.
	for _, m := range AllMetrics {
		for _, e := range table[m] {
			if _, ok := sys[e.ID]; ok {
				continue
			}
			f := rng.Normal(1, sigma)
			if f < 0.5 {
				f = 0.5
			}
			sys[e.ID] = f
		}
	}
	passes, err := Passes(table, d.HW().Arch)
	if err != nil {
		return nil, err
	}
	if err := validatePasses(passes, table, d.HW().Arch); err != nil {
		return nil, err
	}
	metric := map[EventID]Metric{}
	fanout := map[EventID]int{}
	for _, m := range AllMetrics {
		for _, e := range table[m] {
			metric[e.ID] = m
			fanout[e.ID] = len(table[m])
		}
	}
	return &Collector{
		dev:     d,
		table:   table,
		passes:  passes,
		metric:  metric,
		fanout:  fanout,
		sys:     sys,
		dieSalt: rng.Uint64(),
		rng:     rng.Fork(7),
	}, nil
}

// PassCount reports how many kernel replays one collection performs.
func (c *Collector) PassCount() int { return len(c.passes) }

// Table returns the device's event table.
func (c *Collector) Table() EventTable { return c.table }

// workloadBias returns the deterministic per-(metric, kernel) relative bias
// factor. It hashes the kernel's identity with the die salt so the same
// kernel on the same die always reads the same (wrong) way, while different
// kernels err differently — the non-absorbable error component. The bias is
// keyed per metric, not per event, because the events behind one metric
// (e.g. the four Kepler SP/INT warp counters) mis-characterize the same
// underlying quantity the same way.
func (c *Collector) workloadBias(m Metric, k *kernels.KernelSpec) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%.0f|%.0f", m, k.Name, k.Warp(hw.Int)+k.Warp(hw.SP), k.DRAMBytes())
	r := stats.NewRNG(h.Sum64() ^ c.dieSalt)
	f := 1 + r.Normal(0, workloadSigma(c.dev.HW().Arch))
	if f < 0.3 {
		f = 0.3
	}
	return f
}

// idealFor computes the exact per-metric values of one kernel replay.
func (c *Collector) idealFor(k *kernels.KernelSpec, activeCycles float64) map[Metric]float64 {
	hwd := c.dev.HW()
	return map[Metric]float64{
		MetricACycles: activeCycles,
		// 32-byte sectors at L2 and DRAM.
		MetricL2Read:    k.L2ReadBytes / 32,
		MetricL2Write:   k.L2WriteBytes / 32,
		MetricDRAMRead:  k.DRAMReadBytes / 32,
		MetricDRAMWrite: k.DRAMWriteBytes / 32,
		// A shared transaction moves banks×4 bytes.
		MetricSharedLoad:  k.SharedLoadBytes / (float64(hwd.SharedBanks) * 4),
		MetricSharedStore: k.SharedStoreBytes / (float64(hwd.SharedBanks) * 4),
		// The SP and INT warp counters are physically combined (Eq. 10).
		MetricWarpsSPInt: k.Warp(hw.Int) + k.Warp(hw.SP),
		MetricWarpsDP:    k.Warp(hw.DP),
		MetricWarpsSF:    k.Warp(hw.SF),
		// Instruction counters count thread instructions.
		MetricInstInt: k.Warp(hw.Int) * float64(hwd.WarpSize),
		MetricInstSP:  k.Warp(hw.SP) * float64(hwd.WarpSize),
	}
}

// Collect gathers all Table I events for one kernel at the current
// application clocks. As on real hardware, the counter registers cannot
// hold every event at once, so the kernel is replayed once per pass and
// each replay reads only its pass's events. Replaying perturbs nothing
// about the kernel's power behaviour — events and power are measured in
// separate runs (paper Section V-A).
func (c *Collector) Collect(k *kernels.KernelSpec) (Counters, *sim.RunResult, error) {
	counters := make(Counters)
	var run *sim.RunResult
	for _, pass := range c.passes {
		r, err := c.dev.Execute(k) // one replay per pass
		if err != nil {
			return nil, nil, err
		}
		run = r
		ideal := c.idealFor(k, r.Exec.ActiveCycles)
		for _, e := range pass {
			m := c.metric[e.ID]
			v := ideal[m] / float64(c.fanout[e.ID]) * c.sys[e.ID]
			if m != MetricACycles {
				v *= c.workloadBias(m, k)
			}
			v *= c.rng.Normal(1, readSigma)
			if v < 0 {
				v = 0
			}
			counters[e.ID] = v
		}
	}
	return counters, run, nil
}

// CollectMetrics is Collect followed by aggregation into Table I metrics.
func (c *Collector) CollectMetrics(k *kernels.KernelSpec) (map[Metric]float64, *sim.RunResult, error) {
	counters, run, err := c.Collect(k)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[Metric]float64, len(AllMetrics))
	for _, m := range AllMetrics {
		v, err := c.table.Aggregate(counters, m)
		if err != nil {
			return nil, nil, err
		}
		out[m] = v
	}
	return out, run, nil
}

// FormatTable renders the event table like the paper's Table I.
func FormatTable(dev *hw.Device) (string, error) {
	t, err := Table(dev)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("Performance events for %s:\n", dev.Name)
	for _, m := range AllMetrics {
		out += fmt.Sprintf("  %-18s", m)
		for i, e := range t[m] {
			if i > 0 {
				out += ", "
			}
			out += e.String()
		}
		out += "\n"
	}
	return out, nil
}
