// Package cupti is a façade over the simulated device mirroring the CUPTI
// event-collection interface the paper uses. It reproduces the paper's
// Table I: each device exposes a mix of publicly named events and
// undisclosed numeric event IDs (the "W###" identifiers, whose prefixes are
// 352321 for Titan Xp, 335544 for GTX Titan X and 318767 for Tesla K40c).
// Event readings carry per-die systematic error — substantially larger on
// the Kepler device, which is where the paper's higher K40c model error
// comes from.
package cupti

import (
	"fmt"

	"gpupower/internal/hw"
)

// EventID identifies one hardware performance event.
type EventID uint64

// Metric names the model-level quantity a group of events measures
// (left column of the paper's Table I).
type Metric string

// The metrics of Table I.
const (
	MetricACycles     Metric = "ACycles"
	MetricL2Read      Metric = "ABandL2.read"
	MetricL2Write     Metric = "ABandL2.write"
	MetricSharedLoad  Metric = "ABandShared.load"
	MetricSharedStore Metric = "ABandShared.store"
	MetricDRAMRead    Metric = "ABandDRAM.read"
	MetricDRAMWrite   Metric = "ABandDRAM.write"
	MetricWarpsSPInt  Metric = "AWarpsSP/INT"
	MetricWarpsDP     Metric = "AWarpsDP"
	MetricWarpsSF     Metric = "AWarpsSF"
	MetricInstInt     Metric = "InstINT"
	MetricInstSP      Metric = "InstSP"
)

// AllMetrics lists every Table I metric in presentation order.
var AllMetrics = []Metric{
	MetricACycles,
	MetricL2Read, MetricL2Write,
	MetricSharedLoad, MetricSharedStore,
	MetricDRAMRead, MetricDRAMWrite,
	MetricWarpsSPInt, MetricWarpsDP, MetricWarpsSF,
	MetricInstInt, MetricInstSP,
}

// Event is one collectable performance event. Disclosed events carry a
// CUPTI name; undisclosed ones only a numeric ID (Name == "").
type Event struct {
	ID   EventID
	Name string
}

// Disclosed reports whether NVIDIA documents the event.
func (e Event) Disclosed() bool { return e.Name != "" }

func (e Event) String() string {
	if e.Disclosed() {
		return e.Name
	}
	return fmt.Sprintf("event_%d", e.ID)
}

// EventTable maps each metric to the events whose values must be aggregated
// (summed) to produce it — the paper's "aggregation step" for metrics that
// depend on multiple events (e.g. ABandDRAM uses 4).
type EventTable map[Metric][]Event

// undisclosed builds the numeric ID for a "W suffix" event of Table I:
// prefix·1000 + suffix.
func undisclosed(prefix, suffix uint64) Event {
	return Event{ID: EventID(prefix*1000 + suffix)}
}

// named gives disclosed events deterministic IDs in a reserved low range so
// Counters can be keyed uniformly by EventID.
func named(id uint64, name string) Event { return Event{ID: EventID(id), Name: name} }

// Table reproduces the paper's Table I for one of the catalog devices.
func Table(dev *hw.Device) (EventTable, error) {
	switch dev.Name {
	case "Titan Xp":
		return buildTable(devTitanXp), nil
	case "GTX Titan X":
		return buildTable(devTitanX), nil
	case "Tesla K40c":
		return buildTable(devK40c), nil
	default:
		return nil, fmt.Errorf("cupti: no event table for device %q", dev.Name)
	}
}

type deviceID int

const (
	devTitanXp deviceID = iota
	devTitanX
	devK40c
)

// wPrefix returns the undisclosed-event ID prefix of Table I's footnote.
func wPrefix(d deviceID) uint64 {
	switch d {
	case devTitanXp:
		return 352321
	case devTitanX:
		return 335544
	default:
		return 318767
	}
}

func buildTable(d deviceID) EventTable {
	p := wPrefix(d)
	t := EventTable{}

	t[MetricACycles] = []Event{named(1, "active_cycles")}

	// L2 sector queries: 2 subpartitions on the Titans, 4 on the K40c.
	nL2 := 2
	l2Name := "l2_subp%d_total_read_sector_queries"
	l2WName := "l2_subp%d_total_write_sector_queries"
	if d == devK40c {
		nL2 = 4
	}
	for i := 0; i < nL2; i++ {
		t[MetricL2Read] = append(t[MetricL2Read], named(uint64(10+i), fmt.Sprintf(l2Name, i)))
		t[MetricL2Write] = append(t[MetricL2Write], named(uint64(20+i), fmt.Sprintf(l2WName, i)))
	}

	// Shared-memory transactions; the Kepler events live under the L1 name.
	if d == devK40c {
		t[MetricSharedLoad] = []Event{named(30, "l1_shared_ld_transactions")}
		t[MetricSharedStore] = []Event{named(31, "l1_shared_st_transactions")}
	} else {
		t[MetricSharedLoad] = []Event{named(30, "shared_ld_transactions")}
		t[MetricSharedStore] = []Event{named(31, "shared_st_transactions")}
	}

	// Frame-buffer (DRAM) sectors: 2 subpartitions on all three devices.
	for i := 0; i < 2; i++ {
		t[MetricDRAMRead] = append(t[MetricDRAMRead], named(uint64(40+i), fmt.Sprintf("fb_subp%d_read_sectors", i)))
		t[MetricDRAMWrite] = append(t[MetricDRAMWrite], named(uint64(50+i), fmt.Sprintf("fb_subp%d_write_sectors", i)))
	}

	// Undisclosed warp/instruction events (numeric IDs from Table I).
	switch d {
	case devTitanXp:
		t[MetricWarpsSPInt] = []Event{undisclosed(p, 580), undisclosed(p, 581)}
		t[MetricWarpsDP] = []Event{undisclosed(p, 584)}
		t[MetricWarpsSF] = []Event{undisclosed(p, 560)}
		t[MetricInstInt] = []Event{undisclosed(p, 831)}
		t[MetricInstSP] = []Event{undisclosed(p, 829)}
	case devTitanX:
		t[MetricWarpsSPInt] = []Event{undisclosed(p, 361), undisclosed(p, 362)}
		t[MetricWarpsDP] = []Event{undisclosed(p, 364)}
		t[MetricWarpsSF] = []Event{undisclosed(p, 359)}
		t[MetricInstInt] = []Event{undisclosed(p, 504)}
		t[MetricInstSP] = []Event{undisclosed(p, 502)}
	case devK40c:
		t[MetricWarpsSPInt] = []Event{
			undisclosed(p, 131), undisclosed(p, 134),
			undisclosed(p, 136), undisclosed(p, 137),
		}
		t[MetricWarpsDP] = []Event{undisclosed(p, 141)}
		t[MetricWarpsSF] = []Event{undisclosed(p, 133)}
		t[MetricInstInt] = []Event{undisclosed(p, 205)}
		t[MetricInstSP] = []Event{undisclosed(p, 203)}
	}
	return t
}

// Counters holds collected event values keyed by event ID.
type Counters map[EventID]float64

// Aggregate sums the counters of all events behind a metric — the paper's
// aggregation step.
func (t EventTable) Aggregate(c Counters, m Metric) (float64, error) {
	evs, ok := t[m]
	if !ok {
		return 0, fmt.Errorf("cupti: metric %q not in event table", m)
	}
	var s float64
	for _, e := range evs {
		v, ok := c[e.ID]
		if !ok {
			return 0, fmt.Errorf("cupti: counters missing event %v for metric %q", e, m)
		}
		s += v
	}
	return s, nil
}
