package cupti

import (
	"fmt"
	"sort"

	"gpupower/internal/hw"
)

// Real CUPTI cannot read arbitrarily many counters in one kernel launch:
// the hardware exposes a small number of counter registers, so profilers
// partition the requested events into *passes* and replay the kernel once
// per pass (the paper's methodology note that kernels are executed
// repeatedly covers this too). The pass machinery below reproduces that
// behaviour: Collect replays the kernel once per pass and each pass reads
// only its own events.

// maxEventsPerPass returns how many events one replay can collect on an
// architecture (Kepler's counter file is the smallest).
func maxEventsPerPass(a hw.Arch) int {
	switch a {
	case hw.Kepler:
		return 4
	default:
		return 6
	}
}

// Passes partitions the event table into replay passes of at most
// maxEventsPerPass(arch) events. Events backing the same metric are kept in
// the same pass when they fit (they must be read coherently to aggregate),
// and the partition is deterministic: metrics are scheduled in AllMetrics
// order.
func Passes(table EventTable, arch hw.Arch) ([][]Event, error) {
	limit := maxEventsPerPass(arch)
	var passes [][]Event
	var current []Event
	for _, m := range AllMetrics {
		evs := table[m]
		if len(evs) > limit {
			return nil, fmt.Errorf("cupti: metric %s needs %d events, above the %d-per-pass limit",
				m, len(evs), limit)
		}
		if len(current)+len(evs) > limit {
			passes = append(passes, current)
			current = nil
		}
		current = append(current, evs...)
	}
	if len(current) > 0 {
		passes = append(passes, current)
	}
	return passes, nil
}

// PassCount returns how many kernel replays one full collection needs on
// the device.
func PassCount(dev *hw.Device) (int, error) {
	table, err := Table(dev)
	if err != nil {
		return 0, err
	}
	passes, err := Passes(table, dev.Arch)
	if err != nil {
		return 0, err
	}
	return len(passes), nil
}

// validatePasses checks the structural invariants of a pass schedule:
// every event appears exactly once and no pass exceeds the register budget.
func validatePasses(passes [][]Event, table EventTable, arch hw.Arch) error {
	limit := maxEventsPerPass(arch)
	seen := map[EventID]int{}
	for pi, pass := range passes {
		if len(pass) == 0 {
			return fmt.Errorf("cupti: pass %d is empty", pi)
		}
		if len(pass) > limit {
			return fmt.Errorf("cupti: pass %d holds %d events, limit %d", pi, len(pass), limit)
		}
		for _, e := range pass {
			seen[e.ID]++
		}
	}
	var all []EventID
	for _, m := range AllMetrics {
		for _, e := range table[m] {
			all = append(all, e.ID)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, id := range all {
		if seen[id] != 1 {
			return fmt.Errorf("cupti: event %d scheduled %d times", id, seen[id])
		}
	}
	return nil
}
