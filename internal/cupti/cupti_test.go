package cupti

import (
	"math"
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/sim"
)

func collector(t *testing.T, name string) *Collector {
	t.Helper()
	d, err := hw.DeviceByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCollector(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testKernel() *kernels.KernelSpec {
	return &kernels.KernelSpec{
		Name: "ktest",
		WarpInstrs: map[hw.Component]float64{
			hw.Int: 3e8, hw.SP: 6e8, hw.DP: 1e7, hw.SF: 5e7,
		},
		SharedLoadBytes: 1e8, SharedStoreBytes: 5e7,
		L2ReadBytes: 2e8, L2WriteBytes: 1e8,
		DRAMReadBytes: 2e8, DRAMWriteBytes: 1e8,
		FixedCycles:     1e5,
		IssueEfficiency: 0.9,
	}
}

// TestTable1Structure checks the reproduction of the paper's Table I.
func TestTable1Structure(t *testing.T) {
	cases := []struct {
		device    string
		l2Events  int // per direction
		spIntEvts int
		prefix    uint64
		spInt     []uint64
		dp, sf    uint64
		iInt, iSP uint64
		sharedLd  string
	}{
		{"Titan Xp", 2, 2, 352321, []uint64{580, 581}, 584, 560, 831, 829, "shared_ld_transactions"},
		{"GTX Titan X", 2, 2, 335544, []uint64{361, 362}, 364, 359, 504, 502, "shared_ld_transactions"},
		{"Tesla K40c", 4, 4, 318767, []uint64{131, 134, 136, 137}, 141, 133, 205, 203, "l1_shared_ld_transactions"},
	}
	for _, c := range cases {
		dev, err := hw.DeviceByName(c.device)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := Table(dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl[MetricL2Read]) != c.l2Events || len(tbl[MetricL2Write]) != c.l2Events {
			t.Errorf("%s: L2 subpartition count wrong", c.device)
		}
		if got := tbl[MetricWarpsSPInt]; len(got) != c.spIntEvts {
			t.Errorf("%s: SP/INT warp event count = %d, want %d", c.device, len(got), c.spIntEvts)
		} else {
			for i, suffix := range c.spInt {
				want := EventID(c.prefix*1000 + suffix)
				if got[i].ID != want {
					t.Errorf("%s: SP/INT event %d = %d, want %d", c.device, i, got[i].ID, want)
				}
				if got[i].Disclosed() {
					t.Errorf("%s: warp event %d should be undisclosed", c.device, i)
				}
			}
		}
		if tbl[MetricWarpsDP][0].ID != EventID(c.prefix*1000+c.dp) {
			t.Errorf("%s: DP event wrong", c.device)
		}
		if tbl[MetricWarpsSF][0].ID != EventID(c.prefix*1000+c.sf) {
			t.Errorf("%s: SF event wrong", c.device)
		}
		if tbl[MetricInstInt][0].ID != EventID(c.prefix*1000+c.iInt) {
			t.Errorf("%s: InstINT event wrong", c.device)
		}
		if tbl[MetricInstSP][0].ID != EventID(c.prefix*1000+c.iSP) {
			t.Errorf("%s: InstSP event wrong", c.device)
		}
		if tbl[MetricSharedLoad][0].Name != c.sharedLd {
			t.Errorf("%s: shared load event %q, want %q", c.device, tbl[MetricSharedLoad][0].Name, c.sharedLd)
		}
		if tbl[MetricACycles][0].Name != "active_cycles" {
			t.Errorf("%s: ACycles event wrong", c.device)
		}
		// DRAM sectors: 2 subpartitions everywhere.
		if len(tbl[MetricDRAMRead]) != 2 || len(tbl[MetricDRAMWrite]) != 2 {
			t.Errorf("%s: fb subpartition count wrong", c.device)
		}
	}
}

func TestTableUnknownDevice(t *testing.T) {
	d := hw.GTXTitanX()
	d.Name = "GTX 480"
	if _, err := Table(d); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestAggregate(t *testing.T) {
	dev := hw.GTXTitanX()
	tbl, _ := Table(dev)
	counters := Counters{}
	for _, e := range tbl[MetricL2Read] {
		counters[e.ID] = 10
	}
	v, err := tbl.Aggregate(counters, MetricL2Read)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Fatalf("aggregate = %g, want 20", v)
	}
	if _, err := tbl.Aggregate(Counters{}, MetricL2Read); err == nil {
		t.Fatal("missing counters accepted")
	}
	if _, err := tbl.Aggregate(counters, Metric("nope")); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestCollectMetricsApproximateOnMaxwell(t *testing.T) {
	c := collector(t, "GTX Titan X")
	k := testKernel()
	metrics, run, err := c.CollectMetrics(k)
	if err != nil {
		t.Fatal(err)
	}
	if run == nil || run.Exec == nil {
		t.Fatal("missing run result")
	}
	// On Maxwell the events are accurate within ~20%.
	checks := map[Metric]float64{
		MetricWarpsSPInt: k.Warp(hw.Int) + k.Warp(hw.SP),
		MetricWarpsDP:    k.Warp(hw.DP),
		MetricWarpsSF:    k.Warp(hw.SF),
		MetricL2Read:     k.L2ReadBytes / 32,
		MetricDRAMWrite:  k.DRAMWriteBytes / 32,
		MetricSharedLoad: k.SharedLoadBytes / 128,
		MetricInstInt:    k.Warp(hw.Int) * 32,
		MetricInstSP:     k.Warp(hw.SP) * 32,
	}
	for m, want := range checks {
		got := metrics[m]
		if rel := math.Abs(got-want) / want; rel > 0.2 {
			t.Errorf("%s = %g, want ~%g (rel err %.2f)", m, got, want, rel)
		}
	}
	if metrics[MetricACycles] <= 0 {
		t.Fatal("non-positive active cycles")
	}
}

func TestCollectDeterministicPerKernel(t *testing.T) {
	// Re-profiling the same kernel on the same die gives near-identical
	// counts (systematic error is per-die × per-workload, read noise tiny).
	c := collector(t, "Tesla K40c")
	m1, _, err := c.CollectMetrics(testKernel())
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := c.CollectMetrics(testKernel())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMetrics {
		if m1[m] == 0 && m2[m] == 0 {
			continue
		}
		if rel := math.Abs(m1[m]-m2[m]) / math.Max(m1[m], m2[m]); rel > 0.05 {
			t.Errorf("%s unstable across collections: %g vs %g", m, m1[m], m2[m])
		}
	}
}

func TestKeplerEventsLessAccurate(t *testing.T) {
	// The defining property behind the paper's per-device accuracy gap:
	// utilization-relevant events carry much larger workload-systematic
	// error on the K40c than on the Titans. Compare relative errors of the
	// warp counters across many synthetic kernels.
	avgErr := func(name string) float64 {
		c := collector(t, name)
		var sum float64
		n := 0
		for i := 1; i <= 30; i++ {
			k := testKernel()
			k.Name = k.Name + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			k.WarpInstrs[hw.SP] = float64(i) * 1e8
			metrics, _, err := c.CollectMetrics(k)
			if err != nil {
				t.Fatal(err)
			}
			want := k.Warp(hw.Int) + k.Warp(hw.SP)
			sum += math.Abs(metrics[MetricWarpsSPInt]-want) / want
			n++
		}
		return sum / float64(n)
	}
	kepler := avgErr("Tesla K40c")
	maxwell := avgErr("GTX Titan X")
	if kepler < 2*maxwell {
		t.Fatalf("Kepler events not sufficiently degraded: %.3f vs %.3f", kepler, maxwell)
	}
}

func TestFormatTable(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		s, err := FormatTable(dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) == 0 {
			t.Fatalf("%s: empty table", dev.Name)
		}
	}
	d := hw.GTXTitanX()
	d.Name = "nope"
	if _, err := FormatTable(d); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{ID: 123456789}
	if e.String() != "event_123456789" {
		t.Fatalf("undisclosed event string = %q", e.String())
	}
	e = Event{ID: 1, Name: "active_cycles"}
	if e.String() != "active_cycles" || !e.Disclosed() {
		t.Fatal("disclosed event string wrong")
	}
}

func TestPassesRespectCounterBudget(t *testing.T) {
	for _, dev := range hw.AllDevices() {
		table, err := Table(dev)
		if err != nil {
			t.Fatal(err)
		}
		passes, err := Passes(table, dev.Arch)
		if err != nil {
			t.Fatal(err)
		}
		if err := validatePasses(passes, table, dev.Arch); err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		limit := maxEventsPerPass(dev.Arch)
		for pi, pass := range passes {
			if len(pass) > limit {
				t.Fatalf("%s: pass %d has %d events, limit %d", dev.Name, pi, len(pass), limit)
			}
		}
		// Events of one metric never straddle passes (coherent aggregation).
		eventPass := map[EventID]int{}
		for pi, pass := range passes {
			for _, e := range pass {
				eventPass[e.ID] = pi
			}
		}
		for _, m := range AllMetrics {
			evs := table[m]
			for _, e := range evs[1:] {
				if eventPass[e.ID] != eventPass[evs[0].ID] {
					t.Fatalf("%s: metric %s straddles passes", dev.Name, m)
				}
			}
		}
	}
}

func TestPassCountPerDevice(t *testing.T) {
	// The Kepler device exposes more events and a smaller counter file, so
	// it needs strictly more replays than the Titans.
	counts := map[string]int{}
	for _, dev := range hw.AllDevices() {
		n, err := PassCount(dev)
		if err != nil {
			t.Fatal(err)
		}
		if n < 2 {
			t.Fatalf("%s: pass count %d suspiciously small", dev.Name, n)
		}
		counts[dev.Name] = n
	}
	if counts["Tesla K40c"] <= counts["GTX Titan X"] {
		t.Fatalf("Kepler pass count %d should exceed Maxwell's %d",
			counts["Tesla K40c"], counts["GTX Titan X"])
	}
}

func TestCollectorPassCountMatchesSchedule(t *testing.T) {
	c := collector(t, "GTX Titan X")
	want, err := PassCount(c.dev.HW())
	if err != nil {
		t.Fatal(err)
	}
	if c.PassCount() != want {
		t.Fatalf("collector pass count %d, schedule %d", c.PassCount(), want)
	}
}
