package suites

import (
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/silicon"
)

func TestValidationSetSize(t *testing.T) {
	apps := ValidationSet()
	if len(apps) != 26 {
		t.Fatalf("validation set size = %d, want 26 (paper Table III)", len(apps))
	}
}

func TestValidationSetValidAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range ValidationSet() {
		if a.Short == "" || a.Full == "" || a.Suite == "" {
			t.Errorf("incomplete application %+v", a)
		}
		if seen[a.Short] {
			t.Errorf("duplicate short name %q", a.Short)
		}
		seen[a.Short] = true
		if err := a.App.Validate(); err != nil {
			t.Errorf("%s: %v", a.Short, err)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	// Table III: 10 Rodinia, 2 Parboil, 11 Polybench, 3 CUDA SDK (CUBLAS is
	// the 27th application, tracked separately for Figs. 9/10).
	counts := map[SuiteName]int{}
	for _, a := range ValidationSet() {
		counts[a.Suite]++
	}
	want := map[SuiteName]int{Rodinia: 11, Parboil: 2, Poly: 11, CUDASDK: 2}
	for s, n := range want {
		if counts[s] != n {
			t.Errorf("%s: %d applications, want %d", s, counts[s], n)
		}
	}
}

func TestByShort(t *testing.T) {
	for _, short := range []string{"BLCKSC", "CUTCP", "LBM", "SYRK_D", "CUBLAS"} {
		a, err := ByShort(short)
		if err != nil {
			t.Fatal(err)
		}
		if a.Short != short {
			t.Fatalf("got %q, want %q", a.Short, short)
		}
	}
	if _, err := ByShort("NOPE"); err == nil {
		t.Fatal("unknown application accepted")
	}
}

// TestSignatureFidelity: at the reference device and configuration, the
// synthesized kernels must achieve utilizations close to their published
// signatures (BlackScholes from paper Fig. 2A, CUTCP from Fig. 2B).
func TestSignatureFidelity(t *testing.T) {
	dev := refDevice()
	cfg := dev.DefaultConfig()

	cases := []struct {
		short string
		comp  hw.Component
		want  float64
	}{
		{"BLCKSC", hw.SP, 0.85},
		{"BLCKSC", hw.DRAM, 0.47},
		{"BLCKSC", hw.SF, 0.25},
		{"CUTCP", hw.SP, 0.92},
		{"CUTCP", hw.Shared, 0.51},
		{"CUTCP", hw.DRAM, 0.05},
		{"LBM", hw.DRAM, 0.90},
		{"SYRK_D", hw.DP, 0.52},
	}
	for _, c := range cases {
		a, err := ByShort(c.short)
		if err != nil {
			t.Fatal(err)
		}
		e, err := silicon.Simulate(dev, a.App.Kernels[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Utilization[c.comp]
		if got < c.want-0.06 || got > c.want+0.06 {
			t.Errorf("%s: U(%s) = %.2f, want ~%.2f", c.short, c.comp, got, c.want)
		}
	}
}

// TestCUBLASSizeOrdering reproduces the Fig. 9 property: larger inputs give
// higher SP and DRAM utilization, hence higher power.
func TestCUBLASSizeOrdering(t *testing.T) {
	dev := refDevice()
	cfg := dev.DefaultConfig()
	truth := silicon.MustTruthFor(dev)
	var prevSP, prevPower float64
	for _, size := range []int{64, 512, 4096} {
		a, err := MatrixMulCUBLAS(size)
		if err != nil {
			t.Fatal(err)
		}
		e, err := silicon.Simulate(dev, a.App.Kernels[0], cfg)
		if err != nil {
			t.Fatal(err)
		}
		sp := e.Utilization[hw.SP]
		p := truth.Power(e)
		if sp < prevSP {
			t.Errorf("size %d: SP utilization decreased (%.2f -> %.2f)", size, prevSP, sp)
		}
		if p < prevPower {
			t.Errorf("size %d: power decreased (%.1f -> %.1f)", size, prevPower, p)
		}
		prevSP, prevPower = sp, p
	}
	if _, err := MatrixMulCUBLAS(100); err == nil {
		t.Fatal("unsupported size accepted")
	}
}

// TestMultiKernelApps: K-Means and SRAD v1 carry two kernels, as in Rodinia.
func TestMultiKernelApps(t *testing.T) {
	for _, short := range []string{"K-M", "SRAD_1"} {
		a, err := ByShort(short)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.App.Kernels) != 2 {
			t.Errorf("%s has %d kernels, want 2", short, len(a.App.Kernels))
		}
	}
}

// TestTrainingValidationDisjoint: no validation kernel name collides with a
// microbenchmark name (the paper's bias-free validation requirement).
func TestTrainingValidationDisjoint(t *testing.T) {
	for _, a := range ValidationSet() {
		for _, k := range a.App.Kernels {
			if len(k.Name) >= 3 && k.Name[:3] == "ub_" {
				t.Errorf("validation kernel %q shadows a microbenchmark name", k.Name)
			}
		}
	}
}

// TestMemoryVsComputeBoundContrast: the Fig. 2 pair must sit on opposite
// sides of the memory-sensitivity spectrum.
func TestMemoryVsComputeBoundContrast(t *testing.T) {
	dev := refDevice()
	truth := silicon.MustTruthFor(dev)
	drop := func(short string) float64 {
		a, err := ByShort(short)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := silicon.Simulate(dev, a.App.Kernels[0], hw.Config{CoreMHz: 975, MemMHz: 3505})
		if err != nil {
			t.Fatal(err)
		}
		lo, err := silicon.Simulate(dev, a.App.Kernels[0], hw.Config{CoreMHz: 975, MemMHz: 810})
		if err != nil {
			t.Fatal(err)
		}
		ph, pl := truth.Power(hi), truth.Power(lo)
		return (ph - pl) / ph
	}
	blck := drop("BLCKSC")
	cutcp := drop("CUTCP")
	if blck < cutcp+0.1 {
		t.Fatalf("BlackScholes drop %.0f%% should far exceed CUTCP drop %.0f%% (paper: 52%% vs 24%%)",
			100*blck, 100*cutcp)
	}
}
