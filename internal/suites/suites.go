// Package suites provides the validation workloads of the paper's Table III:
// 26 applications from Rodinia, Parboil, Polybench and the CUDA SDK, plus
// the matrixMulCUBLAS input-size variants of Fig. 9. They are disjoint from
// the microbenchmark training suite, exactly as in the paper ("the
// validation benchmarks were not used in the construction of the model").
//
// Each application is a kernel descriptor synthesized from a target
// per-component utilization signature at the GTX Titan X default
// configuration. The signatures follow the published per-application
// utilization data (paper Figs. 2, 9 and 10): BlackScholes is SP- and
// DRAM-heavy, CUTCP is SP/shared-heavy with almost no DRAM traffic, LBM and
// 3DCONV are DRAM-bound, SYRK_DOUBLE exercises the DP units, and so on.
// Running the same descriptor on the other devices yields different
// utilizations naturally, because peaks differ — as with real binaries.
package suites

import (
	"fmt"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
)

// SuiteName labels the benchmark suite an application comes from.
type SuiteName string

// The four suites of Table III.
const (
	Rodinia SuiteName = "Rodinia"
	Parboil SuiteName = "Parboil"
	Poly    SuiteName = "Polybench"
	CUDASDK SuiteName = "CUDA SDK"
)

// Application is one validation benchmark.
type Application struct {
	// Short is the abbreviated name used on the paper's figure axes
	// (e.g. "BLCKSC"), Full the spelled-out Table III name.
	Short string
	Full  string
	Suite SuiteName
	App   *kernels.App
}

// signature is a target utilization profile at the Titan X default config.
type signature map[hw.Component]float64

// nominalSeconds is the single-launch duration a signature is synthesized
// for, at the reference device and configuration.
const nominalSeconds = 5e-3

// refDevice returns the device whose default configuration anchors the
// synthesis (the GTX Titan X, the paper's most thoroughly reported GPU).
func refDevice() *hw.Device { return hw.GTXTitanX() }

// fromSignature synthesizes a kernel whose utilizations at the reference
// device's default configuration match the signature: each component is
// given exactly the amount of work it can retire in U·T seconds at peak
// throughput, and the issue efficiency is set to the bottleneck utilization
// so the roofline total time lands on T.
func fromSignature(name string, sig signature) *kernels.KernelSpec {
	dev := refDevice()
	cfg := dev.DefaultConfig()
	t := nominalSeconds

	var maxU float64
	for _, u := range sig {
		if u > maxU {
			maxU = u
		}
	}
	if maxU <= 0 {
		panic(fmt.Sprintf("suites: %s: empty signature", name))
	}
	k := &kernels.KernelSpec{
		Name:         name,
		WarpInstrs:   map[hw.Component]float64{},
		FixedCycles:  1e5,
		StallSeconds: 1e-4,
	}
	// The fixed-cycle and stall overheads stretch the total time beyond the
	// throughput bound. Raising the issue efficiency by exactly the overhead
	// share makes the roofline total land on t, so the achieved utilizations
	// hit the signature at the reference configuration.
	overhead := k.FixedCycles/(cfg.CoreMHz*1e6) + k.StallSeconds
	eff := maxU / (1 - overhead/t)
	if eff > 0.98 {
		eff = 0.98
	}
	k.IssueEfficiency = eff
	for c, u := range sig {
		work := u * t
		switch c {
		case hw.Int, hw.SP, hw.DP, hw.SF:
			k.WarpInstrs[c] = work * dev.PeakComputeWarpsPerSec(c, cfg.CoreMHz)
		case hw.Shared:
			half := work * dev.PeakSharedBandwidth(cfg.CoreMHz) / 2
			k.SharedLoadBytes, k.SharedStoreBytes = half, half
		case hw.L2:
			bytes := work * dev.PeakL2Bandwidth(cfg.CoreMHz)
			k.L2ReadBytes = bytes * 0.6
			k.L2WriteBytes = bytes * 0.4
		case hw.DRAM:
			bytes := work * dev.PeakDRAMBandwidth(cfg.MemMHz)
			k.DRAMReadBytes = bytes * 0.7
			k.DRAMWriteBytes = bytes * 0.3
		default:
			panic(fmt.Sprintf("suites: %s: component %v not synthesizable", name, c))
		}
	}
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("suites: %s: %v", name, err))
	}
	return k
}

func single(short, full string, suite SuiteName, sig signature) Application {
	k := fromSignature(short, sig)
	return Application{Short: short, Full: full, Suite: suite, App: kernels.SingleKernelApp(k)}
}

func multi(short, full string, suite SuiteName, sigs ...signature) Application {
	app := &kernels.App{Name: short}
	for i, sig := range sigs {
		app.Kernels = append(app.Kernels, fromSignature(fmt.Sprintf("%s_k%d", short, i+1), sig))
	}
	return Application{Short: short, Full: full, Suite: suite, App: app}
}

// ValidationSet returns the 26 applications the paper validates with
// (the x-axis of Figs. 8 and 10, reading order).
func ValidationSet() []Application {
	return []Application{
		single("STCL", "Streamcluster", Rodinia, signature{
			hw.DRAM: 0.80, hw.L2: 0.35, hw.SP: 0.30, hw.Int: 0.22,
		}),
		single("BCKP", "Backprop", Rodinia, signature{
			hw.DRAM: 0.49, hw.L2: 0.30, hw.SP: 0.35, hw.Shared: 0.17, hw.Int: 0.14,
		}),
		single("LUD", "LUD", Rodinia, signature{
			hw.Shared: 0.37, hw.SP: 0.30, hw.Int: 0.19, hw.L2: 0.13, hw.DRAM: 0.11,
		}),
		single("2MM", "2MM", Poly, signature{
			hw.SP: 0.71, hw.Shared: 0.30, hw.L2: 0.19, hw.DRAM: 0.14, hw.Int: 0.13,
		}),
		single("FDTD", "FDTD-2D", Poly, signature{
			hw.DRAM: 0.68, hw.L2: 0.35, hw.SP: 0.30, hw.Int: 0.14,
		}),
		single("SYRK", "SYRK", Poly, signature{
			hw.SP: 0.86, hw.Shared: 0.30, hw.L2: 0.19, hw.DRAM: 0.13, hw.Int: 0.10,
		}),
		single("CORR", "CORR", Poly, signature{
			hw.SP: 0.58, hw.Int: 0.35, hw.DRAM: 0.30, hw.L2: 0.22,
		}),
		single("GEMM", "GEMM", Poly, signature{
			hw.SP: 0.69, hw.Shared: 0.52, hw.L2: 0.14, hw.DRAM: 0.11, hw.Int: 0.10,
		}),
		single("GESUMV", "GESUMMV", Poly, signature{
			hw.DRAM: 0.83, hw.L2: 0.37, hw.SP: 0.19, hw.Int: 0.13,
		}),
		single("GRAMS", "GRAMSCHM", Poly, signature{
			hw.DRAM: 0.56, hw.SP: 0.35, hw.L2: 0.24, hw.Int: 0.19,
		}),
		single("SYRK_D", "SYRK_DOUBLE", Poly, signature{
			hw.DP: 0.52, hw.L2: 0.13, hw.DRAM: 0.12, hw.Int: 0.11, hw.SP: 0.10,
		}),
		single("3MM", "3MM", Poly, signature{
			hw.SP: 0.67, hw.Shared: 0.35, hw.L2: 0.19, hw.DRAM: 0.14, hw.Int: 0.11,
		}),
		single("GAUSS", "Gaussian", Rodinia, signature{
			hw.DRAM: 0.52, hw.L2: 0.25, hw.SP: 0.23, hw.Int: 0.15,
		}),
		single("HOTS", "Hotspot", Rodinia, signature{
			hw.SP: 0.61, hw.DRAM: 0.35, hw.L2: 0.25, hw.Shared: 0.19, hw.Int: 0.15,
		}),
		single("COVAR", "COVAR", Poly, signature{
			hw.SP: 0.51, hw.DRAM: 0.47, hw.Int: 0.30, hw.L2: 0.25,
		}),
		single("PF_N", "ParticleFilter naive", Rodinia, signature{
			hw.Int: 0.60, hw.DRAM: 0.25, hw.L2: 0.19, hw.SP: 0.15,
		}),
		single("PF_F", "ParticleFilter float", Rodinia, signature{
			hw.SP: 0.54, hw.Int: 0.25, hw.DRAM: 0.23, hw.L2: 0.15, hw.SF: 0.10,
		}),
		multi("K-M", "K-Means", Rodinia,
			signature{hw.DRAM: 0.71, hw.L2: 0.30, hw.SP: 0.25, hw.Int: 0.17},
			signature{hw.DRAM: 0.55, hw.L2: 0.22, hw.Int: 0.30, hw.SP: 0.12},
		),
		single("K-M_2", "K-Means (transpose)", Rodinia, signature{
			hw.DRAM: 0.47, hw.SP: 0.30, hw.L2: 0.21, hw.Int: 0.15,
		}),
		multi("SRAD_1", "SRAD v1", Rodinia,
			signature{hw.DRAM: 0.64, hw.SP: 0.35, hw.L2: 0.25, hw.SF: 0.11},
			signature{hw.DRAM: 0.52, hw.SP: 0.28, hw.L2: 0.20, hw.Int: 0.12},
		),
		single("SRAD_2", "SRAD v2", Rodinia, signature{
			hw.DRAM: 0.70, hw.SP: 0.30, hw.L2: 0.23, hw.Int: 0.12,
		}),
		single("3DCNV", "3DCONV", Poly, signature{
			hw.DRAM: 0.85, hw.L2: 0.47, hw.SP: 0.25, hw.Int: 0.11,
		}),
		single("BLCKSC", "BlackScholes", CUDASDK, signature{
			hw.SP: 0.85, hw.DRAM: 0.47, hw.SF: 0.25, hw.L2: 0.19, hw.Int: 0.10,
		}),
		single("CGUM", "ConjugateGradientUM", CUDASDK, signature{
			hw.DRAM: 0.75, hw.L2: 0.35, hw.SP: 0.25, hw.Int: 0.15,
		}),
		single("LBM", "LBM", Parboil, signature{
			hw.DRAM: 0.90, hw.L2: 0.40, hw.SP: 0.28, hw.Int: 0.12,
		}),
		single("CUTCP", "CUTCP", Parboil, signature{
			hw.SP: 0.92, hw.Shared: 0.51, hw.Int: 0.15, hw.SF: 0.11, hw.L2: 0.10, hw.DRAM: 0.05,
		}),
	}
}

// MatrixMulCUBLAS returns the matrixMulCUBLAS variant for a square input
// size of Fig. 9 (64, 512 or 4096). Larger inputs raise the SP, L2 and DRAM
// utilizations, as the paper observes.
func MatrixMulCUBLAS(size int) (Application, error) {
	var sig signature
	switch size {
	case 64:
		sig = signature{hw.SP: 0.50, hw.L2: 0.28, hw.DRAM: 0.12, hw.Shared: 0.20, hw.Int: 0.08}
	case 512:
		sig = signature{hw.SP: 0.58, hw.L2: 0.17, hw.DRAM: 0.13, hw.Shared: 0.35, hw.Int: 0.09}
	case 4096:
		sig = signature{hw.SP: 0.92, hw.L2: 0.26, hw.DRAM: 0.30, hw.Shared: 0.55, hw.Int: 0.20, hw.SF: 0.05}
	default:
		return Application{}, fmt.Errorf("suites: matrixMulCUBLAS size %d not in {64, 512, 4096}", size)
	}
	name := fmt.Sprintf("CUBLAS_%d", size)
	return single(name, fmt.Sprintf("matrixMulCUBLAS %dx%d", size, size), CUDASDK, sig), nil
}

// CUBLASApp returns the default (4096²) matrixMulCUBLAS application, the
// 27th column of the paper's Fig. 10.
func CUBLASApp() Application {
	app, err := MatrixMulCUBLAS(4096)
	if err != nil {
		panic(err)
	}
	app.Short = "CUBLAS"
	return app
}

// ByShort returns a validation application by its short name.
func ByShort(short string) (Application, error) {
	for _, a := range ValidationSet() {
		if a.Short == short {
			return a, nil
		}
	}
	if short == "CUBLAS" {
		return CUBLASApp(), nil
	}
	return Application{}, fmt.Errorf("suites: unknown application %q", short)
}
