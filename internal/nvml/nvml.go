// Package nvml is a façade over the simulated device mirroring the subset of
// the NVIDIA Management Library the paper uses (Section V-A): application
// clock control, supported-clock enumeration, power readings in milliwatts
// and the enforced power limit. Kernel launching is not NVML's job on real
// systems either — the profiler drives launches through the sim package
// (playing the CUDA runtime) and reads power through this façade.
package nvml

import (
	"fmt"

	"gpupower/internal/hw"
	"gpupower/internal/sim"
)

// Device is an NVML handle to one GPU.
type Device struct {
	s *sim.Device
}

// Wrap returns an NVML handle for a simulated device.
func Wrap(s *sim.Device) *Device {
	return &Device{s: s}
}

// Name returns the product name, like nvmlDeviceGetName.
func (d *Device) Name() string { return d.s.HW().Name }

// SetApplicationsClocks requests the (memory, graphics) application clocks in
// MHz, like nvmlDeviceSetApplicationsClocks. Both must be supported levels.
func (d *Device) SetApplicationsClocks(memMHz, graphicsMHz uint32) error {
	return d.s.SetClocks(float64(memMHz), float64(graphicsMHz))
}

// ApplicationsClocks returns the currently requested clocks in MHz.
func (d *Device) ApplicationsClocks() (memMHz, graphicsMHz uint32) {
	cfg := d.s.Clocks()
	return uint32(cfg.MemMHz), uint32(cfg.CoreMHz)
}

// SupportedMemoryClocks lists the memory application clocks in MHz,
// descending like the real library.
func (d *Device) SupportedMemoryClocks() []uint32 {
	fs := d.s.HW().MemFreqs
	out := make([]uint32, len(fs))
	for i, f := range fs {
		out[len(fs)-1-i] = uint32(f)
	}
	return out
}

// SupportedGraphicsClocks lists the core clocks available under a memory
// clock, descending. The catalog devices expose the same graphics ladder for
// every memory level, as the paper's devices do.
func (d *Device) SupportedGraphicsClocks(memMHz uint32) ([]uint32, error) {
	if !d.s.HW().SupportsMemFreq(float64(memMHz)) {
		return nil, fmt.Errorf("nvml: %s: unsupported memory clock %d MHz", d.Name(), memMHz)
	}
	fs := d.s.HW().CoreFreqs
	out := make([]uint32, len(fs))
	for i, f := range fs {
		out[len(fs)-1-i] = uint32(f)
	}
	return out, nil
}

// PowerUsage returns the current power draw in milliwatts (idle at the
// current clocks — kernels are measured through the profiler's sampling
// loop, which accounts for the sensor refresh period).
func (d *Device) PowerUsage() uint32 {
	return uint32(d.s.SampledIdlePower(d.s.HW().SensorRefresh) * 1000)
}

// EnforcedPowerLimit returns the TDP in milliwatts, like
// nvmlDeviceGetEnforcedPowerLimit.
func (d *Device) EnforcedPowerLimit() uint32 {
	return uint32(d.s.HW().TDP * 1000)
}

// TotalEnergyConsumption returns the accumulated energy of every kernel
// executed on this device in millijoules, like
// nvmlDeviceGetTotalEnergyConsumption.
func (d *Device) TotalEnergyConsumption() uint64 {
	return uint64(d.s.TotalEnergyJoules() * 1000)
}

// SensorRefreshMillis reports the power-sensor refresh period in
// milliseconds, as estimated experimentally in the paper (35/100/15 ms).
func (d *Device) SensorRefreshMillis() float64 {
	return float64(d.s.HW().SensorRefresh.Milliseconds())
}

// DefaultConfig returns the device's default application clocks.
func (d *Device) DefaultConfig() hw.Config { return d.s.HW().DefaultConfig() }
