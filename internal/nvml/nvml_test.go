package nvml

import (
	"testing"

	"gpupower/internal/hw"
	"gpupower/internal/kernels"
	"gpupower/internal/sim"
)

func handle(t *testing.T, name string) *Device {
	t.Helper()
	d, err := hw.DeviceByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	return Wrap(s)
}

func TestName(t *testing.T) {
	if got := handle(t, "GTX Titan X").Name(); got != "GTX Titan X" {
		t.Fatalf("Name = %q", got)
	}
}

func TestApplicationsClocksRoundTrip(t *testing.T) {
	h := handle(t, "GTX Titan X")
	if err := h.SetApplicationsClocks(810, 595); err != nil {
		t.Fatal(err)
	}
	mem, gr := h.ApplicationsClocks()
	if mem != 810 || gr != 595 {
		t.Fatalf("clocks = (%d, %d)", mem, gr)
	}
	if err := h.SetApplicationsClocks(999, 595); err == nil {
		t.Fatal("invalid memory clock accepted")
	}
}

func TestSupportedClocksDescending(t *testing.T) {
	h := handle(t, "GTX Titan X")
	mems := h.SupportedMemoryClocks()
	if len(mems) != 4 || mems[0] != 4005 || mems[3] != 810 {
		t.Fatalf("memory clocks = %v", mems)
	}
	cores, err := h.SupportedGraphicsClocks(3505)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 16 || cores[0] != 1164 || cores[15] != 595 {
		t.Fatalf("graphics clocks = %v", cores)
	}
	if _, err := h.SupportedGraphicsClocks(999); err == nil {
		t.Fatal("invalid memory clock accepted")
	}
}

func TestPowerUsageMilliwatts(t *testing.T) {
	h := handle(t, "GTX Titan X")
	mw := h.PowerUsage()
	// Idle at the default configuration is ~84 W on the Titan X.
	if mw < 60000 || mw > 110000 {
		t.Fatalf("idle power = %d mW, want ~84000", mw)
	}
}

func TestEnforcedPowerLimit(t *testing.T) {
	if got := handle(t, "GTX Titan X").EnforcedPowerLimit(); got != 250000 {
		t.Fatalf("power limit = %d mW, want 250000", got)
	}
	if got := handle(t, "Tesla K40c").EnforcedPowerLimit(); got != 235000 {
		t.Fatalf("K40c power limit = %d mW, want 235000", got)
	}
}

func TestSensorRefreshMillis(t *testing.T) {
	cases := map[string]float64{
		"Titan Xp":    35,
		"GTX Titan X": 100,
		"Tesla K40c":  15,
	}
	for name, want := range cases {
		if got := handle(t, name).SensorRefreshMillis(); got != want {
			t.Errorf("%s refresh = %g ms, want %g", name, got, want)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := handle(t, "Titan Xp").DefaultConfig()
	if cfg.CoreMHz != 1404 || cfg.MemMHz != 5705 {
		t.Fatalf("default = %v", cfg)
	}
}

func TestTotalEnergyConsumption(t *testing.T) {
	d, err := hw.DeviceByName("GTX Titan X")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	h := Wrap(s)
	if h.TotalEnergyConsumption() != 0 {
		t.Fatal("fresh device reports energy")
	}
	if _, _, err := s.SampledAveragePower(&kernels.KernelSpec{
		Name:            "k",
		WarpInstrs:      map[hw.Component]float64{hw.SP: 1e9},
		IssueEfficiency: 0.9,
	}, 0); err != nil {
		t.Fatal(err)
	}
	if h.TotalEnergyConsumption() == 0 {
		t.Fatal("energy counter did not advance")
	}
}
