package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("requests_total", "Requests served.", "path", "code")
	c.With("/v1/predict", "200").Add(3)
	c.With("/healthz", "200").Inc()

	text := expose(t, r)
	for _, want := range []string{
		"# HELP requests_total Requests served.\n",
		"# TYPE requests_total counter\n",
		`requests_total{path="/healthz",code="200"} 1` + "\n",
		`requests_total{path="/v1/predict",code="200"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Children are sorted, so /healthz precedes /v1/predict regardless of
	// creation order.
	if strings.Index(text, "/healthz") > strings.Index(text, "/v1/predict") {
		t.Error("children must be emitted in sorted label order")
	}
}

func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("temp", "Temperature.", "zone")
	for _, z := range []string{"c", "a", "b"} {
		g.With(z).Set(1)
	}
	first := expose(t, r)
	for i := 0; i < 5; i++ {
		if got := expose(t, r); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", got, first)
		}
	}
	a, b, c := strings.Index(first, `zone="a"`), strings.Index(first, `zone="b"`), strings.Index(first, `zone="c"`)
	if a < 0 || b < 0 || c < 0 || !(a < b && b < c) {
		t.Fatalf("children not sorted:\n%s", first)
	}
}

func TestGaugeSetAndFuncs(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("watts", "Power.", "device")
	g.With("k40").Set(161.25)
	g.With("k40").Set(42.5) // last write wins
	n := 0.0
	r.NewGaugeFunc("live_value", "Sampled at scrape.", func() float64 { n++; return n })
	r.NewCounterFunc("live_total", "Sampled at scrape.", func() float64 { return 7 })

	text := expose(t, r)
	for _, want := range []string{
		`watts{device="k40"} 42.5`,
		"# TYPE live_value gauge",
		"live_value 1\n",
		"# TYPE live_total counter",
		"live_total 7\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// The func is called once per scrape.
	if !strings.Contains(expose(t, r), "live_value 2\n") {
		t.Error("GaugeFunc must be re-sampled at each scrape")
	}
}

func TestGaugeFuncVecIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeFuncVec("model_generation", "Gen.", "device")
	calls := 0
	v.With(func() float64 { calls++; return 5 }, "k40")
	v.With(func() float64 { return 99 }, "k40") // duplicate labels: first wins
	text := expose(t, r)
	if !strings.Contains(text, `model_generation{device="k40"} 5`) {
		t.Fatalf("first registration must win:\n%s", text)
	}
	if calls != 1 {
		t.Fatalf("func called %d times during one scrape", calls)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "path")
	child := h.With("/v1/predict")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		child.Observe(v)
	}

	text := expose(t, r)
	for _, want := range []string{
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{path="/v1/predict",le="0.01"} 1` + "\n",
		`latency_seconds_bucket{path="/v1/predict",le="0.1"} 3` + "\n",
		`latency_seconds_bucket{path="/v1/predict",le="1"} 4` + "\n",
		`latency_seconds_bucket{path="/v1/predict",le="+Inf"} 5` + "\n",
		`latency_seconds_sum{path="/v1/predict"} 5.605` + "\n",
		`latency_seconds_count{path="/v1/predict"} 5` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestHistogramBoundaryLandsInLowerBucket(t *testing.T) {
	// Prometheus buckets are le (less-or-equal): an observation exactly on
	// a bound belongs to that bound's bucket.
	r := NewRegistry()
	h := r.NewHistogramVec("b_seconds", "Boundary.", []float64{1, 2}, "k")
	h.With("x").Observe(1)
	text := expose(t, r)
	if !strings.Contains(text, `b_seconds_bucket{k="x",le="1"} 1`+"\n") {
		t.Fatalf("observation on a bound must land in that bucket:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("esc", "Escapes.", "name")
	g.With("a\"b\\c\nd").Set(1)
	text := expose(t, r)
	want := `esc{name="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(text, want) {
		t.Fatalf("missing %q in:\n%s", want, text)
	}
}

func TestFloatFormatting(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("f", "Floats.", "k")
	g.With("pi").Set(3.141592653589793)
	g.With("inf").Set(math.Inf(1))
	g.With("ninf").Set(math.Inf(-1))
	g.With("nan").Set(math.NaN())
	text := expose(t, r)
	for _, want := range []string{
		`f{k="pi"} 3.141592653589793` + "\n",
		`f{k="inf"} +Inf` + "\n",
		`f{k="ninf"} -Inf` + "\n",
		`f{k="nan"} NaN` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("dup_total", "One.", "k")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family name must panic")
		}
	}()
	r.NewGaugeVec("dup_total", "Two.", "k")
}

func TestFamiliesEmittedInRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("zzz_total", "Last name, first registered.", "k").With("a").Inc()
	r.NewCounterVec("aaa_total", "First name, last registered.", "k").With("a").Inc()
	text := expose(t, r)
	if strings.Index(text, "zzz_total") > strings.Index(text, "aaa_total") {
		t.Fatalf("families must keep registration order:\n%s", text)
	}
}
